"""Shared plumbing for the benchmark harness.

Every benchmark prints the paper-style table/series it reproduces *and*
writes it to ``benchmarks/out/`` so the artefacts survive without
``pytest -s``.  ``REPRO_RUNS`` scales the number of repeated runs per
measurement (the paper uses 10; default here is 3 to keep the harness
fast — results are deterministic per seed, so spread comes only from
dataset seeds).
"""

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def runs():
    return int(os.environ.get("REPRO_RUNS", "3"))


@pytest.fixture(scope="session")
def out_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(out_dir):
    """emit(name, text): print and persist a benchmark artefact."""

    def _emit(name, text):
        print()
        print(text)
        (out_dir / name).write_text(text + "\n")

    return _emit
