"""Shared plumbing for the benchmark harness.

Every benchmark prints the paper-style table/series it reproduces *and*
writes it to ``benchmarks/out/`` so the artefacts survive without
``pytest -s``.  The timer and quick-mode plumbing lives in
:mod:`repro.bench.timing` — ``runs`` is re-exported here for the
benchmarks that predate the suite; ``REPRO_RUNS`` scales the number of
repeated runs per measurement (the paper uses 10; default here is 3 to
keep the harness fast — results are deterministic per seed, so spread
comes only from dataset seeds).
"""

import pathlib
import sys

# Let `pytest benchmarks/` work without PYTHONPATH=src: the bench
# modules import repro.* (and this conftest imports repro.bench).
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.bench.timing import runs  # noqa: F401  (re-export)

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(out_dir):
    """emit(name, text): print and persist a benchmark artefact."""

    def _emit(name, text):
        print()
        print(text)
        (out_dir / name).write_text(text + "\n")

    return _emit
