"""Accuracy — TEE-Perf vs perf against exact ground truth (§II goal).

The paper's third design point: "TEE-Perf provides accurate
method-level profiling, without resorting to instruction sampling."
The simulator gives us what real hardware never does — an *exact*
oracle (the zero-cost ghost trace) — so the claim can be measured: run
one workload with an uneven five-method mix, and compare each
profiler's per-method share of runtime against the truth.
"""

import pytest

from repro.api import TEEPerf
from repro.core import Instrumenter, symbol
from repro.fex import ResultTable
from repro.machine import Machine
from repro.perfsim import PerfSim
from repro.tee import SGX_V1, make_env

# Uneven method mix: (cycles per call, calls per round).
MIX = {
    "mix::Tiny()": (800, 6),
    "mix::Small()": (4_000, 3),
    "mix::Medium()": (22_000, 2),
    "mix::Large()": (130_000, 1),
    "mix::Huge()": (470_000, 1),
}
ROUNDS = 120


class MixWorkload:
    def __init__(self, env):
        self.env = env

    @symbol("mix::Main()")
    def main(self):
        for _ in range(ROUNDS):
            for _ in range(MIX["mix::Tiny()"][1]):
                self.tiny()
            for _ in range(MIX["mix::Small()"][1]):
                self.small()
            for _ in range(MIX["mix::Medium()"][1]):
                self.medium()
            self.large()
            self.huge()

    @symbol("mix::Tiny()")
    def tiny(self):
        self.env.compute(MIX["mix::Tiny()"][0])

    @symbol("mix::Small()")
    def small(self):
        self.env.compute(MIX["mix::Small()"][0])

    @symbol("mix::Medium()")
    def medium(self):
        self.env.compute(MIX["mix::Medium()"][0])

    @symbol("mix::Large()")
    def large(self):
        self.env.compute(MIX["mix::Large()"][0])

    @symbol("mix::Huge()")
    def huge(self):
        self.env.compute(MIX["mix::Huge()"][0])


def truth_shares():
    total = sum(cycles * calls for cycles, calls in MIX.values())
    return {
        name: cycles * calls / total for name, (cycles, calls) in MIX.items()
    }


def teeperf_shares():
    perf = TEEPerf.simulated(platform=SGX_V1, name="mix")
    app = MixWorkload(perf.env)
    perf.compile_instance(app)
    perf.record(app.main)
    analysis = perf.analyze()
    measured = {
        name: analysis.method(name).exclusive for name in MIX
    }
    total = sum(measured.values())
    return {name: value / total for name, value in measured.items()}


def perf_shares():
    machine = Machine(cores=8)
    env = make_env(machine, SGX_V1)
    app = MixWorkload(env)
    ins = Instrumenter("mix")
    ins.instrument_instance(app)
    program = ins.finish()
    result = PerfSim(env).profile(program, app.main)
    counted = {name: result.samples.get(name, 0) for name in MIX}
    total = sum(counted.values()) or 1
    return {name: value / total for name, value in counted.items()}


def max_error(shares, truth):
    return max(abs(shares[name] - truth[name]) for name in truth)


def test_accuracy_against_ground_truth(emit, benchmark):
    def collect():
        return truth_shares(), teeperf_shares(), perf_shares()

    truth, tee, sampled = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Accuracy — per-method share of runtime vs exact ground truth",
        ["method", "truth", "TEE-Perf", "perf (sampled)"],
    )
    for name in MIX:
        table.add_row(
            name,
            f"{truth[name]:.2%}",
            f"{tee[name]:.2%}",
            f"{sampled[name]:.2%}",
        )
    tee_err = max_error(tee, truth)
    perf_err = max_error(sampled, truth)
    text = table.render() + (
        f"\nmax share error: TEE-Perf {tee_err:.2%}, perf {perf_err:.2%}"
    )
    emit("accuracy_vs_truth.txt", text)

    # TEE-Perf tracks the truth to within a point; sampling at ~4 kHz
    # cannot see the sub-period methods reliably.
    assert tee_err < 0.015
    assert perf_err > tee_err
    # Every method was observed by TEE-Perf, including the tiny one.
    assert all(tee[name] > 0 for name in MIX)
