"""Accuracy — TEE-Perf vs perf against exact ground truth (§II goal).

The paper's third design point: "TEE-Perf provides accurate
method-level profiling, without resorting to instruction sampling."
The simulator gives us what real hardware never does — an *exact*
oracle (the zero-cost ghost trace) — so the claim can be measured: run
one workload with an uneven five-method mix, and compare each
profiler's per-method share of runtime against the truth.

The mix workload and the three share extractors live in
:mod:`repro.bench.workloads.accuracy`, shared with the suite's
``accuracy_error`` benchmark (``python -m repro.bench``).
"""

from repro.bench.workloads.accuracy import (
    ACCURACY_CEILING,
    MIX,
    max_error,
    perf_shares,
    teeperf_shares,
    truth_shares,
)
from repro.fex import ResultTable


def test_accuracy_against_ground_truth(emit, benchmark):
    def collect():
        return truth_shares(), teeperf_shares(), perf_shares()

    truth, tee, sampled = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Accuracy — per-method share of runtime vs exact ground truth",
        ["method", "truth", "TEE-Perf", "perf (sampled)"],
    )
    for name in MIX:
        table.add_row(
            name,
            f"{truth[name]:.2%}",
            f"{tee[name]:.2%}",
            f"{sampled[name]:.2%}",
        )
    tee_err = max_error(tee, truth)
    perf_err = max_error(sampled, truth)
    text = table.render() + (
        f"\nmax share error: TEE-Perf {tee_err:.2%}, perf {perf_err:.2%}"
    )
    emit("accuracy_vs_truth.txt", text)

    # TEE-Perf tracks the truth to within a point; sampling at ~4 kHz
    # cannot see the sub-period methods reliably.
    assert tee_err < ACCURACY_CEILING
    assert perf_err > tee_err
    # Every method was observed by TEE-Perf, including the tiny one.
    assert all(tee[name] > 0 for name in MIX)
