"""Analyzer scaling — reconstruction engines and true multi-core jobs.

The ROADMAP's north star needs stage 3 to keep up with logs far larger
than memory and with many threads.  PR 3 made *decode* columnar; this
benchmark measures the other half of the hot path — stack
reconstruction — across the engine × jobs matrix:

* ``python j=1``  — the sequential per-entry oracle loop;
* ``vector j=1``  — the whole-shard numpy kernel
  (:mod:`repro.core.reconstruct`), single worker;
* ``vector j=4``  — the same kernel with shards fanned out to a
  ``ProcessPoolExecutor`` (packed column bytes to each worker, so the
  GIL stops mattering);
* ``vector j=4 (mmap)`` — ditto over an mmap-backed on-disk stream.

The log builder and the matrix timer live in
:mod:`repro.bench.workloads.analyzer`, shared with the suite's
``analyzer_vector`` benchmark (``python -m repro.bench``), which gates
the vector floor with repetitions and confidence intervals.  This
standalone run keeps the full matrix (the pool and mmap cells the
suite omits) and two floors (standalone run:
``python benchmarks/bench_analyzer_scaling.py [--quick]``, artefact in
``benchmarks/out/BENCH_analyze.json``, non-zero exit on a miss):

* **vector >= 4x python** single-threaded on the 512k-entry clean log
  — enforced everywhere;
* **jobs=4 >= 1.8x jobs=1** through the process pool, measured on the
  sequential engine (whose per-shard work dwarfs worker spawn — the
  GIL-removal claim) — enforced only where ``os.cpu_count() >= 4`` (a
  single-core container cannot physically scale; the JSON records the
  measurement either way).

The differential guarantee is asserted outside the timed region: every
cell of the matrix must produce field-for-field identical records.
"""

import argparse
import json
import os
import pathlib
import sys

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.api import Analyzer
from repro.bench.workloads.analyzer import (
    FRAMES_PER_THREAD,
    POOL_FLOOR,
    POOL_MIN_CPUS,
    THREADS,
    VECTOR_FLOOR,
    build_image,
    build_log,
    run_matrix,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Reconstruction engine x jobs scaling benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: single repeat per cell",
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else 3

    image = build_image()
    log = build_log(image, threads=THREADS,
                    frames_per_thread=FRAMES_PER_THREAD)
    entries = len(log)
    assert entries >= 500_000

    OUT_DIR.mkdir(exist_ok=True)
    stream_path = OUT_DIR / "scaling.teeperf"
    log.dump(str(stream_path))

    analyzer = Analyzer(image)
    cells = run_matrix(analyzer, log, stream_path, repeats)
    stream_path.unlink()

    times = {name: elapsed for name, _, elapsed in cells}
    vector_speedup = times["python j=1"] / times["vector j=1"]
    # Pool scaling is measured on the *sequential* engine, where
    # per-shard work dwarfs worker spawn — that is the GIL-removal
    # claim.  (The vector kernel finishes the whole log faster than a
    # pool can start; its jobs=4 cells are reported for completeness.)
    pool_scaling = times["python j=1"] / times["python j=4 (pool)"]
    cpus = os.cpu_count() or 1
    enforce_pool = cpus >= POOL_MIN_CPUS

    payload = {
        "benchmark": "analyze_engines",
        "quick": args.quick,
        "entries": entries,
        "threads": THREADS,
        "cpu_count": cpus,
        "cells": [
            {
                "name": name,
                "seconds": elapsed,
                "entries_per_sec": entries / elapsed,
                "engine": analysis.pipeline.engine,
                "shards_vectorised": analysis.pipeline.shards_vectorised,
                "shards_fallback": analysis.pipeline.shards_fallback,
                "cache_hit_rate": analysis.pipeline.cache_hit_rate,
            }
            for name, analysis, elapsed in cells
        ],
        "vector_speedup": vector_speedup,
        "vector_floor": VECTOR_FLOOR,
        "pool_scaling": pool_scaling,
        "pool_floor": POOL_FLOOR,
        "pool_floor_enforced": enforce_pool,
    }
    out = OUT_DIR / "BENCH_analyze.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    for name, analysis, elapsed in cells:
        stats = analysis.pipeline
        print(
            f"{name:<18} {elapsed:>7.3f}s  {entries / elapsed:>12,.0f} en/s"
            f"  vec={stats.shards_vectorised} fb={stats.shards_fallback}"
            f"  cache {100 * stats.cache_hit_rate:.1f}%"
        )
    print(
        f"vector vs python: {vector_speedup:.2f}x (floor {VECTOR_FLOOR}x); "
        f"pool j=1->j=4: {pool_scaling:.2f}x (floor {POOL_FLOOR}x, "
        f"{'enforced' if enforce_pool else f'reported only: {cpus} cpu'})"
    )
    print(f"wrote {out}")

    # Correctness outside the timed region: every cell's profile must
    # be field-for-field identical (the clean log also means the
    # vector engine must never have fallen back).
    reference = cells[0][1]
    for name, analysis, _ in cells[1:]:
        assert analysis.records == reference.records, name
        assert analysis.unmatched_returns == reference.unmatched_returns
        assert analysis.meta == reference.meta, name
        if analysis.pipeline.engine == "vector":
            assert analysis.pipeline.shards_fallback == 0, name
            assert analysis.pipeline.shards_vectorised == THREADS, name
        assert analysis.pipeline.cache_hit_rate > 0.99, name

    failed = []
    if vector_speedup < VECTOR_FLOOR:
        failed.append(
            f"vector engine {vector_speedup:.2f}x < {VECTOR_FLOOR}x"
        )
    if enforce_pool and pool_scaling < POOL_FLOOR:
        failed.append(f"pool scaling {pool_scaling:.2f}x < {POOL_FLOOR}x")
    if failed:
        print("FLOOR MISSED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


# ======================================================================
# Pytest half: the floors under pytest plus the emit artefact.


def test_analyzer_engine_matrix(emit):
    from repro.fex import ResultTable

    assert main(["--quick"]) == 0
    payload = json.loads((OUT_DIR / "BENCH_analyze.json").read_text())
    assert payload["vector_speedup"] >= VECTOR_FLOOR

    table = ResultTable(
        f"Analyzer engines — {payload['entries']:,} entries, "
        f"{payload['threads']} threads",
        ["cell", "seconds", "entries/s", "vectorised", "cache hit %"],
    )
    for cell in payload["cells"]:
        table.add_row(
            cell["name"],
            f"{cell['seconds']:.3f}",
            f"{cell['entries_per_sec']:,.0f}",
            cell["shards_vectorised"],
            f"{100 * cell['cache_hit_rate']:.1f}",
        )
    emit("analyzer_scaling.txt", table.render())


if __name__ == "__main__":
    sys.exit(main())
