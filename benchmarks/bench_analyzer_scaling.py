"""Analyzer scaling — the streaming pipeline's throughput story.

The ROADMAP's north star needs stage 3 to keep up with logs far larger
than memory and with many threads.  This benchmark builds a
multi-thread log of >= 500k entries, then measures analyzer throughput
(entries/second) through three paths:

* ``batch``       — the original single-pass oracle (`analyze_batch`);
* ``stream j=1``  — chunked ingestion, serial shard reconstruction;
* ``stream j=4``  — chunked ingestion, 4-worker shard pool.

Two honesty notes baked into the output: reconstruction is pure
Python, so under the GIL ``jobs=4`` buys concurrency (shards in
flight), not parallel speedup — the win it demonstrates is that
sharded results merge into byte-identical output while ingestion stays
O(chunk) in memory; and the differential guarantee itself is asserted
at the bottom of the test.
"""

import time

from repro.core import Analyzer, KIND_CALL, KIND_RET, LogStream, SharedLog
from repro.fex import ResultTable
from repro.symbols import BinaryImage

THREADS = 8
FRAMES_PER_THREAD = 32_000  # call+ret pairs: 8 * 32k * 2 = 512k entries
FUNCTIONS = 48


def build_image():
    image = BinaryImage("scaling")
    for i in range(FUNCTIONS):
        image.add_function(f"app::Fn{i:02d}()", size=64)
    return image


def build_log(image):
    """A >= 500k-entry log: nested call trees on every thread."""
    addrs = [sym.addr for sym in image.symtab]
    log = SharedLog.create(
        THREADS * FRAMES_PER_THREAD * 2, profiler_addr=image.profiler_addr
    )
    append = log.append
    for tid in range(THREADS):
        counter = tid  # desynchronise threads a little
        stack = []
        opened = 0
        while opened < FRAMES_PER_THREAD or stack:
            counter += 3
            # Deterministic open/close pattern: grow to depth 6, drain.
            if opened < FRAMES_PER_THREAD and len(stack) < 6:
                addr = addrs[(opened * 7 + tid) % FUNCTIONS]
                stack.append(addr)
                append(KIND_CALL, counter, addr, tid)
                opened += 1
            else:
                append(KIND_RET, counter, stack.pop(), tid)
    return log


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_analyzer_scaling(emit, benchmark, tmp_path):
    image = build_image()
    log = build_log(image)
    entries = len(log)
    assert entries >= 500_000

    path = tmp_path / "scaling.teeperf"
    log.dump(str(path))

    analyzer = Analyzer(image)

    def measure():
        rows = []
        batch, t = timed(lambda: analyzer.analyze_batch(log))
        rows.append(("batch (oracle)", t, batch))
        serial, t = timed(lambda: analyzer.analyze(log, jobs=1))
        rows.append(("stream jobs=1", t, serial))
        parallel, t = timed(lambda: analyzer.analyze(log, jobs=4))
        rows.append(("stream jobs=4", t, parallel))
        disk, t = timed(
            lambda: analyzer.analyze(LogStream.open(str(path)), jobs=4)
        )
        rows.append(("stream jobs=4 (mmap)", t, disk))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = ResultTable(
        f"Analyzer scaling — {entries:,} entries, {THREADS} threads",
        ["path", "seconds", "entries/s", "chunks", "cache hit %"],
    )
    for name, elapsed, analysis in rows:
        stats = analysis.pipeline
        table.add_row(
            name,
            f"{elapsed:.2f}",
            f"{entries / elapsed:,.0f}",
            stats.chunks_processed,
            f"{100 * stats.cache_hit_rate:.1f}",
        )
    emit("analyzer_scaling.txt", table.render())

    # The scaling story must never cost correctness: all four paths
    # produce identical profiles.
    reference = rows[0][2]
    for name, _, analysis in rows[1:]:
        assert analysis.records == reference.records, name
        assert analysis.unmatched_returns == reference.unmatched_returns
        assert analysis.meta == reference.meta
    stats = rows[2][2].pipeline
    assert stats.entries_ingested == entries
    assert stats.shards_analyzed == THREADS
    assert stats.jobs == 4
    assert stats.cache_hit_rate > 0.99  # 48 symbols, 512k resolutions
