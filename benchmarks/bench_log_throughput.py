"""Ablation E — lock-free log appends, batched record path, columnar decode.

"the access to the log, while recording, is lock-free, due to the
append only nature and the use of atomic instructions.  Therefore, we
keep the overhead of writing to the log to a minimum."

Two halves:

* the original pytest ablation (real threads hammering one SharedLog —
  nothing lost, nothing written twice, per-thread order survives);
* a standalone before/after harness (``python
  benchmarks/bench_log_throughput.py [--quick]``) that measures the
  batched :class:`ThreadLogWriter` and the columnar
  :func:`decode_columns` against *faithful reconstructions of the
  pre-batching code* (per-event header reads through ``struct``, one
  fetch-and-add and one ``pack_into`` per event; one ``unpack_from``
  and one ``LogEntry`` per decoded entry).  The reconstructions are
  kept here, frozen, precisely so the speedup floors keep meaning
  after the library moves on.  Results land in
  ``benchmarks/out/BENCH_record.json`` and the process exits non-zero
  when either floor is missed — CI runs this as the perf-smoke job.
"""

import argparse
import itertools
import json
import pathlib
import struct
import sys
import threading
import time

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.api import SharedLog
from repro.core import KIND_CALL, KIND_RET, ThreadLogWriter
from repro.core.log import (
    COUNTER_MASK,
    ENTRY_SIZE_V2,
    FLAG_MASK_CALLS,
    FLAG_MASK_RETS,
    HEADER_SIZE,
    LogEntry,
    _ENTRY,
    _ENTRY_V2,
    _KIND_BIT,
    decode_columns,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: acceptance floors (ISSUE 3): batched write path >= 3x events/sec,
#: columnar bulk decode >= 5x, both against the pre-batching baseline.
WRITE_FLOOR = 3.0
DECODE_FLOOR = 5.0

EVENTS_PER_THREAD = 20_000


# ======================================================================
# The frozen pre-batching baseline.
#
# This is the seed's hot path, byte for byte in behaviour: the header
# flags are re-read through ``struct.unpack_from`` on *every* event
# (no memoryview cast, no mirror), reservation is one fetch-and-add
# per event, and each entry is packed individually.  Decoding likewise
# materialises one LogEntry per entry.  Do not "fix" this code — its
# slowness is the measurement.


class _LegacyLog:
    """Per-event append exactly as the pre-batching SharedLog did it."""

    def __init__(self, capacity, entry_size=24):
        self._buf = bytearray(HEADER_SIZE + capacity * entry_size)
        struct.pack_into("<Q", self._buf, 8, 0xF)  # ACTIVE | both masks
        self._capacity = capacity
        self._entry_size = entry_size
        self._reservations = itertools.count(0)
        self.dropped = 0

    def _word(self, index):
        return struct.unpack_from("<Q", self._buf, index * 8)[0]

    @property
    def flags(self):
        return self._word(1) & 0xFFFF

    def measures(self, kind):
        flag = FLAG_MASK_CALLS if kind == KIND_CALL else FLAG_MASK_RETS
        return bool(self.flags & flag)

    def try_reserve(self):
        index = next(self._reservations)
        if index >= self._capacity:
            self.dropped += 1
            return None
        return index

    def write_entry(self, index, kind, counter, addr, tid, call_site=0):
        word0 = (counter & COUNTER_MASK) | (_KIND_BIT if kind else 0)
        offset = HEADER_SIZE + index * self._entry_size
        if self._entry_size == ENTRY_SIZE_V2:
            _ENTRY_V2.pack_into(
                self._buf, offset, word0, addr, tid, call_site
            )
        else:
            _ENTRY.pack_into(self._buf, offset, word0, addr, tid)

    def append(self, kind, counter, addr, tid, call_site=0):
        if not self.measures(kind):
            return False
        index = self.try_reserve()
        if index is None:
            return False
        self.write_entry(index, kind, counter, addr, tid, call_site)
        return True


def _legacy_decode(buf, count, entry_size=24):
    """One ``unpack_from`` and one LogEntry per entry — the pre-PR
    reader that columnar decode replaced."""
    entries = []
    add = entries.append
    offset = HEADER_SIZE
    if entry_size == ENTRY_SIZE_V2:
        for _ in range(count):
            word0, addr, tid, call_site = _ENTRY_V2.unpack_from(
                buf, offset
            )
            add(LogEntry(word0 >> 63, word0 & COUNTER_MASK, addr, tid,
                         call_site))
            offset += entry_size
    else:
        for _ in range(count):
            word0, addr, tid = _ENTRY.unpack_from(buf, offset)
            add(LogEntry(word0 >> 63, word0 & COUNTER_MASK, addr, tid))
            offset += entry_size
    return entries


# ======================================================================
# Measurement


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_write(n_events, repeats):
    """events/sec: legacy per-event append vs batched ThreadLogWriter."""

    def legacy():
        log = _LegacyLog(n_events)
        append = log.append
        for i in range(n_events):
            append(KIND_CALL, i, 0x400000, 7)

    def batched():
        log = SharedLog.create(n_events)
        with ThreadLogWriter(log) as writer:
            append = writer.append
            for i in range(n_events):
                append(KIND_CALL, i, 0x400000, 7)

    t_legacy = _best_of(legacy, repeats)
    t_batched = _best_of(batched, repeats)
    return {
        "events": n_events,
        "legacy_events_per_sec": n_events / t_legacy,
        "batched_events_per_sec": n_events / t_batched,
        "legacy_ns_per_event": t_legacy / n_events * 1e9,
        "batched_ns_per_event": t_batched / n_events * 1e9,
        "speedup": t_legacy / t_batched,
        "floor": WRITE_FLOOR,
    }


def bench_decode(n_entries, repeats):
    """entries/sec: per-entry LogEntry decode vs columnar bulk decode."""
    log = SharedLog.create(n_entries)
    append = log.append
    for i in range(n_entries):
        kind = KIND_RET if i & 1 else KIND_CALL
        append(kind, i * 3, 0x400000 + i, 1 + i % 4)
    log._store_tail()
    buf = log.to_bytes()

    sink = []

    def legacy():
        sink.append(len(_legacy_decode(buf, n_entries)))

    def columnar():
        sink.append(len(decode_columns(buf, log.version, 0, n_entries)))

    t_legacy = _best_of(legacy, repeats)
    t_columnar = _best_of(columnar, repeats)
    assert all(n == n_entries for n in sink)
    return {
        "entries": n_entries,
        "legacy_entries_per_sec": n_entries / t_legacy,
        "columnar_entries_per_sec": n_entries / t_columnar,
        "speedup": t_legacy / t_columnar,
        "floor": DECODE_FLOOR,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Before/after record-path and decode benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer events, fewer repeats",
    )
    args = parser.parse_args(argv)

    if args.quick:
        write_events, decode_entries, repeats = 100_000, 131_072, 3
    else:
        write_events, decode_entries, repeats = 400_000, 524_288, 5

    write = bench_write(write_events, repeats)
    decode = bench_decode(decode_entries, repeats)

    payload = {
        "benchmark": "record_path",
        "quick": args.quick,
        "write": write,
        "decode": decode,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "BENCH_record.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"write : legacy {write['legacy_events_per_sec']:>12,.0f} ev/s"
        f"  batched {write['batched_events_per_sec']:>12,.0f} ev/s"
        f"  -> {write['speedup']:.2f}x (floor {WRITE_FLOOR}x)"
    )
    print(
        f"decode: legacy {decode['legacy_entries_per_sec']:>12,.0f} en/s"
        f"  columnar {decode['columnar_entries_per_sec']:>12,.0f} en/s"
        f"  -> {decode['speedup']:.2f}x (floor {DECODE_FLOOR}x)"
    )
    print(f"wrote {out}")

    failed = []
    if write["speedup"] < WRITE_FLOOR:
        failed.append(f"write path {write['speedup']:.2f}x < {WRITE_FLOOR}x")
    if decode["speedup"] < DECODE_FLOOR:
        failed.append(f"decode {decode['speedup']:.2f}x < {DECODE_FLOOR}x")
    if failed:
        print("FLOOR MISSED: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


# ======================================================================
# Pytest half: Ablation E, unchanged — real threads, one shared log.


def hammer(n_threads):
    log = SharedLog.create(n_threads * EVENTS_PER_THREAD)
    errors = []

    def writer(tid):
        append = log.append
        for i in range(EVENTS_PER_THREAD):
            if not append(KIND_CALL, i, 0x400000 + i, tid):
                errors.append(tid)

    threads = [
        threading.Thread(target=writer, args=(tid,))
        for tid in range(n_threads)
    ]

    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    return log, errors, elapsed


def test_lock_free_appends(emit, benchmark):
    from repro.fex import ResultTable

    def collect():
        rows = []
        for n in (1, 2, 4, 8):
            log, errors, elapsed = hammer(n)
            rows.append((n, log, errors, elapsed))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation E — concurrent appends into one shared log (live mode)",
        ["threads", "events", "dropped", "events/s"],
    )
    for n, log, errors, elapsed in rows:
        total = n * EVENTS_PER_THREAD
        table.add_row(n, total, len(errors), f"{total / elapsed:,.0f}")
    emit("ablation_log_throughput.txt", table.render())

    for n, log, errors, elapsed in rows:
        assert not errors  # capacity was sized exactly: nothing dropped
        assert len(log) == n * EVENTS_PER_THREAD
        # Per-thread order survives interleaving: counters ascend.
        last = {}
        for entry in log:
            if entry.tid in last:
                assert entry.counter == last[entry.tid] + 1
            else:
                assert entry.counter == 0
            last[entry.tid] = entry.counter
        assert set(last) == set(range(n))


def test_batched_writer_beats_per_event(emit):
    """The in-tree quick run: floors enforced under pytest too, and the
    JSON artifact refreshed for the docs table."""
    assert main(["--quick"]) == 0
    emit_path = OUT_DIR / "BENCH_record.json"
    payload = json.loads(emit_path.read_text())
    assert payload["write"]["speedup"] >= WRITE_FLOOR
    assert payload["decode"]["speedup"] >= DECODE_FLOOR


if __name__ == "__main__":
    sys.exit(main())
