"""Ablation E — lock-free log appends (§II-C multithreading).

"the access to the log, while recording, is lock-free, due to the
append only nature and the use of atomic instructions.  Therefore, we
keep the overhead of writing to the log to a minimum."

Live-mode measurement on real threads: N writers append concurrently
into one SharedLog; reservation is a single fetch-and-add.  The checks
that matter: no entry is lost, no slot is written twice, and per-thread
event order survives — under real concurrency, not simulation.
"""

import threading

from repro.core import KIND_CALL, SharedLog
from repro.fex import ResultTable

EVENTS_PER_THREAD = 20_000


def hammer(n_threads):
    log = SharedLog.create(n_threads * EVENTS_PER_THREAD)
    errors = []

    def writer(tid):
        append = log.append
        for i in range(EVENTS_PER_THREAD):
            if not append(KIND_CALL, i, 0x400000 + i, tid):
                errors.append(tid)

    threads = [
        threading.Thread(target=writer, args=(tid,))
        for tid in range(n_threads)
    ]
    import time

    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    return log, errors, elapsed


def test_lock_free_appends(emit, benchmark):
    def collect():
        rows = []
        for n in (1, 2, 4, 8):
            log, errors, elapsed = collect_one(n)
            rows.append((n, log, errors, elapsed))
        return rows

    def collect_one(n):
        return hammer(n)

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation E — concurrent appends into one shared log (live mode)",
        ["threads", "events", "dropped", "events/s"],
    )
    for n, log, errors, elapsed in rows:
        total = n * EVENTS_PER_THREAD
        table.add_row(n, total, len(errors), f"{total / elapsed:,.0f}")
    emit("ablation_log_throughput.txt", table.render())

    for n, log, errors, elapsed in rows:
        assert not errors  # capacity was sized exactly: nothing dropped
        assert len(log) == n * EVENTS_PER_THREAD
        # Per-thread order survives interleaving: counters ascend.
        last = {}
        for entry in log:
            if entry.tid in last:
                assert entry.counter == last[entry.tid] + 1
            else:
                assert entry.counter == 0
            last[entry.tid] = entry.counter
        assert set(last) == set(range(n))
