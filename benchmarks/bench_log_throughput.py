"""Ablation E — lock-free log appends, batched record path, columnar decode.

"the access to the log, while recording, is lock-free, due to the
append only nature and the use of atomic instructions.  Therefore, we
keep the overhead of writing to the log to a minimum."

Two halves:

* the original pytest ablation (real threads hammering one SharedLog —
  nothing lost, nothing written twice, per-thread order survives);
* a standalone before/after wrapper (``python
  benchmarks/bench_log_throughput.py [--quick]``) over the suite's
  ``record_write``, ``record_zero_copy``, ``codec_ratio`` and
  ``columnar_decode`` benchmarks.  The frozen
  pre-batching baselines and the paired measurement live in
  :mod:`repro.bench.workloads.record_path`; this script runs them
  through the :mod:`repro.bench` harness (warmup, repetitions,
  CI-based floor gates — see docs/benchmarking.md) and writes
  ``benchmarks/out/BENCH_record.json`` as a derived view of the suite
  result.  The process exits non-zero when a gate fails — CI runs
  this as the perf-smoke job; the authoritative run is the
  bench-suite job's ``python -m repro.bench --quick``.
"""

import argparse
import json
import pathlib
import sys
import threading
import time

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.api import SharedLog
from repro.core import KIND_CALL
from repro.bench.ports import derived_views
from repro.bench.runner import run_selected
from repro.bench.workloads.record_path import (
    CODEC_RATIO_FLOOR,
    DECODE_FLOOR,
    WRITE_FLOOR,
    ZERO_COPY_FLOOR,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"

EVENTS_PER_THREAD = 20_000


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Before/after record-path and decode benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: smaller workloads, fewer repetitions",
    )
    args = parser.parse_args(argv)

    results = run_selected(
        (
            "record_write", "record_zero_copy", "codec_ratio",
            "columnar_decode",
        ),
        quick=args.quick,
    )
    payload = derived_views(results, quick=args.quick)["BENCH_record.json"]
    write, decode = payload["write"], payload["decode"]
    zero_copy, codec = payload["zero_copy"], payload["codec"]

    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "BENCH_record.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"write : legacy {write['legacy_events_per_sec']:>12,.0f} ev/s"
        f"  batched {write['batched_events_per_sec']:>12,.0f} ev/s"
        f"  -> {write['speedup']:.2f}x (floor {WRITE_FLOOR}x)"
    )
    print(
        f"bulk  : legacy {zero_copy['legacy_events_per_sec']:>12,.0f} ev/s"
        f"  zerocopy {zero_copy['bulk_events_per_sec']:>11,.0f} ev/s"
        f"  -> {zero_copy['speedup']:.2f}x (floor {ZERO_COPY_FLOOR}x)"
    )
    print(
        f"codec : fixed  {codec['fixed_width_bytes']:>12,} B   "
        f"rev 1.2 {codec['rev12_bytes']:>12,} B"
        f"  -> {codec['ratio']:.2f}x (floor {CODEC_RATIO_FLOOR}x)"
    )
    print(
        f"decode: legacy {decode['legacy_entries_per_sec']:>12,.0f} en/s"
        f"  columnar {decode['columnar_entries_per_sec']:>12,.0f} en/s"
        f"  -> {decode['speedup']:.2f}x (floor {DECODE_FLOOR}x)"
    )
    print(f"wrote {out}")

    failed = [name for name, r in results.items() if not r.passed]
    if failed:
        print("GATE FAILED: " + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


# ======================================================================
# Pytest half: Ablation E, unchanged — real threads, one shared log.


def hammer(n_threads):
    log = SharedLog.create(n_threads * EVENTS_PER_THREAD)
    errors = []

    def writer(tid):
        append = log.append
        for i in range(EVENTS_PER_THREAD):
            if not append(KIND_CALL, i, 0x400000 + i, tid):
                errors.append(tid)

    threads = [
        threading.Thread(target=writer, args=(tid,))
        for tid in range(n_threads)
    ]

    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    return log, errors, elapsed


def test_lock_free_appends(emit, benchmark):
    from repro.fex import ResultTable

    def collect():
        rows = []
        for n in (1, 2, 4, 8):
            log, errors, elapsed = hammer(n)
            rows.append((n, log, errors, elapsed))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation E — concurrent appends into one shared log (live mode)",
        ["threads", "events", "dropped", "events/s"],
    )
    for n, log, errors, elapsed in rows:
        total = n * EVENTS_PER_THREAD
        table.add_row(n, total, len(errors), f"{total / elapsed:,.0f}")
    emit("ablation_log_throughput.txt", table.render())

    for n, log, errors, elapsed in rows:
        assert not errors  # capacity was sized exactly: nothing dropped
        assert len(log) == n * EVENTS_PER_THREAD
        # Per-thread order survives interleaving: counters ascend.
        last = {}
        for entry in log:
            if entry.tid in last:
                assert entry.counter == last[entry.tid] + 1
            else:
                assert entry.counter == 0
            last[entry.tid] = entry.counter
        assert set(last) == set(range(n))


def test_batched_writer_beats_per_event(emit):
    """The in-tree quick run: the harness gates enforced under pytest
    too, and the derived-view JSON artifact refreshed."""
    assert main(["--quick"]) == 0
    payload = json.loads((OUT_DIR / "BENCH_record.json").read_text())
    assert payload["derived_from"] == "BENCH_suite.json"
    assert payload["write"]["speedup"] > 1.0
    assert payload["decode"]["speedup"] >= DECODE_FLOOR
    assert payload["zero_copy"]["speedup"] >= ZERO_COPY_FLOOR
    assert payload["codec"]["ratio"] >= CODEC_RATIO_FLOOR


if __name__ == "__main__":
    sys.exit(main())
