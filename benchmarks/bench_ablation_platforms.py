"""Ablation C — generality across TEE platforms (§II design goal).

TEE-Perf's pitch is architecture- and platform-independence: the same
profiler must work on "different instruction sets (x86 or RISC) or
versions (SGX v1 or SGX v2)".  This bench runs the same workload under
TEE-Perf on every modelled platform and reports (a) the enclave's own
slowdown over native and (b) TEE-Perf's overhead relative to perf —
demonstrating the tool needs nothing platform-specific anywhere.
"""

import pytest

from repro.fex import ResultTable
from repro.phoenix import WordCount, run_baseline, run_perf, run_teeperf
from repro.tee import ALL_PLATFORMS, NATIVE, SGX_V1, TRUSTZONE

PARAMS = {"n_words": 8_000}


def measure(platform):
    base = run_baseline(WordCount, platform=platform, seed=1, **PARAMS)
    tee = run_teeperf(WordCount, platform=platform, seed=1, **PARAMS)
    perf = run_perf(WordCount, platform=platform, seed=1, **PARAMS)
    return base.elapsed_cycles, tee.elapsed_cycles, perf.elapsed_cycles


def test_platform_generality(emit, benchmark):
    def collect():
        results = {}
        native_base, _, _ = measure(NATIVE)
        for platform in (NATIVE,) + ALL_PLATFORMS:
            base, tee, perf = measure(platform)
            results[platform.name] = {
                "isa": platform.isa,
                "enclave_slowdown": base / native_base,
                "teeperf_vs_perf": tee / perf,
            }
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation C — word_count under TEE-Perf on every platform",
        ["platform", "isa", "slowdown vs native", "TEE-Perf / perf"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            row["isa"],
            f"{row['enclave_slowdown']:.2f}x",
            f"{row['teeperf_vs_perf']:.2f}x",
        )
    emit("ablation_platforms.txt", table.render())

    # The profiler ran everywhere, including the RISC-V model.
    assert set(results) == {
        "native", "sgx-v1", "sgx-v2", "trustzone", "sev", "keystone",
    }
    isas = {row["isa"] for row in results.values()}
    assert isas == {"x86_64", "aarch64", "riscv64"}
    # No TEE beats native; the memory-encrypting ones pay for it, while
    # TrustZone/Keystone are free for a syscall-less compute workload.
    for name, row in results.items():
        assert row["enclave_slowdown"] >= 0.999, name
    for name in ("sgx-v1", "sgx-v2", "sev"):
        assert results[name]["enclave_slowdown"] > 1.0, name
    # SGX's expensive AEX makes perf *relatively* cheap to beat
    # elsewhere: the overhead ratio is platform-dependent but bounded.
    for name, row in results.items():
        assert 0.8 < row["teeperf_vs_perf"] < 5.0, name


def test_sgx_transitions_costlier_than_trustzone(benchmark):
    def collect():
        return (
            run_baseline(WordCount, platform=SGX_V1, seed=1, **PARAMS),
            run_baseline(WordCount, platform=TRUSTZONE, seed=1, **PARAMS),
        )

    sgx, trustzone = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert sgx.elapsed_cycles > trustzone.elapsed_cycles
