"""§IV-C table: SPDK IOPS and throughput, native vs naive vs optimised.

The paper's numbers (random 80 % read / 20 % write, 4 KiB blocks):

    native SPDK            223,808 IOPS   874   MiB/s
    naive SGX port          15,821 IOPS    61.8 MiB/s
    optimised SGX port     232,736 IOPS   909   MiB/s   (14.7x naive)
"""

import pytest

from repro.fex import ResultTable
from repro.spdk import run_spdk_perf
from repro.tee import NATIVE, SGX_V1

PAPER = {
    "native": (223_808, 874.0),
    "naive sgx": (15_821, 61.8),
    "optimized sgx": (232_736, 909.0),
}


def collect_iops():
    return {
        "native": run_spdk_perf(NATIVE, optimized=False, ops=2_500),
        "naive sgx": run_spdk_perf(SGX_V1, optimized=False, ops=700),
        "optimized sgx": run_spdk_perf(SGX_V1, optimized=True, ops=2_500),
    }


def test_iops_table(emit, benchmark):
    iops_results = benchmark.pedantic(collect_iops, rounds=1, iterations=1)
    table = ResultTable(
        "SPDK perf, random RW 80% reads, 4 KiB blocks (§IV-C)",
        ["configuration", "IOPS", "MiB/s", "paper_IOPS", "paper_MiB/s"],
    )
    for name, result in iops_results.items():
        paper_iops, paper_mib = PAPER[name]
        table.add_row(
            name, result.iops, result.throughput_mib_s, paper_iops, paper_mib
        )
    improvement = (
        iops_results["optimized sgx"].iops / iops_results["naive sgx"].iops
    )
    text = table.render() + (
        f"\noptimized / naive improvement: {improvement:.1f}x "
        f"(paper: 14.7x)"
    )
    emit("spdk_iops_table.txt", text)

    for name, result in iops_results.items():
        paper_iops, paper_mib = PAPER[name]
        assert result.iops == pytest.approx(paper_iops, rel=0.10), name
        assert result.throughput_mib_s == pytest.approx(
            paper_mib, rel=0.10
        ), name
    assert improvement == pytest.approx(14.7, rel=0.10)
    # The punchline: the optimised enclave build beats native.
    assert iops_results["optimized sgx"].iops > iops_results["native"].iops


def test_native_runtime_benchmark(benchmark):
    benchmark.pedantic(
        lambda: run_spdk_perf(NATIVE, optimized=False, ops=1_000),
        rounds=1,
        iterations=1,
    )
