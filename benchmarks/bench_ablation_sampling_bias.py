"""Ablation A — sampling-frequency bias (§I).

The paper motivates exhaustive tracing by noting that sampling
profilers mis-attribute workloads "with threads scheduled to align to
the sampling frequency".  This bench builds exactly that workload: two
equally long phases whose period matches the sampling period, and
compares what each profiler reports against the ground truth (50/50):

* perf on the exact grid — (nearly) all samples land in one phase;
* perf with anti-lockstep jitter — bias shrinks but survives;
* TEE-Perf — exact, because it traces every call and return.
"""

import pytest

from repro.api import TEEPerf
from repro.core import Instrumenter, symbol
from repro.fex import ResultTable
from repro.machine import Machine
from repro.perfsim import PerfSim
from repro.tee import NATIVE, make_env

FREQ_HZ = 1_000.0
ROUNDS = 300


class PhaseLocked:
    """hot() and cold() each take exactly half a sampling period."""

    def __init__(self, env, period_cycles):
        self.env = env
        self.half = period_cycles / 2

    @symbol("app::Main()")
    def main(self):
        for _ in range(ROUNDS):
            self.hot()
            self.cold()

    @symbol("app::Hot()")
    def hot(self):
        self.env.compute(self.half)

    @symbol("app::Cold()")
    def cold(self):
        self.env.compute(self.half)


def perf_fraction(jitter):
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    period = machine.clock.seconds_to_cycles(1.0 / FREQ_HZ)
    app = PhaseLocked(env, period)
    ins = Instrumenter("phaselocked")
    ins.instrument_instance(app)
    program = ins.finish()
    result = PerfSim(env, freq_hz=FREQ_HZ, jitter=jitter).profile(
        program, app.main
    )
    hot = result.fraction("app::Hot()")
    cold = result.fraction("app::Cold()")
    return max(hot, cold)


def teeperf_fraction():
    perf = TEEPerf.simulated(platform=NATIVE, name="phaselocked")
    period = perf.machine.clock.seconds_to_cycles(1.0 / FREQ_HZ)
    app = PhaseLocked(perf.env, period)
    perf.compile_instance(app)
    perf.record(app.main)
    analysis = perf.analyze()
    hot = analysis.method("app::Hot()").exclusive
    cold = analysis.method("app::Cold()").exclusive
    return max(hot, cold) / (hot + cold)


def test_sampling_bias(emit, benchmark):
    def collect():
        return {
            "perf (grid-aligned)": perf_fraction(jitter=0.0),
            "perf (with jitter)": perf_fraction(jitter=0.9),
            "TEE-Perf (traced)": teeperf_fraction(),
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation A — attributed share of the larger phase "
        "(ground truth: 50%)",
        ["profiler", "larger-phase share"],
    )
    for name, value in results.items():
        table.add_row(name, f"{value:.1%}")
    emit("ablation_sampling_bias.txt", table.render())

    assert results["perf (grid-aligned)"] > 0.95  # catastrophic bias
    assert results["perf (with jitter)"] < results["perf (grid-aligned)"]
    # TEE-Perf nails the 50/50 split to within instrumentation noise.
    assert results["TEE-Perf (traced)"] == pytest.approx(0.5, abs=0.01)
