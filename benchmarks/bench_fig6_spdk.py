"""Figure 6: TEE-Perf flame graphs of SPDK inside SGX.

Profiles the SPDK perf tool in the SGX model twice — the naive port
and the pid/tsc-cached optimised port — writes both flame graphs, and
asserts the paper's shares: "nearly 72 % of its time in a system call
to get the current process ID, i.e. getpid.  Further, 20 % are spent in
receiving the current time stamp, i.e. rdtsc", dropping "to nearly 0"
after the optimisation.
"""

import pytest

from repro.api import FlameGraph
from repro.fex import ResultTable
from repro.spdk import profile_spdk_perf

OPS = 600


def collect_figure6():
    perf_naive, _, _, naive = profile_spdk_perf(optimized=False, ops=OPS)
    perf_naive.uninstrument()
    perf_opt, _, _, optimized = profile_spdk_perf(optimized=True, ops=OPS)
    perf_opt.uninstrument()
    return naive, optimized


def test_figure6_flame_graphs(emit, out_dir, benchmark):
    naive, optimized = benchmark.pedantic(
        collect_figure6, rounds=1, iterations=1
    )
    top = FlameGraph.from_analysis(
        naive, title="Figure 6 (top) — unoptimized SPDK in SGX"
    )
    bottom = FlameGraph.from_analysis(
        optimized, title="Figure 6 (bottom) — optimized SPDK in SGX"
    )
    top.write_svg(str(out_dir / "fig6_spdk_unoptimized.svg"))
    bottom.write_svg(str(out_dir / "fig6_spdk_optimized.svg"))
    top.write_folded(str(out_dir / "fig6_spdk_unoptimized.folded"))
    bottom.write_folded(str(out_dir / "fig6_spdk_optimized.folded"))

    table = ResultTable(
        "Figure 6 — time shares in SPDK perf inside SGX (TEE-Perf)",
        ["symbol", "unoptimized", "optimized", "paper_unopt"],
    )
    shares = {}
    for name, paper in (("getpid", "~72%"), ("rdtsc", "~20%")):
        shares[name] = (top.share(name), bottom.share(name))
        table.add_row(
            name,
            f"{shares[name][0]:.1%}",
            f"{shares[name][1]:.1%}",
            paper,
        )
    emit("fig6_spdk_shares.txt", table.render())

    getpid_before, getpid_after = shares["getpid"]
    rdtsc_before, rdtsc_after = shares["rdtsc"]
    assert getpid_before == pytest.approx(0.72, abs=0.08)
    assert rdtsc_before == pytest.approx(0.20, abs=0.05)
    assert getpid_after < 0.03
    assert rdtsc_after < 0.05
    # The figure's characteristic stacks exist in the folded output.
    folded_top = top.to_folded()
    assert (
        "work_fn;check_io;qpair_process_completions;"
        "transport_qpair_process_completions;"
        "pcie_qpair_process_completions" in folded_top
    )
    assert "allocate_request;getpid" in folded_top
    # The init tower (bottom-left of the figure) is present too.
    assert "main;env_init;eal_init;eal_memory_init" in folded_top


def test_figure6_runtime_benchmark(benchmark):
    def run():
        perf, _, result, _ = profile_spdk_perf(optimized=False, ops=300)
        perf.uninstrument()
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
