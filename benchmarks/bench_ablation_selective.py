"""Ablation D — selective code profiling (§II-C).

"...by selecting parts of the code, where our tool injects the
measurements it is possible to only measure parts of the application.
Therefore, we provide a systematic knob to reduce the log size..."

Profiles string_match three ways: everything instrumented, only the
coarse map/reduce layer (the per-key kernel excluded), and tracing
dynamically disabled — reporting events logged, log bytes and runtime.
"""

import pytest

from repro.api import TEEPerf
from repro.core import ENTRY_SIZE
from repro.fex import ResultTable
from repro.machine import Machine
from repro.phoenix import StringMatch
from repro.tee import SGX_V1

PARAMS = {"n_keys": 20_000}
COARSE = ("string_match", "sm_map", "sm_reduce")


def profiled_run(select=None, active=True):
    machine = Machine(cores=8)
    perf = TEEPerf.simulated(
        platform=SGX_V1, machine=machine, select=select, name="sm"
    )
    workload = StringMatch(machine, perf.env, seed=1, **PARAMS)
    perf.compile_instance(workload)

    def entry():
        if not active:
            perf.pause()
        return workload.run()

    perf.record(entry)
    events = perf.events_recorded()
    return machine.elapsed_cycles(), events, events * ENTRY_SIZE


def test_selective_profiling(emit, benchmark):
    def collect():
        return {
            "full instrumentation": profiled_run(),
            "selective (map level)": profiled_run(
                select=lambda name: name in COARSE
            ),
            "tracing deactivated": profiled_run(active=False),
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation D — selective profiling of string_match (SGX)",
        ["configuration", "cycles", "events", "log bytes"],
    )
    for name, (cycles, events, log_bytes) in results.items():
        table.add_row(name, cycles, events, log_bytes)
    emit("ablation_selective.txt", table.render())

    full = results["full instrumentation"]
    coarse = results["selective (map level)"]
    off = results["tracing deactivated"]
    # The per-key kernel dominates the event count: cutting it shrinks
    # the log by orders of magnitude and most of the overhead with it.
    assert coarse[1] < full[1] / 100
    assert coarse[0] < full[0] * 0.35
    assert off[1] == 0
    assert off[0] < coarse[0]
    # Selective profiling still captured the coarse structure.
    assert coarse[1] >= 2 * len(COARSE)
