"""Crash-recovery benchmark: the fault matrix and salvage throughput.

Three measurements, mirroring docs/log-format.md's recovery contract:

* **fault matrix** — a :class:`~repro.faults.CrashingWriter` dies at
  every commit phase and at a sweep of crash points; recovery must
  bring back **100%** of the CRC-sealed segments every single time
  (the hard floor this benchmark exits non-zero on);
* **salvage throughput** — MB/s through :func:`recover_log` for a
  truncated sealed image and a flipped-byte image (CRC sweep cost
  included), so regressions in the salvage path are visible;
* **sealing overhead** — batched write path with and without the CRC
  seal journal; sealed recording must keep at least
  :data:`SEAL_FLOOR` of the unsealed throughput.

The measurement cores live in :mod:`repro.bench.workloads.recovery`,
shared with the suite's ``recovery_matrix`` and ``seal_overhead``
benchmarks (``python -m repro.bench``), which add repetitions and
CI-based gates.  Results land in ``benchmarks/out/BENCH_recovery.json``;
CI runs ``--quick`` as the recovery-smoke job.
"""

import argparse
import json
import pathlib
import sys

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.bench.workloads.recovery import (
    MATRIX_FLOOR,
    SEAL_FLOOR,
    bench_fault_matrix,
    bench_salvage,
    bench_seal_overhead,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Crash-recovery fault matrix and salvage benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer entries, fewer repeats",
    )
    args = parser.parse_args(argv)

    if args.quick:
        crash_points, salvage_entries, write_events, repeats = 4, 65_536, 50_000, 3
    else:
        crash_points, salvage_entries, write_events, repeats = 8, 262_144, 200_000, 5

    matrix = bench_fault_matrix(block=16, crash_points=crash_points)
    salvage = bench_salvage(salvage_entries, block=256, repeats=repeats)
    overhead = bench_seal_overhead(write_events, repeats)

    payload = {
        "benchmark": "recovery",
        "quick": args.quick,
        "fault_matrix": matrix,
        "salvage": salvage,
        "seal_overhead": overhead,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "BENCH_recovery.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"matrix : {matrix['crash_runs']} crashes, "
        f"{matrix['segments_recovered']}/{matrix['segments_sealed']} "
        f"sealed segments recovered "
        f"({matrix['recovered_fraction']:.0%}, floor "
        f"{MATRIX_FLOOR:.0%})"
    )
    for name, row in salvage.items():
        print(
            f"salvage: {name:<9} {row['mb_per_sec']:>8.1f} MB/s, "
            f"{row['entries_salvaged']:,} salvaged / "
            f"{row['entries_quarantined']:,} quarantined "
            f"({row['crc_failures']} CRC failures)"
        )
    print(
        f"sealing: {overhead['unsealed_events_per_sec']:>12,.0f} ev/s "
        f"unsealed vs {overhead['sealed_events_per_sec']:>12,.0f} "
        f"sealed -> {overhead['retained_fraction']:.2f}x retained "
        f"(floor {SEAL_FLOOR}x)"
    )
    print(f"wrote {out}")

    failed = []
    if matrix["recovered_fraction"] < MATRIX_FLOOR:
        failed.append(
            f"fault matrix recovered "
            f"{matrix['recovered_fraction']:.2%} < {MATRIX_FLOOR:.0%}"
        )
    if overhead["retained_fraction"] < SEAL_FLOOR:
        failed.append(
            f"sealed write path retained "
            f"{overhead['retained_fraction']:.2f}x < {SEAL_FLOOR}x"
        )
    if failed:
        for reason in failed:
            print(f"FLOOR MISSED: {reason}", file=sys.stderr)
        return 1
    return 0


def test_fault_matrix_floor():
    """The in-tree quick run: the 100% floor enforced under pytest too,
    and the JSON artifact refreshed."""
    assert main(["--quick"]) == 0
    payload = json.loads((OUT_DIR / "BENCH_recovery.json").read_text())
    assert payload["fault_matrix"]["recovered_fraction"] == 1.0


if __name__ == "__main__":
    sys.exit(main())
