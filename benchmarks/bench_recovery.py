"""Crash-recovery benchmark: the fault matrix and salvage throughput.

Three measurements, mirroring docs/log-format.md's recovery contract:

* **fault matrix** — a :class:`~repro.faults.CrashingWriter` dies at
  every commit phase and at a sweep of crash points; recovery must
  bring back **100%** of the CRC-sealed segments every single time
  (the hard floor this benchmark exits non-zero on);
* **salvage throughput** — MB/s through :func:`recover_log` for a
  truncated sealed image and a flipped-byte image (CRC sweep cost
  included), so regressions in the salvage path are visible;
* **sealing overhead** — batched write path with and without the CRC
  seal journal; sealed recording must keep at least
  :data:`SEAL_FLOOR` of the unsealed throughput.

Results land in ``benchmarks/out/BENCH_recovery.json``; CI runs
``--quick`` as the recovery-smoke job.
"""

import argparse
import json
import pathlib
import sys
import time

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.api import SharedLog, recover_log
from repro.core import KIND_CALL, ThreadLogWriter
from repro.core.log import HEADER_SIZE
from repro.faults import CRASH_PHASES, CrashingWriter, FaultInjector, \
    InjectedCrash, crashed_snapshot

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Hard floor: fraction of sealed segments recovered across the whole
#: fault matrix.  This is the paper-level promise — a committed,
#: CRC-verified block survives any crash — so the floor is 1.0.
MATRIX_FLOOR = 1.0

#: Sealed recording must retain at least this fraction of the
#: unsealed batched write throughput (CRC32 per committed block).
SEAL_FLOOR = 0.5


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_fault_matrix(block, crash_points):
    """Every phase x every crash point: recovered/sealed must be 1.0."""
    runs = 0
    segments_sealed = segments_recovered = 0
    quarantined_reported = quarantined_counted = 0
    for phase in CRASH_PHASES:
        for crash_flush in range(1, crash_points + 1):
            capacity = block * (crash_points + 2)
            log = SharedLog.create(capacity, sealed=True)
            writer = CrashingWriter(
                log, block=block, phase=phase, crash_flush=crash_flush
            )
            try:
                for i in range(block * (crash_points + 1)):
                    writer.append(KIND_CALL, i, 0x400000, 1)
                writer.flush()
            except InjectedCrash:
                pass
            assert writer.crashed
            _, report = recover_log(crashed_snapshot(log))
            runs += 1
            segments_sealed += report.segments_sealed
            segments_recovered += report.segments_recovered
            quarantined_reported += len(report.quarantined)
            quarantined_counted += report.entries_quarantined
            if report.entries_quarantined != sum(
                q.count for q in report.quarantined
            ):
                raise AssertionError(
                    f"silent drop at phase={phase} flush={crash_flush}"
                )
    return {
        "crash_runs": runs,
        "phases": list(CRASH_PHASES),
        "segments_sealed": segments_sealed,
        "segments_recovered": segments_recovered,
        "recovered_fraction": (
            segments_recovered / segments_sealed if segments_sealed else 1.0
        ),
        "entries_quarantined": quarantined_counted,
        "quarantined_ranges": quarantined_reported,
        "floor": MATRIX_FLOOR,
    }


def _sealed_image(n_entries, block):
    log = SharedLog.create(n_entries, sealed=True)
    with ThreadLogWriter(log, block=block) as writer:
        for i in range(n_entries):
            writer.append(KIND_CALL, i, 0x400000 + i, 1 + i % 4)
    log._store_tail()
    log.seal_remainder()
    return log.to_bytes(), log.entry_size


def bench_salvage(n_entries, block, repeats):
    """MB/s through recover_log for truncated and flipped images."""
    data, entry_size = _sealed_image(n_entries, block)
    truncated = data[: HEADER_SIZE + (n_entries * 3 // 4) * entry_size + 5]
    flipped, _ = FaultInjector(7).flip(data, n=8, lo=HEADER_SIZE)

    results = {}
    for name, image in (("truncated", truncated), ("flipped", flipped)):
        sink = []

        def salvage(image=image):
            sink.append(recover_log(image)[1])

        elapsed = _best_of(salvage, repeats)
        report = sink[-1]
        results[name] = {
            "image_bytes": len(image),
            "mb_per_sec": len(image) / elapsed / 1e6,
            "entries_salvaged": report.entries_salvaged,
            "entries_quarantined": report.entries_quarantined,
            "crc_failures": report.crc_failures,
            "salvaged_fraction": report.entries_salvaged / n_entries,
        }
    return results


def bench_seal_overhead(n_events, repeats):
    """events/sec, batched writer: sealed vs unsealed recording."""

    def run(sealed):
        def body():
            log = SharedLog.create(n_events, sealed=sealed)
            with ThreadLogWriter(log) as writer:
                append = writer.append
                for i in range(n_events):
                    append(KIND_CALL, i, 0x400000, 7)
            log._store_tail()
            if sealed:
                log.seal_remainder()

        return body

    t_plain = _best_of(run(False), repeats)
    t_sealed = _best_of(run(True), repeats)
    return {
        "events": n_events,
        "unsealed_events_per_sec": n_events / t_plain,
        "sealed_events_per_sec": n_events / t_sealed,
        "retained_fraction": t_plain / t_sealed,
        "floor": SEAL_FLOOR,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Crash-recovery fault matrix and salvage benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer entries, fewer repeats",
    )
    args = parser.parse_args(argv)

    if args.quick:
        crash_points, salvage_entries, write_events, repeats = 4, 65_536, 50_000, 3
    else:
        crash_points, salvage_entries, write_events, repeats = 8, 262_144, 200_000, 5

    matrix = bench_fault_matrix(block=16, crash_points=crash_points)
    salvage = bench_salvage(salvage_entries, block=256, repeats=repeats)
    overhead = bench_seal_overhead(write_events, repeats)

    payload = {
        "benchmark": "recovery",
        "quick": args.quick,
        "fault_matrix": matrix,
        "salvage": salvage,
        "seal_overhead": overhead,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "BENCH_recovery.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"matrix : {matrix['crash_runs']} crashes, "
        f"{matrix['segments_recovered']}/{matrix['segments_sealed']} "
        f"sealed segments recovered "
        f"({matrix['recovered_fraction']:.0%}, floor "
        f"{MATRIX_FLOOR:.0%})"
    )
    for name, row in salvage.items():
        print(
            f"salvage: {name:<9} {row['mb_per_sec']:>8.1f} MB/s, "
            f"{row['entries_salvaged']:,} salvaged / "
            f"{row['entries_quarantined']:,} quarantined "
            f"({row['crc_failures']} CRC failures)"
        )
    print(
        f"sealing: {overhead['unsealed_events_per_sec']:>12,.0f} ev/s "
        f"unsealed vs {overhead['sealed_events_per_sec']:>12,.0f} "
        f"sealed -> {overhead['retained_fraction']:.2f}x retained "
        f"(floor {SEAL_FLOOR}x)"
    )
    print(f"wrote {out}")

    failed = []
    if matrix["recovered_fraction"] < MATRIX_FLOOR:
        failed.append(
            f"fault matrix recovered "
            f"{matrix['recovered_fraction']:.2%} < {MATRIX_FLOOR:.0%}"
        )
    if overhead["retained_fraction"] < SEAL_FLOOR:
        failed.append(
            f"sealed write path retained "
            f"{overhead['retained_fraction']:.2f}x < {SEAL_FLOOR}x"
        )
    if failed:
        for reason in failed:
            print(f"FLOOR MISSED: {reason}", file=sys.stderr)
        return 1
    return 0


def test_fault_matrix_floor():
    """The in-tree quick run: the 100% floor enforced under pytest too,
    and the JSON artifact refreshed."""
    assert main(["--quick"]) == 0
    payload = json.loads((OUT_DIR / "BENCH_recovery.json").read_text())
    assert payload["fault_matrix"]["recovered_fraction"] == 1.0


if __name__ == "__main__":
    sys.exit(main())
