"""Ablation G — SCONE syscall modes (the paper's runtime substrate).

The Phoenix measurements run "inside the Intel SGX enclave using
SCONE".  SCONE's signature mechanism is asynchronous system calls:
instead of one world switch per syscall, requests flow through shared
queues served by host threads — an order of magnitude cheaper per call
at the price of dedicated host cores.  This bench quantifies that
trade-off on a syscall-heavy workload and shows where each mode wins.
"""

import pytest

from repro.fex import ResultTable
from repro.machine import Machine
from repro.tee import ASYNC, SGX_V1, SYNC, SconeShim, make_env

SYSCALLS = 2_000
COMPUTE_PER_CALL = 3_000.0


def run_mode(mode, cores=8, workers=6):
    """Several enclave threads doing compute + a syscall per round."""
    machine = Machine(cores=cores)
    env = make_env(machine, SGX_V1)

    def worker(shim):
        for _ in range(SYSCALLS // workers):
            env.compute(COMPUTE_PER_CALL)
            shim.syscall("write")

    def main():
        with SconeShim(env, mode=mode) as shim:
            threads = [
                machine.spawn(worker, shim, name=f"w{i}")
                for i in range(workers)
            ]
            for thread in threads:
                thread.join()

    machine.run(main)
    return machine.elapsed_cycles()


def test_scone_modes(emit, benchmark):
    def collect():
        return {
            "synchronous ocalls": run_mode(SYNC),
            "asynchronous queues": run_mode(ASYNC),
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    sync_cycles = results["synchronous ocalls"]
    async_cycles = results["asynchronous queues"]
    table = ResultTable(
        "Ablation G — SCONE syscall forwarding "
        f"({SYSCALLS} syscalls across 6 enclave threads)",
        ["mode", "cycles", "vs sync"],
    )
    for name, cycles in results.items():
        table.add_row(name, cycles, f"{cycles / sync_cycles:.2f}x")
    emit("ablation_scone_modes.txt", table.render())

    # Async is several times faster on a syscall-heavy mix, despite
    # sacrificing a host core to the syscall threads.
    assert sync_cycles > 3 * async_cycles


def test_async_costs_a_core_on_saturated_machine(benchmark):
    """With exactly as many app threads as cores, the async syscall
    worker's stolen core shows up as processor-sharing slowdown."""

    def collect():
        # 8 workers on 8 cores: async mode reserves 1 core -> 8/7.
        return run_mode(ASYNC, cores=8, workers=8), run_mode(
            ASYNC, cores=9, workers=8
        )

    saturated, roomy = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert saturated > roomy
