"""Ablation H — SPDK multi-queue scaling and latency percentiles.

SPDK's design point is one poller core per queue pair, scaling IOPS
linearly until the device saturates.  This bench sweeps poller counts
on the simulated P3700 (native, optimised build) and reports aggregate
IOPS plus latency percentiles — showing the CPU-bound region, the
device ceiling (~400k 4-KiB IOPS) and the queueing latency that builds
up at saturation.
"""

import pytest

from repro.fex import ResultTable
from repro.spdk import run_spdk_perf_multi
from repro.tee import NATIVE

WORKERS = (1, 2, 4, 6)
OPS_PER_WORKER = 1_200
DEVICE_CEILING_IOPS = 3.6e9 / 9_000  # service_cycles = 9k


def test_multiqueue_scaling(emit, benchmark):
    def collect():
        return {
            n: run_spdk_perf_multi(
                NATIVE, workers=n, ops_per_worker=OPS_PER_WORKER
            )
            for n in WORKERS
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation H — SPDK poller scaling (native, 4 KiB, 80% reads)",
        ["pollers", "IOPS", "p50 lat (us)", "p99 lat (us)"],
    )
    for n, result in results.items():
        table.add_row(
            n,
            result.iops,
            result.latency_percentile_us(50),
            result.latency_percentile_us(99),
        )
    emit("ablation_spdk_scaling.txt", table.render())

    # Near-linear scaling while CPU-bound...
    assert results[2].iops > 1.7 * results[1].iops
    # ...then the device's service rate caps the aggregate.
    assert results[4].iops == pytest.approx(DEVICE_CEILING_IOPS, rel=0.12)
    assert results[6].iops == pytest.approx(DEVICE_CEILING_IOPS, rel=0.12)
    # Past saturation, queueing pushes tail latency up.
    assert (
        results[6].latency_percentile_us(99)
        > results[1].latency_percentile_us(99)
    )
    # Below saturation, latency is dominated by the 80 us device.
    assert results[1].latency_percentile_us(50) >= 80
