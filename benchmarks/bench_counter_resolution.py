"""Ablation F — software-counter resolution vs accuracy (§II-B).

"this software counter ... provides a fine and accurate enough clock to
be used for measurements.  TEE-Perf does method-level relative
profiling, thus perfectly accurate counters are not necessary."

This bench quantifies that claim: the same workload is profiled with
software counters of coarser and coarser tick granularity, and each
profile's per-method shares are compared against the exact virtual-time
ground truth.
"""

import pytest

from repro.api import TEEPerf
from repro.core import symbol
from repro.core.counter import VirtualCounter
from repro.core.recorder import Recorder
from repro.fex import ResultTable
from repro.machine import Machine
from repro.tee import NATIVE

RESOLUTIONS = (1, 8, 64, 512, 4_096, 32_768)
TRUTH = {"app::Short()": 0.25, "app::Long()": 0.75}
ROUNDS = 400


class TwoCosts:
    def __init__(self, env):
        self.env = env

    @symbol("app::Main()")
    def main(self):
        for _ in range(ROUNDS):
            self.short()
            self.long()

    @symbol("app::Short()")
    def short(self):
        self.env.compute(2_500)

    @symbol("app::Long()")
    def long(self):
        self.env.compute(7_500)


def profile_with_resolution(resolution):
    machine = Machine(cores=8)
    perf = TEEPerf.simulated(platform=NATIVE, machine=machine, name="res")
    perf._recorder_factory = lambda program: Recorder(
        machine,
        perf.env,
        program,
        counter=VirtualCounter(machine, resolution_cycles=resolution),
    )
    app = TwoCosts(perf.env)
    perf.compile_instance(app)
    perf.record(app.main)
    analysis = perf.analyze()
    short = analysis.method("app::Short()").exclusive
    long_ = analysis.method("app::Long()").exclusive
    total = short + long_
    shares = {
        "app::Short()": short / total if total else 0.0,
        "app::Long()": long_ / total if total else 0.0,
    }
    error = max(abs(shares[k] - TRUTH[k]) for k in TRUTH)
    return shares, error


def test_counter_resolution_accuracy(emit, benchmark):
    def collect():
        return {
            res: profile_with_resolution(res) for res in RESOLUTIONS
        }

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation F — counter granularity vs profile accuracy "
        "(truth: Short 25% / Long 75%)",
        ["resolution (cycles/tick)", "Short share", "Long share",
         "max error"],
    )
    for res, (shares, error) in results.items():
        table.add_row(
            res,
            f"{shares['app::Short()']:.2%}",
            f"{shares['app::Long()']:.2%}",
            f"{error:.2%}",
        )
    emit("ablation_counter_resolution.txt", table.render())

    # Fine counters are near-exact.
    assert results[1][1] < 0.01
    assert results[8][1] < 0.02
    # Accuracy survives surprisingly coarse ticks (the paper's claim) —
    # a 512-cycle tick still classifies a 2.5k vs 7.5k split well.
    assert results[512][1] < 0.05
    # But a tick bigger than the methods themselves destroys the
    # profile, which is why the counter must be "fine enough".
    assert results[32_768][1] > results[8][1]
