"""Figure 5: TEE-Perf flame graph of RocksDB db_bench inside SGX.

Runs db_bench's ReadRandomWriteRandom (80 % reads) through TEE-Perf in
the SGX v1 model, prints the analyzer's method table, writes the flame
graph (SVG + folded stacks), and asserts the paper's finding: the run
"spent most of its time in getting a current timestamp
(rocksdb::Stats::Now) and generating random numbers
(rocksdb::RandomGenerator::RandomGenerator)".
"""

import pytest

from repro.api import FlameGraph
from repro.kvstore import DB, DbBench
from repro.kvstore.profiled import profile_db_bench
from repro.machine import Machine
from repro.tee import SGX_V1, make_env

BENCH_PARAMS = dict(
    num_keys=500,
    ops_per_thread=400,
    threads=4,
    generator_bytes=256 * 1024,
)


def collect_figure5():
    perf, bench, analysis = profile_db_bench(platform=SGX_V1, **BENCH_PARAMS)
    perf.uninstrument()
    return bench, analysis


def test_figure5_flame_graph(emit, out_dir, benchmark):
    bench, analysis = benchmark.pedantic(
        collect_figure5, rounds=1, iterations=1
    )
    graph = FlameGraph.from_analysis(
        analysis, title="Figure 5 — RocksDB db_bench in SGX (TEE-Perf)"
    )
    graph.write_svg(str(out_dir / "fig5_rocksdb_flamegraph.svg"))
    graph.write_folded(str(out_dir / "fig5_rocksdb.folded"))

    now_share = graph.share("rocksdb::Stats::Now()")
    gen_share = graph.share("rocksdb::RandomGenerator::RandomGenerator()")
    lines = [
        "Figure 5 — RocksDB db_bench (readrandomwriterandom, 80% reads) "
        "profiled by TEE-Perf inside SGX",
        "",
        analysis.report(top=12),
        "",
        f"flame-graph share rocksdb::Stats::Now():                  "
        f"{now_share:6.1%}",
        f"flame-graph share rocksdb::RandomGenerator::RandomGenerator(): "
        f"{gen_share:6.1%}",
        "",
        bench.report(),
    ]
    emit("fig5_rocksdb_profile.txt", "\n".join(lines))

    # The paper's two culprits dominate, in that order.
    methods = analysis.methods()
    assert methods[0].method == "rocksdb::Stats::Now()"
    assert now_share > 0.35
    assert gen_share > 0.10
    assert now_share + gen_share > 0.5
    # The stack nests through the benchmark loop, as the figure shows.
    folded = graph.to_folded()
    assert (
        "rocksdb::StartThreadWrapper(void*);"
        "rocksdb::Benchmark::ThreadBody(void*);"
        "rocksdb::Benchmark::ReadRandomWriteRandom(ThreadState*)" in folded
    )


def test_figure5_runtime_benchmark(benchmark):
    """pytest-benchmark target: one uninstrumented db_bench run."""

    def run():
        machine = Machine(cores=8)
        env = make_env(machine, SGX_V1)
        db = DB(env)
        bench = DbBench(machine, env, db, **BENCH_PARAMS)

        def main():
            bench.fill_random()
            return bench.run()

        machine.run(main)
        return machine.elapsed_cycles()

    benchmark.pedantic(run, rounds=1, iterations=1)
