"""Figure 4: overhead of TEE-Perf relative to perf, Phoenix in SGX.

Regenerates the five bars and the mean of the paper's Figure 4: for
each Phoenix benchmark running inside the SGX v1 model, the runtime
under TEE-Perf divided by the runtime under the perf model, geometric
mean over ``REPRO_RUNS`` seeded runs.

Paper values: string_match 5.7x, linear_regression 0.92x (TEE-Perf
~8 % *faster* than perf), mean 1.9x.
"""

import pytest

from repro.bench import runs
from repro.fex import ResultTable, geomean, repeat
from repro.phoenix import (
    FIGURE4_WORKLOADS,
    StringMatch,
    run_perf,
    run_teeperf,
)
from repro.tee import SGX_V1

PAPER = {
    "matrix_multiply": None,  # bar not labelled numerically in the paper
    "string_match": 5.7,
    "word_count": None,
    "linear_regression": 0.92,
    "histogram": None,
    "mean": 1.9,
}


def ratio_for(workload_cls, seed):
    tee = run_teeperf(workload_cls, platform=SGX_V1, seed=seed)
    perf = run_perf(workload_cls, platform=SGX_V1, seed=seed)
    return tee.elapsed_cycles / perf.elapsed_cycles


def collect_figure4():
    results = {}
    for cls in FIGURE4_WORKLOADS:
        results[cls.NAME] = repeat(
            lambda i, cls=cls: ratio_for(cls, seed=i + 1), runs()
        )
    return results


def test_figure4_table(emit, benchmark):
    figure4 = benchmark.pedantic(collect_figure4, rounds=1, iterations=1)
    table = ResultTable(
        "Figure 4 — relative overhead of TEE-Perf compared to perf "
        "(Phoenix suite, Intel SGX model)",
        ["benchmark", "overhead_vs_perf", "paper"],
    )
    for name, measurement in figure4.items():
        paper = PAPER.get(name)
        table.add_row(name, measurement.geomean, paper if paper else "-")
    mean = geomean([m.geomean for m in figure4.values()])
    table.add_row("geometric mean", mean, PAPER["mean"])
    emit("fig4_phoenix_overhead.txt", table.render())

    # Shape assertions (who wins, by roughly what factor).
    ratios = {name: m.geomean for name, m in figure4.items()}
    assert ratios["string_match"] == pytest.approx(5.7, rel=0.25)
    assert ratios["linear_regression"] < 1.0  # TEE-Perf beats perf here
    assert ratios["linear_regression"] == pytest.approx(0.92, rel=0.08)
    assert mean == pytest.approx(1.9, rel=0.2)
    # string_match is the worst case; linear_regression the best.
    assert max(ratios, key=ratios.get) == "string_match"
    assert min(ratios, key=ratios.get) == "linear_regression"
    # All other benchmarks pay a moderate premium over perf.
    for name in ("matrix_multiply", "word_count", "histogram"):
        assert 1.0 < ratios[name] < 3.5


def test_figure4_runtime_benchmark(benchmark):
    """pytest-benchmark target: one profiled string_match run."""
    benchmark.pedantic(
        lambda: run_teeperf(StringMatch, platform=SGX_V1, seed=1),
        rounds=1,
        iterations=1,
    )
