"""Ablation B — the EPC paging cliff (§I).

"...the cost of accessing memory beyond the secure physical memory
region incurs very high performance overheads due to secure paging ...
can slow down application performance up to 2000x."

This bench sweeps the working-set size of a random-access scan across
the SGX v1 EPC boundary (93.5 MiB usable) and reports the slowdown
relative to native; SEV (whole-DRAM encryption, no EPC) is the
control that shows the cliff is the EPC's, not the TEE's.
"""

import pytest

from repro.fex import ResultTable
from repro.machine import Machine
from repro.tee import NATIVE, SEV, SGX_V1, make_env

MIB = 1024 * 1024
WORKING_SETS_MIB = (16, 64, 96, 128, 256, 512)
TOUCH_BYTES = 2 * MIB


def scan_cycles(platform, working_set_mib):
    machine = Machine(cores=8)
    env = make_env(machine, platform)

    def main():
        env.alloc(working_set_mib * MIB)
        env.mem_read(TOUCH_BYTES, random=True)

    machine.run(main)
    return machine.elapsed_cycles()


def test_epc_paging_cliff(emit, benchmark):
    def collect():
        rows = []
        for ws in WORKING_SETS_MIB:
            native = scan_cycles(NATIVE, ws)
            sgx = scan_cycles(SGX_V1, ws)
            sev = scan_cycles(SEV, ws)
            rows.append((ws, sgx / native, sev / native))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = ResultTable(
        "Ablation B — random-access slowdown vs native "
        "(SGX v1 EPC = 93.5 MiB)",
        ["working set (MiB)", "SGX v1 slowdown", "SEV slowdown"],
    )
    for ws, sgx, sev in rows:
        table.add_row(ws, f"{sgx:,.1f}x", f"{sev:,.1f}x")
    emit("ablation_epc_paging.txt", table.render())

    by_ws = {ws: (sgx, sev) for ws, sgx, sev in rows}
    # Inside the EPC: just the MEE factor.
    assert by_ws[16][0] == pytest.approx(SGX_V1.mee_factor, rel=0.05)
    assert by_ws[64][0] < 4
    # Past the EPC: orders of magnitude ("up to 2000x" in the paper).
    assert by_ws[128][0] > 15
    assert by_ws[512][0] > 100
    # The cliff is monotone in memory pressure.
    slowdowns = [sgx for _, sgx, _ in rows]
    assert slowdowns == sorted(slowdowns)
    # SEV never pages: flat, modest overhead at every size.
    assert all(sev < 2 for _, _, sev in rows)
