"""Monitor overhead — the always-on collection must stay nearly free.

Cloudprofiler's MooBench lesson: continuous collection is only
credible when its own overhead is benchmarked.  This measures the
wall-clock cost a polling :class:`repro.monitor.Monitor` imposes on a
real (unsimulated) Python workload sharing the interpreter: the
sampler thread wakes every ``INTERVAL`` seconds, polls a realistic
sampler set (recorder-shaped counters, kvstore tickers, an ad-hoc
callback source), appends series points and evaluates an alert rule —
while the workload burns CPU under the GIL.

The acceptance bar is < 5% overhead; the artefact
(``benchmarks/out/BENCH_monitor.json``) seeds the bench trajectory so
regressions in the sampling pass show up as a number, not a feeling.
"""

import json
import statistics
import time

from repro.fex import ResultTable
from repro.monitor import (
    AlertRule,
    CallbackSampler,
    KVStoreSampler,
    Monitor,
    PipelineSampler,
)
from repro.core import PipelineStats

from conftest import runs

INTERVAL = 0.01  # seconds between sampling passes
WORK_LOOPS = 120_000
OVERHEAD_BUDGET = 0.05  # the acceptance criterion: < 5%


def workload():
    """A GIL-bound pure-Python burn, ~tens of milliseconds."""
    acc = 0
    for i in range(WORK_LOOPS):
        acc += (i * 2654435761) & 0xFFFF
    return acc


class _FakeTickers:
    """kvstore-shaped source: a tickers dict the sampler reads."""

    def __init__(self):
        self.tickers = {f"ticker.{i}": i * 7 for i in range(12)}


def timed(fn, repeats):
    """Median of `repeats` timings of ``fn`` (median resists the odd
    scheduler hiccup better than min or mean for this comparison)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def build_monitor():
    monitor = Monitor(interval=INTERVAL)
    monitor.add_rule(
        AlertRule("drops", "pipeline_entries_dropped_total", ">", 1e12)
    )
    monitor.attach(KVStoreSampler(_FakeTickers()))
    monitor.attach(
        PipelineSampler(PipelineStats(entries_ingested=1, counter_span=10))
    )
    state = {"n": 0}

    def poll_source():
        state["n"] += 1
        return {"polls": state["n"], "depth": state["n"] % 7}

    monitor.attach(CallbackSampler("app", poll_source))
    return monitor


def test_monitor_overhead(emit, out_dir, benchmark):
    repeats = max(5, runs() * 3)
    workload()  # warm up the bytecode and the branch predictors

    def measure():
        baseline = timed(workload, repeats)
        monitor = build_monitor()
        with monitor:
            monitored = timed(workload, repeats)
        samples = int(monitor.registry.value("monitor_samples_total", 0))
        pass_p95 = monitor.registry.get(
            "monitor_sample_duration_seconds"
        ).percentile(95)
        return baseline, monitored, samples, pass_p95

    baseline, monitored, samples, pass_p95 = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead = monitored / baseline - 1.0

    table = ResultTable(
        f"Monitor overhead — {repeats} reps, {INTERVAL * 1000:.0f} ms "
        "sampling interval",
        ["configuration", "median s", "overhead %"],
    )
    table.add_row("workload alone", f"{baseline:.4f}", "-")
    table.add_row(
        "workload + monitor", f"{monitored:.4f}", f"{100 * overhead:+.2f}"
    )
    emit("BENCH_monitor.txt", table.render())

    payload = {
        "benchmark": "monitor_overhead",
        "interval_seconds": INTERVAL,
        "repeats": repeats,
        "baseline_seconds": baseline,
        "monitored_seconds": monitored,
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
        "sampling_passes": samples,
        "sample_pass_p95_seconds": pass_p95,
    }
    (out_dir / "BENCH_monitor.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The monitor really ran, and cheaply: passes happened, each pass
    # far under the interval, and the workload barely noticed.
    assert samples >= 1
    assert pass_p95 < INTERVAL
    assert overhead < OVERHEAD_BUDGET, (
        f"monitor overhead {100 * overhead:.2f}% exceeds "
        f"{100 * OVERHEAD_BUDGET:.0f}% budget"
    )
