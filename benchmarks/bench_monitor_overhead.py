"""Monitor overhead — the always-on collection must stay nearly free.

Cloudprofiler's MooBench lesson: continuous collection is only
credible when its own overhead is benchmarked.  The measurement core
(workload, sampler set, paired baseline-vs-monitored timing) lives in
:mod:`repro.bench.workloads.monitor`, shared with the suite's
``monitor_overhead`` benchmark (``python -m repro.bench``), which adds
repetitions and a CI-based ceiling gate.

The acceptance bar is < 5% overhead; the artefact
(``benchmarks/out/BENCH_monitor.json``) seeds the bench trajectory so
regressions in the sampling pass show up as a number, not a feeling.
"""

import json

from repro.bench import runs
from repro.bench.workloads.monitor import (
    INTERVAL,
    OVERHEAD_BUDGET,
    WORK_LOOPS,
    make_workload,
    overhead_sample,
)
from repro.fex import ResultTable

workload = make_workload(WORK_LOOPS)


def test_monitor_overhead(emit, out_dir, benchmark):
    repeats = max(5, runs() * 3)
    workload()  # warm up the bytecode and the branch predictors

    baseline, monitored, samples, pass_p95 = benchmark.pedantic(
        lambda: overhead_sample(workload, repeats), rounds=1, iterations=1
    )
    overhead = monitored / baseline - 1.0

    table = ResultTable(
        f"Monitor overhead — {repeats} reps, {INTERVAL * 1000:.0f} ms "
        "sampling interval",
        ["configuration", "median s", "overhead %"],
    )
    table.add_row("workload alone", f"{baseline:.4f}", "-")
    table.add_row(
        "workload + monitor", f"{monitored:.4f}", f"{100 * overhead:+.2f}"
    )
    emit("BENCH_monitor.txt", table.render())

    payload = {
        "benchmark": "monitor_overhead",
        "interval_seconds": INTERVAL,
        "repeats": repeats,
        "baseline_seconds": baseline,
        "monitored_seconds": monitored,
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
        "sampling_passes": samples,
        "sample_pass_p95_seconds": pass_p95,
    }
    (out_dir / "BENCH_monitor.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # The monitor really ran, and cheaply: passes happened, each pass
    # far under the interval, and the workload barely noticed.
    assert samples >= 1
    assert pass_p95 < INTERVAL
    assert overhead < OVERHEAD_BUDGET, (
        f"monitor overhead {100 * overhead:.2f}% exceeds "
        f"{100 * OVERHEAD_BUDGET:.0f}% budget"
    )
