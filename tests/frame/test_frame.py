"""Unit tests for the mini dataframe."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frame import Frame, FrameError


@pytest.fixture
def sample():
    return Frame(
        {
            "method": ["get", "put", "get", "scan", "get"],
            "thread": [1, 1, 2, 2, 1],
            "ticks": [10, 40, 12, 100, 8],
        }
    )


def test_len_and_columns(sample):
    assert len(sample) == 5
    assert sample.columns == ["method", "thread", "ticks"]


def test_ragged_columns_rejected():
    with pytest.raises(FrameError):
        Frame({"a": [1, 2], "b": [1]})


def test_non_dict_rejected():
    with pytest.raises(FrameError):
        Frame([("a", [1])])


def test_row_and_rows(sample):
    assert sample.row(0) == {"method": "get", "thread": 1, "ticks": 10}
    assert sample.row(-1)["ticks"] == 8
    assert len(list(sample.rows())) == 5
    with pytest.raises(IndexError):
        sample.row(5)


def test_column_returns_copy(sample):
    col = sample.column("ticks")
    col[0] = 999
    assert sample.column("ticks")[0] == 10


def test_missing_column_mentions_available(sample):
    with pytest.raises(FrameError) as err:
        sample.column("nope")
    assert "method" in str(err.value)


def test_select(sample):
    narrow = sample.select("method", "ticks")
    assert narrow.columns == ["method", "ticks"]
    assert len(narrow) == 5


def test_filter_by_equality(sample):
    gets = sample.filter(method="get")
    assert len(gets) == 3
    assert set(gets.column("thread")) == {1, 2}


def test_filter_by_predicate(sample):
    heavy = sample.filter(lambda r: r["ticks"] > 20)
    assert sorted(heavy.column("method")) == ["put", "scan"]


def test_filter_combined(sample):
    result = sample.filter(lambda r: r["ticks"] < 20, method="get")
    assert len(result) == 3


def test_sort(sample):
    by_ticks = sample.sort("ticks")
    assert by_ticks.column("ticks") == [8, 10, 12, 40, 100]
    desc = sample.sort("ticks", reverse=True)
    assert desc.column("ticks")[0] == 100


def test_sort_is_stable(sample):
    by_thread = sample.sort("thread")
    assert by_thread.column("method")[:3] == ["get", "put", "get"]


def test_head(sample):
    assert len(sample.head(2)) == 2
    assert len(sample.head(100)) == 5


def test_with_column_from_fn(sample):
    doubled = sample.with_column("double", lambda r: r["ticks"] * 2)
    assert doubled.column("double") == [20, 80, 24, 200, 16]
    assert "double" not in sample  # original untouched


def test_with_column_from_list_length_checked(sample):
    with pytest.raises(FrameError):
        sample.with_column("x", [1, 2])


def test_groupby_count(sample):
    counts = sample.groupby("method").count()
    as_map = {r["method"]: r["count"] for r in counts.rows()}
    assert as_map == {"get": 3, "put": 1, "scan": 1}


def test_groupby_agg(sample):
    agg = sample.groupby("thread").agg(
        total=("ticks", sum), worst=("ticks", max)
    )
    by_thread = {r["thread"]: r for r in agg.rows()}
    assert by_thread[1]["total"] == 58
    assert by_thread[2]["worst"] == 100


def test_groupby_multiple_keys(sample):
    agg = sample.groupby("thread", "method").count("n")
    lookup = {(r["thread"], r["method"]): r["n"] for r in agg.rows()}
    assert lookup[(1, "get")] == 2
    assert lookup[(2, "scan")] == 1


def test_reductions(sample):
    assert sample.sum("ticks") == 170
    assert sample.mean("ticks") == pytest.approx(34.0)
    assert sample.min("ticks") == 8
    assert sample.max("ticks") == 100


def test_mean_of_empty_rejected():
    with pytest.raises(FrameError):
        Frame({"a": []}).mean("a")


def test_unique(sample):
    assert sample.unique("method") == ["get", "put", "scan"]


def test_from_records_infers_columns():
    frame = Frame.from_records([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
    assert frame.columns == ["a", "b", "c"]
    assert frame.row(1) == {"a": None, "b": 3, "c": 4}


def test_to_csv_quotes_specials():
    frame = Frame({"name": ['he said "hi"', "a,b"], "v": [1, 2]})
    csv = frame.to_csv()
    assert '"he said ""hi"""' in csv
    assert '"a,b"' in csv


def test_str_renders_table(sample):
    text = str(sample)
    assert "method" in text
    assert "scan" in text


def test_empty_frame_str():
    assert str(Frame({})) == "<empty frame>"


@given(
    values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1)
)
def test_sort_matches_sorted(values):
    frame = Frame({"v": values})
    assert frame.sort("v").column("v") == sorted(values)


@given(
    values=st.lists(st.integers(min_value=0, max_value=5), min_size=1)
)
def test_groupby_counts_partition_rows(values):
    frame = Frame({"v": values})
    counts = frame.groupby("v").count()
    assert counts.sum("count") == len(values)
