"""Tests for the atomic WriteBatch."""

from repro.kvstore import DB, WriteBatch
from repro.machine import Machine
from repro.tee import NATIVE, make_env


def fresh_db(**options):
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    return machine, DB(env, **options)


def test_batch_applies_all_operations():
    machine, db = fresh_db()

    def main():
        batch = WriteBatch()
        batch.put(b"a", b"1").put(b"b", b"2").delete(b"c")
        db.put(b"c", b"doomed")
        db.write(batch)
        return db.get(b"a"), db.get(b"b"), db.get(b"c")

    assert machine.run(main) == (b"1", b"2", None)


def test_batch_sequences_are_consecutive():
    machine, db = fresh_db()

    def main():
        batch = WriteBatch()
        for i in range(5):
            batch.put(b"%d" % i, b"v")
        before = db.seq
        db.write(batch)
        return before, db.seq

    before, after = machine.run(main)
    assert after == before + 5


def test_batch_atomic_under_concurrency():
    machine, db = fresh_db()

    def writer(tag):
        batch = WriteBatch()
        for i in range(20):
            batch.put(b"key-%02d" % i, tag)
        db.write(batch)

    def main():
        threads = [
            machine.spawn(writer, b"A"),
            machine.spawn(writer, b"B"),
        ]
        for t in threads:
            t.join()
        # One batch fully shadows the other: all keys carry one tag.
        values = {db.get(b"key-%02d" % i) for i in range(20)}
        return values

    values = machine.run(main)
    assert values == {b"A"} or values == {b"B"}


def test_batch_snapshot_isolation():
    machine, db = fresh_db()

    def main():
        db.put(b"x", b"old")
        snap = db.snapshot()
        batch = WriteBatch()
        batch.put(b"x", b"new").put(b"y", b"created")
        db.write(batch)
        return (
            db.get(b"x", snapshot=snap),
            db.get(b"y", snapshot=snap),
            db.get(b"x"),
        )

    assert machine.run(main) == (b"old", None, b"new")


def test_batch_survives_crash_via_wal():
    machine, db = fresh_db()

    def main():
        batch = WriteBatch()
        batch.put(b"p", b"1").delete(b"q").put(b"r", b"2")
        db.write(batch)
        crashed = db.crash()
        crashed.recover()
        return crashed.get(b"p"), crashed.get(b"q"), crashed.get(b"r")

    assert machine.run(main) == (b"1", None, b"2")


def test_batch_clear_and_len():
    batch = WriteBatch()
    assert len(batch) == 0
    batch.put(b"a", b"1").delete(b"b")
    assert len(batch) == 2
    batch.clear()
    assert len(batch) == 0


def test_large_batch_triggers_flush():
    machine, db = fresh_db(memtable_bytes=1_000)

    def main():
        batch = WriteBatch()
        for i in range(100):
            batch.put(b"%04d" % i, b"x" * 30)
        db.write(batch)
        return db.table_count(), db.get(b"0000")

    tables, value = machine.run(main)
    assert tables > 0
    assert value == b"x" * 30
