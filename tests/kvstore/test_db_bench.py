"""Tests for db_bench and the profiled Figure-5 run."""

import pytest

from repro.api import FlameGraph
from repro.kvstore import DB, DbBench, Random, RandomGenerator
from repro.kvstore.profiled import profile_db_bench
from repro.machine import Machine
from repro.tee import NATIVE, SGX_V1, make_env

SMALL = dict(
    num_keys=300,
    ops_per_thread=150,
    threads=2,
    generator_bytes=16 * 1024,
)


def test_rocksdb_lcg_reference_values():
    rand = Random(301)
    first = [rand.next() for _ in range(4)]
    # Park-Miller with seed 301: deterministic reference sequence.
    assert first[0] == 301 * 16807
    assert all(0 < v < 2**31 - 1 for v in first)


def test_random_generator_serves_slices():
    machine = Machine()
    env = make_env(machine, NATIVE)

    def main():
        gen = RandomGenerator(env, data_bytes=4_096, value_size=100)
        first = gen.generate()
        second = gen.generate()
        assert len(first) == len(second) == 100
        assert first != second  # different slices
        # Compressible: the data repeats within a piece.
        assert gen.generate(100)[:50] == gen.generate.__self__.data[200:250]
        return len(gen.data)

    assert machine.run(main) >= 4_096


def test_random_generator_size_guard():
    machine = Machine()
    env = make_env(machine, NATIVE)

    def main():
        gen = RandomGenerator(env, data_bytes=1_024, value_size=100)
        with pytest.raises(ValueError):
            gen.generate(2_048)
        return True

    assert machine.run(main)


def test_db_bench_runs_and_counts_ops():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    db = DB(env)
    bench = DbBench(machine, env, db, **SMALL)

    def main():
        bench.fill_random()
        return bench.run()

    merged = machine.run(main)
    assert merged.done == 2 * 150
    stats = db.stats
    assert stats.ticker("keys.read") > 0
    assert stats.ticker("keys.written") > 0
    # ~80/20 split within binomial slack.
    reads = stats.ticker("keys.read")
    assert reads / merged.done == pytest.approx(0.8, abs=0.12)


def test_db_bench_report_mentions_ops():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    db = DB(env)
    bench = DbBench(machine, env, db, **SMALL)

    def main():
        bench.fill_random()
        return bench.run()

    machine.run(main)
    assert "ops/s" in bench.report()
    assert "80% reads" in bench.report()


def test_fill_seq_then_read_workloads():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    db = DB(env)
    bench = DbBench(machine, env, db, num_keys=200, ops_per_thread=100,
                    generator_bytes=8 * 1024)

    def main():
        bench.fill_seq()
        hits = bench.read_random()
        scanned = bench.read_seq()
        return hits, scanned

    hits, scanned = machine.run(main)
    assert hits == 100  # fillseq loaded every key: all reads hit
    assert scanned == 200


def test_overwrite_replaces_values():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    db = DB(env)
    bench = DbBench(machine, env, db, num_keys=50, ops_per_thread=300,
                    generator_bytes=8 * 1024)

    def main():
        bench.fill_seq()
        before = dict(db.scan())
        bench.overwrite()
        after = dict(db.scan())
        return before, after

    before, after = machine.run(main)
    assert set(before) == set(after)  # same keys
    assert any(before[k] != after[k] for k in before)  # new values


def test_invalid_read_pct_rejected():
    machine = Machine()
    env = make_env(machine, NATIVE)
    with pytest.raises(ValueError):
        DbBench(machine, env, DB(env), read_pct=150)


def test_figure5_profile_shape():
    """The paper's finding: Stats::Now and RandomGenerator dominate."""
    perf, bench, analysis = profile_db_bench(
        platform=SGX_V1,
        num_keys=400,
        ops_per_thread=250,
        threads=2,
        generator_bytes=160 * 1024,
    )
    try:
        methods = analysis.methods()
        assert methods[0].method == "rocksdb::Stats::Now()"
        graph = FlameGraph.from_analysis(analysis)
        now_share = graph.share("rocksdb::Stats::Now()")
        gen_share = graph.share(
            "rocksdb::RandomGenerator::RandomGenerator()"
        )
        assert now_share > 0.3
        assert gen_share > 0.1
        # The benchmark loop contains (almost) all worker time; the
        # remainder is the main thread waiting inside Benchmark::Run().
        assert (
            graph.share(
                "rocksdb::Benchmark::ReadRandomWriteRandom(ThreadState*)"
            )
            > 0.6
        )
        # The fill phase was paused out of the log.
        frame = analysis.records_frame()
        assert not len(
            frame.filter(method="rocksdb::Benchmark::FillRandom(ThreadState*)")
        )
    finally:
        perf.uninstrument()


def test_figure5_native_profile_differs():
    """Natively, timestamps are cheap: Stats::Now cannot dominate."""
    perf, _, analysis = profile_db_bench(
        platform=NATIVE,
        num_keys=300,
        ops_per_thread=200,
        threads=2,
        generator_bytes=32 * 1024,
    )
    try:
        graph = FlameGraph.from_analysis(analysis)
        assert graph.share("rocksdb::Stats::Now()") < 0.15
    finally:
        perf.uninstrument()
