"""Unit tests for the write-ahead log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import Entry, WalCorruption, WriteAheadLog
from repro.kvstore.wal import decode_records, encode_record
from repro.machine import Machine
from repro.tee import NATIVE, make_env


def make_wal():
    machine = Machine()
    env = make_env(machine, NATIVE)
    return machine, WriteAheadLog(env)


def test_append_and_replay_roundtrip():
    machine, wal = make_wal()

    def main():
        wal.add_record(Entry.put(b"k1", 1, b"v1"))
        wal.add_record(Entry.delete(b"k2", 2))
        return wal.replay()

    replayed = machine.run(main)
    assert len(replayed) == 2
    assert replayed[0] == Entry.put(b"k1", 1, b"v1")
    assert replayed[1].is_tombstone


def test_truncate_clears_log():
    machine, wal = make_wal()

    def main():
        wal.add_record(Entry.put(b"k", 1, b"v"))
        wal.truncate()
        return wal.replay(), wal.size_bytes()

    replayed, size = machine.run(main)
    assert replayed == []
    assert size == 0


def test_torn_tail_is_silently_dropped():
    machine, wal = make_wal()

    def main():
        wal.add_record(Entry.put(b"k1", 1, b"v1"))
        wal.add_record(Entry.put(b"k2", 2, b"v2"))
        wal.corrupt_tail(3)  # crash mid-append of the second record
        return wal.replay()

    replayed = machine.run(main)
    assert [e.key for e in replayed] == [b"k1"]


def test_mid_log_corruption_raises():
    first = encode_record(Entry.put(b"k1", 1, b"v1"))
    second = encode_record(Entry.put(b"k2", 2, b"v2"))
    corrupted = bytearray(first + second)
    corrupted[21] ^= 0xFF  # flip a key byte inside the first record
    with pytest.raises(WalCorruption):
        list(decode_records(corrupted))


def test_corrupt_more_than_log_rejected():
    _, wal = make_wal()
    with pytest.raises(ValueError):
        wal.corrupt_tail(1)


def test_appends_are_buffered():
    machine, wal = make_wal()

    def main():
        for i in range(10):
            wal.add_record(Entry.put(b"%04d" % i, i + 1, b"x" * 10))
        buffered = wal.env.stats.syscalls
        wal.flush()
        return buffered, wal.env.stats.syscalls, wal.flushes

    buffered, after_flush, flushes = machine.run(main)
    assert buffered == 0  # ten small records fit the writer buffer
    assert after_flush == 1
    assert flushes == 1


def test_buffer_overflow_triggers_syscall():
    machine = Machine()
    env = make_env(machine, NATIVE)
    wal = WriteAheadLog(env, buffer_bytes=64)

    def main():
        wal.add_record(Entry.put(b"key", 1, b"x" * 100))
        return env.stats.syscalls

    assert machine.run(main) == 1


@settings(max_examples=40)
@given(
    entries=st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=16),
            st.integers(min_value=1, max_value=1 << 40),
            st.binary(max_size=64),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_encode_decode_roundtrip_property(entries):
    blob = bytearray()
    expected = []
    for seq, (key, seqno, value) in enumerate(entries):
        entry = Entry.put(key, seqno, value)
        blob += encode_record(entry)
        expected.append(entry)
    assert list(decode_records(blob)) == expected
