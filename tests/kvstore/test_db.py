"""Integration tests for the LSM DB: flush, compaction, recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import DB
from repro.kvstore.compaction import L0_COMPACTION_TRIGGER
from repro.machine import Machine
from repro.tee import NATIVE, SGX_V1, make_env


def fresh_db(machine=None, platform=NATIVE, **options):
    machine = machine or Machine(cores=8)
    env = make_env(machine, platform)
    return machine, DB(env, **options)


def run(machine, fn):
    return machine.run(fn)


def test_put_get_roundtrip():
    machine, db = fresh_db()

    def main():
        db.put(b"alpha", b"1")
        db.put(b"beta", b"2")
        return db.get(b"alpha"), db.get(b"beta"), db.get(b"gamma")

    assert run(machine, main) == (b"1", b"2", None)


def test_overwrite_returns_newest():
    machine, db = fresh_db()

    def main():
        db.put(b"k", b"v1")
        db.put(b"k", b"v2")
        return db.get(b"k")

    assert run(machine, main) == b"v2"


def test_delete_hides_key():
    machine, db = fresh_db()

    def main():
        db.put(b"k", b"v")
        db.delete(b"k")
        return db.get(b"k")

    assert run(machine, main) is None


def test_flush_to_l0_and_reads_hit_tables():
    machine, db = fresh_db(memtable_bytes=2_000)

    def main():
        for i in range(200):
            db.put(b"%06d" % i, b"x" * 40)
        assert db.table_count() > 0
        return all(db.get(b"%06d" % i) == b"x" * 40 for i in range(200))

    assert run(machine, main)


def test_compaction_keeps_l0_bounded_and_data_intact():
    machine, db = fresh_db(memtable_bytes=1_500)

    def main():
        for i in range(600):
            db.put(b"%06d" % (i % 150), b"v%04d" % i)
        shape = db.level_shape()
        assert shape[0] < L0_COMPACTION_TRIGGER
        assert db.compactor.compactions > 0
        # Newest value per key wins after all the rewriting.
        for key_idx in range(150):
            newest = max(i for i in range(600) if i % 150 == key_idx)
            assert db.get(b"%06d" % key_idx) == b"v%04d" % newest
        return True

    assert run(machine, main)


def test_deeper_levels_do_not_overlap():
    machine, db = fresh_db(memtable_bytes=1_200)

    def main():
        for i in range(800):
            db.put(b"%06d" % i, b"x" * 30)
        for level in db.levels[1:]:
            for left, right in zip(level, level[1:]):
                assert left.largest < right.smallest
        return True

    assert run(machine, main)


def test_scan_ordered_and_filtered():
    machine, db = fresh_db(memtable_bytes=1_000)

    def main():
        for i in range(120):
            db.put(b"%04d" % i, b"v%d" % i)
        db.delete(b"0005")
        rows = db.scan(start=b"0003", end=b"0010")
        return [k for k, _ in rows]

    keys = run(machine, main)
    assert keys == [b"0003", b"0004", b"0006", b"0007", b"0008", b"0009"]


def test_crash_recovery_replays_wal():
    machine, db = fresh_db()

    def main():
        db.put(b"durable", b"yes")
        db.put(b"also", b"this")
        crashed = db.crash()
        assert crashed.get(b"durable") is None  # memtable lost
        replayed = crashed.recover()
        assert replayed == 2
        return crashed.get(b"durable"), crashed.get(b"also")

    assert run(machine, main) == (b"yes", b"this")


def test_recovery_after_flush_only_replays_tail():
    machine, db = fresh_db(memtable_bytes=600)

    def main():
        for i in range(40):
            db.put(b"%04d" % i, b"x" * 30)  # several flushes happen
        db.put(b"tail", b"unflushed")
        crashed = db.crash()
        crashed.recover()
        return crashed.get(b"tail"), crashed.get(b"0000")

    tail, flushed = run(machine, main)
    assert tail == b"unflushed"
    assert flushed == b"x" * 30


def test_statistics_tickers():
    machine, db = fresh_db()

    def main():
        db.put(b"a", b"1")
        db.get(b"a")
        db.get(b"missing")
        return dict(db.stats.tickers)

    tickers = run(machine, main)
    assert tickers["keys.written"] == 1
    assert tickers["keys.read"] == 2
    assert tickers["get.hit"] == 1
    assert tickers["get.miss"] == 1


def test_bloom_filters_save_probes():
    machine, db = fresh_db(memtable_bytes=1_000)

    def main():
        for i in range(100):
            db.put(b"present-%04d" % i, b"v")
        for i in range(100):
            db.get(b"absent-%04d" % i)
        return db.stats.ticker("bloom.useful")

    assert run(machine, main) > 50


def test_concurrent_writers_serialise_on_mutex():
    machine, db = fresh_db()

    def writer(base):
        for i in range(50):
            db.put(b"%d-%04d" % (base, i), b"v")

    def main():
        threads = [machine.spawn(writer, t) for t in range(4)]
        for thread in threads:
            thread.join()
        return db.seq

    assert run(machine, main) == 200
    assert db.mutex.acquisitions == 200


def test_sgx_reads_cost_more_than_native():
    native_machine, native_db = fresh_db(platform=NATIVE)
    sgx_machine, sgx_db = fresh_db(platform=SGX_V1)

    def workload(db):
        def main():
            for i in range(100):
                db.put(b"%04d" % i, b"v" * 20)
            for i in range(100):
                db.get(b"%04d" % i)

        return main

    run(native_machine, workload(native_db))
    run(sgx_machine, workload(sgx_db))
    assert sgx_machine.elapsed_cycles() > native_machine.elapsed_cycles()


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=30),
            st.binary(min_size=1, max_size=20),
        ),
        min_size=1,
        max_size=150,
    )
)
def test_db_matches_dict_model(ops):
    machine, db = fresh_db(memtable_bytes=800)
    model = {}

    def main():
        for op, key_idx, value in ops:
            key = b"%04d" % key_idx
            if op == "put":
                db.put(key, value)
                model[key] = value
            else:
                db.delete(key)
                model.pop(key, None)
        for key_idx in range(31):
            key = b"%04d" % key_idx
            assert db.get(key) == model.get(key)
        assert db.scan() == sorted(model.items())
        return True

    assert machine.run(main)
