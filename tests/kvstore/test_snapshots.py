"""Tests for snapshots, snapshot-aware compaction and the table format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import DB, Entry, MemTable, SSTable, visible_versions
from repro.machine import Machine
from repro.tee import NATIVE, make_env


def fresh_db(**options):
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    return machine, DB(env, **options)


# ----------------------------------------------------------------------
# Snapshots

def test_snapshot_sees_point_in_time():
    machine, db = fresh_db()

    def main():
        db.put(b"k", b"v1")
        snap = db.snapshot()
        db.put(b"k", b"v2")
        db.put(b"new", b"x")
        return (
            db.get(b"k", snapshot=snap),
            db.get(b"k"),
            db.get(b"new", snapshot=snap),
        )

    old, new, unseen = machine.run(main)
    assert old == b"v1"
    assert new == b"v2"
    assert unseen is None


def test_snapshot_sees_deleted_keys():
    machine, db = fresh_db()

    def main():
        db.put(b"k", b"v")
        snap = db.snapshot()
        db.delete(b"k")
        return db.get(b"k", snapshot=snap), db.get(b"k")

    before, after = machine.run(main)
    assert before == b"v"
    assert after is None


def test_snapshot_survives_flush_and_compaction():
    machine, db = fresh_db(memtable_bytes=800)

    def main():
        db.put(b"target", b"old-value")
        snap = db.snapshot()
        # Rewrite the key many times, forcing flushes + compactions.
        for i in range(400):
            db.put(b"target", b"v%04d" % i)
            db.put(b"%04d" % i, b"x" * 30)
        assert db.compactor.compactions > 0
        return db.get(b"target", snapshot=snap), db.get(b"target")

    old, new = machine.run(main)
    assert old == b"old-value"
    assert new == b"v0399"


def test_released_snapshot_versions_are_reclaimed():
    machine, db = fresh_db(memtable_bytes=800)

    def main():
        db.put(b"target", b"old-value")
        snap = db.snapshot()
        for i in range(200):
            db.put(b"target", b"v%04d" % i)
            db.put(b"%04d" % i, b"x" * 30)
        snap.release()
        db.compact_range()
        # After release + full compaction only the newest version
        # remains anywhere in the tree.
        versions = [
            entry
            for level in db.levels
            for table in level
            for entry in table
            if entry.key == b"target"
        ]
        return versions

    versions = machine.run(main)
    assert len(versions) == 1
    assert versions[0].value == b"v0199"


def test_snapshot_scan():
    machine, db = fresh_db()

    def main():
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        snap = db.snapshot()
        db.put(b"c", b"3")
        db.delete(b"a")
        return db.scan(snapshot=snap), db.scan()

    snap_view, live_view = machine.run(main)
    assert snap_view == [(b"a", b"1"), (b"b", b"2")]
    assert live_view == [(b"b", b"2"), (b"c", b"3")]


def test_snapshot_context_manager_releases():
    machine, db = fresh_db()

    def main():
        db.put(b"k", b"v")
        with db.snapshot() as snap:
            assert db.get(b"k", snapshot=snap) == b"v"
            assert db._snapshots
        return len(db._snapshots)

    assert machine.run(main) == 0


def test_compact_range_collapses_levels():
    machine, db = fresh_db(memtable_bytes=800)

    def main():
        for i in range(300):
            db.put(b"%04d" % (i % 60), b"x" * 25)
        db.compact_range()
        shape = db.level_shape()
        # Everything lives in exactly one non-empty level now.
        assert sum(1 for n in shape if n) == 1
        return all(db.get(b"%04d" % i) is not None for i in range(60))

    assert machine.run(main)


# ----------------------------------------------------------------------
# visible_versions (the GC filter itself)

def _versions(*seqs, key=b"k", tomb=()):
    return [
        Entry.delete(key, s) if s in tomb else Entry.put(key, s, b"v%d" % s)
        for s in sorted(seqs, reverse=True)
    ]


def test_visible_versions_keeps_newest_only_without_snapshots():
    kept = list(visible_versions(_versions(1, 5, 9)))
    assert [e.seq for e in kept] == [9]


def test_visible_versions_pins_snapshot_views():
    kept = list(visible_versions(_versions(1, 5, 9), protected_seqs=(6, 2)))
    # newest (9), snapshot@6 sees 5, snapshot@2 sees 1.
    assert [e.seq for e in kept] == [9, 5, 1]


def test_visible_versions_shares_one_version_between_snapshots():
    kept = list(visible_versions(_versions(1, 9), protected_seqs=(7, 3)))
    # Both snapshots see version 1.
    assert [e.seq for e in kept] == [9, 1]


def test_visible_versions_drops_lone_bottom_tombstone():
    kept = list(
        visible_versions(_versions(9, tomb={9}), drop_tombstones=True)
    )
    assert kept == []


def test_visible_versions_keeps_tombstone_shadowing_snapshot():
    kept = list(
        visible_versions(
            _versions(3, 9, tomb={9}),
            protected_seqs=(5,),
            drop_tombstones=True,
        )
    )
    # The tombstone must stay or the snapshot-visible put at 3 would
    # resurrect for live readers.
    assert [e.seq for e in kept] == [9, 3]
    assert kept[0].is_tombstone


@settings(max_examples=60)
@given(
    seqs=st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                  max_size=12, unique=True),
    snaps=st.lists(st.integers(min_value=0, max_value=110), max_size=4),
)
def test_visible_versions_preserves_every_snapshot_view(seqs, snaps):
    versions = _versions(*seqs)
    kept = list(visible_versions(versions, protected_seqs=snaps))

    def view(entries, at):
        for entry in entries:  # newest first
            if entry.seq <= at:
                return entry.seq
        return None

    # Live view preserved.
    assert view(kept, max(seqs)) == view(versions, max(seqs))
    # Every snapshot's view preserved.
    for snap in snaps:
        assert view(kept, snap) == view(versions, snap)


# ----------------------------------------------------------------------
# SSTable on-disk format

def test_sstable_encode_decode_roundtrip():
    mem = MemTable()
    for i in range(300):
        mem.add(Entry.put(b"%05d" % i, i + 1, b"value-%d" % i))
    mem.add(Entry.delete(b"gone", 1000))
    table = SSTable(list(mem), number=7)
    restored = SSTable.decode(table.encode())
    assert restored.number == 7
    assert len(restored) == len(table)
    assert restored.smallest == table.smallest
    assert restored.largest == table.largest
    for i in range(300):
        assert restored.get(b"%05d" % i).value == b"value-%d" % i
    assert restored.get(b"gone").is_tombstone
    # The bloom filter came across bit-for-bit.
    assert restored.filter.to_bytes() == table.filter.to_bytes()


def test_sstable_decode_rejects_garbage():
    with pytest.raises(ValueError):
        SSTable.decode(b"not a table" * 10)
