"""Unit tests for SSTables and the merging iterators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    Entry,
    MemTable,
    SSTable,
    latest_visible,
    merge_entries,
    newest_versions,
)


def build_table(pairs, number=1):
    """pairs: [(key, seq, value)] in any order."""
    table = MemTable()
    for key, seq, value in pairs:
        table.add(Entry.put(key, seq, value))
    return SSTable(list(table), number)


def test_get_present_and_absent():
    table = build_table([(b"a", 1, b"va"), (b"c", 2, b"vc")])
    assert table.get(b"a").value == b"va"
    assert table.get(b"c").value == b"vc"
    assert table.get(b"b") is None
    assert table.get(b"zz") is None


def test_get_respects_snapshots():
    table = build_table([(b"a", 5, b"new"), (b"a", 2, b"old")])
    assert table.get(b"a").value == b"new"
    assert table.get(b"a", max_seq=3).value == b"old"
    assert table.get(b"a", max_seq=1) is None


def test_blocks_split_near_target():
    pairs = [(b"%06d" % i, i + 1, b"x" * 200) for i in range(200)]
    table = build_table(pairs)
    assert table.block_count() > 5
    # Every key still resolves across block boundaries.
    for key, seq, value in pairs:
        assert table.get(key).value == value


def test_out_of_order_entries_rejected():
    entries = [Entry.put(b"b", 1, b""), Entry.put(b"a", 2, b"")]
    with pytest.raises(ValueError):
        SSTable(entries, 1)


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        SSTable([], 1)


def test_overlaps():
    table = build_table([(b"d", 1, b""), (b"m", 2, b"")])
    assert table.overlaps(b"a", b"e")
    assert table.overlaps(b"f", b"z")
    assert not table.overlaps(b"a", b"c")
    assert not table.overlaps(b"n", b"z")


def test_merge_orders_across_sources():
    newer = build_table([(b"a", 9, b"new-a"), (b"c", 8, b"c")], 2)
    older = build_table([(b"a", 1, b"old-a"), (b"b", 2, b"b")], 1)
    merged = list(merge_entries([newer, older]))
    assert [(e.key, e.seq) for e in merged] == [
        (b"a", 9),
        (b"a", 1),
        (b"b", 2),
        (b"c", 8),
    ]


def test_latest_visible_filters_shadowed_and_tombstones():
    mem = MemTable()
    mem.add(Entry.put(b"a", 5, b"new"))
    mem.add(Entry.put(b"a", 1, b"old"))
    mem.add(Entry.delete(b"b", 4))
    mem.add(Entry.put(b"b", 2, b"dead"))
    mem.add(Entry.put(b"c", 3, b"live"))
    visible = list(latest_visible(merge_entries([mem])))
    assert visible == [(b"a", b"new"), (b"c", b"live")]


def test_latest_visible_snapshot():
    mem = MemTable()
    mem.add(Entry.put(b"a", 5, b"new"))
    mem.add(Entry.put(b"a", 1, b"old"))
    visible = dict(latest_visible(merge_entries([mem]), max_seq=3))
    assert visible == {b"a": b"old"}


def test_newest_versions_compaction_filter():
    mem = MemTable()
    mem.add(Entry.put(b"a", 5, b"new"))
    mem.add(Entry.put(b"a", 1, b"old"))
    mem.add(Entry.delete(b"b", 2))
    survivors = list(newest_versions(merge_entries([mem])))
    assert [(e.key, e.seq) for e in survivors] == [(b"a", 5), (b"b", 2)]


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.binary(min_size=1, max_size=6), min_size=1,
                  max_size=150, unique=True)
)
def test_every_key_resolvable_property(keys):
    pairs = [(key, i + 1, key) for i, key in enumerate(keys)]
    table = build_table(pairs)
    for key in keys:
        assert table.get(key).value == key
    assert len(table) == len(keys)


@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=40,
               unique=True),
    b=st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=40,
               unique=True),
)
def test_merge_is_sorted_and_complete_property(a, b):
    mem_a, mem_b = MemTable(), MemTable()
    for i, key in enumerate(a):
        mem_a.add(Entry.put(key, 1000 + i, b"a"))
    for i, key in enumerate(b):
        mem_b.add(Entry.put(key, 1 + i, b"b"))
    merged = list(merge_entries([mem_a, mem_b]))
    assert len(merged) == len(a) + len(b)
    ordered = [(e.key, -e.seq) for e in merged]
    assert ordered == sorted(ordered)
