"""Unit tests for the skip-list memtable."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import Entry, MemTable


def put(table, key, seq, value=b"v"):
    table.add(Entry.put(key, seq, value))


def test_get_returns_newest_version():
    table = MemTable()
    put(table, b"a", 1, b"old")
    put(table, b"a", 5, b"new")
    put(table, b"a", 3, b"mid")
    assert table.get(b"a").value == b"new"


def test_snapshot_reads_respect_max_seq():
    table = MemTable()
    put(table, b"a", 1, b"v1")
    put(table, b"a", 5, b"v5")
    assert table.get(b"a", max_seq=3).value == b"v1"
    assert table.get(b"a", max_seq=5).value == b"v5"
    assert table.get(b"a", max_seq=0) is None


def test_get_missing_key():
    table = MemTable()
    put(table, b"b", 1)
    assert table.get(b"a") is None
    assert table.get(b"c") is None


def test_tombstones_are_versions_too():
    table = MemTable()
    put(table, b"a", 1, b"v")
    table.add(Entry.delete(b"a", 2))
    assert table.get(b"a").is_tombstone


def test_iteration_order_key_asc_seq_desc():
    table = MemTable()
    put(table, b"b", 2)
    put(table, b"a", 1)
    put(table, b"a", 9)
    put(table, b"c", 4)
    put(table, b"b", 7)
    order = [(e.key, e.seq) for e in table]
    assert order == [(b"a", 9), (b"a", 1), (b"b", 7), (b"b", 2), (b"c", 4)]


def test_duplicate_version_rejected():
    table = MemTable()
    put(table, b"a", 1)
    with pytest.raises(ValueError):
        put(table, b"a", 1)


def test_size_accounting():
    table = MemTable()
    assert table.bytes == 0
    entry = Entry.put(b"key", 1, b"value")
    table.add(entry)
    assert table.bytes == entry.size()
    assert len(table) == 1


def test_deterministic_given_seed():
    def build(seed):
        table = MemTable(seed)
        for i in range(200):
            put(table, f"k{i:04d}".encode(), i + 1)
        return [(e.key, e.seq) for e in table]

    assert build(7) == build(7)


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=8),
            st.integers(min_value=1, max_value=10_000),
        ),
        min_size=1,
        max_size=300,
        unique=True,
    )
)
def test_iteration_sorted_property(items):
    table = MemTable()
    for key, seq in items:
        table.add(Entry.put(key, seq, b""))
    out = [(e.key, -e.seq) for e in table]
    assert out == sorted(out)
    assert len(list(table)) == len(items)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.binary(min_size=1, max_size=6), min_size=1,
                  max_size=100, unique=True)
)
def test_get_finds_every_inserted_key(keys):
    table = MemTable()
    for seq, key in enumerate(keys, start=1):
        table.add(Entry.put(key, seq, key))
    for key in keys:
        assert table.get(key).value == key
