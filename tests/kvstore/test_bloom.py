"""Unit tests for the Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import BloomFilter, fnv1a


def test_no_false_negatives_small():
    filt = BloomFilter(100)
    keys = [f"key-{i}".encode() for i in range(100)]
    for key in keys:
        filt.add(key)
    assert all(filt.may_contain(key) for key in keys)


def test_definitely_absent_for_most_others():
    filt = BloomFilter(1_000, bits_per_key=10)
    for i in range(1_000):
        filt.add(f"present-{i}".encode())
    false_positives = sum(
        filt.may_contain(f"absent-{i}".encode()) for i in range(2_000)
    )
    # ~1% expected at 10 bits/key; allow generous slack.
    assert false_positives < 100


def test_empty_filter_rejects_everything():
    filt = BloomFilter(10)
    assert not filt.may_contain(b"anything")
    assert len(filt) == 0


def test_fill_ratio_grows():
    filt = BloomFilter(100)
    before = filt.fill_ratio()
    for i in range(100):
        filt.add(f"k{i}".encode())
    assert filt.fill_ratio() > before


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        BloomFilter(-1)


def test_fnv1a_deterministic_and_seeded():
    assert fnv1a(b"abc") == fnv1a(b"abc")
    assert fnv1a(b"abc") != fnv1a(b"abd")
    assert fnv1a(b"abc", seed=1) != fnv1a(b"abc", seed=2)


@settings(max_examples=50)
@given(keys=st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                     max_size=200, unique=True))
def test_no_false_negatives_property(keys):
    filt = BloomFilter(len(keys))
    for key in keys:
        filt.add(key)
    assert all(filt.may_contain(key) for key in keys)
