"""The wire protocol: framing, malformed input, the shm fast path."""

import json
import socket
import struct

import pytest

from repro.fleet import ProtocolError
from repro.fleet.protocol import (
    MAX_HEADER,
    _shm_create,
    read_frame,
    shm_read,
    write_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def test_frame_round_trip_with_payload(pair):
    left, right = pair
    write_frame(left, {"type": "segment", "seq": 1}, b"\x00" * 512)
    header, payload = read_frame(right)
    assert header["type"] == "segment"
    assert header["size"] == 512
    assert payload == b"\x00" * 512


def test_ack_frames_need_no_type(pair):
    left, right = pair
    write_frame(left, {"ok": True, "accepted": 4})
    header, payload = read_frame(right)
    assert header == {"ok": True, "accepted": 4}
    assert payload == b""


def test_clean_eof_is_none(pair):
    left, right = pair
    left.close()
    assert read_frame(right) is None


def test_eof_mid_length_is_a_protocol_error(pair):
    left, right = pair
    left.sendall(b"\x00")  # one byte of a four-byte length
    left.close()
    with pytest.raises(ProtocolError, match="mid-length"):
        read_frame(right)


def test_eof_mid_header_is_a_protocol_error(pair):
    left, right = pair
    left.sendall(struct.pack("!I", 100) + b"{")
    left.close()
    with pytest.raises(ProtocolError, match="bytes short"):
        read_frame(right)


def test_implausible_header_length_is_refused(pair):
    left, right = pair
    left.sendall(struct.pack("!I", MAX_HEADER + 1))
    with pytest.raises(ProtocolError, match="implausible header"):
        read_frame(right)


def test_non_json_header_is_refused(pair):
    left, right = pair
    raw = b"not json at all"
    left.sendall(struct.pack("!I", len(raw)) + raw)
    with pytest.raises(ProtocolError, match="not JSON"):
        read_frame(right)


def test_non_object_header_is_refused(pair):
    left, right = pair
    raw = json.dumps([1, 2, 3]).encode()
    left.sendall(struct.pack("!I", len(raw)) + raw)
    with pytest.raises(ProtocolError, match="not an object"):
        read_frame(right)


def test_negative_payload_size_is_refused(pair):
    left, right = pair
    raw = json.dumps({"type": "segment", "size": -1}).encode()
    left.sendall(struct.pack("!I", len(raw)) + raw)
    with pytest.raises(ProtocolError, match="implausible payload"):
        read_frame(right)


def test_shm_round_trip():
    data = bytes(range(256)) * 8
    try:
        shm = _shm_create(data)
    except Exception:
        pytest.skip("host has no usable multiprocessing.shared_memory")
    try:
        assert shm_read(shm.name, len(data)) == data
    finally:
        shm.close()
        shm.unlink()
