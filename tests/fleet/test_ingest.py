"""The socket ingest path: sessions, violations, dirty hangups."""

import socket
import time

import pytest

from repro.fleet import (
    FleetClient,
    FleetDaemon,
    IngestListener,
    ProtocolError,
)
from repro.fleet import protocol


@pytest.fixture
def served():
    daemon = FleetDaemon(jobs=2, prefer_processes=False).start()
    listener = IngestListener(daemon, port=0)
    listener.start()
    yield daemon, listener
    listener.stop()
    daemon.stop()


def test_session_round_trip_with_accounting(served, baseline_session):
    daemon, listener = served
    client = FleetClient(listener.address).open(
        "web", baseline_session["symtab"], session="sock-1"
    )
    ack = client.publish(baseline_session["log_bytes"])
    assert ack["accepted"] == len(baseline_session["log_bytes"])
    assert ack["seq"] == 1
    assert client.ping()["ok"]
    accounting = client.bye()["accounting"]
    assert accounting["session"] == "sock-1"
    assert accounting["entries"] == baseline_session["entries"]
    assert accounting["salvaged"] == baseline_session["entries"]
    assert accounting["ticks"] == baseline_session["ticks"]
    assert not accounting["open"]
    assert daemon.profile("web").total_exclusive() == (
        baseline_session["ticks"]
    )


def test_shm_fast_path_lands_identically(served, baseline_session):
    daemon, listener = served
    with FleetClient(listener.address).open(
        "web", baseline_session["symtab"], session="shm-1"
    ) as client:
        ack = client.publish(baseline_session["log_bytes"], via_shm=True)
        assert ack["ok"]
    daemon.drain()
    assert daemon.profile("web").total_exclusive() == (
        baseline_session["ticks"]
    )


def test_segment_before_hello_is_refused(served, baseline_session):
    _, listener = served
    client = FleetClient(listener.address)
    client._sock = socket.create_connection(listener.address, timeout=5)
    with pytest.raises(ProtocolError, match="segment before hello"):
        client._request(
            {"type": "segment"}, baseline_session["log_bytes"]
        )
    client._sock.close()


def test_unknown_frame_type_is_refused(served):
    _, listener = served
    sock = socket.create_connection(listener.address, timeout=5)
    try:
        protocol.write_frame(sock, {"type": "dance"})
        ack, _ = protocol.read_frame(sock)
        assert not ack["ok"]
        assert "unknown frame type" in ack["error"]
    finally:
        sock.close()


def test_empty_segment_is_refused(served, baseline_session):
    _, listener = served
    with FleetClient(listener.address).open(
        "web", baseline_session["symtab"]
    ) as client:
        with pytest.raises(ProtocolError, match="empty segment"):
            client._request({"type": "segment"}, b"")


def test_hello_missing_fields_is_refused(served):
    _, listener = served
    sock = socket.create_connection(listener.address, timeout=5)
    try:
        protocol.write_frame(sock, {"type": "hello", "tenant": "web"})
        ack, _ = protocol.read_frame(sock)
        assert not ack["ok"]
        assert "hello missing" in ack["error"]
    finally:
        sock.close()


def test_dirty_hangup_still_closes_the_session(
    served, baseline_session
):
    daemon, listener = served
    client = FleetClient(listener.address).open(
        "web", baseline_session["symtab"], session="vanisher"
    )
    client.publish(baseline_session["log_bytes"])
    client._sock.close()  # the producer dies without bye
    client._sock = None
    deadline = time.monotonic() + 10
    while True:
        accounting = daemon.accounting("web")
        if accounting and not accounting[0]["open"]:
            break
        if time.monotonic() > deadline:
            pytest.fail(f"session never closed: {accounting}")
        time.sleep(0.02)
    daemon.drain()
    # The published segment still landed with full accounting.
    assert daemon.accounting("web")[0]["salvaged"] == (
        baseline_session["entries"]
    )
    assert daemon.status()["counters"]["sessions_closed"] == 1


def test_duplicate_hello_is_refused(served, baseline_session):
    _, listener = served
    client = FleetClient(listener.address).open(
        "web", baseline_session["symtab"]
    )
    with pytest.raises(ProtocolError, match="duplicate hello"):
        client._request({
            "type": "hello", "tenant": "web", "session": "again",
            "symtab": baseline_session["symtab"],
        })


def test_listener_lifecycle_and_validation(served):
    daemon, listener = served
    assert listener.running
    assert listener.start() == listener.port  # idempotent
    with pytest.raises(ValueError, match="max_sessions"):
        IngestListener(daemon, max_sessions=0)


def test_listener_context_manager(baseline_session):
    with FleetDaemon(jobs=1, prefer_processes=False) as daemon:
        with IngestListener(daemon, port=0) as listener:
            with FleetClient(listener.address).open(
                "web", baseline_session["symtab"]
            ) as client:
                client.publish(baseline_session["log_bytes"])
        assert not listener.running
    assert daemon.status()["accounted"]
