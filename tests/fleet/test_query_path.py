"""The query path: per-tenant locks, snapshot immutability, and the
incremental merged-profile cache."""

import threading
import time

from repro.fleet import WindowStore

A = ("app::Main()", "app::Parse()")
B = ("app::Main()", "app::Process()")


def make_store():
    store = WindowStore(window_seconds=60.0, retention=4)
    store.add("web", {A: 100}, {"app::Parse()": 1}, ts=0.0)
    store.add("db", {B: 200}, {"app::Process()": 1}, ts=0.0)
    return store


# ----------------------------------------------------------------------
# Per-tenant lock split


def test_slow_query_on_one_tenant_does_not_block_another():
    """A merged query stuck on tenant "web" must not delay ingest into
    tenant "db" — the store has no global lock to contend on.  The
    stuck query is simulated by holding web's own tenant lock, the
    exact lock a slow query serialises on."""
    store = make_store()
    web_lock = store._state("web").lock
    web_lock.acquire()
    try:
        query = threading.Thread(
            target=store.merged, args=("web",), daemon=True
        )
        query.start()
        query.join(timeout=0.1)
        assert query.is_alive()  # web really is wedged...

        start = time.perf_counter()
        store.add("db", {B: 50}, ts=1.0)
        assert store.merged("db").total_exclusive() == 250
        assert time.perf_counter() - start < 1.0  # ...but db is not
    finally:
        web_lock.release()
    query.join(timeout=5.0)
    assert not query.is_alive()


def test_profiles_are_immutable_snapshots():
    """A handed-out profile never changes under later ingest — all
    rendering happens outside the tenant lock on private arrays."""
    store = make_store()
    snapshot = store.merged("web")
    before = snapshot.folded()
    store.add("web", {A: 999, B: 1}, ts=1.0)
    assert snapshot.folded() == before
    assert snapshot.total_exclusive() == 100


# ----------------------------------------------------------------------
# Incremental merged-profile cache


def test_repeat_query_is_a_cache_hit():
    store = make_store()
    first = store.merged("web")
    assert store.merged("web") is first  # same object, no re-merge
    assert store.totals()["merged_cache_hits"] == 1


def test_ingest_invalidates_the_cached_answer():
    store = make_store()
    stale = store.merged("web")
    store.add("web", {B: 50}, ts=1.0)
    fresh = store.merged("web")
    assert fresh is not stale
    assert fresh.total_exclusive() == 150
    assert fresh.folded()[B] == 50


def test_newly_stable_windows_fold_incrementally():
    """When ingest moves to a newer window, the previous newest folds
    into the cached base with one array add — no rebuild."""
    store = make_store()
    store.merged("web")  # prime: base covers nothing, newest = w0
    store.add("web", {B: 10}, ts=60.0)  # w1 opens; w0 is now stable
    store.merged("web")
    totals = store.totals()
    assert totals["merged_cache_folds"] >= 1
    assert totals["merged_cache_rebuilds"] == 1  # only the prime


def test_archive_churn_rebuilds_the_base():
    store = WindowStore(window_seconds=60.0, retention=2)
    for i in range(3):
        store.add("web", {A: 10}, ts=60.0 * i)
        store.merged("web")
    rebuilds = store.totals()["merged_cache_rebuilds"]
    store.add("web", {A: 10}, ts=60.0 * 3)  # expires w1 into archive
    assert store.merged("web").total_exclusive() == 40
    assert store.totals()["merged_cache_rebuilds"] > rebuilds


def test_flush_cache_forces_a_cold_remerge():
    store = make_store()
    warm = store.merged("web")
    store.flush_cache("web")
    cold = store.merged("web")
    assert cold is not warm
    assert cold.folded() == warm.folded()


def test_explicit_window_subsets_bypass_the_cache():
    store = make_store()
    store.add("web", {B: 50}, ts=60.0)
    merged = store.merged("web", wids=[0])
    assert merged.folded() == {A: 100}
    assert store.merged("web", wids=[0, 1]).total_exclusive() == 150
    assert store.totals()["merged_cache_hits"] == 0


# ----------------------------------------------------------------------
# Daemon end to end: ingest between queries changes the answer


def test_daemon_query_sees_post_cache_ingest(baseline_session):
    from repro.fleet import FleetDaemon

    daemon = FleetDaemon(jobs=2, prefer_processes=False)
    daemon.start()
    try:
        with daemon.session(
            "web", baseline_session["symtab"], session="s1"
        ) as session:
            session.publish(baseline_session["log_bytes"])
        daemon.drain()
        ticks = baseline_session["ticks"]
        assert daemon.profile("web").total_exclusive() == ticks
        # The merged answer is now cached; a second ingest must not be
        # masked by it.
        with daemon.session(
            "web", baseline_session["symtab"], session="s2"
        ) as session:
            session.publish(baseline_session["log_bytes"])
        daemon.drain()
        assert daemon.profile("web").total_exclusive() == 2 * ticks
    finally:
        daemon.stop()
