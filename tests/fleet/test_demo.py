"""The acceptance demo (ISSUE 7): four concurrent recorder sessions,
two tenants, one daemon — merged flamegraphs conserve every salvaged
tick and the window diff catches an injected regression.

Timeline (the daemon's clock is injected, so the test *places* the
segments):

* window 0 — four concurrent socket sessions (two per tenant) each
  publish a clean baseline profile;
* window 1 — the same four sessions publish a profile with an
  injected hot method (``app::Regress()``);
* the ``/profiles/<tenant>`` merged flamegraph's total ticks must
  equal the sum of that tenant's sessions' salvaged ticks, and
  ``diff?a=0&b=1`` must flag ``app::Regress()`` as the top
  regression — over HTTP, end to end.
"""

import json
import threading
import urllib.request

from repro.core.flamegraph import FlameGraph
from repro.fleet import (
    FleetClient,
    FleetDaemon,
    FleetServer,
    IngestListener,
)

TENANTS = ("web", "web", "db", "db")
WINDOW = 60.0


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        assert resp.headers.get("Content-Type") == "application/json"
        return json.loads(resp.read())


def test_fleet_demo_end_to_end(baseline_session, hot_session):
    state = {"now": 30.0}  # mid window 0
    daemon = FleetDaemon(
        window_seconds=WINDOW, jobs=2, prefer_processes=False,
        clock=lambda: state["now"],
    ).start()
    listener = IngestListener(daemon, port=0)
    listener.start()
    server = FleetServer(daemon, port=0)
    server.start()

    # Main thread + 4 producers rendezvous at each phase edge, so all
    # four sessions are genuinely concurrent and every baseline
    # publish is submitted before the clock moves to window 1.
    phase_start = threading.Barrier(5)
    baseline_done = threading.Barrier(5)
    hot_go = threading.Barrier(5)
    accountings = {}
    failures = []

    def produce(i):
        tenant = TENANTS[i]
        try:
            with FleetClient(listener.address).open(
                tenant, baseline_session["symtab"], session=f"rec-{i}"
            ) as client:
                phase_start.wait(timeout=60)
                client.publish(baseline_session["log_bytes"])
                baseline_done.wait(timeout=60)  # ack'd => submitted
                hot_go.wait(timeout=60)  # clock is now in window 1
                client.publish(hot_session["log_bytes"], via_shm=i == 0)
                accountings[f"rec-{i}"] = client.bye()["accounting"]
        except Exception as exc:  # noqa: BLE001 — re-raised below
            failures.append((i, exc))

    producers = [
        threading.Thread(target=produce, args=(i,)) for i in range(4)
    ]
    try:
        for p in producers:
            p.start()
        phase_start.wait(timeout=60)
        baseline_done.wait(timeout=60)
        state["now"] = 30.0 + WINDOW  # roll everyone into window 1
        hot_go.wait(timeout=60)
        for p in producers:
            p.join(timeout=120)
        assert not failures, failures
        daemon.drain()

        # --- 4 concurrent sessions across 2 tenants, none dropped.
        assert len(accountings) == 4
        assert daemon.tenants() == ["db", "web"]
        expected_entries = (
            baseline_session["entries"] + hot_session["entries"]
        )
        expected_ticks = (
            baseline_session["ticks"] + hot_session["ticks"]
        )
        for accounting in accountings.values():
            assert accounting["entries"] == expected_entries
            assert accounting["salvaged"] == expected_entries
            assert accounting["quarantined"] == 0
            assert accounting["ticks"] == expected_ticks
        assert daemon.status()["accounted"]

        for tenant in ("web", "db"):
            session_ticks = sum(
                a["ticks"] for a in accountings.values()
                if a["tenant"] == tenant
            )
            # --- The merged flamegraph conserves every salvaged tick.
            merged = daemon.profile(tenant)
            graph = merged.flamegraph()
            assert isinstance(graph, FlameGraph)
            assert graph.total_ticks() == session_ticks
            # Same number over HTTP.
            payload = get_json(
                f"{server.url}/profiles/{tenant}"
            )
            assert payload["merged"]["ticks"] == session_ticks
            assert [w["wid"] for w in payload["windows"]] == [0, 1]
            served_sessions = {
                s["session"] for s in payload["sessions"]
            }
            assert len(served_sessions) == 2

            # --- The window diff flags the injected regression.
            diff = get_json(
                f"{server.url}/profiles/{tenant}/diff?a=0&b=1"
            )
            top = diff["regressions"][0]
            assert top["method"] == "app::Regress()"
            assert top["appeared"]
            assert diff["after_ticks"] == (
                2 * hot_session["ticks"]
            )
            assert diff["before_ticks"] == (
                2 * baseline_session["ticks"]
            )
    finally:
        server.stop()
        listener.stop()
        daemon.stop()
