"""The fleet query surface: profiles, diffs, JSON errors."""

import json
import urllib.error
import urllib.request

import pytest

from repro.fleet import FleetDaemon, FleetServer


@pytest.fixture
def served(baseline_session, hot_session):
    """A daemon with two windows of web data (clean then hot) and one
    window of db data, behind a FleetServer."""
    state = {"now": 30.0}
    daemon = FleetDaemon(
        window_seconds=60.0, jobs=2, prefer_processes=False,
        clock=lambda: state["now"],
    ).start()
    with daemon.session(
        "web", baseline_session["symtab"], session="w1"
    ) as session:
        session.publish(baseline_session["log_bytes"])
        daemon.drain()
        state["now"] = 90.0
        session.publish(hot_session["log_bytes"])
    with daemon.session(
        "db", baseline_session["symtab"], session="d1"
    ) as session:
        session.publish(baseline_session["log_bytes"])
    server = FleetServer(daemon, port=0)
    server.start()
    yield daemon, server
    server.stop()
    daemon.stop()


def fetch(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=10) as r:
        return r.status, r.headers.get("Content-Type"), r.read()


def fetch_json(server, path):
    status, ctype, body = fetch(server, path)
    assert ctype == "application/json"
    return status, json.loads(body)


def test_fleet_status_route(served):
    _, server = served
    status, payload = fetch_json(server, "/fleet")
    assert status == 200
    assert payload["accounted"]
    assert payload["counters"]["segments_analyzed"] == 3
    assert payload["pool"] == "thread"
    assert payload["store"]["tenants"] == 2


def test_profiles_index(served):
    _, server = served
    _, payload = fetch_json(server, "/profiles")
    assert payload["tenants"] == ["db", "web"]
    assert payload["window_seconds"] == 60.0


def test_tenant_summary_merges_and_accounts(
    served, baseline_session, hot_session
):
    _, server = served
    _, payload = fetch_json(server, "/profiles/web")
    expected = baseline_session["ticks"] + hot_session["ticks"]
    assert payload["merged"]["ticks"] == expected
    assert payload["ticks"] == expected
    assert [w["wid"] for w in payload["windows"]] == [0, 1]
    sessions = {s["session"]: s for s in payload["sessions"]}
    assert sessions["w1"]["salvaged"] == (
        baseline_session["entries"] + hot_session["entries"]
    )


def test_folded_and_flamegraph_routes(served, baseline_session):
    _, server = served
    status, ctype, body = fetch(server, "/profiles/db/folded")
    assert status == 200
    assert ctype.startswith("text/plain")
    text = body.decode()
    assert "app::Run()" in text
    total = sum(int(line.rsplit(" ", 1)[1])
                for line in text.strip().splitlines())
    assert total == baseline_session["ticks"]

    status, ctype, body = fetch(server, "/profiles/web/flamegraph.svg")
    assert status == 200
    assert ctype == "image/svg+xml"
    assert b"<svg" in body
    # A single window is addressable too.
    status, _, single = fetch(
        server, "/profiles/web/flamegraph.svg?window=0"
    )
    assert status == 200
    assert b"window 0" in single


def test_diff_route_flags_the_regression(served):
    _, server = served
    _, payload = fetch_json(server, "/profiles/web/diff?a=0&b=1")
    assert (payload["a"], payload["b"]) == ("0", "1")
    top = payload["regressions"][0]
    assert top["method"] == "app::Regress()"
    assert top["appeared"]
    assert payload["after_ticks"] > payload["before_ticks"]

    status, ctype, body = fetch(
        server, "/profiles/web/diff?a=0&b=1&format=report"
    )
    assert ctype.startswith("text/plain")
    assert "app::Regress()" in body.decode()

    status, ctype, body = fetch(
        server, "/profiles/web/diff?a=0&b=1&format=svg"
    )
    assert ctype == "image/svg+xml"
    assert b"<svg" in body


def expect_error(server, path, code):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server, path)
    err = excinfo.value
    assert err.code == code
    assert err.headers.get("Content-Type") == "application/json"
    return json.loads(err.read())


def test_errors_are_json_naming_what_exists(served):
    _, server = served
    payload = expect_error(server, "/profiles/nope", 404)
    assert "unknown tenant 'nope'" in payload["error"]
    assert payload["tenants"] == ["db", "web"]

    payload = expect_error(server, "/profiles/web/diff?a=0&b=99", 404)
    assert "has no window" in payload["error"]

    payload = expect_error(server, "/profiles/web/diff", 400)
    assert "needs both windows" in payload["error"]
    assert payload["windows"] == [0, 1]

    payload = expect_error(
        server, "/profiles/web/diff?a=0&b=1&format=gif", 400
    )
    assert payload["formats"] == ["json", "report", "svg"]

    payload = expect_error(server, "/profiles/web/nested/too/deep", 404)
    assert "/profiles/<tenant>" in payload["routes"]


def test_monitor_routes_still_served(served):
    daemon, server = served
    daemon.monitor.poll_once()
    status, ctype, body = fetch(server, "/metrics")
    assert status == 200
    assert ctype.startswith("text/plain")
    assert "teeperf_fleet_segments_analyzed_total 3" in body.decode()
    status, _, body = fetch(server, "/healthz")
    assert (status, body) == (200, b"ok\n")
