"""The daemon core: sessions, accounting, metrics, alerts.

Everything here uses the in-process fast path (``daemon.session``) and
thread workers, so the tests exercise the service logic without socket
or multiprocessing variance.
"""

import pytest

from repro.fleet import FleetDaemon
from repro.monitor import Monitor

from tests.fleet.test_workers import crashed_segment


@pytest.fixture
def daemon():
    d = FleetDaemon(jobs=2, prefer_processes=False)
    d.start()
    yield d
    d.stop()


def test_local_sessions_land_with_exact_accounting(
    daemon, baseline_session
):
    with daemon.session(
        "web", baseline_session["symtab"], session="s1"
    ) as s1:
        s1.publish(baseline_session["log_bytes"])
        s1.publish(baseline_session["log_bytes"])
    with daemon.session(
        "db", baseline_session["symtab"], session="s2"
    ) as s2:
        s2.publish(baseline_session["log_bytes"])

    entries, ticks = (
        baseline_session["entries"], baseline_session["ticks"]
    )
    by_name = {a["session"]: a for a in daemon.accounting()}
    assert by_name["s1"]["tenant"] == "web"
    assert by_name["s1"]["segments"] == 2
    assert by_name["s1"]["entries"] == 2 * entries
    assert by_name["s1"]["salvaged"] == 2 * entries
    assert by_name["s1"]["quarantined"] == 0
    assert by_name["s1"]["ticks"] == 2 * ticks
    assert not by_name["s1"]["open"]
    assert by_name["s2"]["entries"] == entries

    assert daemon.tenants() == ["db", "web"]
    assert daemon.profile("web").total_exclusive() == 2 * ticks
    assert daemon.profile("db").total_exclusive() == ticks

    status = daemon.status()
    assert status["accounted"], status["counters"]
    assert status["counters"]["segments_ingested"] == 3
    assert status["counters"]["segments_analyzed"] == 3
    assert status["counters"]["entries"] == 3 * entries
    assert status["counters"]["sessions_opened"] == 2
    assert status["counters"]["sessions_closed"] == 2
    assert status["in_flight"] == 0
    assert status["sessions_open"] == 0
    assert status["pool"] == "thread"
    assert not status["recent_errors"]


def test_closed_session_refuses_publishes(daemon, baseline_session):
    session = daemon.session("web", baseline_session["symtab"])
    session.publish(baseline_session["log_bytes"])
    accounting = session.bye()
    assert accounting["segments"] == 1
    assert session.bye() is None  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        session.publish(baseline_session["log_bytes"])


def test_bye_accounting_is_final(daemon, baseline_session):
    """The bye handshake drains first, so its numbers are the
    session's true totals, not a racy snapshot."""
    with daemon.session("web", baseline_session["symtab"]) as session:
        for _ in range(5):
            session.publish(baseline_session["log_bytes"])
        accounting = session.bye()
    assert accounting["segments"] == 5
    assert accounting["salvaged"] == 5 * baseline_session["entries"]


def test_sampler_publishes_fleet_families(daemon, baseline_session):
    with daemon.session("web", baseline_session["symtab"]) as session:
        session.publish(baseline_session["log_bytes"])
    daemon.monitor.poll_once()
    text = daemon.monitor.exposition()
    registry = daemon.monitor.registry
    assert "# TYPE teeperf_fleet_segments_ingested_total counter" in text
    assert registry.value("fleet_segments_ingested_total") == 1
    assert registry.value("fleet_entries_total") == (
        baseline_session["entries"]
    )
    assert registry.value("fleet_entries_salvaged_total") == (
        baseline_session["entries"]
    )
    assert registry.value("fleet_tenants") == 1
    assert registry.value("fleet_segments_in_flight") == 0
    assert registry.value("fleet_pool_kind_process") == 0


def test_quarantine_fires_the_fleet_alert(daemon):
    snapshot, symtab = crashed_segment()
    with daemon.session("web", symtab, session="crashed") as session:
        session.publish(snapshot)
        accounting = session.bye()
    # The dirty handoff degraded into exact accounting...
    assert accounting["quarantined"] > 0
    assert (
        accounting["salvaged"] + accounting["quarantined"]
        == accounting["entries"]
    )
    assert daemon.status()["accounted"]
    # ...and the quarantine pages.
    daemon.monitor.poll_once()
    firing = {
        state.rule.name for state in daemon.monitor.engine.firing()
    }
    assert "fleet-quarantine" in firing


def test_analysis_errors_are_in_band_and_alerted(
    daemon, baseline_session
):
    with daemon.session("web", "not a symtab", session="bad") as session:
        session.publish(baseline_session["log_bytes"])
        accounting = session.bye()
    assert accounting["errors"] == 1
    assert accounting["segments"] == 0  # nothing landed in windows
    status = daemon.status()
    assert status["counters"]["analysis_errors"] == 1
    assert status["recent_errors"][0]["session"] == "bad"
    assert status["accounted"]  # failed segments count no entries
    with pytest.raises(KeyError):  # and created no tenant state
        daemon.profile("web")
    daemon.monitor.poll_once()
    firing = {
        state.rule.name for state in daemon.monitor.engine.firing()
    }
    assert "fleet-analysis-errors" in firing


def test_clock_injection_places_segments_in_chosen_windows(
    baseline_session, hot_session
):
    state = {"now": 30.0}
    daemon = FleetDaemon(
        window_seconds=60.0, jobs=2, prefer_processes=False,
        clock=lambda: state["now"],
    )
    with daemon:
        with daemon.session(
            "web", baseline_session["symtab"], session="s"
        ) as session:
            session.publish(baseline_session["log_bytes"])
            daemon.drain()
            state["now"] = 90.0
            session.publish(hot_session["log_bytes"])
        assert daemon.store.window_ids("web") == [0, 1]
        diff = daemon.diff("web", 0, 1)
        assert diff.regressions()[0].method == "app::Regress()"
        summary = daemon.summary("web")
        assert summary["ticks"] == (
            baseline_session["ticks"] + hot_session["ticks"]
        )
    # The store stays readable after stop().
    assert daemon.profile("web").total_exclusive() == summary["ticks"]


def test_shared_monitor_is_left_running(baseline_session):
    monitor = Monitor()
    daemon = FleetDaemon(
        jobs=1, prefer_processes=False, monitor=monitor
    )
    daemon.start()
    with daemon.session("web", baseline_session["symtab"]) as session:
        session.publish(baseline_session["log_bytes"])
    daemon.stop()  # final poll, but the monitor is not ours to stop
    assert monitor.registry.value("fleet_segments_analyzed_total") == 1


def test_drain_timeout_returns_false_under_load(
    daemon, baseline_session
):
    for _ in range(8):
        daemon.ingest_segment(
            "web", baseline_session["symtab"],
            baseline_session["log_bytes"],
        )
    # A zero timeout cannot wait for 8 segments on 2 workers...
    drained = daemon.drain(timeout=0)
    assert drained in (False, True)  # (they may already be done)
    # ...but an unbounded drain always settles.
    assert daemon.drain()
    assert daemon.in_flight == 0
