"""Differential oracle: the array-backed window summary vs the dict one.

House style since the streaming analyzer: every rewrite keeps its
predecessor verbatim as the oracle and property tests drive both
through identical sequences.  Here the interned-path-table
:class:`WindowSummary` must match :class:`DictWindowSummary`
tick-for-tick across random absorb/merge/compact/archive sequences —
including the ``("<other>",)`` compaction tail, the
``salvaged + quarantined == entries`` identity, and byte-identical
``to_folded()`` output through the flame graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diff import AnalysisDiff
from repro.fleet import (
    DictWindowSummary,
    OTHER_BUCKET,
    WindowStore,
    WindowSummary,
)

METHODS = ["app::Main()", "app::Parse()", "app::Run()", "db::Get()",
           "db::Put()"]

paths = st.lists(
    st.sampled_from(METHODS), min_size=1, max_size=4
).map(tuple)

# Ticks stay well under 2**53 so int64 -> float64 share division is
# exact and matches Python int/int bit for bit.
folded_dicts = st.dictionaries(
    paths, st.integers(min_value=0, max_value=10**6), max_size=8
)
call_dicts = st.dictionaries(
    st.sampled_from(METHODS), st.integers(min_value=0, max_value=100),
    max_size=5,
)

segments = st.tuples(
    folded_dicts,
    call_dicts,
    st.integers(min_value=0, max_value=50),  # salvaged
    st.integers(min_value=0, max_value=10),  # quarantined
    st.sampled_from(["s1", "s2", None]),
    st.one_of(st.none(), st.floats(min_value=0, max_value=500)),
)

# One step is either a segment absorb or a compaction at a small cap.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("absorb"), segments),
        st.tuples(st.just("compact"),
                  st.integers(min_value=2, max_value=6)),
    ),
    max_size=12,
)


def apply_steps(summary, step_list):
    for op, arg in step_list:
        if op == "absorb":
            folded, calls, salvaged, quarantined, session, ts = arg
            summary.absorb(
                folded, calls, session=session,
                entries=salvaged + quarantined, salvaged=salvaged,
                quarantined=quarantined, ts=ts,
            )
        else:
            summary.compact(arg)


def assert_identical(arr, oracle):
    assert arr.folded == oracle.folded
    assert arr.method_calls == oracle.method_calls
    assert arr.path_count() == oracle.path_count()
    assert arr.ticks == oracle.ticks
    assert arr.to_dict() == oracle.to_dict()
    assert arr.entries == arr.salvaged + arr.quarantined
    arr_profile, oracle_profile = arr.profile(), oracle.profile()
    assert arr_profile.folded() == oracle_profile.folded()
    assert arr_profile.total_exclusive() == oracle_profile.total_exclusive()
    arr_methods = {
        m.method: (m.exclusive, m.calls) for m in arr_profile.methods()
    }
    oracle_methods = {
        m.method: (m.exclusive, m.calls)
        for m in oracle_profile.methods()
    }
    assert arr_methods == oracle_methods
    excl = [m.exclusive for m in arr_profile.methods()]
    assert excl == sorted(excl, reverse=True)  # hottest first
    if any(t > 0 for t in oracle.folded.values()):
        assert (
            arr_profile.flamegraph().to_folded()
            == oracle_profile.flamegraph().to_folded()
        )  # byte-identical folded text


@settings(deadline=None, max_examples=120)
@given(steps)
def test_summary_matches_dict_oracle(step_list):
    arr, oracle = WindowSummary(7), DictWindowSummary(7)
    apply_steps(arr, step_list)
    apply_steps(oracle, step_list)
    assert_identical(arr, oracle)


@settings(deadline=None, max_examples=80)
@given(steps, steps, st.booleans())
def test_merge_matches_dict_oracle(left_steps, right_steps, shared):
    """merge() is identical whether the two summaries share one path
    table (the in-tenant fast path) or not (the foreign fallback)."""
    arr_left = WindowSummary(1)
    arr_right = WindowSummary(
        2, table=arr_left.table if shared else None
    )
    oracle_left, oracle_right = (
        DictWindowSummary(1), DictWindowSummary(2),
    )
    apply_steps(arr_left, left_steps)
    apply_steps(arr_right, right_steps)
    apply_steps(oracle_left, left_steps)
    apply_steps(oracle_right, right_steps)
    arr_left.merge(arr_right)
    oracle_left.merge(oracle_right)
    assert_identical(arr_left, oracle_left)


@settings(deadline=None, max_examples=60)
@given(st.lists(
    st.tuples(segments, st.floats(min_value=0, max_value=500)),
    min_size=1, max_size=16,
))
def test_store_merged_matches_dict_merge_loop(ingests):
    """The store's cached merged profile (retention + archive churn
    included) equals the frozen dict merge-everything loop."""
    store = WindowStore(window_seconds=60.0, retention=3, max_paths=5)
    oracle_windows = {}
    for (folded, calls, salvaged, quarantined, session, _), ts in ingests:
        wid = store.add(
            "web", folded, calls, session=session,
            entries=salvaged + quarantined, salvaged=salvaged,
            quarantined=quarantined, ts=ts,
        )
        oracle = oracle_windows.setdefault(wid, DictWindowSummary(wid))
        oracle.absorb(
            folded, calls, session=session,
            entries=salvaged + quarantined, salvaged=salvaged,
            quarantined=quarantined, ts=ts,
        )
        oracle.compact(store.max_paths)
        # Mirror retention: expired windows merge into the archive.
        live = {w for w in oracle_windows if w != "archive"}
        while len(live) > store.retention:
            oldest = min(live)
            live.discard(oldest)
            expired = oracle_windows.pop(oldest)
            archive = oracle_windows.setdefault(
                "archive", DictWindowSummary("archive")
            )
            archive.merge(expired)
            archive.compact(store.max_paths)
        # Query every step so the cache sees hit/fold/rebuild churn.
        merged_oracle = DictWindowSummary("merged")
        for key in sorted(
            oracle_windows, key=lambda k: (k == "archive", str(k))
        ):
            merged_oracle.merge(oracle_windows[key])
        profile = store.merged("web")
        assert profile.folded() == merged_oracle.folded
        assert store.merged("web") is profile  # warm repeat: pure hit
    summary = store.summary("web")
    assert summary["entries"] == sum(
        w["salvaged"] + w["quarantined"]
        for w in summary["windows"]
        + ([summary["archive"]] if summary["archive"] else [])
    )
    totals = store.totals()
    assert totals["merged_cache_hits"] >= len(ingests)


@settings(deadline=None, max_examples=60)
@given(folded_dicts, call_dicts, folded_dicts, call_dicts)
def test_aligned_diff_matches_dict_diff(b_folded, b_calls, a_folded,
                                        a_calls):
    """Two snapshots over one shared path table diff via the aligned
    array path; the result must equal the per-method dict walk."""
    store = WindowStore(window_seconds=60.0, retention=8,
                        max_paths=4096)
    store.add("web", b_folded, b_calls, ts=0.0)
    store.add("web", a_folded, a_calls, ts=60.0)
    fast = store.diff("web", 0, 1)
    slow = AnalysisDiff(
        DictWindowSummary(0, dict(b_folded), dict(b_calls)).profile(),
        DictWindowSummary(1, dict(a_folded), dict(a_calls)).profile(),
    )
    fast_rows = [
        (d.method, d.before_share, d.after_share, d.before_calls,
         d.after_calls)
        for d in fast.deltas()
    ]
    slow_rows = [
        (d.method, d.before_share, d.after_share, d.before_calls,
         d.after_calls)
        for d in slow.deltas()
    ]
    assert sorted(fast_rows) == sorted(slow_rows)
    for method, *_ in fast_rows:
        assert fast.delta_for(method).delta == (
            slow.delta_for(method).delta
        )


def test_compaction_tail_is_tick_conserving():
    arr, oracle = WindowSummary(0), DictWindowSummary(0)
    folded = {("m%d" % i,): 100 - i for i in range(10)}
    for s in (arr, oracle):
        s.absorb(folded, {})
    assert arr.compact(4) == oracle.compact(4) == 6  # 10 -> 3 + <other>
    assert arr.folded[OTHER_BUCKET] == oracle.folded[OTHER_BUCKET]
    assert arr.ticks == oracle.ticks == sum(folded.values())
    assert_identical(arr, oracle)
