"""Window aggregation: folding, compaction, retention, diffs.

The store's core invariant is that every bounding mechanism is
*tick-preserving*: compaction folds cold paths into ``("<other>",)``
and retention merges expired windows into the archive, but the tenant's
total ticks (and the salvage accounting) never change.
"""

import pytest

from repro.fleet import (
    FoldedProfile,
    OTHER_BUCKET,
    WindowStore,
    WindowSummary,
)
from repro.fleet.windows import MethodShare

A = ("app::Main()", "app::Parse()")
B = ("app::Main()", "app::Process()")
C = ("app::Main()",)

FOLDED = {A: 600, B: 300, C: 100}
CALLS = {"app::Main()": 1, "app::Parse()": 4, "app::Process()": 2}


# ----------------------------------------------------------------------
# FoldedProfile: the Analysis-shaped read adapter


def test_folded_profile_quacks_like_an_analysis():
    profile = FoldedProfile(FOLDED, CALLS)
    assert profile.total_exclusive() == 1000
    assert profile.folded() == FOLDED
    assert len(profile) == 3
    assert profile.columns is None  # FlameGraph takes the folded path
    methods = profile.methods()
    assert [m.method for m in methods[:2]] == [
        "app::Parse()",  # hottest leaf first
        "app::Process()",
    ]
    by_name = {m.method: m for m in methods}
    assert by_name["app::Parse()"].exclusive == 600
    assert by_name["app::Parse()"].calls == 4
    assert by_name["app::Main()"].exclusive == 100  # leaf ticks only


def test_folded_profile_feeds_flamegraph_and_diff():
    before = FoldedProfile(FOLDED)
    assert before.flamegraph().total_ticks() == 1000
    after = FoldedProfile({A: 600, B: 1300, C: 100})
    diff = before.diff(after)
    assert diff.regressions()[0].method == "app::Process()"


def test_method_share_defaults():
    share = MethodShare("m")
    assert (share.exclusive, share.calls) == (0, 0)


# ----------------------------------------------------------------------
# WindowSummary: absorb / merge / compact


def test_absorb_accumulates_accounting():
    summary = WindowSummary(7)
    summary.absorb(FOLDED, CALLS, session="s1", entries=12,
                   salvaged=10, quarantined=2, ts=100.0)
    summary.absorb({A: 50}, {}, session="s2", entries=2,
                   salvaged=2, ts=90.0)
    assert summary.ticks == 1050
    assert summary.folded[A] == 650
    assert summary.segments == 2
    assert (summary.entries, summary.salvaged, summary.quarantined) == (
        14, 12, 2
    )
    assert summary.sessions == {"s1", "s2"}
    assert (summary.first_ts, summary.last_ts) == (90.0, 100.0)
    assert summary.to_dict()["paths"] == 3


def test_merge_carries_real_segment_counts():
    left = WindowSummary(1)
    left.absorb(FOLDED, CALLS, session="s1", entries=5, salvaged=5)
    right = WindowSummary(2)
    right.absorb({A: 10}, {}, session="s2", entries=1, salvaged=1)
    right.absorb({B: 10}, {}, session="s3", entries=1, salvaged=1)
    left.merge(right)
    assert left.segments == 3  # 1 + 2, not 1 + "one merge call"
    assert left.sessions == {"s1", "s2", "s3"}
    assert left.ticks == 1020
    assert left.entries == 7


def test_compact_conserves_ticks_exactly():
    summary = WindowSummary(0)
    folded = {("root", f"leaf{i:03d}"): 1000 - i for i in range(100)}
    summary.absorb(folded, {}, entries=100, salvaged=100)
    before = summary.ticks
    folded_away = summary.compact(max_paths=10)
    assert folded_away == 90  # 100 paths -> 9 hottest + <other>
    assert len(summary.folded) == 10
    assert OTHER_BUCKET in summary.folded
    assert sum(summary.folded.values()) == before
    # The hottest survivors are untouched.
    assert summary.folded[("root", "leaf000")] == 1000
    # Already under the cap: a no-op.
    assert summary.compact(max_paths=10) == 0


# ----------------------------------------------------------------------
# WindowStore


def clock_at(state):
    return lambda: state["now"]


def test_store_windows_by_fixed_width_buckets():
    state = {"now": 125.0}
    store = WindowStore(window_seconds=60.0, clock=clock_at(state))
    assert store.window_id() == 2
    wid = store.add("web", FOLDED, CALLS, session="s1",
                    entries=10, salvaged=10)
    assert wid == 2
    state["now"] = 185.0
    assert store.add("web", {A: 1}, entries=1, salvaged=1) == 3
    assert store.tenants() == ["web"]
    assert store.window_ids("web") == [2, 3]
    assert store.window("web", 2).ticks == 1000
    assert store.profile("web", "3").total_exclusive() == 1


def test_retention_expires_into_a_tick_conserving_archive():
    state = {"now": 0.0}
    store = WindowStore(window_seconds=1.0, retention=2,
                        clock=clock_at(state))
    for i in range(5):
        state["now"] = float(i)
        store.add("web", {A: 100}, session=f"s{i}",
                  entries=2, salvaged=2)
    assert store.window_ids("web") == [3, 4]
    archive = store.window("web", "archive")
    assert archive.ticks == 300  # windows 0..2
    assert archive.sessions == {"s0", "s1", "s2"}
    summary = store.summary("web")
    assert summary["ticks"] == 500  # nothing lost to expiry
    assert summary["entries"] == 10
    assert summary["archive"]["segments"] == 3
    assert store.totals()["windows_archived"] == 3
    # merged() folds the archive back in by default...
    assert store.merged("web").total_exclusive() == 500
    # ...and can be scoped to named windows, including the archive.
    assert store.merged("web", wids=[4]).total_exclusive() == 100
    assert store.merged(
        "web", wids=["archive", "3"]
    ).total_exclusive() == 400


def test_diff_between_windows_flags_the_regression():
    state = {"now": 0.0}
    store = WindowStore(window_seconds=60.0, clock=clock_at(state))
    store.add("web", FOLDED, CALLS, entries=10, salvaged=10)
    state["now"] = 60.0
    hot = dict(FOLDED)
    hot[("app::Main()", "app::Regress()")] = 2000
    hot_calls = dict(CALLS, **{"app::Regress()": 6})
    store.add("web", hot, hot_calls, entries=12, salvaged=12)
    diff = store.diff("web", 0, 1)
    top = diff.regressions()[0]
    assert top.method == "app::Regress()"
    assert top.appeared


def test_store_errors_name_what_exists():
    store = WindowStore()
    with pytest.raises(KeyError, match="unknown tenant 'nope'"):
        store.window("nope", 0)
    with pytest.raises(KeyError, match="unknown tenant"):
        store.merged("nope")
    with pytest.raises(KeyError, match="unknown tenant"):
        store.summary("nope")
    store.add("web", {A: 1}, entries=1, salvaged=1)
    with pytest.raises(KeyError, match="has no window 99"):
        store.window("web", 99)
    with pytest.raises(KeyError, match="has no archive yet"):
        store.window("web", "archive")
    with pytest.raises(KeyError, match="has no window"):
        store.merged("web", wids=["bogus"])


def test_store_validates_geometry():
    with pytest.raises(ValueError, match="window_seconds"):
        WindowStore(window_seconds=0)
    with pytest.raises(ValueError, match="retention"):
        WindowStore(retention=0)
    with pytest.raises(ValueError, match="max_paths"):
        WindowStore(max_paths=1)


def test_store_compacts_per_window_and_counts_it():
    store = WindowStore(max_paths=4, clock=lambda: 0.0)
    folded = {("root", f"f{i}"): 10 + i for i in range(8)}
    store.add("web", folded, entries=8, salvaged=8)
    totals = store.totals()
    assert totals["paths"] == 4
    assert totals["paths_compacted"] == 4  # 8 -> 3 hottest + <other>
    assert store.merged("web").total_exclusive() == sum(folded.values())
