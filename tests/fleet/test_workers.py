"""The analysis pool: packed-segment workers and their accounting.

Every worker result must satisfy the no-silent-drop identity
(``salvaged + quarantined == entries``) whether the handoff was clean
or a crashed producer's dirty snapshot, and failures must come back
in-band — one bad segment never poisons the pool.
"""

import pytest

from repro.core import KIND_CALL
from repro.core.log import SharedLog
from repro.faults import CrashingWriter, InjectedCrash, crashed_snapshot
from repro.fleet import AnalysisPool, SegmentResult
from repro.fleet.workers import analyze_segment
from repro.symbols import BinaryImage


def crashed_segment():
    """A dirty handoff: the producer dies mid-flush; returns
    ``(snapshot bytes, symtab json)``."""
    image = BinaryImage("crashy")
    image.add_function("app::Crashy()", size=64)
    addr = next(iter(image.symtab)).addr
    log = SharedLog.create(
        16, sealed=True, profiler_addr=image.profiler_addr
    )
    writer = CrashingWriter(log, block=4, phase="mid-write",
                            crash_flush=2)
    with pytest.raises(InjectedCrash):
        for i in range(16):
            writer.append(KIND_CALL, i, addr, 0)
    return crashed_snapshot(log), image.to_json()


def test_clean_segment_matches_direct_analysis(baseline_session):
    result = analyze_segment(
        (baseline_session["log_bytes"], baseline_session["symtab"],
         "auto")
    )
    assert result.ok
    assert result.accounted
    assert result.entries == baseline_session["entries"]
    assert result.salvaged == baseline_session["entries"]
    assert result.quarantined == 0
    assert result.ticks == baseline_session["ticks"]
    assert result.folded == baseline_session["folded"]
    assert result.method_calls["app::Step()"] == 4
    assert result.threads >= 1
    assert result.to_dict()["paths"] == len(result.folded)


def test_dirty_handoff_degrades_to_exact_quarantine():
    snapshot, symtab = crashed_segment()
    result = analyze_segment((snapshot, symtab, "auto"))
    assert result.ok
    assert result.accounted, result.to_dict()
    assert result.quarantined > 0  # the torn tail was set aside...
    assert result.salvaged > 0  # ...but the sealed prefix survived
    assert result.segments_recovered > 0


def test_garbage_bytes_report_in_band():
    result = analyze_segment((b"not a log image", "{}", "auto"))
    assert not result.ok
    assert result.error
    assert result.entries == 0


def test_bad_symtab_reports_in_band(baseline_session):
    result = analyze_segment(
        (baseline_session["log_bytes"], "not json", "auto")
    )
    assert not result.ok
    assert "Error" in result.error or "error" in result.error


def test_segment_result_identity_property():
    assert SegmentResult(entries=5, salvaged=3, quarantined=2).accounted
    assert not SegmentResult(entries=5, salvaged=3).accounted


def test_thread_pool_fallback_and_reuse(baseline_session):
    pool = AnalysisPool(jobs=2, prefer_processes=False)
    try:
        futures = [
            pool.submit(
                baseline_session["log_bytes"],
                baseline_session["symtab"],
            )
            for _ in range(4)
        ]
        assert pool.kind == "thread"
        for future in futures:
            result = future.result(timeout=60)
            assert result.ok and result.accounted
            assert result.ticks == baseline_session["ticks"]
    finally:
        pool.close()
    assert pool.kind is None  # closed pools report no backing


def test_pool_context_manager_and_validation():
    with pytest.raises(ValueError, match="jobs"):
        AnalysisPool(jobs=0)
    with AnalysisPool(jobs=1, prefer_processes=False) as pool:
        assert pool.kind == "thread"
    assert pool.kind is None


def test_memoryview_submit_is_zero_copy():
    """The shm fast path's contract: a ``memoryview`` payload crosses
    ``submit()`` on a thread-backed pool without being materialised —
    tracemalloc must see bookkeeping, not a second copy of the
    segment.  The pool's one worker is parked behind an event during
    the measurement so nothing else allocates in the window."""
    import threading
    import tracemalloc

    from repro.core import KIND_RET

    image = BinaryImage("big")
    image.add_function("app::Hot()", size=64)
    addr = next(iter(image.symtab)).addr
    symtab = image.to_json()

    n = 1 << 18  # ~6 MiB of v1 entries: a copy would dwarf the noise
    log = SharedLog.create(n, profiler_addr=image.profiler_addr)
    assert log.append_columns(
        [KIND_CALL, KIND_RET] * (n // 2),
        list(range(n)),
        [addr] * n,
        [1] * n,
    ) == n
    log._store_tail()
    payload = memoryview(log.to_bytes())

    pool = AnalysisPool(jobs=1, prefer_processes=False)
    gate = threading.Event()
    try:
        blocker = pool._ensure().submit(gate.wait)
        assert pool.kind == "thread"
        tracemalloc.start()
        before = tracemalloc.get_traced_memory()[0]
        future = pool.submit(payload, symtab)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        gate.set()
        blocker.result(timeout=60)
        result = future.result(timeout=60)
    finally:
        gate.set()
        pool.close()

    assert peak - before < len(payload) // 4  # no copy was taken
    assert result.ok and result.accounted
    assert result.salvaged == n
