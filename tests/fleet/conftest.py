"""Shared fixtures: recorded sessions the fleet tests ingest.

Sessions are recorded once per test session (they are deterministic)
and handed around as plain dicts of packed bytes + expectations, so
every test exercises the same handoff shape producers use: a sealed
log image plus the symtab JSON.
"""

import pytest

from repro.api import TEEPerf, symbol


class FleetApp:
    """A small two-path workload; ``hot=True`` adds a heavy method the
    diff tests must flag as a regression."""

    def __init__(self, env, hot=False):
        self.env = env
        self.hot = hot

    @symbol("app::Run()")
    def run(self):
        for _ in range(4):
            self.step()
        if self.hot:
            for _ in range(6):
                self.regress()

    @symbol("app::Step()")
    def step(self):
        self.env.compute(10_000)

    @symbol("app::Regress()")
    def regress(self):
        self.env.compute(30_000)


def record_session(hot=False, name="fleet-app"):
    """One recorded run -> the producer handoff dict."""
    perf = TEEPerf.simulated(name=name, capacity=512, sealed=True)
    app = FleetApp(perf.env, hot=hot)
    perf.compile_instance(app)
    perf.record(app.run)
    analysis = perf.analyze()
    log = perf.recorder.log
    return {
        "log_bytes": log.to_bytes(),
        "symtab": perf.program.image.to_json(),
        "ticks": int(analysis.total_exclusive()),
        "entries": len(log),
        "folded": dict(analysis.folded()),
    }


@pytest.fixture(scope="session")
def baseline_session():
    return record_session()


@pytest.fixture(scope="session")
def hot_session():
    return record_session(hot=True)
