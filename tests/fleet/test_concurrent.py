"""Concurrent ingest: many producers, rolling windows, crashes.

The fleet's whole contract under load: every producer's entries are
either salvaged into a window or quarantined with a reason —
``salvaged + quarantined == entries`` holds per session, per tenant,
and fleet-wide, with thread producers, process producers (the CLI),
and a producer that crashes mid-handoff, all at once.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fleet import FleetClient, FleetDaemon, IngestListener

from tests.fleet.test_workers import crashed_segment

SRC = Path(__file__).resolve().parents[2] / "src"


def test_thread_producers_roll_windows_without_drops(baseline_session):
    """Six socket sessions across two tenants publish while the
    (50 ms) windows roll; the books balance exactly."""
    daemon = FleetDaemon(
        window_seconds=0.05, retention=64, jobs=2,
        prefer_processes=False,
    ).start()
    listener = IngestListener(daemon, port=0)
    listener.start()
    segments_each = 3
    failures = []
    barrier = threading.Barrier(6)

    def produce(tenant, name):
        try:
            with FleetClient(listener.address).open(
                tenant, baseline_session["symtab"], session=name
            ) as client:
                barrier.wait(timeout=30)
                for _ in range(segments_each):
                    client.publish(baseline_session["log_bytes"])
                    time.sleep(0.02)  # let a window boundary pass
                accounting = client.bye()["accounting"]
            expected = segments_each * baseline_session["entries"]
            assert accounting["entries"] == expected, accounting
            assert accounting["salvaged"] == expected, accounting
        except Exception as exc:  # noqa: BLE001 — re-raised below
            failures.append(exc)

    producers = [
        threading.Thread(
            target=produce, args=("web" if i % 2 else "db", f"p{i}")
        )
        for i in range(6)
    ]
    try:
        for p in producers:
            p.start()
        for p in producers:
            p.join(timeout=120)
        assert not failures, failures
        daemon.drain()
        status = daemon.status()
        total = 6 * segments_each * baseline_session["entries"]
        assert status["counters"]["entries"] == total
        assert status["counters"]["entries_salvaged"] == total
        assert status["accounted"], status["counters"]
        assert not status["recent_errors"]
        # The ingest really did roll across window boundaries...
        assert len(daemon.store.window_ids("web")) > 1
        # ...and every tick is still queryable per tenant.
        for tenant in ("web", "db"):
            assert daemon.profile(tenant).total_exclusive() == (
                3 * segments_each * baseline_session["ticks"]
            )
    finally:
        listener.stop()
        daemon.stop()


def test_process_producers_via_the_cli(tmp_path, baseline_session):
    """Two real producer *processes* (the ``tee-perf fleet ingest``
    CLI) land concurrently next to an in-process session."""
    log_path = tmp_path / "seg.teeperf"
    log_path.write_bytes(baseline_session["log_bytes"])
    (tmp_path / "seg.teeperf.symtab.json").write_text(
        baseline_session["symtab"]
    )
    daemon = FleetDaemon(jobs=2, prefer_processes=False).start()
    listener = IngestListener(daemon, port=0)
    port = listener.start()
    try:
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "fleet",
                    "ingest", str(log_path),
                    "--connect", f"127.0.0.1:{port}",
                    "--tenant", tenant, "--session", name,
                ],
                env={**os.environ, "PYTHONPATH": str(SRC)},
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            for tenant, name in (("web", "proc-1"), ("db", "proc-2"))
        ]
        with daemon.session(
            "web", baseline_session["symtab"], session="inproc"
        ) as session:
            session.publish(baseline_session["log_bytes"])
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            accounting = json.loads(out)
            assert accounting["entries"] == baseline_session["entries"]
            assert accounting["salvaged"] == baseline_session["entries"]
        daemon.drain()
        status = daemon.status()
        assert status["counters"]["segments_analyzed"] == 3
        assert status["accounted"], status["counters"]
        assert daemon.profile("web").total_exclusive() == (
            2 * baseline_session["ticks"]
        )
        assert daemon.profile("db").total_exclusive() == (
            baseline_session["ticks"]
        )
    finally:
        listener.stop()
        daemon.stop()


def test_crash_mid_handoff_accounts_exactly_end_to_end(
    baseline_session,
):
    """A producer dies mid-flush; its dirty snapshot goes through the
    socket next to healthy sessions.  No silent drops anywhere: the
    bye ack, the tenant summary, and the fleet counters all balance,
    and the quarantine alert fires."""
    snapshot, crash_symtab = crashed_segment()
    daemon = FleetDaemon(jobs=2, prefer_processes=False).start()
    listener = IngestListener(daemon, port=0)
    listener.start()
    try:
        with FleetClient(listener.address).open(
            "web", baseline_session["symtab"], session="healthy"
        ) as client:
            client.publish(baseline_session["log_bytes"])
        with FleetClient(listener.address).open(
            "web", crash_symtab, session="crashed"
        ) as client:
            client.publish(snapshot)
            crashed = client.bye()["accounting"]

        # Per session: the torn tail is quarantined, the identity holds.
        assert crashed["quarantined"] > 0
        assert (
            crashed["salvaged"] + crashed["quarantined"]
            == crashed["entries"]
        )
        # Per tenant: the summary carries the same exact numbers.
        summary = daemon.summary("web")
        assert summary["entries"] == (
            baseline_session["entries"] + crashed["entries"]
        )
        quarantined = sum(
            w["quarantined"] for w in summary["windows"]
        )
        assert quarantined == crashed["quarantined"]
        # Fleet-wide: counters balance and recovery was counted.
        status = daemon.status()
        assert status["accounted"], status["counters"]
        assert status["counters"]["segments_recovered"] >= 1
        assert status["counters"]["entries_quarantined"] == (
            crashed["quarantined"]
        )
        # And the pager goes off.
        daemon.monitor.poll_once()
        firing = {
            s.rule.name for s in daemon.monitor.engine.firing()
        }
        assert "fleet-quarantine" in firing
    finally:
        listener.stop()
        daemon.stop()
