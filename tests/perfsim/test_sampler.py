"""Unit and integration tests for the perf sampling model."""

import pytest

from repro.core import Instrumenter, symbol
from repro.machine import Machine
from repro.perfsim import OTHER, PerfSim
from repro.tee import NATIVE, SGX_V1, make_env


class TwoPhase:
    """Alternates a hot and a cold phase with controllable durations."""

    def __init__(self, env, hot_cycles, cold_cycles, rounds):
        self.env = env
        self.hot_cycles = hot_cycles
        self.cold_cycles = cold_cycles
        self.rounds = rounds

    @symbol("app::Main()")
    def main(self):
        for _ in range(self.rounds):
            self.hot()
            self.cold()

    @symbol("app::Hot()")
    def hot(self):
        self.env.compute(self.hot_cycles)

    @symbol("app::Cold()")
    def cold(self):
        self.env.compute(self.cold_cycles)


def run_perf(platform=NATIVE, hot=900_000, cold=100_000, rounds=400,
             freq_hz=3997.0, jitter=0.0):
    machine = Machine(cores=8)
    env = make_env(machine, platform)
    app = TwoPhase(env, hot, cold, rounds)
    ins = Instrumenter("twophase")
    ins.instrument_instance(app)
    program = ins.finish()
    perf = PerfSim(env, freq_hz=freq_hz, jitter=jitter)
    return perf.profile(program, app.main), machine


def test_attribution_matches_time_split():
    result, _ = run_perf(hot=900_000, cold=100_000)
    assert result.total_samples > 100
    assert result.fraction("app::Hot()") == pytest.approx(0.9, abs=0.05)
    assert result.fraction("app::Cold()") == pytest.approx(0.1, abs=0.05)


def test_leaf_attribution_not_caller():
    result, _ = run_perf()
    # main never executes own cycles at sample instants (its body is
    # all calls), so it gets (almost) no leaf samples.
    assert result.fraction("app::Main()") < 0.02


def test_overhead_grows_with_frequency():
    slow, _ = run_perf(freq_hz=997.0)
    fast, _ = run_perf(freq_hz=9973.0)
    assert fast.overhead_cycles() > slow.overhead_cycles()


def test_enclave_sampling_costs_aex():
    native, _ = run_perf(NATIVE)
    sgx, _ = run_perf(SGX_V1)
    native_frac = native.overhead_cycles() / native.base_cycles
    sgx_frac = sgx.overhead_cycles() / sgx.base_cycles
    assert sgx_frac > 3 * native_frac


def test_sampling_frequency_bias():
    """Phases locked to the sampling grid are attributed wrongly."""
    machine_freq = 3.6e9
    freq = 1000.0
    period_cycles = machine_freq / freq
    # hot+cold exactly one period: every sample hits the same phase, so
    # one of the two equally long phases receives (almost) all samples.
    hot = int(period_cycles * 0.5)
    cold = int(period_cycles * 0.5)
    biased, _ = run_perf(hot=hot, cold=cold, rounds=200, freq_hz=freq)
    top = max(
        biased.fraction("app::Hot()"), biased.fraction("app::Cold()")
    )
    assert top > 0.95  # ground truth is 0.5 / 0.5

    # Jitter (perf's mitigation) washes the bias out substantially.
    jittered, _ = run_perf(
        hot=hot, cold=cold, rounds=200, freq_hz=freq, jitter=0.9
    )
    jtop = max(
        jittered.fraction("app::Hot()"), jittered.fraction("app::Cold()")
    )
    assert jtop < top


def test_report_text():
    result, _ = run_perf()
    text = result.report()
    assert "Samples" in text
    assert "app::Hot()" in text
    assert "%" in text


def test_idle_gaps_attributed_to_other():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)

    class App:
        @symbol("app::Tiny()")
        def tiny(self):
            env.compute(1_000)

        def untraced(self):  # instrumented? no __tee_symbol__, still is
            pass

    app = App()
    ins = Instrumenter("idle")
    ins.instrument_instance(app)
    program = ins.finish()

    def main():
        env.compute(50_000_000)  # long stretch outside any function
        app.tiny()

    perf = PerfSim(env, freq_hz=3997.0)
    result = perf.profile(program, main)
    assert result.fraction(OTHER) > 0.9


def test_callgraph_mode_produces_folded_stacks():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    app = TwoPhase(env, 900_000, 100_000, 400)
    ins = Instrumenter("cg")
    ins.instrument_instance(app)
    program = ins.finish()
    result = PerfSim(env, callgraph=True).profile(program, app.main)
    folded = result.folded()
    assert ("app::Main()", "app::Hot()") in folded
    assert sum(folded.values()) == result.total_samples
    # The flame-graph writer accepts perf's folded stacks directly.
    from repro.api import FlameGraph

    graph = FlameGraph(folded, title="perf -g")
    assert graph.share("app::Hot()") == pytest.approx(0.9, abs=0.06)


def test_callgraph_mode_costs_more():
    plain, _ = run_perf()
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    app = TwoPhase(env, 900_000, 100_000, 400)
    ins = Instrumenter("cg2")
    ins.instrument_instance(app)
    program = ins.finish()
    heavy = PerfSim(env, callgraph=True).profile(program, app.main)
    assert heavy.overhead_cycles() > plain.overhead_cycles()


def test_folded_requires_callgraph_mode():
    result, _ = run_perf()
    with pytest.raises(ValueError):
        result.folded()


def test_invalid_parameters_rejected():
    machine = Machine()
    env = make_env(machine, NATIVE)
    with pytest.raises(ValueError):
        PerfSim(env, freq_hz=0)
    with pytest.raises(ValueError):
        PerfSim(env, jitter=1.5)


def test_frequency_too_high_for_cost_rejected():
    machine = Machine()
    env = make_env(machine, SGX_V1)

    class App:
        @symbol("x::Y()")
        def y(self):
            env.compute(10)

    app = App()
    ins = Instrumenter("x")
    ins.instrument_instance(app)
    program = ins.finish()
    perf = PerfSim(env, freq_hz=1e6)  # period 3600 cycles < AEX cost
    with pytest.raises(ValueError):
        perf.profile(program, app.y)


def test_multithreaded_sampling_counts_all_threads():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)

    class App:
        @symbol("mt::Spin()")
        def spin(self):
            env.compute(20_000_000)

        @symbol("mt::Main()")
        def main(self):
            workers = [machine.spawn(self.spin) for _ in range(3)]
            for worker in workers:
                worker.join()

    app = App()
    ins = Instrumenter("mt")
    ins.instrument_instance(app)
    program = ins.finish()
    result = PerfSim(env).profile(program, app.main)
    assert result.threads >= 4
    # Three spinning workers plus the main thread blocked in Main();
    # perf attributes the waiting time to Main just like real perf
    # attributes it to the futex path.
    assert result.fraction("mt::Spin()") > 0.6
    assert result.fraction("mt::Main()") > 0.1
