"""Dead-link and dead-anchor check over the documentation.

Every relative markdown link in docs/*.md, README.md and DESIGN.md
must point at a file that exists, and every ``#anchor`` — in-page or
cross-page — must match a heading in the target file under
GitHub-style slugging.  This is the docs half of the CI workflow; it
also runs as part of tier-1 so a broken link never lands.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "DESIGN.md"]
    + list((ROOT / "docs").glob("*.md"))
)

# [text](target) — excluding images' alt text is unnecessary: the
# target rules are the same.  Stops at the first ')' like markdown.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Inside fenced code blocks, "](" is just text and '#' is a comment.
_FENCE = re.compile(r"```.*?```", re.DOTALL)

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

# GitHub slugs keep word characters and hyphens; spaces become
# hyphens; everything else (backticks, punctuation, ×, §) is dropped.
_SLUG_DROP = re.compile(r"[^\w\- ]", re.UNICODE)


def _slug(heading):
    text = re.sub(r"[*_`]", "", heading)  # inline emphasis/code markers
    text = _SLUG_DROP.sub("", text.strip().lower())
    return text.replace(" ", "-")


def _anchors(path):
    """The set of anchor slugs a markdown file exposes, with GitHub's
    -1, -2 suffixing for duplicate headings."""
    seen = {}
    anchors = set()
    for line in _FENCE.sub("", path.read_text()).splitlines():
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _links(path):
    text = _FENCE.sub("", path.read_text())
    return _LINK.findall(text)


def test_doc_set_is_nonempty():
    names = [p.name for p in DOC_FILES]
    assert "README.md" in names
    assert "architecture.md" in names
    assert "analyzer-pipeline.md" in names
    assert "benchmarking.md" in names
    assert "query-reference.md" in names
    assert "log-format.md" in names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in _links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:  # pure in-page anchor
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name}: dead links {broken}"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_anchors_resolve(path):
    broken = []
    for target in _links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if "#" not in target:
            continue
        file_part, anchor = target.split("#", 1)
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not (dest.exists() and dest.suffix == ".md"):
            continue  # dead files are test_relative_links_resolve's job
        if anchor not in _anchors(dest):
            broken.append(target)
    assert not broken, f"{path.name}: dead anchors {broken}"


def test_slugger_matches_github_conventions():
    assert _slug("The suite artifact") == "the-suite-artifact"
    assert _slug("Trust but verify: `--handicap`") == (
        "trust-but-verify---handicap"
    )
    assert _slug("Comparing runs: `--baseline`") == (
        "comparing-runs---baseline"
    )
    assert _slug("Reconstruction engines") == "reconstruction-engines"


def test_benchmarking_doc_is_linked_from_readme_and_architecture():
    for source in (ROOT / "README.md", ROOT / "docs" / "architecture.md"):
        targets = [t.split("#")[0] for t in _links(source)]
        assert any(t.endswith("benchmarking.md") for t in targets), (
            f"{source.name} does not link docs/benchmarking.md"
        )
