"""Dead-link check over the documentation.

Every relative markdown link in docs/*.md, README.md and DESIGN.md
must point at a file that exists (anchors and external URLs are out of
scope).  This is the docs half of the CI workflow; it also runs as
part of tier-1 so a broken link never lands.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "DESIGN.md"]
    + list((ROOT / "docs").glob("*.md"))
)

# [text](target) — excluding images' alt text is unnecessary: the
# target rules are the same.  Stops at the first ')' like markdown.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Inside fenced code blocks, "](" is just text.
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _links(path):
    text = _FENCE.sub("", path.read_text())
    return _LINK.findall(text)


def test_doc_set_is_nonempty():
    names = [p.name for p in DOC_FILES]
    assert "README.md" in names
    assert "architecture.md" in names
    assert "analyzer-pipeline.md" in names
    assert "query-reference.md" in names
    assert "log-format.md" in names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(path):
    broken = []
    for target in _links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#")[0]
        if not target:  # pure in-page anchor
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name}: dead links {broken}"
