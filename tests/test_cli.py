"""Tests for the tee-perf command-line interface."""

import pytest

from repro.cli import main


def test_demo_then_inspect(tmp_path, capsys):
    out = tmp_path / "demo"
    assert main(["demo", "--platform", "sgx-v1", "-o", str(out)]) == 0
    demo_out = capsys.readouterr().out
    assert "demo::Process()" in demo_out
    assert (out / "demo.teeperf").exists()
    assert (out / "demo_flamegraph.svg").exists()

    assert main(["inspect", str(out / "demo.teeperf")]) == 0
    inspect_out = capsys.readouterr().out
    assert "calls/returns:  101/101" in inspect_out  # main + 50 x 2 kernels
    assert "threads:        1" in inspect_out


def test_demo_unknown_platform_raises(tmp_path):
    with pytest.raises(KeyError):
        main(["demo", "--platform", "sgx-v9", "-o", str(tmp_path)])


def test_flamegraph_from_folded(tmp_path, capsys):
    folded = tmp_path / "stacks.folded"
    folded.write_text("main;io 30\nmain;compute 70\nmain 10\n")
    svg = tmp_path / "graph.svg"
    assert main(["flamegraph", str(folded), "-o", str(svg)]) == 0
    assert svg.read_text().startswith("<svg")
    assert "110 total ticks" in capsys.readouterr().out


def test_flamegraph_rejects_garbage(tmp_path, capsys):
    folded = tmp_path / "bad.folded"
    folded.write_text("this is not folded format\n")
    assert main(["flamegraph", str(folded), "-o", str(tmp_path / "x.svg")]) == 1
    assert "not a folded-stacks line" in capsys.readouterr().err


def test_inspect_multithreaded_log(tmp_path, capsys):
    from repro.api import SharedLog
    from repro.core import KIND_CALL, KIND_RET

    log = SharedLog.create(16, pid=7)
    log.append(KIND_CALL, 10, 0x400000, 1)
    log.append(KIND_CALL, 12, 0x400040, 2)
    log.append(KIND_RET, 20, 0x400040, 2)
    log.append(KIND_RET, 30, 0x400000, 1)
    path = tmp_path / "run.teeperf"
    log.dump(str(path))
    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "pid:            7" in out
    assert "threads:        2" in out
    assert "counter span:   10 .. 30" in out


def test_analyze_offline_formats(tmp_path, capsys):
    out = tmp_path / "demo"
    main(["demo", "-o", str(out)])
    capsys.readouterr()
    log = str(out / "demo.teeperf")

    assert main(["analyze", log]) == 0
    assert "demo::Process()" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "gprof"]) == 0
    assert "Flat profile:" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "callgrind"]) == 0
    assert "events: Ticks" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "folded"]) == 0
    assert "demo::Main();demo::Parse()" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "speedscope"]) == 0
    assert "speedscope" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "metrics"]) == 0
    metrics = capsys.readouterr().out
    assert "teeperf_entries_ingested_total 202" in metrics
    assert "teeperf_symbol_cache_hit_rate" in metrics


def test_convert_round_trip(tmp_path, capsys):
    out = tmp_path / "demo"
    main(["demo", "-o", str(out)])
    capsys.readouterr()
    log = str(out / "demo.teeperf")

    # Fixed-width -> rev 1.2, with accounting printed.
    assert main(["convert", log]) == 0
    converted = capsys.readouterr().out
    assert "round trip: 202/202 entries OK" in converted
    assert "smaller" in converted
    tpc = str(out / "demo.tpc")

    # The analyzer reads the compressed image transparently and
    # produces the identical profile.
    assert main(["analyze", log, "--format", "folded"]) == 0
    before = capsys.readouterr().out
    assert main(["analyze", tpc,
                 "--image", log + ".symtab.json",
                 "--format", "folded"]) == 0
    assert capsys.readouterr().out == before

    # Converting an already-columnar image is a no-op...
    assert main(["convert", tpc, "--to", "1.2"]) == 0
    assert "already rev 1.2" in capsys.readouterr().out
    # ...and converting back restores a fixed-width image.
    back = str(tmp_path / "back.teeperf")
    assert main(["convert", tpc, "-o", back]) == 0
    assert "round trip: 202/202 entries OK" in capsys.readouterr().out
    assert main(["inspect", back]) == 0
    assert "calls/returns:  101/101" in capsys.readouterr().out

    assert main(["convert", str(tmp_path / "missing.teeperf")]) == 1
    assert "cannot convert" in capsys.readouterr().err


def test_analyze_jobs_and_stats(tmp_path, capsys):
    out = tmp_path / "demo"
    main(["demo", "-o", str(out)])
    capsys.readouterr()
    log = str(out / "demo.teeperf")

    assert main(["analyze", log, "--jobs", "4", "--stats"]) == 0
    text = capsys.readouterr().out
    assert "pipeline stats:" in text
    assert "entries ingested:  202" in text
    assert "jobs=4" in text

    # The parallel path prints the identical report.
    assert main(["analyze", log]) == 0
    serial = capsys.readouterr().out
    assert main(["analyze", log, "--jobs", "4", "--chunk-size", "16"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_analyze_missing_symtab(tmp_path, capsys):
    from repro.api import SharedLog

    log = SharedLog.create(4)
    path = tmp_path / "orphan.teeperf"
    log.dump(str(path))
    assert main(["analyze", str(path)]) == 1
    assert "no symbol table" in capsys.readouterr().err


def test_diff_two_demo_runs(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    main(["demo", "--platform", "sgx-v1", "-o", str(a)])
    main(["demo", "--platform", "native", "-o", str(b)])
    capsys.readouterr()
    svg = tmp_path / "diff.svg"
    assert main(
        [
            "diff",
            str(a / "demo.teeperf"),
            str(b / "demo.teeperf"),
            "--svg",
            str(svg),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "differential profile" in out
    # Process() does syscalls: hugely expensive in SGX, cheap natively,
    # so its share shrinks in the diff.
    assert "demo::Process()" in out
    assert svg.read_text().startswith("<svg")


def test_diff_missing_input(tmp_path, capsys):
    assert main(
        ["diff", str(tmp_path / "a.teeperf"), str(tmp_path / "b.teeperf")]
    ) == 1
    assert "missing input" in capsys.readouterr().err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------------------------
# The fleet subcommand


def fleet_service():
    """An in-process daemon + listener + HTTP server for CLI tests."""
    from repro.fleet import FleetDaemon, FleetServer, IngestListener

    daemon = FleetDaemon(jobs=2, prefer_processes=False).start()
    listener = IngestListener(daemon, port=0)
    listener.start()
    server = FleetServer(daemon, port=0)
    server.start()
    return daemon, listener, server


def test_fleet_ingest_and_query_round_trip(tmp_path, capsys):
    import json

    main(["demo", "--platform", "sgx-v1", "--sealed",
          "-o", str(tmp_path)])
    capsys.readouterr()
    log = tmp_path / "demo.teeperf"
    daemon, listener, server = fleet_service()
    try:
        assert main([
            "fleet", "ingest", str(log),
            "--connect", f"127.0.0.1:{listener.port}",
            "--tenant", "web", "--session", "cli-1",
        ]) == 0
        accounting = json.loads(capsys.readouterr().out)
        assert accounting["session"] == "cli-1"
        assert accounting["quarantined"] == 0
        assert accounting["salvaged"] == accounting["entries"] > 0

        assert main(["fleet", "query", "--url", server.url]) == 0
        index = json.loads(capsys.readouterr().out)
        assert index["tenants"] == ["web"]

        assert main([
            "fleet", "query", "--url", server.url, "--tenant", "web",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["merged"]["ticks"] == accounting["ticks"]

        assert main([
            "fleet", "query", "--url", server.url, "--status",
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["accounted"]

        assert main([
            "fleet", "query", "--url", server.url, "--tenant", "web",
            "--format", "folded",
        ]) == 0
        assert "demo::Main()" in capsys.readouterr().out
    finally:
        server.stop()
        listener.stop()
        daemon.stop()


def test_fleet_ingest_bad_inputs(tmp_path, capsys):
    assert main([
        "fleet", "ingest", str(tmp_path / "nope.teeperf"),
        "--connect", "localhost",  # no port
        "--tenant", "web",
    ]) == 1
    assert "HOST:PORT" in capsys.readouterr().err
    assert main([
        "fleet", "ingest", str(tmp_path / "nope.teeperf"),
        "--connect", "127.0.0.1:9", "--tenant", "web",
    ]) == 1
    assert "missing input" in capsys.readouterr().err


def test_fleet_query_errors(capsys):
    # A diff without a tenant is a usage error...
    assert main([
        "fleet", "query", "--url", "http://127.0.0.1:9",
        "--diff", "0", "1",
    ]) == 1
    assert "--diff needs --tenant" in capsys.readouterr().err
    # ...and an unreachable daemon is a clean failure, not a traceback.
    assert main([
        "fleet", "query", "--url", "http://127.0.0.1:9",
    ]) == 1
    assert "cannot reach" in capsys.readouterr().err


def test_fleet_serve_round_trip(tmp_path, capsys):
    """The serve subcommand boots a real daemon; a client lands a
    session while it is up."""
    import json
    import re
    import threading
    import time
    import urllib.request

    from repro.api import FleetClient, TEEPerf
    from repro.core import symbol

    class App:
        @symbol("cli::Main()")
        def run(self, env):
            env.compute(20_000)

    perf = TEEPerf.simulated(name="cli-serve", capacity=512, sealed=True)
    app = App()
    perf.compile_instance(app)
    perf.record(app.run, perf.env)

    serve = threading.Thread(
        target=main,
        args=(["fleet", "serve", "--duration", "15", "--jobs", "1"],),
        daemon=True,
    )
    # Capture the announced ports via capsys from the main thread: poll
    # until the banner shows up.
    serve.start()
    deadline = time.monotonic() + 10
    banner = ""
    while "queries at" not in banner:
        banner += capsys.readouterr().out
        if time.monotonic() > deadline:
            raise AssertionError(f"serve never announced: {banner!r}")
        time.sleep(0.02)
    ingest_port = int(
        re.search(r"ingest on 127\.0\.0\.1:(\d+)", banner).group(1)
    )
    url = re.search(r"queries at (http://[^/]+)/profiles", banner).group(1)

    with FleetClient(("127.0.0.1", ingest_port)).open(
        "web", perf.program.image.to_json(), session="s1"
    ) as client:
        client.publish(perf.recorder.log.to_bytes())
        accounting = client.bye()["accounting"]
    assert accounting["salvaged"] == accounting["entries"] > 0
    with urllib.request.urlopen(f"{url}/profiles/web", timeout=10) as r:
        summary = json.loads(r.read())
    assert summary["merged"]["ticks"] == accounting["ticks"]
