"""Tests for the tee-perf command-line interface."""

import pytest

from repro.cli import main


def test_demo_then_inspect(tmp_path, capsys):
    out = tmp_path / "demo"
    assert main(["demo", "--platform", "sgx-v1", "-o", str(out)]) == 0
    demo_out = capsys.readouterr().out
    assert "demo::Process()" in demo_out
    assert (out / "demo.teeperf").exists()
    assert (out / "demo_flamegraph.svg").exists()

    assert main(["inspect", str(out / "demo.teeperf")]) == 0
    inspect_out = capsys.readouterr().out
    assert "calls/returns:  101/101" in inspect_out  # main + 50 x 2 kernels
    assert "threads:        1" in inspect_out


def test_demo_unknown_platform_raises(tmp_path):
    with pytest.raises(KeyError):
        main(["demo", "--platform", "sgx-v9", "-o", str(tmp_path)])


def test_flamegraph_from_folded(tmp_path, capsys):
    folded = tmp_path / "stacks.folded"
    folded.write_text("main;io 30\nmain;compute 70\nmain 10\n")
    svg = tmp_path / "graph.svg"
    assert main(["flamegraph", str(folded), "-o", str(svg)]) == 0
    assert svg.read_text().startswith("<svg")
    assert "110 total ticks" in capsys.readouterr().out


def test_flamegraph_rejects_garbage(tmp_path, capsys):
    folded = tmp_path / "bad.folded"
    folded.write_text("this is not folded format\n")
    assert main(["flamegraph", str(folded), "-o", str(tmp_path / "x.svg")]) == 1
    assert "not a folded-stacks line" in capsys.readouterr().err


def test_inspect_multithreaded_log(tmp_path, capsys):
    from repro.api import SharedLog
    from repro.core import KIND_CALL, KIND_RET

    log = SharedLog.create(16, pid=7)
    log.append(KIND_CALL, 10, 0x400000, 1)
    log.append(KIND_CALL, 12, 0x400040, 2)
    log.append(KIND_RET, 20, 0x400040, 2)
    log.append(KIND_RET, 30, 0x400000, 1)
    path = tmp_path / "run.teeperf"
    log.dump(str(path))
    assert main(["inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "pid:            7" in out
    assert "threads:        2" in out
    assert "counter span:   10 .. 30" in out


def test_analyze_offline_formats(tmp_path, capsys):
    out = tmp_path / "demo"
    main(["demo", "-o", str(out)])
    capsys.readouterr()
    log = str(out / "demo.teeperf")

    assert main(["analyze", log]) == 0
    assert "demo::Process()" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "gprof"]) == 0
    assert "Flat profile:" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "callgrind"]) == 0
    assert "events: Ticks" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "folded"]) == 0
    assert "demo::Main();demo::Parse()" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "speedscope"]) == 0
    assert "speedscope" in capsys.readouterr().out

    assert main(["analyze", log, "--format", "metrics"]) == 0
    metrics = capsys.readouterr().out
    assert "teeperf_entries_ingested_total 202" in metrics
    assert "teeperf_symbol_cache_hit_rate" in metrics


def test_analyze_jobs_and_stats(tmp_path, capsys):
    out = tmp_path / "demo"
    main(["demo", "-o", str(out)])
    capsys.readouterr()
    log = str(out / "demo.teeperf")

    assert main(["analyze", log, "--jobs", "4", "--stats"]) == 0
    text = capsys.readouterr().out
    assert "pipeline stats:" in text
    assert "entries ingested:  202" in text
    assert "jobs=4" in text

    # The parallel path prints the identical report.
    assert main(["analyze", log]) == 0
    serial = capsys.readouterr().out
    assert main(["analyze", log, "--jobs", "4", "--chunk-size", "16"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_analyze_missing_symtab(tmp_path, capsys):
    from repro.api import SharedLog

    log = SharedLog.create(4)
    path = tmp_path / "orphan.teeperf"
    log.dump(str(path))
    assert main(["analyze", str(path)]) == 1
    assert "no symbol table" in capsys.readouterr().err


def test_diff_two_demo_runs(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    main(["demo", "--platform", "sgx-v1", "-o", str(a)])
    main(["demo", "--platform", "native", "-o", str(b)])
    capsys.readouterr()
    svg = tmp_path / "diff.svg"
    assert main(
        [
            "diff",
            str(a / "demo.teeperf"),
            str(b / "demo.teeperf"),
            "--svg",
            str(svg),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "differential profile" in out
    # Process() does syscalls: hugely expensive in SGX, cheap natively,
    # so its share shrinks in the diff.
    assert "demo::Process()" in out
    assert svg.read_text().startswith("<svg")


def test_diff_missing_input(tmp_path, capsys):
    assert main(
        ["diff", str(tmp_path / "a.teeperf"), str(tmp_path / "b.teeperf")]
    ) == 1
    assert "missing input" in capsys.readouterr().err


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
