"""Ring-buffer time series and windowed aggregation."""

import pytest

from repro.monitor import RingSeries, SeriesStore


def test_ring_is_bounded():
    series = RingSeries(capacity=4)
    for i in range(10):
        series.append(i, i * 10)
    assert len(series) == 4
    assert [v for _, v in series.points()] == [60, 70, 80, 90]


def test_rate_is_per_second_change():
    series = RingSeries()
    series.append(0.0, 100)
    series.append(2.0, 300)
    assert series.rate() == pytest.approx(100.0)
    assert series.delta() == pytest.approx(200.0)


def test_rate_clamps_counter_resets_to_zero():
    series = RingSeries()
    series.append(0.0, 500)
    series.append(1.0, 20)  # source restarted
    assert series.rate() == 0.0


def test_window_by_seconds_and_count():
    series = RingSeries()
    for t in range(10):
        series.append(float(t), float(t))
    assert len(series.points(seconds=3.0)) == 4  # t in [6, 9]
    assert len(series.points(count=2)) == 2
    assert series.rate(seconds=3.0) == pytest.approx(1.0)


def test_percentiles_and_extremes():
    series = RingSeries()
    for i, value in enumerate((5.0, 1.0, 9.0, 3.0, 7.0)):
        series.append(float(i), value)
    assert series.percentile(0) == 1.0
    assert series.percentile(50) == 5.0
    assert series.percentile(100) == 9.0
    assert series.max() == 9.0
    assert series.min() == 1.0
    assert series.mean() == pytest.approx(5.0)


def test_empty_series_aggregates_are_safe():
    series = RingSeries()
    assert series.rate() == 0.0
    assert series.percentile(95) == 0.0
    assert series.last() is None
    agg = series.aggregate()
    assert agg["samples"] == 0


def test_aggregate_summary_shape():
    series = RingSeries()
    series.append(0.0, 0.0)
    series.append(1.0, 10.0)
    agg = series.aggregate()
    assert agg["rate"] == pytest.approx(10.0)
    assert agg["max"] == 10.0
    assert agg["last"] == 10.0
    assert agg["samples"] == 2


def test_store_records_whole_passes():
    store = SeriesStore(capacity=8)
    store.record_all(1.0, {"a": 1, "b": 10})
    store.record_all(2.0, {"a": 3, "b": 30})
    assert store.names() == ["a", "b"]
    assert store.series("a").delta() == 2
    aggregates = store.aggregates()
    assert aggregates["b"]["rate"] == pytest.approx(20.0)


def test_capacity_validation():
    with pytest.raises(ValueError):
        RingSeries(capacity=1)
    with pytest.raises(ValueError):
        RingSeries().percentile(101)
