"""Alert rules: thresholds, windows, hysteresis, parsing, sinks."""

import pytest

from repro.monitor import (
    FIRING,
    OK,
    PENDING,
    AlertEngine,
    AlertRule,
    CallbackSink,
    MemorySink,
    RuleSyntaxError,
    parse_rule,
    parse_rules,
)


def engine_with(rule):
    engine = AlertEngine([rule])
    sink = MemorySink()
    engine.add_sink(sink)
    return engine, sink


def test_fires_after_consecutive_windows():
    rule = AlertRule("drops", "drop_ratio", ">", 0.01, for_windows=3)
    engine, sink = engine_with(rule)
    assert engine.evaluate({"drop_ratio": 0.5}, 1.0) == []
    assert engine.states()[0].state == PENDING
    assert engine.evaluate({"drop_ratio": 0.5}, 2.0) == []
    events = engine.evaluate({"drop_ratio": 0.5}, 3.0)
    assert [e.state for e in events] == [FIRING]
    assert engine.firing()[0].rule.name == "drops"
    assert sink.fired()[0].timestamp == 3.0


def test_breach_streak_resets_on_recovery():
    rule = AlertRule("drops", "drop_ratio", ">", 0.01, for_windows=2)
    engine, _ = engine_with(rule)
    engine.evaluate({"drop_ratio": 0.5}, 1.0)
    engine.evaluate({"drop_ratio": 0.0}, 2.0)  # streak broken
    assert engine.states()[0].state == OK
    engine.evaluate({"drop_ratio": 0.5}, 3.0)
    assert engine.states()[0].state == PENDING


def test_hysteresis_keeps_firing_until_clear_threshold():
    rule = AlertRule("drops", "drop_ratio", ">", 0.01, clear=0.001)
    engine, sink = engine_with(rule)
    engine.evaluate({"drop_ratio": 0.5}, 1.0)
    assert engine.states()[0].state == FIRING
    # Back under the trigger but above clear: still firing.
    engine.evaluate({"drop_ratio": 0.005}, 2.0)
    assert engine.states()[0].state == FIRING
    events = engine.evaluate({"drop_ratio": 0.0005}, 3.0)
    assert [e.state for e in events] == [OK]
    assert engine.states()[0].state == OK
    assert len(sink.events) == 2  # one fire, one resolve


def test_missing_metric_holds_state():
    rule = AlertRule("drops", "drop_ratio", ">", 0.01)
    engine, _ = engine_with(rule)
    engine.evaluate({"drop_ratio": 0.5}, 1.0)
    engine.evaluate({}, 2.0)  # sampler has not run: no evidence
    assert engine.states()[0].state == FIRING


def test_less_than_operator():
    rule = AlertRule("stall", "counter_running", "<", 1)
    engine, _ = engine_with(rule)
    engine.evaluate({"counter_running": 0}, 1.0)
    assert engine.states()[0].state == FIRING


def test_callback_sink_and_event_description():
    seen = []
    rule = AlertRule("drops", "drop_ratio", ">", 0.01, for_windows=1)
    engine = AlertEngine([rule], [CallbackSink(seen.append)])
    engine.evaluate({"drop_ratio": 1.0}, 1.0)
    assert len(seen) == 1
    text = seen[0].describe()
    assert "FIRING" in text and "drop_ratio > 0.01" in text


def test_rule_validation():
    with pytest.raises(ValueError):
        AlertRule("x", "m", "!=", 1.0)
    with pytest.raises(ValueError):
        AlertRule("x", "m", ">", 1.0, for_windows=0)
    engine = AlertEngine([AlertRule("x", "m", ">", 1.0)])
    with pytest.raises(ValueError):
        engine.add_rule(AlertRule("x", "m", ">", 2.0))


def test_parse_single_rule():
    rule = parse_rule("drops: recorder_drop_ratio > 0.01 for 3 clear 0.001")
    assert rule == AlertRule(
        "drops", "recorder_drop_ratio", ">", 0.01, 3, 0.001
    )
    assert rule.describe() == "recorder_drop_ratio > 0.01 for 3 clear 0.001"


def test_parse_rules_file_with_comments():
    rules = parse_rules(
        """
        # watch the recorder
        drops: recorder_drop_ratio > 0.01 for 3

        stall: counter_running < 1
        """
    )
    assert [r.name for r in rules] == ["drops", "stall"]
    assert rules[1].for_windows == 1


@pytest.mark.parametrize(
    "line",
    [
        "no colon here",
        "x: metric >",
        "x: metric ~ 3",
        "x: metric > notanumber",
        "x: metric > 1 for",
        "x: metric > 1 for two",
        "x: metric > 1 banana 3",
        "x: metric > 1 for 0",
    ],
)
def test_parse_rejects_bad_lines(line):
    with pytest.raises(RuleSyntaxError):
        parse_rule(line)
