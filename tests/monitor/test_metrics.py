"""Metric primitives: counters, gauges, histograms, registry."""

import pytest

from repro.monitor import Counter, Gauge, Histogram, MetricRegistry, sanitize
from repro.monitor.metrics import format_value, valid_name


def test_counter_increments_and_rejects_negative():
    counter = Counter("events_total", "events")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_set_total_never_goes_backwards():
    counter = Counter("events_total", "events")
    counter.set_total(100)
    counter.set_total(40)  # a restarted source must not rewind
    assert counter.value() == 100
    counter.set_total(140)
    assert counter.value() == 140


def test_gauge_moves_both_ways():
    gauge = Gauge("depth", "queue depth")
    gauge.set(7)
    gauge.add(-3)
    assert gauge.value() == 4


def test_histogram_buckets_are_cumulative():
    hist = Histogram("lat", "latency", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    lines = hist.expose("t")
    assert 't_lat_bucket{le="0.01"} 1' in lines
    assert 't_lat_bucket{le="0.1"} 2' in lines
    assert 't_lat_bucket{le="1"} 3' in lines
    assert 't_lat_bucket{le="+Inf"} 4' in lines
    assert "t_lat_count 4" in lines


def test_histogram_percentile_estimate():
    hist = Histogram("lat", "latency", buckets=(1, 2, 4, 8))
    for value in (0.5, 1.5, 1.5, 3.0):
        hist.observe(value)
    assert hist.percentile(50) == 2
    assert hist.percentile(100) == 4  # smallest bound covering all
    assert Histogram("empty", "", buckets=(1,)).percentile(95) == 0.0


def test_registry_get_or_create_is_idempotent():
    registry = MetricRegistry()
    first = registry.counter("x_total", "help text")
    second = registry.counter("x_total")
    assert first is second
    assert len(registry) == 1


def test_registry_rejects_kind_conflicts():
    registry = MetricRegistry()
    registry.counter("x_total", "x")
    with pytest.raises(TypeError):
        registry.gauge("x_total", "x")


def test_registry_rejects_invalid_names():
    registry = MetricRegistry()
    with pytest.raises(ValueError):
        registry.counter("9starts_with_digit")
    with pytest.raises(ValueError):
        registry.gauge("has-dash")


def test_exposition_has_help_and_type_per_family():
    registry = MetricRegistry()
    registry.counter("a_total", "first").inc(3)
    registry.gauge("b_now", "second").set(1.5)
    text = registry.to_exposition("teeperf")
    lines = text.splitlines()
    assert "# HELP teeperf_a_total first" in lines
    assert "# TYPE teeperf_a_total counter" in lines
    assert "teeperf_a_total 3" in lines
    assert "# TYPE teeperf_b_now gauge" in lines
    assert "teeperf_b_now 1.5" in lines
    assert text.endswith("\n")


def test_snapshot_describes_every_family():
    registry = MetricRegistry()
    registry.counter("a_total", "first").inc(2)
    registry.histogram("h", "hist", buckets=(1,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["a_total"] == {"kind": "counter", "help": "first", "value": 2}
    assert snap["h"]["kind"] == "histogram"
    assert snap["h"]["count"] == 1


def test_sanitize_and_valid_name():
    assert sanitize("get.hit") == "get_hit"
    assert sanitize("Weird Name!") == "weird_name"
    assert sanitize("...") == "metric"
    assert valid_name(sanitize("keys.read"))
    assert not valid_name("")
    assert not valid_name("_leading")


def test_format_value():
    assert format_value(3) == "3"
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(True) == "1"
