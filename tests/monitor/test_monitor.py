"""The Monitor orchestrator: polling, series, alerts, recorder hookup."""

import time

import pytest

from repro.api import TEEPerf
from repro.core import symbol
from repro.monitor import (
    AlertRule,
    CallbackSampler,
    MemorySink,
    Monitor,
    Sampler,
)
from repro.tee import SGX_V1


class FakeClock:
    """Deterministic monitor clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds=1.0):
        self.now += seconds


def test_poll_once_samples_series_and_self_metrics():
    clock = FakeClock()
    monitor = Monitor(interval=0.01, clock=clock)
    value = {"v": 0}
    monitor.attach(CallbackSampler("src", lambda: dict(value)))
    monitor.poll_once()
    clock.tick()
    value["v"] = 10
    monitor.poll_once()
    assert monitor.registry.value("src_v") == 10
    assert monitor.registry.value("monitor_samples_total") == 2
    assert monitor.series.series("src_v").delta() == 10
    assert monitor.series.series("src_v").rate() == pytest.approx(10.0)


def test_attach_replaces_same_key():
    monitor = Monitor()
    first = monitor.attach(CallbackSampler("same", lambda: {"v": 1}))
    second = monitor.attach(CallbackSampler("same", lambda: {"v": 2}))
    assert list(monitor.samplers().values()) == [second]
    assert first is not second
    monitor.detach(second)
    assert monitor.samplers() == {}


def test_sampler_errors_are_counted_not_fatal():
    class Broken(Sampler):
        key = "broken"

        def sample(self, registry):
            raise RuntimeError("boom")

    monitor = Monitor()
    monitor.attach(Broken())
    monitor.attach(CallbackSampler("ok", lambda: {"v": 7}))
    monitor.poll_once()
    assert monitor.registry.value("ok_v") == 7
    assert monitor.registry.value("monitor_sampler_errors_total") == 1


def test_alert_fires_from_polled_values():
    clock = FakeClock()
    monitor = Monitor(clock=clock)
    sink = monitor.add_sink(MemorySink())
    monitor.add_rule(AlertRule("high", "src_v", ">", 5, for_windows=2))
    level = {"v": 10}
    monitor.attach(CallbackSampler("src", lambda: dict(level)))
    monitor.poll_once()
    assert sink.fired() == []
    events = monitor.poll_once()
    assert [e.rule.name for e in events] == ["high"]
    assert monitor.registry.value("monitor_alerts_firing") == 1
    snapshot = monitor.snapshot()
    assert snapshot["alerts"][0]["state"] == "firing"


def test_background_thread_polls_and_stops():
    monitor = Monitor(interval=0.005)
    monitor.attach(CallbackSampler("src", lambda: {"v": 1}))
    with monitor:
        assert monitor.running
        deadline = time.time() + 2.0
        while (
            monitor.registry.value("monitor_samples_total", 0) < 3
            and time.time() < deadline
        ):
            time.sleep(0.005)
    assert not monitor.running
    assert monitor.registry.value("monitor_samples_total") >= 3
    # stop() took a final pass; no further samples accumulate.
    settled = monitor.registry.value("monitor_samples_total")
    time.sleep(0.03)
    assert monitor.registry.value("monitor_samples_total") == settled


def test_start_is_idempotent():
    monitor = Monitor(interval=0.01)
    monitor.start()
    monitor.start()
    monitor.stop()
    assert not monitor.running


def test_snapshot_shape():
    clock = FakeClock()
    monitor = Monitor(clock=clock)
    monitor.attach(CallbackSampler("src", lambda: {"v": 2}))
    monitor.poll_once()
    snap = monitor.snapshot()
    assert set(snap) == {
        "timestamp", "interval", "uptime", "metrics", "windows", "alerts",
    }
    assert snap["metrics"]["src_v"]["value"] == 2
    assert snap["windows"]["src_v"]["samples"] == 1


# ----------------------------------------------------------------------
# Recorder hookup (including the pause/resume satellite)


class TwoPhase:
    def __init__(self, env):
        self.env = env

    @symbol("app::Phase1()")
    def phase1(self):
        for _ in range(20):
            self.kernel()

    @symbol("app::Phase2()")
    def phase2(self):
        for _ in range(20):
            self.kernel()

    @symbol("app::Kernel()")
    def kernel(self):
        self.env.compute(1_000)


def test_recorder_hookup_attaches_and_samples():
    monitor = Monitor(interval=0.005)
    perf = TEEPerf.simulated(platform=SGX_V1, monitor=monitor)
    app = TwoPhase(perf.env)
    perf.compile_instance(app)
    with monitor:
        perf.record(app.phase1)
    keys = set(monitor.samplers())
    assert {"recorder", "counter", "tee"} <= keys
    assert monitor.registry.value("recorder_events_recorded_total") == 42
    assert monitor.registry.value("recorder_events_dropped_total") == 0
    perf.analyze()
    assert "pipeline" in monitor.samplers()
    assert monitor.registry.value("pipeline_entries_ingested_total") == 42


def test_pause_resume_with_attached_sampler_no_drift_no_deadlock():
    """Satellite: pausing/resuming tracing while a monitor samples in
    the background must not corrupt the loss accounting (recorded +
    dropped never moves backwards, pauses record nothing) and ``stop``
    must not deadlock against the sampling thread."""
    monitor = Monitor(interval=0.001)
    perf = TEEPerf.simulated(platform=SGX_V1, monitor=monitor)
    app = TwoPhase(perf.env)
    perf.compile_instance(app)

    observed = []

    def run():
        app.phase1()
        recorder = perf.recorder
        observed.append(
            (recorder.events_recorded(), recorder.events_dropped())
        )
        recorder.pause()
        monitor.poll_once()  # explicit pass while paused
        app.phase2()  # traced nothing: the log flag is off
        observed.append(
            (recorder.events_recorded(), recorder.events_dropped())
        )
        recorder.resume()
        app.phase2()

    monitor.start()
    try:
        perf.record(run)
    finally:
        monitor.stop()

    (rec_before, drop_before), (rec_paused, drop_paused) = observed
    assert rec_paused == rec_before  # pause really suppressed events
    assert drop_paused == drop_before
    final = perf.recorder.events_recorded()
    assert final == rec_before + 42  # resumed phase2 traced fully
    assert monitor.registry.value("recorder_events_recorded_total") == final
    assert monitor.registry.value("recorder_active") == 0  # stopped
    # Counter families reflect a monotone history despite pauses.
    series = monitor.series.series("recorder_events_recorded_total")
    values = [v for _, v in series.points()]
    assert values == sorted(values)


def test_stop_with_monitor_takes_terminal_sample():
    monitor = Monitor()
    perf = TEEPerf.simulated(platform=SGX_V1, monitor=monitor)
    app = TwoPhase(perf.env)
    perf.compile_instance(app)
    perf.record(app.phase1)  # no background thread at all
    assert monitor.registry.value("monitor_samples_total") >= 2
    assert monitor.registry.value("recorder_events_recorded_total") == 42
