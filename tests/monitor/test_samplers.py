"""Samplers: each live source lands in the registry correctly."""

from repro.core import PipelineStats, ThreadCounter
from repro.kvstore.stats import Statistics
from repro.machine import Machine
from repro.monitor import (
    CallbackSampler,
    CounterSampler,
    KVStoreSampler,
    MetricRegistry,
    PipelineSampler,
    SpdkSampler,
    TeeCostSampler,
)
from repro.tee import SGX_V1, make_env


def test_counter_sampler_thread_counter():
    counter = ThreadCounter()
    counter.value = 1234  # as if the loop had run
    registry = MetricRegistry()
    CounterSampler(counter).sample(registry)
    assert registry.value("counter_ticks_total") == 1234
    assert registry.value("counter_running") == 0


def test_counter_sampler_virtual_counter_is_host_safe():
    """VirtualCounter.read() requires a simulated thread; the sampler
    must derive ticks safely from the host side instead."""
    from repro.core import VirtualCounter

    machine = Machine(cores=2)
    env = make_env(machine, SGX_V1)
    machine.run(lambda: env.compute(8_000))
    counter = VirtualCounter(machine)
    registry = MetricRegistry()
    CounterSampler(counter).sample(registry)
    assert registry.value("counter_ticks_total") == 1000  # 8000 / 8.0
    assert registry.value("counter_resolution_ns") > 0


def test_tee_cost_sampler_covers_transitions_and_epc():
    machine = Machine(cores=2)
    env = make_env(machine, SGX_V1)

    def workload():
        env.alloc(200 * 1024 * 1024)  # past the 93.5 MiB EPC
        env.syscall("write")
        env.ecall()
        env.aex()
        env.mem_read(4096, random=True)

    machine.run(workload)
    registry = MetricRegistry()
    TeeCostSampler(env).sample(registry)
    assert registry.value("tee_ocalls_total") == 1
    assert registry.value("tee_ecalls_total") == 1
    assert registry.value("tee_aex_total") == 1
    assert registry.value("tee_transition_cycles_total") > 0
    assert registry.value("tee_epc_allocated_bytes") == 200 * 1024 * 1024
    assert registry.value("tee_epc_page_faults_total") > 0


def test_tee_cost_sampler_native_env_has_no_epc_families():
    from repro.tee import NATIVE

    machine = Machine(cores=2)
    env = make_env(machine, NATIVE)
    registry = MetricRegistry()
    TeeCostSampler(env).sample(registry)
    assert registry.get("tee_epc_allocated_bytes") is None
    assert registry.value("tee_syscalls_total") == 0


def test_pipeline_sampler_accepts_object_and_callable():
    stats = PipelineStats(entries_ingested=10, cache_hits=3, cache_misses=1)
    registry = MetricRegistry()
    PipelineSampler(stats).sample(registry)
    assert registry.value("pipeline_entries_ingested_total") == 10
    assert registry.value("pipeline_cache_hit_rate") == 0.75

    late = MetricRegistry()
    holder = {"stats": None}
    sampler = PipelineSampler(lambda: holder["stats"])
    sampler.sample(late)  # no stats yet: nothing registered
    assert len(late) == 0
    holder["stats"] = stats
    sampler.sample(late)
    assert late.value("pipeline_entries_ingested_total") == 10


def test_kvstore_sampler_sanitizes_ticker_names():
    machine = Machine(cores=2)
    env = make_env(machine, SGX_V1)
    statistics = Statistics(env)
    machine.run(lambda: statistics.record_tick("get.hit", 5))
    registry = MetricRegistry()
    KVStoreSampler(statistics).sample(registry)
    assert registry.value("kvstore_get_hit_total") == 5
    assert registry.value("kvstore_keys_read_total") == 0


def test_spdk_sampler_reads_io_counters():
    class FakePerf:
        submitted = 64
        completed = 60
        reads = 45
        writes = 15

    registry = MetricRegistry()
    SpdkSampler(FakePerf()).sample(registry)
    assert registry.value("spdk_io_submitted_total") == 64
    assert registry.value("spdk_io_completed_total") == 60
    assert registry.value("spdk_io_in_flight") == 4


def test_callback_sampler_lands_gauges():
    registry = MetricRegistry()
    CallbackSampler("wal", lambda: {"bytes": 512, "Flushes!": 3}).sample(
        registry
    )
    assert registry.value("wal_bytes") == 512
    assert registry.value("wal_flushes") == 3


def test_sampler_keys_are_stable():
    assert CounterSampler(ThreadCounter()).key == "counter"
    assert PipelineSampler(None).key == "pipeline"
    assert CallbackSampler("mine", dict).key == "mine"
