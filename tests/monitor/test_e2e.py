"""End-to-end acceptance: live monitoring of a Phoenix workload.

The scenario the issue pins down: a monitor attached to a running
Phoenix workload serves a Prometheus-format scrape with at least 12
distinct metric families spanning the software counter, the recorder,
the TEE cost model and the pipeline — and a synthetic drop-rate alert
(tiny log capacity under SGX) fires through the rule engine.
"""

import threading
import time
import urllib.request

from repro.cli import main
from repro.monitor import (
    MemorySink,
    Monitor,
    MonitorServer,
    parse_rules,
)
from repro.phoenix.histogram import Histogram
from repro.phoenix.runner import run_teeperf
from repro.tee import SGX_V1

RULES = """
# synthetic drop-rate alert: tiny capacity guarantees drops
drops: recorder_drop_ratio > 0.01 for 3 clear 0.001
"""


def scrape(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read().decode()


def families(exposition):
    return {
        line.split()[2]
        for line in exposition.splitlines()
        if line.startswith("# TYPE ")
    }


def test_monitor_attached_to_phoenix_run_serves_scrape_and_alerts():
    monitor = Monitor(interval=0.002)
    monitor.add_rules(parse_rules(RULES))
    sink = monitor.add_sink(MemorySink())

    with MonitorServer(monitor, port=0) as server:
        monitor.start()
        done = threading.Event()
        results = {}

        def run():
            try:
                results["run"] = run_teeperf(
                    Histogram,
                    platform=SGX_V1,
                    n_pixels=60_000,
                    seed=4,
                    capacity=64,  # tiny: guarantees record-time drops
                    monitor=monitor,
                )
            finally:
                done.set()

        worker = threading.Thread(target=run, daemon=True)
        worker.start()

        # Scrape while the workload is in flight.
        live_bodies = []
        while not done.wait(0.005):
            live_bodies.append(scrape(f"{server.url}/metrics"))
        worker.join(timeout=30)
        assert "run" in results, "workload did not finish"
        monitor.stop()

        final = scrape(f"{server.url}/metrics")

    seen = families(final)
    assert len(seen) >= 12, sorted(seen)
    for group in ("counter_", "recorder_", "tee_", "pipeline_"):
        assert any(
            name.startswith(f"teeperf_{group}") for name in seen
        ), f"no {group} family in scrape"
    assert "teeperf_recorder_events_recorded_total" in seen
    assert "teeperf_recorder_events_dropped_total" in seen

    # The synthetic drop-rate alert fired (capacity 64 drops >90%).
    fired = sink.fired()
    assert fired and fired[0].rule.name == "drops"
    assert "teeperf_monitor_alerts_firing 1" in final

    # At least one scrape happened while the workload was running, and
    # the in-flight scrapes were already well-formed expositions.
    assert live_bodies
    assert all("# TYPE " in body for body in live_bodies)

    # The analysis carries the same drop accounting the scrape showed.
    pipeline = results["run"].analysis.pipeline
    assert pipeline.entries_dropped > 0
    assert pipeline.entries_recorded == 64


def test_cli_monitor_once_fires_drop_alert(tmp_path, capsys):
    rules = tmp_path / "rules.txt"
    rules.write_text(RULES)
    assert (
        main(
            [
                "monitor",
                "--once",
                "--workload", "histogram",
                "--param", "n_pixels=20000",
                "--capacity", "64",
                "--interval", "0.002",
                "--rules", str(rules),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    seen = families(captured.out)
    assert len(seen) >= 12
    assert "teeperf_recorder_drop_ratio" in seen
    assert "[FIRING] drops:" in captured.err
    assert "alert(s) fired" in captured.err


def test_cli_monitor_serves_http(tmp_path, capsys):
    """The serving path: endpoint up during the run, port announced."""
    import re

    bodies = []
    stdout_lines = []

    def run_cli():
        main(
            [
                "monitor",
                "--workload", "histogram",
                "--param", "n_pixels=30000",
                "--interval", "0.002",
                "--duration", "0.3",
                "--port", "0",
            ]
        )

    # Drive the CLI in a thread and scrape its advertised endpoint.
    import contextlib
    import io

    buffer = io.StringIO()

    def target():
        with contextlib.redirect_stdout(buffer):
            run_cli()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    deadline = time.time() + 20
    url = None
    while url is None and time.time() < deadline:
        match = re.search(r"serving (http://[^/]+)/metrics", buffer.getvalue())
        if match:
            url = match.group(1)
        else:
            time.sleep(0.01)
    assert url, "CLI never announced its endpoint"
    while thread.is_alive():
        try:
            bodies.append(scrape(f"{url}/metrics"))
        except OSError:
            break
        time.sleep(0.02)
    thread.join(timeout=30)
    assert bodies
    assert any(len(families(body)) >= 12 for body in bodies)
