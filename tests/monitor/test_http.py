"""The scrape endpoint: routes, content types, well-formedness."""

import json
import urllib.error
import urllib.request

import pytest

from repro.monitor import (
    AlertRule,
    CallbackSampler,
    Monitor,
    MonitorServer,
)


@pytest.fixture
def served():
    monitor = Monitor()
    monitor.add_rule(AlertRule("high", "src_v", ">", 100))
    monitor.attach(CallbackSampler("src", lambda: {"v": 3}))
    monitor.poll_once()
    server = MonitorServer(monitor, port=0)
    port = server.start()
    assert port != 0  # the OS picked a real port
    yield monitor, server
    server.stop()


def fetch(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def test_metrics_route_serves_exposition(served):
    monitor, server = served
    status, ctype, body = fetch(server, "/metrics")
    assert status == 200
    assert ctype.startswith("text/plain")
    text = body.decode()
    assert "# HELP teeperf_src_v" in text
    assert "# TYPE teeperf_src_v gauge" in text
    assert "teeperf_src_v 3" in text
    # Scrapes count themselves.
    assert monitor.registry.value("monitor_scrapes_total") == 1


def test_snapshot_route_is_json(served):
    _, server = served
    status, ctype, body = fetch(server, "/snapshot.json")
    assert status == 200
    assert ctype == "application/json"
    snap = json.loads(body)
    assert snap["metrics"]["src_v"]["value"] == 3
    assert "windows" in snap


def test_alerts_route(served):
    _, server = served
    status, _, body = fetch(server, "/alerts")
    assert status == 200
    alerts = json.loads(body)
    assert alerts[0]["name"] == "high"
    assert alerts[0]["state"] == "ok"


def test_healthz_and_404(served):
    _, server = served
    status, _, body = fetch(server, "/healthz")
    assert (status, body) == (200, b"ok\n")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server, "/nope")
    assert excinfo.value.code == 404


def test_404_body_is_json_naming_the_routes(served):
    """Service duty: even errors are machine-readable."""
    _, server = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server, "/definitely/not/here")
    err = excinfo.value
    assert err.headers.get("Content-Type") == "application/json"
    payload = json.loads(err.read())
    assert payload["status"] == 404
    assert "/definitely/not/here" in payload["error"]
    assert "/metrics" in payload["routes"]


def test_exposition_is_well_formed(served):
    """Every sample line belongs to a family that declared HELP+TYPE."""
    monitor, server = served
    _, _, body = fetch(server, "/metrics")
    declared = set()
    for line in body.decode().splitlines():
        if line.startswith("# TYPE "):
            name, kind = line.split()[2], line.split()[3]
            assert kind in ("counter", "gauge", "histogram")
            declared.add(name)
        elif line.startswith("# HELP ") or not line:
            continue
        else:
            family = line.split("{", 1)[0].split()[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[: -len(suffix)] in declared:
                    family = family[: -len(suffix)]
                    break
            assert family in declared, line


def test_request_threads_are_bounded():
    """Concurrent requests never exceed max_threads handler threads;
    the excess queue in the backlog and still get served."""
    import threading
    import time

    monitor = Monitor()
    peak = {"now": 0, "max": 0}
    gate = threading.Lock()

    def slow_snapshot(window_seconds=None):
        with gate:
            peak["now"] += 1
            peak["max"] = max(peak["max"], peak["now"])
        time.sleep(0.15)
        with gate:
            peak["now"] -= 1
        return {"metrics": {}, "windows": {}, "alerts": []}

    monitor.snapshot = slow_snapshot
    server = MonitorServer(monitor, port=0, max_threads=2)
    server.start()
    try:
        statuses = []

        def hit():
            status, _, _ = fetch(server, "/snapshot.json")
            statuses.append(status)

        workers = [threading.Thread(target=hit) for _ in range(6)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30)
        assert statuses == [200] * 6  # everyone got served...
        assert peak["max"] <= 2  # ...but never more than 2 at once
    finally:
        server.stop()


def test_stop_while_scraping_is_clean():
    """The shutdown regression: stop() while a slow request is in
    flight must let the handler finish and release the port."""
    import threading
    import time

    monitor = Monitor()
    entered = threading.Event()

    def slow_snapshot(window_seconds=None):
        entered.set()
        time.sleep(0.3)
        return {"metrics": {}, "windows": {}, "alerts": []}

    monitor.snapshot = slow_snapshot
    server = MonitorServer(monitor, port=0)
    server.start()
    outcome = {}

    def scrape():
        try:
            outcome["status"] = fetch(server, "/snapshot.json")[0]
        except Exception as exc:  # noqa: BLE001 — asserted below
            outcome["error"] = exc

    scraper = threading.Thread(target=scrape)
    scraper.start()
    assert entered.wait(timeout=5)  # the handler is mid-request
    server.stop()  # must wait it out, not strand or crash it
    scraper.join(timeout=10)
    assert not scraper.is_alive()
    assert outcome.get("status") == 200, outcome
    assert not server.running
    # Stopping again is a no-op, and the port is actually free.
    server.stop()
    assert server.start() != 0
    server.stop()


def test_server_context_manager_and_restart():
    monitor = Monitor()
    with MonitorServer(monitor, port=0) as server:
        port = server.port
        status, _, _ = fetch(server, "/healthz")
        assert status == 200
    assert not server.running
    # A stopped server can be started again (a fresh port is fine).
    second = server.start()
    assert second != 0
    server.stop()
