"""Unit tests for the Fex-style harness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fex import Experiment, Measurement, ResultTable, geomean, repeat


def test_geomean_basics():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([5]) == pytest.approx(5.0)


def test_geomean_rejects_bad_inputs():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1, 0])
    with pytest.raises(ValueError):
        geomean([-1, 2])


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1))
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) * 0.999 <= g <= max(values) * 1.001


def test_measurement_stats():
    m = Measurement([1.0, 2.0, 4.0])
    assert m.mean == pytest.approx(7 / 3)
    assert m.min == 1.0
    assert m.max == 4.0
    assert m.geomean == pytest.approx(2.0)
    assert m.spread == pytest.approx(1.5)


def test_empty_measurement_rejected():
    with pytest.raises(ValueError):
        Measurement([])


def test_repeat_passes_run_index():
    m = repeat(lambda i: i + 1, runs=5)
    assert m.values == [1, 2, 3, 4, 5]
    with pytest.raises(ValueError):
        repeat(lambda i: i, runs=0)


def test_experiment_ratio():
    exp = Experiment("overhead", runs=3)
    exp.measure("teeperf", lambda i: 20.0)
    exp.measure("perf", lambda i: 10.0)
    assert exp.ratio("teeperf", "perf") == pytest.approx(2.0)
    means = exp.geomeans()
    assert means["teeperf"] == pytest.approx(20.0)
    assert means["perf"] == pytest.approx(10.0)


def test_result_table_render_and_frame():
    table = ResultTable("Figure 4", ["benchmark", "overhead"])
    table.add_row("string_match", 5.7)
    table.add_row(benchmark="mean", overhead=1.9)
    text = table.render()
    assert "Figure 4" in text
    assert "string_match" in text
    frame = table.to_frame()
    assert frame.column("overhead") == [5.7, 1.9]


def test_result_table_arity_checked():
    table = ResultTable("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
    with pytest.raises(ValueError):
        table.add_row(1, 2, b=3)
