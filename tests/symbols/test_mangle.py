"""Unit tests for the mangler / c++filt equivalent."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symbols import MangleError, demangle, mangle


def test_c_symbol_passes_through():
    assert mangle("main") == "main"
    assert demangle("main") == "main"
    assert mangle("submit_single_io") == "submit_single_io"


def test_simple_namespaced_function():
    assert mangle("rocksdb::Stats::Now()") == "_ZN7rocksdb5Stats3NowEv"
    assert demangle("_ZN7rocksdb5Stats3NowEv") == "rocksdb::Stats::Now()"


def test_single_component_with_parens():
    assert mangle("getpid()") == "_Z6getpidv"
    assert demangle("_Z6getpidv") == "getpid()"


def test_builtin_parameters():
    sym = mangle("rocksdb::Stats::Start(int)")
    assert sym == "_ZN7rocksdb5Stats5StartEi"
    assert demangle(sym) == "rocksdb::Stats::Start(int)"


def test_pointer_parameters():
    sym = mangle("ns::f(char*, int)")
    assert demangle(sym) == "ns::f(char*, int)"


def test_unknown_type_encoded_as_source_name():
    sym = mangle("ns::g(ThreadState*)")
    assert demangle(sym) == "ns::g(ThreadState*)"


def test_multiple_parameters_roundtrip():
    pretty = "rocksdb::test::RandomString(Random*, int, double)"
    assert demangle(mangle(pretty)) == pretty


def test_void_parameter_normalises_to_empty():
    assert demangle(mangle("f(void)")) == "f()"


def test_deep_nesting():
    pretty = "a::b::c::d::e()"
    assert demangle(mangle(pretty)) == pretty


def test_empty_name_rejected():
    with pytest.raises(MangleError):
        mangle("")


def test_malformed_qualified_name_rejected():
    with pytest.raises(MangleError):
        mangle("a::::b()")


def test_unbalanced_parens_rejected():
    with pytest.raises(MangleError):
        mangle("f(int")


def test_bad_identifier_rejected():
    with pytest.raises(MangleError):
        mangle("1abc")


def test_demangle_garbage_rejected():
    with pytest.raises(MangleError):
        demangle("_Zxx")


def test_demangle_truncated_component_rejected():
    with pytest.raises(MangleError):
        demangle("_ZN7rocksE")  # claims 7 chars, provides 5


_ident = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True)
_builtin = st.sampled_from(["int", "bool", "char", "double", "long", "char*"])


@given(parts=st.lists(_ident, min_size=2, max_size=5))
def test_roundtrip_qualified_names(parts):
    pretty = "::".join(parts) + "()"
    assert demangle(mangle(pretty)) == pretty


@given(parts=st.lists(_ident, min_size=1, max_size=3),
       params=st.lists(_builtin, min_size=1, max_size=4))
def test_roundtrip_with_parameters(parts, params):
    pretty = "::".join(parts) + "(" + ", ".join(params) + ")"
    result = demangle(mangle(pretty))
    # "unsigned" aliases normalise; everything else must roundtrip.
    assert result == pretty
