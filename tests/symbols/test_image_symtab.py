"""Unit tests for binary images and symbol tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symbols import (
    BinaryImage,
    Symbol,
    SymbolLookupError,
    SymbolTable,
    mangle,
    relocation_offset,
)


def test_image_contains_profiler_symbol():
    image = BinaryImage("app")
    sym = image.symtab.by_name(BinaryImage.PROFILER_SYMBOL)
    assert sym.addr == image.profiler_addr


def test_functions_laid_out_in_order_and_aligned():
    image = BinaryImage("app")
    a = image.add_function("alpha", size=100)
    b = image.add_function("beta", size=10)
    assert b > a
    assert a % 16 == 0
    assert b % 16 == 0


def test_addr2line_resolves_interior_addresses():
    image = BinaryImage("app")
    addr = image.add_function("alpha", size=100)
    sym = image.symtab.addr2line(addr + 50)
    assert sym.name == "alpha"


def test_addr2line_miss_raises():
    table = SymbolTable()
    table.add(Symbol("f", 0x1000, 64))
    with pytest.raises(SymbolLookupError):
        table.addr2line(0x1040)
    with pytest.raises(SymbolLookupError):
        table.addr2line(0x0)
    assert table.resolve(0x0) is None


def test_duplicate_symbol_rejected():
    table = SymbolTable()
    table.add(Symbol("f", 0x1000, 64))
    with pytest.raises(ValueError):
        table.add(Symbol("f", 0x2000, 64))


def test_overlapping_symbols_rejected():
    table = SymbolTable()
    table.add(Symbol("f", 0x1000, 64))
    with pytest.raises(ValueError):
        table.add(Symbol("g", 0x1020, 64))
    with pytest.raises(ValueError):
        table.add(Symbol("h", 0xFE0, 64))


def test_by_name_miss_raises():
    with pytest.raises(SymbolLookupError):
        SymbolTable().by_name("nope")


def test_load_with_aslr_and_relocation_recovery():
    image = BinaryImage("app")
    addr = image.add_function("alpha", size=64)
    loaded = image.load(aslr_seed=7)
    assert loaded.offset != 0
    assert loaded.offset % 4096 == 0
    runtime = loaded.runtime_addr(addr)
    # The analyzer recovers the offset from the profiler address alone.
    offset = relocation_offset(image, loaded.profiler_addr)
    assert offset == loaded.offset
    assert image.symtab.addr2line(runtime - offset).name == "alpha"


def test_load_without_seed_is_identity():
    image = BinaryImage("app")
    loaded = image.load()
    assert loaded.offset == 0
    assert loaded.link_addr(loaded.runtime_addr(0x1234)) == 0x1234


def test_dump_lists_pretty_names():
    image = BinaryImage("app")
    image.add_function(mangle("rocksdb::Stats::Now()"), size=32)
    text = image.symtab.dump()
    assert "rocksdb::Stats::Now()" in text
    assert "FUNC" in text


def test_text_size_grows():
    image = BinaryImage("app")
    before = image.text_size()
    image.add_function("alpha", size=1000)
    assert image.text_size() >= before + 1000


def test_nonpositive_size_rejected():
    with pytest.raises(ValueError):
        BinaryImage("app").add_function("alpha", size=0)


@given(sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1,
                      max_size=40))
def test_layout_never_overlaps(sizes):
    image = BinaryImage("app")
    addrs = [
        image.add_function(f"fn_{i}", size=size)
        for i, size in enumerate(sizes)
    ]
    # Resolving any interior byte of any function returns that function.
    for i, (addr, size) in enumerate(zip(addrs, sizes)):
        assert image.symtab.addr2line(addr).name == f"fn_{i}"
        assert image.symtab.addr2line(addr + size - 1).name == f"fn_{i}"


@given(seed=st.integers(min_value=1, max_value=2**31))
def test_relocation_roundtrip(seed):
    image = BinaryImage("app")
    addr = image.add_function("alpha", size=64)
    loaded = image.load(aslr_seed=seed)
    offset = relocation_offset(image, loaded.profiler_addr)
    assert loaded.runtime_addr(addr) - offset == addr
