"""Tests for image serialisation (the offline-analysis artefact)."""

from repro.symbols import BinaryImage, mangle


def test_json_roundtrip_preserves_symbols():
    image = BinaryImage("app")
    image.add_function("alpha", size=100, file="alpha.c", line=3)
    image.add_function(
        mangle("ns::Beta()"), size=48, file="beta.cc", line=77
    )
    restored = BinaryImage.from_json(image.to_json())
    assert restored.name == "app"
    assert restored.profiler_addr == image.profiler_addr
    assert len(restored.symtab) == len(image.symtab)
    alpha = restored.symtab.by_name("alpha")
    assert alpha.file == "alpha.c" and alpha.line == 3
    beta = restored.symtab.by_name(mangle("ns::Beta()"))
    assert beta.pretty == "ns::Beta()"


def test_restored_image_resolves_addresses():
    image = BinaryImage("app")
    addr = image.add_function("fn", size=64)
    restored = BinaryImage.from_json(image.to_json())
    assert restored.symtab.addr2line(addr + 10).name == "fn"


def test_restored_image_can_keep_growing():
    image = BinaryImage("app")
    image.add_function("one", size=64)
    restored = BinaryImage.from_json(image.to_json())
    addr = restored.add_function("two", size=64)
    assert restored.symtab.addr2line(addr).name == "two"
    # No overlap with the restored layout.
    assert addr > restored.symtab.by_name("one").addr
