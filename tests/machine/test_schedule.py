"""The pluggable scheduler layer (repro.machine.schedule)."""

import unittest
import warnings

from repro.machine import (
    LivelockError,
    Machine,
    MachineError,
    MinTimePolicy,
    POLICIES,
    PriorityPolicy,
    RandomPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    ScheduleTrace,
    TracingPolicy,
    make_policy,
)


def _traced_run(policy, workers=3, steps=4):
    """Run a simple fan-out workload under `policy`, return the trace
    and the per-thread completion order."""
    machine = Machine(cores=2, policy=TracingPolicy(policy))
    order = []

    def worker(i):
        thread = machine.current()
        for _ in range(steps):
            thread.advance(100)
            thread.checkpoint()
        order.append(i)

    def main():
        threads = [
            machine.spawn(worker, i, name=f"w{i}") for i in range(workers)
        ]
        for thread in threads:
            thread.join()

    machine.run(main)
    return machine.policy.trace, order


class TestPolicies(unittest.TestCase):
    def test_registry_constructs_every_policy(self):
        for name in POLICIES:
            policy = make_policy(name, seed=3)
            trace, _ = _traced_run(policy)
            self.assertGreater(len(trace), 0, name)

    def test_make_policy_unknown_name(self):
        with self.assertRaises(MachineError):
            make_policy("fifo")

    def test_picks_are_always_runnable(self):
        # Whatever the policy chose had to be in the runnable set.
        for name in POLICIES:
            trace, _ = _traced_run(make_policy(name, seed=9))
            for chosen, runnable in zip(trace.chosen, trace.runnable):
                self.assertIn(chosen, runnable, name)

    def test_min_time_matches_default_machine(self):
        # The explicit MinTimePolicy is bit-for-bit the default.
        explicit, order_a = _traced_run(MinTimePolicy())
        again, order_b = _traced_run(MinTimePolicy())
        self.assertEqual(explicit.signature(), again.signature())
        self.assertEqual(order_a, order_b)

    def test_random_policy_same_seed_same_schedule(self):
        a, order_a = _traced_run(RandomPolicy(seed=42))
        b, order_b = _traced_run(RandomPolicy(seed=42))
        self.assertEqual(a.signature(), b.signature())
        self.assertEqual(order_a, order_b)

    def test_random_policy_different_seeds_diverge(self):
        signatures = {
            _traced_run(RandomPolicy(seed=s))[0].signature()
            for s in range(8)
        }
        self.assertGreater(len(signatures), 1)

    def test_priority_policy_starves(self):
        # prefer="young" runs the newest runnable thread first.
        _, young = _traced_run(PriorityPolicy(prefer="young"))
        self.assertEqual(young[0], max(young))
        with self.assertRaises(ValueError):
            PriorityPolicy(prefer="middle")

    def test_round_robin_rotates(self):
        trace, _ = _traced_run(RoundRobinPolicy())
        # At some step every live worker tid shows up.
        self.assertGreater(len(set(trace.chosen)), 1)

    def test_replay_reproduces_a_random_schedule(self):
        recorded, order = _traced_run(RandomPolicy(seed=7))
        replayed, order_again = _traced_run(ReplayPolicy(recorded))
        self.assertEqual(recorded.signature(), replayed.signature())
        self.assertEqual(order, order_again)

    def test_replay_prefix_falls_back(self):
        recorded, _ = _traced_run(RandomPolicy(seed=7))
        half = recorded.choices()[: len(recorded) // 2]
        policy = ReplayPolicy(half)
        trace, _ = _traced_run(policy)
        # The prefix is honoured; the rest is min-time.
        self.assertEqual(trace.chosen[: len(half)], half)

    def test_trace_round_trips_through_dict(self):
        trace, _ = _traced_run(RandomPolicy(seed=5))
        again = ScheduleTrace.from_dict(trace.to_dict())
        self.assertEqual(trace.signature(), again.signature())
        self.assertEqual(trace.runnable, again.runnable)
        self.assertEqual(trace.branch_points(), again.branch_points())


class TestMachineSchedulingSurface(unittest.TestCase):
    def test_max_steps_raises_livelock(self):
        machine = Machine(cores=1, max_steps=10)

        def spinner():
            thread = machine.current()
            while True:
                thread.advance(1)
                thread.checkpoint()

        def main():
            machine.spawn(spinner, name="spin").join()

        with self.assertRaises(LivelockError) as ctx:
            machine.run(main)
        self.assertEqual(ctx.exception.steps, 10)
        self.assertIn("spin", "".join(ctx.exception.live))

    def test_moved_constants_warn_on_deep_import(self):
        import repro.machine.machine as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = legacy.RUNNABLE
        self.assertEqual(value, "runnable")
        self.assertEqual(len(caught), 1)
        self.assertTrue(
            issubclass(caught[0].category, DeprecationWarning)
        )
        self.assertIn("repro.machine.schedule.RUNNABLE", str(caught[0].message))

    def test_moved_constants_live_in_schedule(self):
        from repro.machine import schedule

        self.assertEqual(schedule.DEFAULT_SPAWN_COST, 15_000.0)


class TestSpawnKwargs(unittest.TestCase):
    def test_kwargs_dict_reaches_workload(self):
        machine = Machine(cores=1)
        seen = {}

        def worker(a, b=0, name=""):
            seen.update(a=a, b=b, name=name)

        def main():
            machine.spawn(
                worker, 1, name="wk", kwargs={"b": 2, "name": "payload"}
            ).join()

        machine.run(main)
        # The workload's own `name` kwarg no longer collides with the
        # spawn's thread name.
        self.assertEqual(seen, {"a": 1, "b": 2, "name": "payload"})

    def test_loose_kwargs_warn_but_work(self):
        machine = Machine(cores=1)
        seen = {}

        def worker(b=0):
            seen["b"] = b

        def main():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                machine.spawn(worker, b=5).join()
            self.assertTrue(
                any(
                    issubclass(w.category, DeprecationWarning)
                    and "kwargs=" in str(w.message)
                    for w in caught
                )
            )

        machine.run(main)
        self.assertEqual(seen["b"], 5)

    def test_run_accepts_kwargs_dict(self):
        machine = Machine(cores=1)

        def main(x, name=""):
            return (x, name)

        result = machine.run(main, 3, kwargs={"name": "top"})
        self.assertEqual(result, (3, "top"))


if __name__ == "__main__":
    unittest.main()
