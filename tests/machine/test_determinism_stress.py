"""Stress property: arbitrary thread/lock/barrier programs replay
bit-for-bit.  Determinism is the foundation every figure stands on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, SimAtomicU64, SimBarrier, SimLock


@st.composite
def programs(draw):
    """A random program: per-thread scripts of work/lock/atomic ops."""
    n_threads = draw(st.integers(min_value=1, max_value=5))
    scripts = []
    for _ in range(n_threads):
        scripts.append(
            draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(
                            ["work", "locked_work", "atomic", "yield"]
                        ),
                        st.integers(min_value=1, max_value=20_000),
                    ),
                    min_size=1,
                    max_size=8,
                )
            )
        )
    use_barrier = draw(st.booleans())
    return scripts, use_barrier


def execute(scripts, use_barrier, cores):
    machine = Machine(cores=cores)
    lock = SimLock()
    atom = SimAtomicU64()
    barrier = SimBarrier(len(scripts)) if use_barrier else None
    trace = []

    def runner(tid, script):
        thread = machine.current()
        for op, arg in script:
            if op == "work":
                thread.advance(arg)
            elif op == "locked_work":
                with lock:
                    thread.advance(arg)
                    trace.append((tid, round(thread.local_time, 6)))
            elif op == "atomic":
                trace.append((tid, atom.fetch_add(arg)))
            elif op == "yield":
                thread.sleep(arg)
        if barrier is not None:
            barrier.wait()
        trace.append((tid, "end", round(thread.local_time, 6)))

    def main():
        threads = [
            machine.spawn(runner, i, script, name=f"t{i}")
            for i, script in enumerate(scripts)
        ]
        for thread in threads:
            thread.join()

    machine.run(main)
    return trace, machine.elapsed_cycles(), atom.value


@settings(max_examples=30, deadline=None)
@given(program=programs(), cores=st.integers(min_value=1, max_value=8))
def test_replays_identically(program, cores):
    scripts, use_barrier = program
    first = execute(scripts, use_barrier, cores)
    second = execute(scripts, use_barrier, cores)
    assert first == second


@settings(max_examples=20, deadline=None)
@given(program=programs())
def test_fewer_cores_never_faster(program):
    scripts, use_barrier = program
    _, one_core, _ = execute(scripts, use_barrier, cores=1)
    _, many_cores, _ = execute(scripts, use_barrier, cores=8)
    assert one_core >= many_cores * 0.999
