"""Unit tests for the deterministic machine and scheduler."""

import pytest

from repro.machine import (
    DeadlockError,
    Machine,
    SimLock,
    SimThreadError,
    TooManyThreadsError,
    current_thread,
)
from repro.machine.errors import MachineError


def test_run_returns_root_result():
    machine = Machine()
    assert machine.run(lambda: 42) == 42


def test_advance_accumulates_local_time():
    machine = Machine()

    def main():
        thread = machine.current()
        thread.advance(1000)
        thread.advance(500)
        return thread.local_time

    assert machine.run(main) == pytest.approx(1500.0)


def test_elapsed_covers_all_threads():
    machine = Machine(cores=16)

    def worker(cycles):
        machine.current().advance(cycles)

    def main():
        slow = machine.spawn(worker, 1_000_000)
        slow.join()

    machine.run(main)
    assert machine.elapsed_cycles() >= 1_000_000


def test_join_returns_child_result_and_advances_time():
    machine = Machine(cores=16)

    def child():
        machine.current().advance(5_000)
        return "payload"

    def main():
        t = machine.spawn(child)
        result = t.join()
        return result, machine.current().local_time

    result, end_time = machine.run(main)
    assert result == "payload"
    assert end_time >= 5_000


def test_join_self_rejected():
    machine = Machine()

    def main():
        current_thread().join()

    with pytest.raises(SimThreadError) as err:
        machine.run(main)
    assert isinstance(err.value.original, MachineError)


def test_child_exception_propagates_as_sim_thread_error():
    machine = Machine()

    def child():
        raise ValueError("boom")

    def main():
        machine.spawn(child, name="bad").join()

    with pytest.raises(SimThreadError) as err:
        machine.run(main)
    assert isinstance(err.value.original, ValueError)


def test_root_exception_propagates():
    machine = Machine()

    def main():
        raise RuntimeError("root failure")

    with pytest.raises(SimThreadError):
        machine.run(main)


def test_scheduler_prefers_min_time_thread():
    # spawn_cost=0 so both children start at the same virtual time and
    # only their own charges decide scheduling order.
    machine = Machine(cores=16, spawn_cost=0)
    order = []

    def worker(label, cycles):
        thread = machine.current()
        thread.advance(cycles)
        thread.checkpoint()
        order.append(label)

    def main():
        threads = [
            machine.spawn(worker, "slow", 10_000),
            machine.spawn(worker, "fast", 10),
        ]
        for t in threads:
            t.join()

    machine.run(main)
    assert order == ["fast", "slow"]


def test_determinism_across_runs():
    def build_and_run():
        machine = Machine(cores=4)
        trace = []

        def worker(i):
            thread = machine.current()
            for _ in range(5):
                thread.advance(100 * (i + 1))
                thread.checkpoint()
                trace.append((i, round(thread.local_time, 6)))

        def main():
            for t in [machine.spawn(worker, i) for i in range(4)]:
                t.join()

        machine.run(main)
        return trace, machine.elapsed_cycles()

    first = build_and_run()
    second = build_and_run()
    assert first == second


def test_processor_sharing_slows_oversubscribed_charges():
    serial = Machine(cores=1)
    parallel = Machine(cores=8)

    def worker():
        pass

    def main_on(machine):
        def main():
            threads = [
                machine.spawn(_burn, machine) for _ in range(4)
            ]
            for t in threads:
                t.join()

        return main

    def _burn(machine):
        machine.current().advance(100_000)

    serial.run(main_on(serial))
    parallel.run(main_on(parallel))
    assert serial.elapsed_cycles() > parallel.elapsed_cycles()


def test_reserved_core_reduces_throughput():
    plain = Machine(cores=2)
    reserved = Machine(cores=2)
    reserved.reserve_core()

    def make_main(machine):
        def main():
            threads = [machine.spawn(_burn4, machine) for _ in range(2)]
            for t in threads:
                t.join()

        return main

    def _burn4(machine):
        machine.current().advance(1_000_000)

    plain.run(make_main(plain))
    reserved.run(make_main(reserved))
    assert reserved.elapsed_cycles() > plain.elapsed_cycles()


def test_reserve_all_cores_rejected():
    machine = Machine(cores=2)
    machine.reserve_core()
    with pytest.raises(MachineError):
        machine.reserve_core()


def test_release_more_than_reserved_rejected():
    machine = Machine(cores=4)
    machine.reserve_core()
    with pytest.raises(MachineError):
        machine.release_core(2)


def test_deadlock_detected():
    machine = Machine()
    lock_a = SimLock(name="a")
    lock_b = SimLock(name="b")

    def one():
        with lock_a:
            machine.current().sleep(50_000)
            with lock_b:
                pass

    def two():
        with lock_b:
            machine.current().sleep(50_000)
            with lock_a:
                pass

    def main():
        for t in [machine.spawn(one), machine.spawn(two)]:
            t.join()

    with pytest.raises(DeadlockError) as err:
        machine.run(main)
    assert len(err.value.blocked) >= 2


def test_thread_budget_enforced():
    machine = Machine(max_threads=2)

    def main():
        machine.spawn(lambda: None)
        machine.spawn(lambda: None)

    with pytest.raises(SimThreadError) as err:
        machine.run(main)
    assert isinstance(err.value.original, TooManyThreadsError)


def test_current_thread_outside_simulation_rejected():
    with pytest.raises(MachineError):
        current_thread()


def test_negative_advance_rejected():
    machine = Machine()

    def main():
        machine.current().advance(-1)

    with pytest.raises(SimThreadError) as err:
        machine.run(main)
    assert isinstance(err.value.original, ValueError)


def test_spawn_cost_charged_to_parent():
    machine = Machine(spawn_cost=5_000)

    def main():
        before = machine.current().local_time
        machine.spawn(lambda: None).join()
        return machine.current().local_time - before

    assert machine.run(main) >= 5_000


def test_run_twice_on_same_machine():
    machine = Machine()
    assert machine.run(lambda: 1) == 1
    # A second run reuses the machine; old (finished) threads remain in
    # the roster but do not prevent new work.
    assert machine.run(lambda: 2) == 2


def test_run_without_threads_rejected():
    with pytest.raises(MachineError):
        Machine().run()
