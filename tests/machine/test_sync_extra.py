"""Unit tests for semaphore, rwlock and condition variable."""

import pytest

from repro.machine import (
    Machine,
    SimCondition,
    SimRWLock,
    SimSemaphore,
    SimThreadError,
)
from repro.machine.errors import MachineError


def test_semaphore_bounds_concurrency():
    machine = Machine(cores=8)
    sem = SimSemaphore(2)
    active = []
    peak = []

    def worker(i):
        with sem:
            active.append(i)
            peak.append(len(active))
            machine.current().sleep(10_000)
            active.remove(i)

    def main():
        for t in [machine.spawn(worker, i) for i in range(6)]:
            t.join()

    machine.run(main)
    assert max(peak) <= 2
    assert len(peak) == 6


def test_semaphore_release_multiple():
    machine = Machine(cores=8)
    sem = SimSemaphore(0)
    done = []

    def waiter(i):
        sem.acquire()
        done.append(i)

    def releaser():
        machine.current().advance(5_000)
        sem.release(3)

    def main():
        waiters = [machine.spawn(waiter, i) for i in range(3)]
        machine.spawn(releaser).join()
        for w in waiters:
            w.join()

    machine.run(main)
    assert sorted(done) == [0, 1, 2]


def test_semaphore_validation():
    with pytest.raises(ValueError):
        SimSemaphore(-1)
    machine = Machine()

    def main():
        SimSemaphore(1).release(0)

    with pytest.raises(SimThreadError):
        machine.run(main)


def test_rwlock_readers_share():
    machine = Machine(cores=8)
    lock = SimRWLock()
    concurrent = []
    active = [0]

    def reader():
        lock.acquire_read()
        active[0] += 1
        concurrent.append(active[0])
        machine.current().sleep(200_000)  # outlive the spawn stagger
        active[0] -= 1
        lock.release_read()

    def main():
        for t in [machine.spawn(reader) for _ in range(4)]:
            t.join()

    machine.run(main)
    assert max(concurrent) > 1  # genuinely overlapping readers


def test_rwlock_writer_exclusive():
    machine = Machine(cores=8)
    lock = SimRWLock()
    trace = []

    def writer(i):
        lock.acquire_write()
        trace.append(("w-in", i))
        machine.current().sleep(2_000)
        trace.append(("w-out", i))
        lock.release_write()

    def reader(i):
        lock.acquire_read()
        trace.append(("r-in", i))
        machine.current().sleep(1_000)
        trace.append(("r-out", i))
        lock.release_read()

    def main():
        threads = [
            machine.spawn(reader, 0),
            machine.spawn(writer, 1),
            machine.spawn(reader, 2),
        ]
        for t in threads:
            t.join()

    machine.run(main)
    # Writers never overlap anything.
    depth = 0
    for kind, _ in trace:
        if kind == "w-in":
            assert depth == 0
            depth += 1
        elif kind == "w-out":
            depth -= 1
        elif kind == "r-in":
            assert depth == 0 or depth < 0  # no writer active
    assert ("w-in", 1) in trace


def test_rwlock_writer_preference_blocks_new_readers():
    machine = Machine(cores=8)
    lock = SimRWLock()
    order = []

    def long_reader():
        lock.acquire_read()
        machine.current().sleep(50_000)
        lock.release_read()
        order.append("first-reader")

    def writer():
        machine.current().sleep(1_000)  # arrive second
        lock.acquire_write()
        order.append("writer")
        lock.release_write()

    def late_reader():
        machine.current().sleep(2_000)  # arrive third
        lock.acquire_read()
        order.append("late-reader")
        lock.release_read()

    def main():
        threads = [
            machine.spawn(long_reader),
            machine.spawn(writer),
            machine.spawn(late_reader),
        ]
        for t in threads:
            t.join()

    machine.run(main)
    # The queued writer goes before the late reader.
    assert order.index("writer") < order.index("late-reader")


def test_rwlock_misuse_rejected():
    machine = Machine()

    def release_unheld_read():
        SimRWLock().release_read()

    with pytest.raises(SimThreadError):
        machine.run(release_unheld_read)

    machine2 = Machine()

    def release_unheld_write():
        SimRWLock().release_write()

    with pytest.raises(SimThreadError):
        machine2.run(release_unheld_write)


def test_condition_producer_consumer():
    machine = Machine(cores=8)
    cond = SimCondition(name="queue")
    queue = []
    consumed = []

    def producer():
        for i in range(5):
            machine.current().advance(2_000)
            with cond:
                queue.append(i)
                cond.notify()

    def consumer():
        for _ in range(5):
            with cond:
                while not queue:
                    cond.wait()
                consumed.append(queue.pop(0))

    def main():
        threads = [machine.spawn(consumer), machine.spawn(producer)]
        for t in threads:
            t.join()

    machine.run(main)
    assert consumed == [0, 1, 2, 3, 4]


def test_condition_notify_all():
    machine = Machine(cores=8)
    cond = SimCondition()
    woken = []
    ready = [False]

    def waiter(i):
        with cond:
            while not ready[0]:
                cond.wait()
            woken.append(i)

    def broadcaster():
        machine.current().advance(10_000)
        with cond:
            ready[0] = True
            cond.notify_all()

    def main():
        waiters = [machine.spawn(waiter, i) for i in range(3)]
        machine.spawn(broadcaster).join()
        for w in waiters:
            w.join()

    machine.run(main)
    assert sorted(woken) == [0, 1, 2]


def test_condition_requires_lock():
    machine = Machine()

    def main():
        SimCondition().wait()

    with pytest.raises(SimThreadError) as err:
        machine.run(main)
    assert isinstance(err.value.original, MachineError)
