"""Unit tests for simulated synchronisation primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    Machine,
    SimAtomicU64,
    SimBarrier,
    SimEvent,
    SimLock,
    SimThreadError,
)


def run_in_machine(body, cores=8):
    machine = Machine(cores=cores)
    return machine.run(body, machine)


def test_atomic_fetch_add_returns_old_value():
    def main(machine):
        atom = SimAtomicU64(10)
        assert atom.fetch_add(5) == 10
        assert atom.fetch_add(1) == 15
        return atom.value

    assert run_in_machine(main) == 16


def test_atomic_wraps_at_64_bits():
    def main(machine):
        atom = SimAtomicU64((1 << 64) - 1)
        old = atom.fetch_add_relaxed(2)
        return old, atom.value

    old, value = run_in_machine(main)
    assert old == (1 << 64) - 1
    assert value == 1


def test_atomic_reservations_are_unique_across_threads():
    machine = Machine(cores=8)
    atom = SimAtomicU64()
    seen = []

    def worker():
        for _ in range(50):
            seen.append(atom.fetch_add_relaxed(1))
            machine.current().advance(10)

    def main():
        for t in [machine.spawn(worker) for _ in range(4)]:
            t.join()

    machine.run(main)
    assert sorted(seen) == list(range(200))


def test_atomic_store_and_load():
    def main(machine):
        atom = SimAtomicU64()
        atom.store(123)
        return atom.load()

    assert run_in_machine(main) == 123


def test_lock_mutual_exclusion_and_stats():
    machine = Machine(cores=8)
    lock = SimLock(name="shared")
    log = []

    def worker(i):
        for _ in range(3):
            with lock:
                log.append(("enter", i))
                machine.current().advance(1_000)
                log.append(("exit", i))

    def main():
        for t in [machine.spawn(worker, i) for i in range(3)]:
            t.join()

    machine.run(main)
    # Critical sections never interleave.
    for enter, leave in zip(log[::2], log[1::2]):
        assert enter == ("enter", leave[1])
        assert leave[0] == "exit"
    assert lock.acquisitions == 9


def test_lock_contention_counted_and_waiter_time_advances():
    machine = Machine(cores=8)
    lock = SimLock()
    times = {}

    def holder():
        with lock:
            machine.current().advance(50_000)

    def waiter():
        machine.current().advance(10)  # lose the race deterministically
        with lock:
            times["acquired_at"] = machine.current().local_time

    def main():
        threads = [machine.spawn(holder), machine.spawn(waiter)]
        for t in threads:
            t.join()

    machine.run(main)
    assert lock.contentions >= 1
    assert times["acquired_at"] >= 50_000


def test_unowned_release_rejected():
    def main(machine):
        SimLock().release()

    with pytest.raises(SimThreadError):
        run_in_machine(main)


def test_barrier_aligns_times():
    machine = Machine(cores=8)
    barrier = SimBarrier(3)
    after = []

    def worker(cycles):
        machine.current().advance(cycles)
        barrier.wait()
        after.append(machine.current().local_time)

    def main():
        threads = [machine.spawn(worker, c) for c in (100, 5_000, 90_000)]
        for t in threads:
            t.join()

    machine.run(main)
    assert barrier.generations == 1
    slowest = max(after)
    assert all(t >= 90_000 for t in after)
    assert slowest >= 90_000


def test_barrier_reusable_across_generations():
    machine = Machine(cores=8)
    barrier = SimBarrier(2)

    def worker():
        for _ in range(4):
            machine.current().advance(100)
            barrier.wait()

    def main():
        for t in [machine.spawn(worker), machine.spawn(worker)]:
            t.join()

    machine.run(main)
    assert barrier.generations == 4


def test_barrier_needs_positive_parties():
    with pytest.raises(ValueError):
        SimBarrier(0)


def test_event_wakes_waiters_at_set_time():
    machine = Machine(cores=8)
    event = SimEvent()
    woke_at = []

    def waiter():
        event.wait()
        woke_at.append(machine.current().local_time)

    def setter():
        machine.current().advance(70_000)
        event.set()

    def main():
        threads = [machine.spawn(waiter), machine.spawn(setter)]
        for t in threads:
            t.join()

    machine.run(main)
    assert woke_at and woke_at[0] >= 70_000
    assert event.is_set()


def test_event_wait_after_set_does_not_block():
    machine = Machine()

    def main():
        event = SimEvent()
        event.set()
        event.wait()
        return True

    assert machine.run(main)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=6))
def test_barrier_release_time_is_max_arrival(costs):
    machine = Machine(cores=16)
    barrier = SimBarrier(len(costs))
    exit_times = []

    def worker(cycles):
        machine.current().advance(cycles)
        barrier.wait()
        exit_times.append(machine.current().local_time)

    def main():
        for t in [machine.spawn(worker, c) for c in costs]:
            t.join()

    machine.run(main)
    # Everyone leaves at (or after) the slowest arrival.
    assert min(exit_times) >= max(costs)
