"""Unit tests for the virtual clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import VirtualClock


def test_default_frequency_matches_paper_testbed():
    clock = VirtualClock()
    assert clock.freq_hz == pytest.approx(3.6e9)


def test_cycles_to_seconds():
    clock = VirtualClock(freq_hz=2e9)
    assert clock.cycles_to_seconds(2e9) == pytest.approx(1.0)
    assert clock.cycles_to_seconds(1e6) == pytest.approx(0.0005)


def test_seconds_to_cycles():
    clock = VirtualClock(freq_hz=2e9)
    assert clock.seconds_to_cycles(0.5) == pytest.approx(1e9)


def test_ns_conversions():
    clock = VirtualClock(freq_hz=1e9)
    assert clock.cycles_to_ns(10) == pytest.approx(10.0)
    assert clock.ns_to_cycles(7.0) == pytest.approx(7.0)


def test_nonpositive_frequency_rejected():
    with pytest.raises(ValueError):
        VirtualClock(freq_hz=0)
    with pytest.raises(ValueError):
        VirtualClock(freq_hz=-1)


def test_repr_mentions_frequency():
    assert "3.600e+09" in repr(VirtualClock())


@given(st.floats(min_value=1.0, max_value=1e12, allow_nan=False))
def test_roundtrip_cycles_seconds(cycles):
    clock = VirtualClock(freq_hz=3.6e9)
    assert clock.seconds_to_cycles(
        clock.cycles_to_seconds(cycles)
    ) == pytest.approx(cycles, rel=1e-9)


@given(
    st.floats(min_value=1e3, max_value=1e10, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
)
def test_conversion_is_linear(freq, cycles):
    clock = VirtualClock(freq_hz=freq)
    assert clock.cycles_to_seconds(2 * cycles) == pytest.approx(
        2 * clock.cycles_to_seconds(cycles)
    )
