"""The public API facade and its compatibility shims.

Three contracts:

* :mod:`repro.api` exports every supported name, and each one is the
  *same object* as its home module's (no wrapper layer);
* the old deep-import paths (``from repro.core import TEEPerf``) keep
  working but emit a :class:`DeprecationWarning` naming the
  replacement;
* :class:`RecordOptions` / :class:`AnalyzeOptions` are the single
  definition the CLI builds its flags from — no drift between
  subcommands.
"""

import warnings

import pytest

import repro


def test_api_module_reachable_from_package():
    assert repro.api.__name__ == "repro.api"


def test_api_all_names_importable():
    import repro.api as api

    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_api_names_are_home_module_objects():
    import repro.api as api
    from repro.core.analyzer import Analyzer
    from repro.core.flamegraph import FlameGraph
    from repro.core.log import SharedLog, open_log
    from repro.core.profiler import TEEPerf
    from repro.core.recovery import recover_log

    assert api.TEEPerf is TEEPerf
    assert api.Profiler is TEEPerf
    assert api.Analyzer is Analyzer
    assert api.SharedLog is SharedLog
    assert api.FlameGraph is FlameGraph
    assert api.open_log is open_log
    assert api.recover_log is recover_log


def test_api_exports_diff_and_fleet_surface():
    """The differential-profiling and fleet names are first-class
    facade exports, same-object with their home modules."""
    import repro.api as api
    from repro.core.diff import AnalysisDiff, MethodDelta
    from repro.fleet import FleetClient, FleetDaemon, FleetServer
    from repro.fleet import FoldedProfile, IngestListener

    assert api.AnalysisDiff is AnalysisDiff
    assert api.MethodDelta is MethodDelta
    assert api.FleetDaemon is FleetDaemon
    assert api.FleetClient is FleetClient
    assert api.FleetServer is FleetServer
    assert api.FoldedProfile is FoldedProfile
    assert api.IngestListener is IngestListener
    for name in (
        "AnalysisDiff", "MethodDelta", "FleetDaemon", "FleetClient",
        "FleetServer", "FoldedProfile", "IngestListener",
    ):
        assert name in api.__all__, name


def test_package_lazy_attributes():
    assert repro.TEEPerf is repro.api.TEEPerf
    assert repro.Analyzer is repro.api.Analyzer
    assert repro.AnalysisDiff is repro.api.AnalysisDiff
    assert repro.FleetDaemon is repro.api.FleetDaemon
    assert "TEEPerf" in dir(repro)
    with pytest.raises(AttributeError):
        repro.definitely_not_a_name


@pytest.mark.parametrize(
    "name",
    [
        "TEEPerf",
        "Analyzer",
        "Recorder",
        "LiveRecorder",
        "SharedLog",
        "FlameGraph",
        "open_log",
    ],
)
def test_deep_import_warns_and_still_works(name):
    import repro.core

    with pytest.warns(DeprecationWarning, match=f"repro.api.{name}"):
        value = getattr(repro.core, name)
    assert value is getattr(repro.api, name)


def test_supporting_names_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.core import (  # noqa: F401
            KIND_CALL,
            PipelineStats,
            symbol,
        )


def test_unknown_core_attribute_raises():
    import repro.core

    with pytest.raises(AttributeError):
        repro.core.definitely_not_a_name


# ---------------------------------------------------------------------------
# Options: one definition, no CLI flag drift


def test_record_options_validate_and_replace():
    from repro.api import RecordOptions

    opts = RecordOptions(writer_block=8, sealed=True)
    assert opts.replace(capacity=128).capacity == 128
    assert opts.replace(capacity=128).sealed  # other fields kept
    with pytest.raises(ValueError):
        RecordOptions(capacity=0)
    with pytest.raises(ValueError):
        RecordOptions(writer_block=-1)
    with pytest.raises(ValueError):
        RecordOptions(version=99)


def test_analyze_options_validate_and_replace():
    from repro.api import AnalyzeOptions

    opts = AnalyzeOptions(jobs=4, recover="auto")
    assert opts.replace(engine="python").jobs == 4
    with pytest.raises(ValueError):
        AnalyzeOptions(jobs=0)
    with pytest.raises(ValueError):
        AnalyzeOptions(engine="warp")
    with pytest.raises(ValueError):
        AnalyzeOptions(recover="maybe")


def test_cli_subcommands_share_one_record_definition():
    """demo and monitor take identical recording flags, built from the
    same RecordOptions defaults — the drift the facade PR removed."""
    from repro.api import RecordOptions
    from repro.cli import build_parser

    defaults = RecordOptions()
    parser = build_parser()
    for command in (["demo"], ["monitor"]):
        args = parser.parse_args(command)
        assert args.capacity == defaults.capacity
        assert args.writer_block == defaults.writer_block
        assert args.sealed == defaults.sealed


def test_cli_analyze_flags_match_analyze_options():
    from repro.api import AnalyzeOptions
    from repro.cli import build_parser
    from repro.core.options import analyze_options_from_args

    args = build_parser().parse_args(["analyze", "x.teeperf"])
    assert analyze_options_from_args(args) == AnalyzeOptions()
    args = build_parser().parse_args(
        ["analyze", "x.teeperf", "--recover", "auto", "--jobs", "3"]
    )
    opts = analyze_options_from_args(args)
    assert opts.recover == "auto" and opts.jobs == 3


def test_record_options_drive_the_recorder(tmp_path):
    """One options object configures TEEPerf end to end."""
    from repro.api import AnalyzeOptions, RecordOptions, TEEPerf
    from repro.core import symbol

    class App:
        @symbol("api::Main()")
        def main(self, env):
            for _ in range(8):
                env.compute(1000)

    opts = RecordOptions(capacity=1 << 12, sealed=True)
    perf = TEEPerf.simulated(name="api-test", record=opts)
    app = App()
    perf.compile_instance(app)
    perf.record(app.main, perf.env)
    assert perf.recorder.log.sealed
    assert perf.recorder.log.seal_watermark == len(perf.recorder.log)
    analysis = perf.analyze(options=AnalyzeOptions(recover="auto"))
    assert analysis.recovery is not None and analysis.recovery.ok
    assert analysis.method("api::Main()").calls == 1
