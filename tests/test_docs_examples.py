"""Executable documentation: run the README quickstart and the
query-reference examples exactly as written, so the docs cannot rot.

* Every ``python`` fenced block in the README's Quickstart section is
  executed in order (one shared working directory, fresh namespaces).
* Every ``tee-perf`` command in the Quickstart console blocks is run
  through the real CLI entry point (with ``>`` redirection honoured).
* Every ``python`` block in docs/query-reference.md runs top-to-bottom
  in one shared namespace, as the page promises.
* Paths the README tells people to run (``examples/*.py``) must exist.
"""

import pathlib
import re
import shlex

import pytest

from repro.cli import main

ROOT = pathlib.Path(__file__).resolve().parents[1]
README = ROOT / "README.md"
QUERY_REFERENCE = ROOT / "docs" / "query-reference.md"
BENCHMARKING = ROOT / "docs" / "benchmarking.md"

_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def section(text, heading):
    """The markdown between `heading` and the next same-level heading."""
    level = heading.split(" ", 1)[0]
    pattern = re.compile(
        rf"^{re.escape(heading)}\s*$(.*?)(?=^{level} |\Z)",
        re.DOTALL | re.MULTILINE,
    )
    match = pattern.search(text)
    assert match, f"no section {heading!r}"
    return match.group(1)


def fenced_blocks(text, language):
    return [
        body for lang, body in _FENCE.findall(text) if lang == language
    ]


def run_console_line(line, capsys):
    """Execute one ``$ tee-perf ...`` line through the CLI."""
    command = line[1:].strip()
    command, _, redirect = command.partition(">")
    argv = shlex.split(command.split("#")[0])
    assert argv[0] == "tee-perf"
    assert main(argv[1:]) == 0, line
    out = capsys.readouterr().out
    if redirect:
        pathlib.Path(redirect.strip()).write_text(out)
    return out


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_readme_quickstart_python_blocks(in_tmp):
    quickstart = section(README.read_text(), "## Quickstart")
    blocks = fenced_blocks(quickstart, "python")
    assert len(blocks) >= 3  # live, simulated, auto
    for block in blocks:
        exec(compile(block, str(README), "exec"), {"__name__": "__docs__"})
    # The live snippet wrote its flame graph where it said it would.
    assert (in_tmp / "out.svg").read_text().startswith("<svg")


def test_readme_quickstart_cli_commands(in_tmp, capsys):
    quickstart = section(README.read_text(), "## Quickstart")
    commands = [
        line
        for block in fenced_blocks(quickstart, "console")
        for line in block.splitlines()
        if line.startswith("$ tee-perf")
    ]
    assert len(commands) >= 7
    for line in commands:
        run_console_line(line, capsys)
    # The pipeline produced what the commands claim.
    assert (in_tmp / "demo" / "demo.teeperf").exists()
    assert (in_tmp / "stacks.folded").read_text().strip()
    assert (in_tmp / "out.svg").read_text().startswith("<svg")


def test_readme_example_paths_exist():
    quickstart = section(README.read_text(), "## Quickstart")
    paths = re.findall(r"\$ python (examples/\S+)", quickstart)
    assert paths, "quickstart no longer lists runnable examples"
    for path in paths:
        assert (ROOT / path).exists(), path


def test_query_reference_examples(in_tmp):
    blocks = fenced_blocks(QUERY_REFERENCE.read_text(), "python")
    assert len(blocks) >= 10
    namespace = {"__name__": "__docs__"}
    for block in blocks:
        exec(compile(block, str(QUERY_REFERENCE), "exec"), namespace)
    # The page's own claims held while executing.
    assert len(namespace["session"].records) == 13


def _documented_bench_argv():
    """Every ``$ python -m repro.bench ...`` line the docs show."""
    lines = []
    for path in (README, BENCHMARKING):
        for block in fenced_blocks(path.read_text(), "console"):
            for line in block.splitlines():
                if line.startswith("$ python -m repro.bench"):
                    lines.append((path.name, line))
    return lines


def test_documented_bench_commands_parse():
    """The bench CLI lines in the docs must stay valid argv — parsed
    by the real parser, not pattern-matched."""
    from repro.bench.runner import build_parser

    parser = build_parser()
    lines = _documented_bench_argv()
    assert len(lines) >= 4, "docs no longer show the bench commands"
    for name, line in lines:
        command = line[1:].split("#")[0]
        # Continuation lines: rejoin "\"-terminated commands.
        argv = shlex.split(command.replace("\\", " "))
        assert argv[:3] == ["python", "-m", "repro.bench"], (name, line)
        parser.parse_args(argv[3:])  # SystemExit on drift


def test_readme_perf_table_covers_registry():
    """The README's generated perf table must name every registered
    benchmark — if the registry grows, the table must be regenerated."""
    from repro.bench.ports import build_registry

    perf = section(README.read_text(), "### Performance suite")
    for bench in build_registry(quick=True):
        assert f"`{bench.name}`" in perf, (
            f"README perf table is stale: missing {bench.name} "
            "(regenerate with `python -m repro.bench --report`)"
        )
    assert "benchmarking.md" in perf
