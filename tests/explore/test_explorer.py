"""The exploration engine: sweeps, reproduction, minimisation.

The acceptance bar for the whole subsystem lives here:

* the planted lock-order deadlock is found within 200 trials and
  reproduces *exactly* from its reported seed;
* a 1000-trial sweep of the batched-writer record path upholds the
  byte-identity and recovery-accounting oracles on every schedule.
"""

import json
import unittest

from repro.explore import (
    ExploreOptions,
    Explorer,
    workload_by_name,
)


class TestExploreOptions(unittest.TestCase):
    def test_defaults_and_replace(self):
        options = ExploreOptions()
        self.assertEqual(options.mode, "random")
        tweaked = options.replace(trials=7, policy="enclave")
        self.assertEqual(tweaked.trials, 7)
        self.assertEqual(options.trials, 100)  # frozen original

    def test_validation(self):
        for bad in (
            {"trials": 0},
            {"cores": 0},
            {"max_steps": 0},
            {"mode": "exhaustive"},
            {"policy": "fifo"},
        ):
            with self.assertRaises(ValueError, msg=bad):
                ExploreOptions(**bad)

    def test_frozen(self):
        with self.assertRaises(Exception):
            ExploreOptions().trials = 5


class TestDeadlockHunt(unittest.TestCase):
    def test_finds_planted_deadlock_within_200_trials(self):
        explorer = Explorer(
            workload_by_name("lock-inversion"),
            ExploreOptions(
                trials=200, seed=1, policy="random", stop_on_finding=True
            ),
        )
        report = explorer.run()
        self.assertFalse(report.ok)
        self.assertLessEqual(len(report.runs), 200)
        self.assertIn("deadlock", report.findings_by_detector())

    def test_failure_reproduces_exactly_from_seed(self):
        explorer = Explorer(
            workload_by_name("lock-inversion"),
            ExploreOptions(
                trials=200, seed=1, policy="random", stop_on_finding=True
            ),
        )
        failure = explorer.run().first_failure
        rerun = explorer.run_trial(
            failure.seed, policy_name="random", trial=failure.trial
        )
        self.assertEqual(
            failure.trace.signature(), rerun.trace.signature()
        )
        self.assertEqual(
            [f.detector for f in failure.findings],
            [f.detector for f in rerun.findings],
        )

    def test_same_root_seed_same_report(self):
        options = ExploreOptions(trials=30, seed=5, policy="random")
        factory = workload_by_name("lock-inversion")
        first = Explorer(factory, options).run()
        second = Explorer(factory, options).run()
        self.assertEqual(
            [r.trace.signature() for r in first.runs],
            [r.trace.signature() for r in second.runs],
        )
        self.assertEqual(first.ok, second.ok)

    def test_minimized_repro_still_fails(self):
        explorer = Explorer(
            workload_by_name("lock-inversion"),
            ExploreOptions(
                trials=200, seed=1, policy="random", stop_on_finding=True
            ),
        )
        report = explorer.run()
        self.assertIsNotNone(report.minimized)
        minimized = report.minimized
        self.assertLessEqual(
            len(minimized["choices"]), minimized["trace_steps"]
        )
        replay = explorer.replay(
            minimized["choices"], seed=minimized["seed"]
        )
        self.assertFalse(replay.ok)
        self.assertIn(
            replay.findings[0].detector, minimized["detectors"]
        )

    def test_systematic_mode_finds_the_deadlock(self):
        report = Explorer(
            workload_by_name("lock-inversion"),
            ExploreOptions(
                trials=64, seed=0, mode="systematic", stop_on_finding=True
            ),
        ).run()
        self.assertFalse(report.ok)
        self.assertIn("deadlock", report.findings_by_detector())
        # It got there by branching, not luck: the failing schedule is
        # a replayed forced prefix of the deterministic baseline.
        self.assertEqual(report.first_failure.policy, "replay")

    def test_min_time_baseline_is_deadlock_free(self):
        # The deterministic schedule never hits it — which is exactly
        # why exploration exists.
        report = Explorer(
            workload_by_name("lock-inversion"),
            ExploreOptions(trials=1, policy="min-time"),
        ).run()
        self.assertTrue(report.ok, report.report())


class TestRecordPathSweep(unittest.TestCase):
    def test_thousand_trials_uphold_the_oracles(self):
        # The acceptance run: 1000 seeded schedules over the batched
        # writer path, every one re-checked against byte identity and
        # recovery accounting.  Quick preset keeps it under ~2s.
        report = Explorer(
            workload_by_name("record-path", quick=True),
            ExploreOptions(trials=1000, seed=17, policy="all"),
        ).run()
        self.assertTrue(report.ok, report.report())
        self.assertEqual(len(report.runs), 1000)
        self.assertGreater(report.schedules_explored(), 1)

    def test_full_size_sweep_holds(self):
        report = Explorer(
            workload_by_name("record-path"),
            ExploreOptions(trials=100, seed=3, policy="random"),
        ).run()
        self.assertTrue(report.ok, report.report())

    def test_systematic_record_path_branches_and_holds(self):
        report = Explorer(
            workload_by_name("record-path", quick=True),
            ExploreOptions(trials=30, seed=0, mode="systematic"),
        ).run()
        self.assertTrue(report.ok, report.report())
        self.assertGreater(len(report.runs), 1)

    def test_crash_schedule_composition_holds(self):
        # Fault injection composed with exploration: the one trial
        # seed picks both the schedule and the crash plan, and the
        # torn snapshot's books must balance every time.
        report = Explorer(
            workload_by_name("crashing-record", quick=True),
            ExploreOptions(trials=200, seed=23, policy="random"),
        ).run()
        self.assertTrue(report.ok, report.report())


class TestReport(unittest.TestCase):
    def _failing_report(self):
        return Explorer(
            workload_by_name("lock-inversion"),
            ExploreOptions(
                trials=100, seed=1, policy="random", stop_on_finding=True
            ),
        ).run()

    def test_to_dict_json_round_trip(self):
        report = self._failing_report()
        blob = json.loads(json.dumps(report.to_dict()))
        self.assertFalse(blob["ok"])
        self.assertEqual(blob["workload"], "lock-inversion")
        self.assertEqual(blob["options"]["policy"], "random")
        self.assertTrue(blob["failures"])
        # Failing runs always carry their replayable trace.
        self.assertIn("trace", blob["failures"][0])
        self.assertIsNotNone(blob["minimized"])

    def test_report_text_names_the_failure(self):
        text = self._failing_report().report()
        self.assertIn("deadlock", text)
        self.assertIn("seed", text)
        self.assertIn("minimized repro", text)

    def test_passing_report_text(self):
        report = Explorer(
            workload_by_name("locked-counter"),
            ExploreOptions(trials=10, seed=0, policy="random"),
        ).run()
        self.assertIn("every invariant held", report.report())


if __name__ == "__main__":
    unittest.main()
