"""The detector stack: races, contention tracking, oracles."""

import unittest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (
    Explorer,
    ExploreOptions,
    LocksetRaceDetector,
    OracleViolation,
    check_recovery_accounting,
    workload_by_name,
)
from repro.explore.workloads import RacyCounterWorkload


class TestLocksetDetector(unittest.TestCase):
    def _sweep(self, locked, trials=20, seed=2):
        factory = lambda: RacyCounterWorkload(
            threads=3, iters=3, locked=locked
        )
        return Explorer(
            factory,
            ExploreOptions(trials=trials, seed=seed, policy="random"),
        ).run()

    def test_reports_unlocked_counter(self):
        report = self._sweep(locked=False)
        detectors = report.findings_by_detector()
        self.assertIn("race", detectors)
        # One location, reported once per schedule at most.
        self.assertLessEqual(detectors["race"], len(report.runs))
        finding = next(
            f for f in report.findings if f.detector == "race"
        )
        self.assertIn("counter.value", finding.message)
        # Every finding is stamped with its provenance.
        self.assertIsNotNone(finding.seed)
        self.assertIsNotNone(finding.policy)

    def test_silent_on_locked_counter(self):
        report = self._sweep(locked=True)
        self.assertTrue(report.ok, report.report())

    @settings(max_examples=15, deadline=None)
    @given(
        threads=st.integers(min_value=2, max_value=4),
        iters=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_locked_counter_never_reports(self, threads, iters, seed):
        # Property: a correctly-locked counter is race-free under any
        # seeded schedule, and never loses an update.
        factory = lambda: RacyCounterWorkload(
            threads=threads, iters=iters, locked=True
        )
        report = Explorer(
            factory,
            ExploreOptions(trials=3, seed=seed, policy="random"),
        ).run()
        self.assertTrue(report.ok, report.report())

    def test_detector_is_per_run_state(self):
        detector = LocksetRaceDetector()
        self.assertEqual(detector.findings, [])
        self.assertEqual(detector.locks_held(1), [])


class TestContentionTracker(unittest.TestCase):
    def test_flags_cover_dependent_steps(self):
        # A run of the racy counter must flag the steps where the
        # shared location was touched by different threads.
        explorer = Explorer(
            lambda: RacyCounterWorkload(threads=2, iters=2),
            ExploreOptions(trials=1, seed=0, policy="min-time"),
        )
        run = explorer.run_trial(0, policy_name="min-time")
        self.assertTrue(run._flagged_steps)
        self.assertTrue(
            all(0 <= s < len(run.trace) for s in run._flagged_steps)
        )


class TestOracles(unittest.TestCase):
    def test_recovery_accounting_balances_on_clean_log(self):
        from repro.core.log import SharedLog

        log = SharedLog.create(8, sealed=True)
        for i in range(6):
            log.append(0, 100 + i, 0x400000 + i, 1)
        log._store_tail()
        report = check_recovery_accounting(log.to_bytes())
        self.assertEqual(
            report.entries_salvaged + report.entries_quarantined, 6
        )

    def test_recovery_accounting_raises_on_cooked_books(self):
        # Force a mismatch by lying about the committed count: hand
        # the checker an image with entries the report can't see.
        from repro.core.log import SharedLog

        log = SharedLog.create(4, sealed=True)
        log.append(0, 1, 0x400000, 1)
        log._store_tail()
        image = log.to_bytes()

        class Lying:
            pass

        # A sanity check on the checker itself: the balanced case
        # passes, so feed it a report-vs-image length mismatch via a
        # monkeypatched recover_log.
        import repro.core.recovery as recovery

        real = recovery.recover_log

        def cooked(img, **kw):
            salvaged, report = real(img, **kw)
            report.entries_salvaged += 1
            return salvaged, report

        recovery.recover_log = cooked
        try:
            with self.assertRaises(OracleViolation):
                check_recovery_accounting(image)
        finally:
            recovery.recover_log = real

    def test_record_path_verify_catches_corruption(self):
        # If a schedule *had* torn a committed entry, verify() would
        # raise: flip a byte post-run and check the oracle notices.
        workload = workload_by_name("record-path", quick=True)()
        explorer = Explorer(lambda: workload, ExploreOptions(trials=1))
        run = explorer.run_trial(0, policy_name="min-time")
        self.assertTrue(run.ok, run.findings)
        # Corrupt one committed entry in place.
        from repro.core.log import HEADER_SIZE

        workload.log._buf[HEADER_SIZE + 3] ^= 0xFF
        with self.assertRaises(OracleViolation):
            workload.verify(None)


if __name__ == "__main__":
    unittest.main()
