"""Tests for multi-queue runs and latency reporting."""

import pytest

from repro.spdk import NvmeDevice, SpdkPerfResult, run_spdk_perf, run_spdk_perf_multi
from repro.tee import NATIVE, SGX_V1


def test_device_queues_are_isolated():
    device = NvmeDevice(latency_cycles=10, service_cycles=1)
    q1 = device.create_queue()
    q2 = device.create_queue()
    a = q1.submit(0, True, 1)
    b = q2.submit(0, True, 2)
    # Each poller sees only its own completions.
    assert q1.ready(1_000, 10) == [a]
    assert q2.ready(1_000, 10) == [b]
    assert q1.ready(1_000, 10) == []


def test_shared_service_engine_spaces_cross_queue():
    device = NvmeDevice(latency_cycles=10, service_cycles=100)
    q1 = device.create_queue()
    q2 = device.create_queue()
    a = q1.submit(0, True, 1)
    b = q2.submit(0, True, 2)
    assert b.completion_time - a.completion_time == 100


def test_multi_queue_scales_then_saturates():
    one = run_spdk_perf_multi(NATIVE, workers=1, ops_per_worker=1_200)
    two = run_spdk_perf_multi(NATIVE, workers=2, ops_per_worker=1_200)
    four = run_spdk_perf_multi(NATIVE, workers=4, ops_per_worker=1_200)
    # Two pollers nearly double one (CPU-bound); four hit the device's
    # ~400k IOPS service ceiling.
    assert two.iops > 1.7 * one.iops
    assert four.iops < 2.6 * one.iops
    device_ceiling = 3.6e9 / 9_000
    assert four.iops == pytest.approx(device_ceiling, rel=0.10)


def test_multi_queue_all_ops_complete():
    merged = run_spdk_perf_multi(NATIVE, workers=3, ops_per_worker=400)
    assert merged.ops == 1_200
    assert merged.reads + merged.writes == 1_200


def test_latency_percentiles_ordered():
    result = run_spdk_perf(NATIVE, ops=1_000)
    p50 = result.latency_percentile_us(50)
    p90 = result.latency_percentile_us(90)
    p99 = result.latency_percentile_us(99)
    assert 0 < p50 <= p90 <= p99
    assert result.mean_latency_us() > 0
    # Device latency is 80 us; queue depth makes observed latency at
    # least that.
    assert p50 >= 80


def test_latency_grows_inside_naive_enclave():
    native = run_spdk_perf(NATIVE, ops=400)
    naive = run_spdk_perf(SGX_V1, optimized=False, ops=300)
    assert naive.latency_percentile_us(50) > 5 * native.latency_percentile_us(50)


def test_percentile_validation():
    result = SpdkPerfResult(
        ops=0, reads=0, writes=0, elapsed_cycles=0, freq_hz=3.6e9,
        optimized=False, getpid_calls=0, rdtsc_calls=0, latencies=[1.0],
    )
    with pytest.raises(ValueError):
        result.latency_percentile_us(0)
    with pytest.raises(ValueError):
        result.latency_percentile_us(101)


def test_merge_requires_input():
    with pytest.raises(ValueError):
        SpdkPerfResult.merge([])
