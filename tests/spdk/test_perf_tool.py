"""Integration tests: the SPDK perf tool and the §IV-C numbers."""

import pytest

from repro.api import FlameGraph
from repro.machine import Machine
from repro.spdk import SpdkPerf, profile_spdk_perf, run_spdk_perf
from repro.tee import NATIVE, SGX_V1, make_env


def test_all_ios_complete_with_mix():
    result = run_spdk_perf(NATIVE, ops=500, read_pct=80)
    assert result.ops == 500
    assert result.reads + result.writes == 500
    assert result.reads / result.ops == pytest.approx(0.8, abs=0.08)


def test_zero_and_full_read_mixes():
    all_reads = run_spdk_perf(NATIVE, ops=200, read_pct=100)
    all_writes = run_spdk_perf(NATIVE, ops=200, read_pct=0)
    assert all_reads.writes == 0
    assert all_writes.reads == 0


def test_parameter_validation():
    machine = Machine()
    env = make_env(machine, NATIVE)
    with pytest.raises(ValueError):
        SpdkPerf(env, queue_depth=0)
    with pytest.raises(ValueError):
        SpdkPerf(env, read_pct=101)


def test_queue_depth_bounded():
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    tool = SpdkPerf(env, queue_depth=16, ops=300)
    machine.run(tool.run)
    assert tool.controller.device.submitted == 300
    # Never more than queue_depth in flight: the free list proves it.
    assert len(tool._free) == 16


def test_getpid_once_per_io_naive():
    result = run_spdk_perf(SGX_V1, optimized=False, ops=200)
    assert result.getpid_calls == 200
    assert result.rdtsc_calls == 400  # two tick reads per io


def test_optimized_caches_pid_and_tsc():
    result = run_spdk_perf(SGX_V1, optimized=True, ops=200)
    assert result.getpid_calls == 1
    assert result.rdtsc_calls < 20


def test_paper_iops_table_shape():
    """§IV-C: native ~224k, naive ~16k, optimised ~233k (>= native)."""
    native = run_spdk_perf(NATIVE, optimized=False, ops=2_000)
    naive = run_spdk_perf(SGX_V1, optimized=False, ops=600)
    optimized = run_spdk_perf(SGX_V1, optimized=True, ops=2_000)
    assert native.iops == pytest.approx(223_808, rel=0.10)
    assert naive.iops == pytest.approx(15_821, rel=0.10)
    assert optimized.iops == pytest.approx(232_736, rel=0.10)
    assert optimized.iops > native.iops  # the paper's punchline
    assert optimized.iops / naive.iops == pytest.approx(14.7, rel=0.10)
    assert native.throughput_mib_s == pytest.approx(874, rel=0.10)
    assert naive.throughput_mib_s == pytest.approx(61.8, rel=0.10)
    assert optimized.throughput_mib_s == pytest.approx(909, rel=0.10)


def test_figure6_unoptimized_profile_shape():
    """getpid ~72 % and rdtsc ~20 % of the naive enclave run."""
    perf, _, _, analysis = profile_spdk_perf(
        platform=SGX_V1, optimized=False, ops=400
    )
    try:
        graph = FlameGraph.from_analysis(analysis)
        assert graph.share("getpid") == pytest.approx(0.72, abs=0.08)
        assert graph.share("rdtsc") == pytest.approx(0.20, abs=0.05)
        # The stack nests the way Figure 6 draws it.
        folded = graph.to_folded()
        assert (
            "ns_cmd_read_with_md;_nvme_ns_cmd_rw;allocate_request;getpid"
            in folded
        )
        assert "get_ticks;get_timer_cycles;get_tsc_cycles;rdtsc" in folded
    finally:
        perf.uninstrument()


def test_figure6_optimized_profile_shape():
    """After caching, getpid and rdtsc drop to (nearly) zero."""
    perf, _, _, analysis = profile_spdk_perf(
        platform=SGX_V1, optimized=True, ops=400
    )
    try:
        graph = FlameGraph.from_analysis(analysis)
        # One cold getpid ocall remains; on this short run it is ~2 %.
        assert graph.share("getpid") < 0.03
        assert graph.share("rdtsc") < 0.05
        # Reading and writing get the time instead.
        assert graph.share("submit_single_io") > 0.2
    finally:
        perf.uninstrument()


def test_deterministic_iops():
    first = run_spdk_perf(NATIVE, ops=300)
    second = run_spdk_perf(NATIVE, ops=300)
    assert first.iops == second.iops
