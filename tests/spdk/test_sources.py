"""Unit tests for the pid/tsc sources and their caches."""

import pytest

from repro.machine import Machine
from repro.spdk import CachedPidSource, CachedTscSource, PidSource, TscSource
from repro.tee import NATIVE, SGX_V1, make_env


def in_env(platform, body):
    machine = Machine()
    env = make_env(machine, platform)
    result = machine.run(body, env)
    return result, machine


def test_naive_pid_pays_every_time():
    def body(env):
        source = PidSource(env)
        for _ in range(10):
            source.getpid()
        return source.real_calls, env.stats.ocalls

    (calls, ocalls), _ = in_env(SGX_V1, body)
    assert calls == 10
    assert ocalls == 10


def test_cached_pid_pays_once():
    def body(env):
        source = CachedPidSource(env)
        pids = {source.getpid() for _ in range(10)}
        return source.real_calls, env.stats.ocalls, pids

    (calls, ocalls, pids), _ = in_env(SGX_V1, body)
    assert calls == 1
    assert ocalls == 1
    assert len(pids) == 1


def test_cached_pid_much_cheaper_in_enclave():
    def run(source_cls):
        def body(env):
            source = source_cls(env)
            for _ in range(100):
                source.getpid()

        _, machine = in_env(SGX_V1, body)
        return machine.elapsed_cycles()

    assert run(PidSource) > 50 * run(CachedPidSource)


def test_naive_tsc_counts_reads():
    def body(env):
        source = TscSource(env)
        values = [source.rdtsc() for _ in range(5)]
        return source.real_calls, values

    (calls, values), _ = in_env(SGX_V1, body)
    assert calls == 5
    assert values == sorted(values)


def test_cached_tsc_corrects_every_interval():
    def body(env):
        source = CachedTscSource(env, interval=10)
        for _ in range(101):
            env.compute(1_000)
            source.rdtsc()
        return source.real_calls

    calls, _ = in_env(SGX_V1, body)
    # 1 initial + one correction per 10 cached reads.
    assert 9 <= calls <= 12


def test_cached_tsc_monotone_and_roughly_accurate():
    def body(env):
        source = CachedTscSource(env, interval=20)
        readings = []
        for _ in range(100):
            env.compute(5_000)
            readings.append(source.rdtsc())
        truth = env.machine.clock.cycles_to_ns(env.thread().local_time)
        return readings, truth

    (readings, truth), _ = in_env(NATIVE, body)
    assert readings == sorted(readings)
    # The cached clock tracks real time within a correction stride.
    assert readings[-1] == pytest.approx(truth, rel=0.25)


def test_cached_tsc_interval_validated():
    machine = Machine()
    env = make_env(machine, NATIVE)
    with pytest.raises(ValueError):
        CachedTscSource(env, interval=0)
