"""Unit tests for the simulated NVMe device."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spdk import NvmeDevice


def test_completion_respects_latency():
    device = NvmeDevice(latency_cycles=1000, service_cycles=10)
    command = device.submit(now=0, is_read=True, lba=0)
    assert command.completion_time == 1000
    assert device.ready(now=999, limit=10) == []
    assert device.ready(now=1000, limit=10) == [command]


def test_service_rate_limits_throughput():
    device = NvmeDevice(latency_cycles=100, service_cycles=50)
    commands = [device.submit(0, True, i) for i in range(10)]
    # First completes at latency; the rest are service-spaced.
    times = [c.completion_time for c in commands]
    assert times[0] == 100
    for earlier, later in zip(times, times[1:]):
        assert later - earlier == 50


def test_ready_respects_limit_and_order():
    device = NvmeDevice(latency_cycles=10, service_cycles=1)
    for i in range(5):
        device.submit(0, True, i)
    first = device.ready(now=1_000, limit=3)
    rest = device.ready(now=1_000, limit=10)
    assert [c.lba for c in first] == [0, 1, 2]
    assert [c.lba for c in rest] == [3, 4]
    assert device.completed == 5


def test_lba_bounds_checked():
    device = NvmeDevice(blocks=100)
    with pytest.raises(ValueError):
        device.submit(0, True, 100)
    with pytest.raises(ValueError):
        device.submit(0, True, -1)


def test_next_completion_time():
    device = NvmeDevice(latency_cycles=500, service_cycles=10)
    assert device.next_completion_time() is None
    device.submit(0, False, 1)
    assert device.next_completion_time() == 500


def test_cids_wrap_16_bits():
    device = NvmeDevice(latency_cycles=1, service_cycles=1)
    device._next_cid = 0xFFFF
    a = device.submit(0, True, 0)
    b = device.submit(0, True, 1)
    assert a.cid == 0xFFFF
    assert b.cid == 0


@settings(max_examples=30)
@given(
    submits=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                     max_size=50)
)
def test_completions_monotone_property(submits):
    device = NvmeDevice(latency_cycles=100, service_cycles=7)
    times = [
        device.submit(now, True, 0).completion_time
        for now in sorted(submits)
    ]
    assert times == sorted(times)
    assert all(
        done >= now + 100 for done, now in zip(times, sorted(submits))
    )
