"""The public API surface, snapshot-tested.

``repro.api.__all__`` is a *contract*: adding a name is a conscious
API decision and removing one is a break.  The checked-in manifest
(``tests/api_manifest.json``) pins both the names and their kind
(class vs function), so either kind of drift fails loudly with an
instruction instead of slipping through review.

To update the manifest after a deliberate API change::

    PYTHONPATH=src python tests/test_api_surface.py --regen
"""

import inspect
import json
import os
import unittest

import repro.api as api

MANIFEST = os.path.join(os.path.dirname(__file__), "api_manifest.json")


def _kind(obj):
    if inspect.isclass(obj):
        return "class"
    if callable(obj):
        return "function"
    return "object"


def current_surface():
    return {name: _kind(getattr(api, name)) for name in api.__all__}


class TestApiSurface(unittest.TestCase):
    def setUp(self):
        with open(MANIFEST) as fh:
            self.manifest = json.load(fh)

    def test_all_is_sorted_and_unique(self):
        self.assertEqual(list(api.__all__), sorted(set(api.__all__)))

    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            self.assertTrue(hasattr(api, name), name)

    def test_surface_matches_manifest(self):
        surface = current_surface()
        added = sorted(set(surface) - set(self.manifest))
        removed = sorted(set(self.manifest) - set(surface))
        self.assertFalse(
            added or removed,
            f"repro.api surface drifted (added={added}, "
            f"removed={removed}); if deliberate, regenerate with "
            f"`python tests/test_api_surface.py --regen`",
        )

    def test_kinds_match_manifest(self):
        surface = current_surface()
        changed = {
            name: (self.manifest[name], surface[name])
            for name in surface
            if name in self.manifest and surface[name] != self.manifest[name]
        }
        self.assertFalse(
            changed,
            f"exported names changed kind (was, now): {changed}",
        )

    def test_facade_reexports_are_identities(self):
        # The facade is a names contract, not a wrapper layer.
        from repro.explore.explorer import Explorer as home_explorer
        from repro.machine.machine import Machine as home_machine

        self.assertIs(api.Explorer, home_explorer)
        self.assertIs(api.Machine, home_machine)

    def test_package_lazy_names_subset_of_api(self):
        import repro

        missing = [
            name for name in repro._API_NAMES if name not in api.__all__
        ]
        self.assertFalse(missing)
        for name in repro._API_NAMES:
            self.assertIs(getattr(repro, name), getattr(api, name))


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        with open(MANIFEST, "w") as fh:
            json.dump(current_surface(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {MANIFEST}")
    else:
        unittest.main()
