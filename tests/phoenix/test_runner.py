"""Tests for the profiler-under-test runners (Figure 4 machinery)."""

import pytest

from repro.phoenix import (
    FIGURE4_WORKLOADS,
    LinearRegression,
    StringMatch,
    WordCount,
    overhead_vs_perf,
    run_baseline,
    run_perf,
    run_teeperf,
    workload_by_name,
)
from repro.tee import NATIVE, SGX_V1

SMALL = {"n_keys": 6_000}
SMALL_WC = {"n_words": 4_000}


def test_workload_by_name():
    assert workload_by_name("string_match") is StringMatch
    assert workload_by_name("reverse_index").NAME == "reverse_index"
    with pytest.raises(KeyError):
        workload_by_name("not_a_phoenix_benchmark")


def test_figure4_set_matches_paper_axis():
    names = [cls.NAME for cls in FIGURE4_WORKLOADS]
    assert names == [
        "matrix_multiply",
        "string_match",
        "word_count",
        "linear_regression",
        "histogram",
    ]


def test_all_three_configs_agree_on_result():
    base = run_baseline(StringMatch, seed=3, **SMALL)
    tee = run_teeperf(StringMatch, seed=3, **SMALL)
    perf = run_perf(StringMatch, seed=3, **SMALL)
    assert base.result == tee.result == perf.result


def test_teeperf_run_produces_analysis_with_kernel():
    tee = run_teeperf(WordCount, seed=1, **SMALL_WC)
    stats = tee.analysis.method("wc_insert")
    assert stats.calls == 4_000
    assert len(stats.threads) == 4


def test_perf_run_produces_sampled_profile():
    perf = run_perf(WordCount, seed=1, n_words=40_000)
    assert perf.perf.total_samples > 0
    assert perf.perf.fraction("wc_insert") > 0.5


def test_profiled_runs_cost_more_than_baseline():
    base = run_baseline(StringMatch, seed=2, **SMALL)
    tee = run_teeperf(StringMatch, seed=2, **SMALL)
    perf = run_perf(StringMatch, seed=2, **SMALL)
    assert tee.elapsed_cycles > base.elapsed_cycles
    assert perf.elapsed_cycles > base.elapsed_cycles


def test_overhead_ratio_string_match_is_large():
    ratio = overhead_vs_perf(StringMatch, seed=1, **SMALL)
    assert ratio > 3.0


def test_overhead_ratio_linear_regression_below_one():
    ratio = overhead_vs_perf(LinearRegression, seed=1, n_points=100_000)
    assert ratio < 1.0


def test_enclave_baseline_slower_than_native():
    native = run_baseline(WordCount, platform=NATIVE, seed=1, **SMALL_WC)
    sgx = run_baseline(WordCount, platform=SGX_V1, seed=1, **SMALL_WC)
    assert sgx.elapsed_cycles > native.elapsed_cycles
