"""Correctness tests: the Phoenix workloads compute real answers."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.phoenix import (
    Histogram,
    KMeans,
    LinearRegression,
    MatrixMultiply,
    PCA,
    ReverseIndex,
    StringMatch,
    WordCount,
)
from repro.phoenix import datasets
from repro.tee import NATIVE, make_env


def run_workload(cls, **params):
    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    workload = cls(machine, env, **params)
    result = machine.run(workload.run)
    return workload, result, machine


def test_string_match_finds_planted_targets():
    _, found, _ = run_workload(StringMatch, n_keys=4_000, seed=3)
    assert found == 4  # one per planted target


def test_string_match_no_duplicates_when_keys_tiny():
    _, found, _ = run_workload(StringMatch, n_keys=7, nworkers=3, seed=5)
    assert found >= 1


def test_word_count_matches_python_counter():
    from collections import Counter

    workload, top, _ = run_workload(WordCount, n_words=5_000, seed=2)
    truth = Counter(workload.words)
    expected = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
    assert top == expected


def test_histogram_matches_numpy():
    workload, hist, _ = run_workload(Histogram, n_pixels=20_000, seed=4)
    for channel in range(3):
        expected = np.bincount(workload.pixels[:, channel], minlength=256)
        np.testing.assert_array_equal(hist[channel], expected)
    assert hist.sum() == 3 * 20_000


def test_linear_regression_recovers_line():
    _, (slope, intercept), _ = run_workload(
        LinearRegression, n_points=50_000, seed=6
    )
    # datasets.points uses y = 3.5x + 12 + noise.
    assert slope == pytest.approx(3.5, abs=0.05)
    assert intercept == pytest.approx(12.0, abs=1.5)


def test_matrix_multiply_matches_numpy():
    workload, product, _ = run_workload(MatrixMultiply, n=24, seed=7)
    np.testing.assert_allclose(product, workload.a @ workload.b, rtol=1e-9)


def test_kmeans_recovers_cluster_centres():
    workload, centres, _ = run_workload(
        KMeans, n_points=4_000, k=4, iterations=6, seed=8
    )
    _, truth = datasets.clustered_points(4_000, 4, seed=8)
    # Each recovered centre sits close to some true centre.
    for centre in centres:
        nearest = np.min(np.linalg.norm(truth - centre, axis=1))
        assert nearest < 3.0


def test_pca_matches_numpy_cov():
    workload, cov, _ = run_workload(PCA, rows=64, cols=12, seed=9)
    expected = np.cov(workload.samples, rowvar=False)
    np.testing.assert_allclose(cov, expected, rtol=1e-8, atol=1e-10)


def test_reverse_index_matches_naive_build():
    workload, index, _ = run_workload(ReverseIndex, n_docs=500, seed=10)
    naive = {}
    for name, links in workload.docs:
        for link in links:
            naive.setdefault(link, []).append(name)
    for names in naive.values():
        names.sort()
    assert index == naive
    # Every document contributed at least one link.
    assert sum(len(v) for v in index.values()) == sum(
        len(links) for _, links in workload.docs
    )


def test_reverse_index_worker_count_invariant():
    _, one, _ = run_workload(ReverseIndex, n_docs=300, nworkers=1, seed=2)
    _, four, _ = run_workload(ReverseIndex, n_docs=300, nworkers=4, seed=2)
    assert one == four


def test_results_identical_across_worker_counts():
    _, one, _ = run_workload(WordCount, n_words=3_000, nworkers=1, seed=1)
    _, four, _ = run_workload(WordCount, n_words=3_000, nworkers=4, seed=1)
    assert one == four


def test_parallel_speedup():
    _, _, serial = run_workload(StringMatch, n_keys=8_000, nworkers=1)
    _, _, parallel = run_workload(StringMatch, n_keys=8_000, nworkers=4)
    speedup = serial.elapsed_cycles() / parallel.elapsed_cycles()
    assert speedup > 2.0


def test_run_is_deterministic():
    _, _, first = run_workload(Histogram, n_pixels=30_000, seed=11)
    _, _, second = run_workload(Histogram, n_pixels=30_000, seed=11)
    assert first.elapsed_cycles() == second.elapsed_cycles()


def test_invalid_worker_count_rejected():
    machine = Machine()
    env = make_env(machine, NATIVE)
    with pytest.raises(ValueError):
        WordCount(machine, env, nworkers=0)
