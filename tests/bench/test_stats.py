"""repro.bench.stats — robust statistics with two hard guarantees:
permutation invariance and degenerate safety."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.bench.stats import (
    MAD_SCALE,
    SampleStats,
    bootstrap_ci,
    mad,
    median,
    outlier_values,
    summarize,
    t_ci,
)


def test_median_odd_even():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 3, 2]) == 2.5
    assert median([7]) == 7


def test_median_rejects_empty():
    with pytest.raises(ValueError):
        median([])


def test_mad_known_values():
    # [1..5]: median 3, absolute deviations [2,1,0,1,2], median 1.
    assert mad([1, 2, 3, 4, 5]) == 1.0
    assert mad([1, 2, 3, 4, 5], scale=MAD_SCALE) == pytest.approx(1.4826)
    assert mad([5, 5, 5]) == 0.0


def test_outliers_are_values_not_indices():
    # With half the samples identical the MAD is zero, so anything off
    # the median is tagged — and tagged by *value*.
    assert outlier_values([10.0] * 9 + [100.0]) == [100.0]
    assert outlier_values([1.0, 2.0, 3.0, 4.0, 5.0]) == []


def test_bootstrap_ci_known_bounds():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    lo, hi, how = bootstrap_ci(samples)
    assert how == "bootstrap"
    # The bootstrap resamples medians of the sample multiset, so the
    # interval lives inside [min, max] and brackets the median.
    assert 1.0 <= lo <= 3.0 <= hi <= 5.0
    assert lo < hi
    # Seeded: the same multiset always gives the same interval.
    assert bootstrap_ci(samples) == (lo, hi, how)


def test_bootstrap_ci_degenerate():
    assert bootstrap_ci([2.5]) == (2.5, 2.5, "degenerate")
    assert bootstrap_ci([4.0, 4.0, 4.0]) == (4.0, 4.0, "degenerate")


def test_t_ci_known_bounds():
    # Hand-computed: mean 3, s^2 = 2.5, se = sqrt(0.5), t(df=4) = 2.776.
    lo, hi, how = t_ci([1.0, 2.0, 3.0, 4.0, 5.0])
    half = 2.776 * math.sqrt(2.5 / 5)
    assert how == "t"
    assert lo == pytest.approx(3.0 - half, rel=1e-9)
    assert hi == pytest.approx(3.0 + half, rel=1e-9)


def test_summarize_fields_and_roundtrip():
    stats = summarize([3.0, 1.0, 2.0, 4.0, 5.0])
    assert stats.count == 5
    assert stats.median == 3.0
    assert stats.mean == 3.0
    assert stats.min == 1.0 and stats.max == 5.0
    assert stats.ci_low <= stats.median <= stats.ci_high
    assert stats.ci_method == "bootstrap"
    assert SampleStats.from_dict(stats.to_dict()) == stats


def test_summarize_single_sample_is_degenerate():
    stats = summarize([7.5])
    assert stats.ci_low == stats.ci_high == 7.5
    assert stats.ci_method == "degenerate"
    assert stats.stdev == 0.0


def test_summarize_t_method():
    stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0], method="t")
    assert stats.ci_method == "t"
    with pytest.raises(ValueError):
        summarize([1.0, 2.0], method="jackknife")


@st.composite
def _shuffled_pair(draw):
    xs = draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=12,
        )
    )
    return xs, draw(st.permutations(xs))


@given(_shuffled_pair())
def test_summarize_is_permutation_invariant(pair):
    """Re-ordering repetitions can never change a statistic — and so
    can never change a gate verdict."""
    xs, shuffled = pair
    assert summarize(xs) == summarize(shuffled)
