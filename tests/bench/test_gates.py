"""repro.bench.gates — verdicts judge distributions, not single runs."""

import pytest

from repro.bench.gates import BaselineGate, CeilingGate, FloorGate
from repro.bench.stats import summarize


def _stats(samples):
    return summarize(samples), samples


def test_floor_ci_passes_above():
    stats, samples = _stats([3.4, 3.5, 3.6])
    verdict = FloorGate(3.0).evaluate(stats, samples, "higher")
    assert verdict.passed
    assert verdict.kind == "floor"


def test_floor_ci_fails_only_when_whole_interval_below():
    # Confidently below the floor (and beyond the noise margin): fail.
    stats, samples = _stats([1.4, 1.5, 1.6])
    verdict = FloorGate(3.0).evaluate(stats, samples, "higher")
    assert not verdict.passed
    assert "confident regression" in verdict.reason

    # Median below but interval straddling: not confident — pass.
    stats, samples = _stats([2.8, 2.9, 3.2])
    verdict = FloorGate(3.0).evaluate(stats, samples, "higher")
    assert verdict.passed
    assert "straddles" in verdict.reason


def test_floor_ci_slack_absorbs_calibration_noise():
    # Whole CI below 3.0 but within the 5% margin: recorded, not failed.
    stats, samples = _stats([2.90, 2.92, 2.94])
    verdict = FloorGate(3.0).evaluate(stats, samples, "higher")
    assert verdict.passed
    assert "noise margin" in verdict.reason
    # With no slack the same distribution is a hard fail.
    strict = FloorGate(3.0, slack=0.0).evaluate(stats, samples, "higher")
    assert not strict.passed


def test_floor_exact_fails_on_any_sample():
    stats, samples = _stats([1.0, 1.0, 0.99])
    verdict = FloorGate(1.0, mode="exact").evaluate(
        stats, samples, "higher"
    )
    assert not verdict.passed
    stats, samples = _stats([1.0, 1.0, 1.0])
    assert FloorGate(1.0, mode="exact").evaluate(
        stats, samples, "higher"
    ).passed


def test_ceiling_mirrors_floor():
    stats, samples = _stats([0.01, 0.02, 0.02])
    assert CeilingGate(0.05).evaluate(stats, samples, "lower").passed

    stats, samples = _stats([0.08, 0.09, 0.10])
    verdict = CeilingGate(0.05).evaluate(stats, samples, "lower")
    assert not verdict.passed
    assert "confident regression" in verdict.reason

    # Exact mode: one sample over the budget is a failure.
    stats, samples = _stats([0.01, 0.06, 0.01])
    assert not CeilingGate(0.05, mode="exact").evaluate(
        stats, samples, "lower"
    ).passed


def test_gate_rejects_unknown_mode():
    with pytest.raises(ValueError):
        FloorGate(1.0, mode="fuzzy")
    with pytest.raises(ValueError):
        CeilingGate(1.0, mode="fuzzy")


def _baseline_from(samples):
    return summarize(samples).to_dict()


def test_baseline_overlapping_intervals_pass():
    baseline = _baseline_from([3.0, 3.2, 3.4])
    stats, samples = _stats([2.9, 3.1, 3.3])
    verdict = BaselineGate(baseline).evaluate(stats, samples, "higher")
    assert verdict.passed
    assert "overlaps" in verdict.reason


def test_baseline_disjoint_and_moved_fails():
    baseline = _baseline_from([3.0, 3.2, 3.4])
    stats, samples = _stats([1.4, 1.5, 1.6])  # halved throughput
    verdict = BaselineGate(baseline).evaluate(stats, samples, "higher")
    assert not verdict.passed
    assert verdict.kind == "baseline"


def test_baseline_disjoint_within_tolerance_passes():
    # Disjoint but the median only moved ~6% — inside rel_tol.
    baseline = _baseline_from([3.20, 3.21, 3.22])
    stats, samples = _stats([3.00, 3.01, 3.02])
    verdict = BaselineGate(baseline, rel_tol=0.10).evaluate(
        stats, samples, "higher"
    )
    assert verdict.passed
    assert "within" in verdict.reason


def test_baseline_lower_is_better_direction():
    # Overhead doubled: regressing direction for a "lower" metric.
    baseline = _baseline_from([0.010, 0.011, 0.012])
    stats, samples = _stats([0.030, 0.031, 0.032])
    verdict = BaselineGate(baseline).evaluate(stats, samples, "lower")
    assert not verdict.passed
    # An *improvement* of any size never fails.
    stats, samples = _stats([0.001, 0.001, 0.002])
    assert BaselineGate(baseline).evaluate(
        stats, samples, "lower"
    ).passed


def test_verdict_serialises():
    stats, samples = _stats([3.4, 3.5, 3.6])
    data = FloorGate(3.0).evaluate(stats, samples, "higher").to_dict()
    assert set(data) == {"gate", "kind", "passed", "reason", "observed"}
    assert data["observed"]["threshold"] == 3.0
