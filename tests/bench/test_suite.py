"""End-to-end: ``python -m repro.bench`` in smoke mode.

``REPRO_BENCH_SMOKE=1`` shrinks every workload to seconds — the
*machinery* is under test here (registry, harness, suite schema,
derived views, gate plumbing), not the hardware, so no assertion below
depends on this host clearing a perf floor.
"""

import json
import os

import pytest

from repro.bench.ports import build_registry, derived_views
from repro.bench.runner import build_parser, main, markdown_report
from repro.bench.suite import SCHEMA, baseline_gate_for, load_suite

#: Gates that cannot flake: correctness invariants (exact mode on a
#: deterministic simulation) and ratios with order-of-magnitude margin.
ROBUST = ("columnar_decode", "recovery_matrix", "accuracy_error")


@pytest.fixture(autouse=True)
def _smoke(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")


@pytest.fixture(scope="module")
def suite(tmp_path_factory):
    """One full smoke-mode suite run shared by the module's tests."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_suite.json"
    # Module-scoped, so it may instantiate before the function-scoped
    # monkeypatch fixture: set the env knob directly.
    os.environ["REPRO_BENCH_SMOKE"] = "1"
    try:
        code = main(["--quick", "--out", str(out)])
    finally:
        os.environ.pop("REPRO_BENCH_SMOKE", None)
    return code, out, load_suite(out)


def test_suite_schema_and_coverage(suite):
    code, out, payload = suite
    assert payload["schema"] == SCHEMA
    assert payload["quick"] is True
    assert len(payload["benchmarks"]) >= 5
    for key in ("python", "platform", "cpu_count"):
        assert key in payload["environment"]
    for name, bench in payload["benchmarks"].items():
        stats = bench["stats"]
        assert bench["repetitions"] >= 3, name
        assert len(bench["samples"]) >= 3, name
        assert stats["ci_low"] <= stats["median"] <= stats["ci_high"], name
        assert bench["gates"], f"{name} has no gate verdicts"
        assert bench["handicap"] == 1.0
        assert "discarded" in bench["warmup"]
    # The robust benchmarks pass on any host; flakeable perf floors
    # are judged by their own CI gates, not re-asserted here.
    for name in ROBUST:
        assert payload["benchmarks"][name]["passed"], name
    if code != 0:
        failed = [n for n, b in payload["benchmarks"].items()
                  if not b["passed"]]
        assert failed, "non-zero exit without a failing gate"


def test_derived_views_written_next_to_suite(suite):
    _, out, payload = suite
    views = {
        "BENCH_record.json": ("write", "decode"),
        "BENCH_analyze.json": ("vector_speedup",),
        "BENCH_monitor.json": ("overhead_fraction",),
        "BENCH_recovery.json": ("fault_matrix",),
        "BENCH_accuracy.json": ("tee_max_error",),
    }
    for filename, keys in views.items():
        view = json.loads((out.parent / filename).read_text())
        assert view["derived_from"] == "BENCH_suite.json"
        for key in keys:
            assert key in view, f"{filename} missing {key}"
    record = json.loads((out.parent / "BENCH_record.json").read_text())
    assert record["write"]["speedup"] == pytest.approx(
        payload["benchmarks"]["record_write"]["stats"]["median"]
    )


def test_handicap_flips_gate_to_fail(tmp_path):
    """The acceptance self-test: an injected slowdown must turn the
    relevant gate verdict into a failure and exit non-zero."""
    out = tmp_path / "suite.json"
    code = main([
        "--quick", "--only", "columnar_decode",
        "--handicap", "columnar_decode=0.001", "--out", str(out),
    ])
    assert code == 1
    bench = load_suite(out)["benchmarks"]["columnar_decode"]
    assert bench["handicap"] == 0.001
    assert not bench["passed"]
    verdict = bench["gates"][0]
    assert verdict["kind"] == "floor" and not verdict["passed"]


def test_baseline_gate_roundtrip(tmp_path):
    first = tmp_path / "first.json"
    assert main(["--quick", "--only", "recovery_matrix",
                 "--out", str(first)]) == 0

    # A second run against its own baseline: overlapping, passes, and
    # the baseline verdict is recorded.
    second = tmp_path / "second.json"
    assert main(["--quick", "--only", "recovery_matrix",
                 "--baseline", str(first), "--out", str(second)]) == 0
    gates = load_suite(second)["benchmarks"]["recovery_matrix"]["gates"]
    assert any(g["kind"] == "baseline" and g["passed"] for g in gates)

    # A doctored baseline (10x the recovered fraction — disjoint and
    # far beyond tolerance) must fail the same benchmark.
    doctored = json.loads(first.read_text())
    stats = doctored["benchmarks"]["recovery_matrix"]["stats"]
    for key in ("median", "ci_low", "ci_high", "mean", "min", "max"):
        stats[key] = stats[key] * 10 + 10
    bad = tmp_path / "doctored.json"
    bad.write_text(json.dumps(doctored))
    third = tmp_path / "third.json"
    assert main(["--quick", "--only", "recovery_matrix",
                 "--baseline", str(bad), "--out", str(third)]) == 1


def test_handicapped_baseline_never_gates(tmp_path):
    out = tmp_path / "handicapped.json"
    main(["--quick", "--only", "columnar_decode",
          "--handicap", "columnar_decode=0.001", "--out", str(out)])
    assert baseline_gate_for(load_suite(out), "columnar_decode") is None
    assert baseline_gate_for(load_suite(out), "no_such_bench") is None


def test_registry_matches_cli_list(capsys):
    names = [b.name for b in build_registry(quick=True)]
    assert len(names) == len(set(names)) >= 5
    assert main(["--list"]) == 0
    listed = [line.split()[0] for line in
              capsys.readouterr().out.strip().splitlines()]
    assert listed == names


def test_parser_contract():
    args = build_parser().parse_args(
        ["--quick", "--only", "record_write", "--handicap", "x=0.5"]
    )
    assert args.quick and args.only == ["record_write"]
    with pytest.raises(SystemExit):
        main(["--repetitions", "2"])  # too few for a CI
    with pytest.raises(SystemExit):
        main(["--only", "no_such_bench"])
    with pytest.raises(SystemExit):
        main(["--handicap", "malformed"])


def test_markdown_report_renders(suite):
    _, _, payload = suite
    report = markdown_report(payload)
    lines = report.splitlines()
    assert lines[0].startswith("| benchmark |")
    for name in payload["benchmarks"]:
        assert any(f"`{name}`" in line for line in lines)


def test_load_suite_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(ValueError):
        load_suite(bad)


def test_smoke_run_derived_view_unit_shapes():
    """derived_views is total over any subset of results."""
    assert derived_views({}) == {}
