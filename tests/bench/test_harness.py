"""repro.bench.harness — warmup detection, repetitions, handicap."""

import pytest

from repro.bench.gates import FloorGate
from repro.bench.harness import (
    Benchmark,
    HarnessConfig,
    run_benchmark,
    steady_state_index,
)


def test_steady_state_on_ramp_then_flat():
    samples = [10.0, 5.0, 2.0, 1.0, 1.05, 1.02]
    # The trailing window settles once the ramp is over.
    assert steady_state_index(samples, window=3, tolerance=0.10) == 5
    # A tolerance too tight for the flat tail: never steady.
    assert steady_state_index(samples, window=3, tolerance=0.001) is None
    # All-equal windows are steady immediately, even at zero.
    assert steady_state_index([0.0, 0.0, 0.0], 3, 0.1) == 2
    with pytest.raises(ValueError):
        steady_state_index(samples, window=0, tolerance=0.1)


def _scripted(values):
    """A benchmark body that replays a fixed sample sequence."""
    it = iter(values)

    def body(state):
        return next(it)

    return body


def test_warmup_discards_ramp_samples():
    bench = Benchmark(
        name="ramp", description="", unit="x", direction="higher",
        body=_scripted([100.0, 50.0, 1.0, 1.0, 1.0] + [1.0] * 10),
    )
    config = HarnessConfig(repetitions=3, warmup_max=6, warmup_window=3)
    result = run_benchmark(bench, config)
    # The ramp was burned during warmup; only flat samples were kept.
    assert result.warmup["steady"]
    assert result.warmup["discarded"] == 5
    assert result.samples == [1.0, 1.0, 1.0]
    assert result.stats.ci_method == "degenerate"


def test_warmup_cap_records_unsteady():
    bench = Benchmark(
        name="noisy", description="", unit="x", direction="higher",
        body=_scripted([float(x) for x in range(1, 20)]),
    )
    config = HarnessConfig(repetitions=3, warmup_max=3, warmup_window=3,
                           warmup_tolerance=0.01)
    result = run_benchmark(bench, config)
    assert not result.warmup["steady"]
    assert result.warmup["discarded"] == 3


def test_invocations_median_per_sample():
    calls = []

    def body(state):
        calls.append(1)
        return float(len(calls))

    bench = Benchmark(
        name="count", description="", unit="x", direction="higher",
        body=body, overrides={"warmup_max": 0},
    )
    config = HarnessConfig(repetitions=2, invocations=3)
    result = run_benchmark(bench, config)
    assert len(calls) == 6  # no warmup, 2 reps x 3 invocations
    # Each sample is the median of its 3 invocation returns.
    assert result.samples == [2.0, 5.0]


def test_setup_teardown_and_detail():
    events = []

    bench = Benchmark(
        name="lifecycle", description="", unit="x", direction="higher",
        setup=lambda: events.append("setup") or {"k": 1},
        body=lambda state: 1.0,
        teardown=lambda state: events.append("teardown"),
        detail=lambda state: {"k": state["k"]},
        overrides={"warmup_max": 0},
    )
    result = run_benchmark(bench, HarnessConfig(repetitions=3))
    assert events == ["setup", "teardown"]
    assert result.detail == {"k": 1}


def test_handicap_scales_samples_and_flips_gate():
    def make():
        return Benchmark(
            name="steady", description="", unit="x", direction="higher",
            body=lambda state: 4.0, gates=[FloorGate(3.0)],
            overrides={"warmup_max": 0},
        )

    honest = run_benchmark(make(), HarnessConfig(repetitions=3))
    assert honest.passed and honest.handicap == 1.0

    doctored = run_benchmark(
        make(), HarnessConfig(repetitions=3), handicap=0.5
    )
    assert doctored.samples == [2.0, 2.0, 2.0]
    assert doctored.handicap == 0.5
    assert not doctored.passed  # the self-test: the gate must flip


def test_benchmark_validation():
    with pytest.raises(ValueError):
        Benchmark(name="x", description="", unit="x",
                  direction="sideways", body=lambda s: 1.0)
    with pytest.raises(ValueError):
        Benchmark(name="x", description="", unit="x", direction="higher")
    bench = Benchmark(name="x", description="", unit="x",
                      direction="higher", body=lambda s: 1.0)
    with pytest.raises(ValueError):
        run_benchmark(bench, HarnessConfig(repetitions=0))


def test_result_serialises():
    bench = Benchmark(
        name="s", description="d", unit="x", direction="higher",
        body=lambda state: 2.0, gates=[FloorGate(1.0)],
        overrides={"warmup_max": 0},
    )
    data = run_benchmark(bench, HarnessConfig(repetitions=3)).to_dict()
    assert data["samples"] == [2.0, 2.0, 2.0]
    assert data["passed"] is True
    assert data["stats"]["count"] == 3
    assert data["gates"][0]["kind"] == "floor"
    assert data["handicap"] == 1.0
