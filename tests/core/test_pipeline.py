"""Integration tests: the full four-stage pipeline in simulation mode."""

import pytest

from repro.api import TEEPerf
from repro.core import symbol
from repro.core.errors import RecorderError, TEEPerfError
from repro.machine import SimLock
from repro.tee import NATIVE, SGX_V1


class Workload:
    """A small multithreaded workload with a known call structure."""

    def __init__(self, machine, env, threads=2, chunks=4):
        self.machine = machine
        self.env = env
        self.threads = threads
        self.chunks = chunks
        self.lock = SimLock(name="merge")
        self.merged = 0

    @symbol("wl::Run()")
    def run(self):
        workers = [
            self.machine.spawn(self.worker, name=f"w{i}")
            for i in range(self.threads)
        ]
        for worker in workers:
            worker.join()
        return self.merged

    @symbol("wl::Worker()")
    def worker(self):
        total = 0
        for _ in range(self.chunks):
            total += self.process_chunk()
        with self.lock:
            self.merge(total)

    @symbol("wl::ProcessChunk()")
    def process_chunk(self):
        self.env.compute(50_000)
        self.env.mem_read(4096)
        return 1

    @symbol("wl::Merge(int)")
    def merge(self, total):
        self.env.compute(1_000)
        self.merged += total


def build(platform=NATIVE, **kwargs):
    perf = TEEPerf.simulated(platform=platform, name="workload")
    workload = Workload(perf.machine, perf.env, **kwargs)
    perf.compile_instance(workload)
    return perf, workload


def test_full_pipeline_counts_and_times():
    perf, workload = build(threads=3, chunks=5)
    result = perf.record(workload.run)
    assert result == 15
    analysis = perf.analyze()
    assert analysis.method("wl::Run()").calls == 1
    assert analysis.method("wl::Worker()").calls == 3
    assert analysis.method("wl::ProcessChunk()").calls == 15
    assert analysis.method("wl::Merge(int)").calls == 3
    # A chunk is ~50k cycles of compute; inclusive time must reflect it.
    chunk = analysis.method("wl::ProcessChunk()")
    assert chunk.mean_inclusive * 8 >= 50_000  # ticks are 8-cycle quanta


def test_call_hierarchy_reconstructed():
    perf, workload = build()
    perf.record(workload.run)
    analysis = perf.analyze()
    # Workers run on their own threads, so (as in the paper's Figure 5,
    # where StartThreadWrapper roots each stack) they are per-thread
    # roots with no caller.
    workers = [r for r in analysis.records if r.method == "wl::Worker()"]
    assert all(r.caller is None and r.depth == 0 for r in workers)
    chunks = [r for r in analysis.records if r.method == "wl::ProcessChunk()"]
    assert all(r.path[0] == "wl::Worker()" for r in chunks)
    assert all(r.depth == 1 for r in chunks)
    merges = [r for r in analysis.records if r.method == "wl::Merge(int)"]
    assert all(r.caller == "wl::Worker()" for r in merges)


def test_each_thread_separately_tracked():
    perf, workload = build(threads=4)
    perf.record(workload.run)
    analysis = perf.analyze()
    worker_threads = {
        r.tid for r in analysis.records if r.method == "wl::Worker()"
    }
    assert len(worker_threads) == 4


def test_enclave_run_slower_than_native():
    native_perf, native_wl = build(NATIVE)
    native_perf.record(native_wl.run)
    native_time = native_perf.machine.elapsed_cycles()

    sgx_perf, sgx_wl = build(SGX_V1)
    sgx_perf.record(sgx_wl.run)
    sgx_time = sgx_perf.machine.elapsed_cycles()
    assert sgx_time > native_time


def test_instrumentation_overhead_exists_and_is_bounded():
    # Same workload, uninstrumented baseline vs profiled run.
    perf, workload = build(threads=2, chunks=8)
    perf.record(workload.run)
    profiled = perf.machine.elapsed_cycles()

    from repro.machine import Machine
    from repro.tee import make_env

    machine = Machine(cores=8)
    env = make_env(machine, NATIVE)
    bare = Workload(machine, env, threads=2, chunks=8)
    machine.run(bare.run)
    baseline = machine.elapsed_cycles()

    assert profiled > baseline  # overhead exists
    assert profiled < baseline * 2  # but the workload still dominates


def test_flamegraph_structure():
    perf, workload = build(threads=2, chunks=6)
    perf.record(workload.run)
    perf.analyze()
    graph = perf.flamegraph()
    assert graph.share("wl::ProcessChunk()") > 0.5
    folded = graph.to_folded()
    assert "wl::Worker();wl::ProcessChunk()" in folded


def test_query_session_end_to_end():
    perf, workload = build(threads=2, chunks=3)
    perf.record(workload.run)
    perf.analyze()
    session = perf.query()
    hottest = session.hottest(1)
    assert hottest.column("method")[0] == "wl::ProcessChunk()"
    counts = session.thread_method_counts()
    chunk_rows = counts.filter(method="wl::ProcessChunk()")
    assert sum(chunk_rows.column("calls")) == 6
    callers = session.callers_of("wl::Merge(int)")
    assert callers.column("caller") == ["wl::Worker()"]


def test_persist_and_offline_analysis(tmp_path):
    perf, workload = build()
    perf.record(workload.run)
    path = tmp_path / "run.teeperf"
    perf.persist(str(path))
    offline = perf.analyze(str(path))
    assert offline.method("wl::Run()").calls == 1


def test_pause_resume_via_active_flag():
    perf, workload = build(threads=1, chunks=2)

    def run_with_pause():
        perf.pause()
        workload.process_chunk()  # not recorded
        perf.resume()
        return workload.run()

    perf.record(run_with_pause)
    analysis = perf.analyze()
    assert analysis.method("wl::ProcessChunk()").calls == 2  # not 3


def test_record_before_compile_rejected():
    perf = TEEPerf.simulated()
    with pytest.raises(TEEPerfError):
        perf.record(lambda: None)


def test_analyze_before_record_rejected():
    perf, _ = build()
    with pytest.raises(RecorderError):
        perf.analyze()


def test_recording_reports_event_counts():
    perf, workload = build(threads=2, chunks=3)
    perf.record(workload.run)
    # run + 2*worker + 6*chunk + 2*merge = 11 calls -> 22 events.
    assert perf.events_recorded() == 22


def test_uninstrument_restores_methods():
    perf, workload = build()
    wrapped = workload.run
    perf.record(workload.run)
    perf.uninstrument()
    assert workload.run is not wrapped


def test_small_log_capacity_truncates_but_analyzes():
    perf = TEEPerf.simulated(platform=NATIVE, capacity=6, name="tiny")
    workload = Workload(perf.machine, perf.env, threads=2, chunks=10)
    perf.compile_instance(workload)
    perf.record(workload.run)
    assert perf.recorder.events_dropped() > 0
    analysis = perf.analyze()
    assert analysis.truncated_calls() > 0
