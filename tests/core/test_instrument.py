"""Unit tests for the compiler pass (stage 1)."""

import types

import pytest

from repro.core import Instrumenter, no_instrument, symbol
from repro.core.errors import TEEPerfError
from repro.core.instrument import symbol_name_for
from repro.core.log import KIND_CALL, KIND_RET


class _RecordingHooks:
    """Test double capturing events instead of writing a log."""

    def __init__(self):
        self.events = []

    def on_event(self, kind, addr):
        self.events.append((kind, addr))


def make_module():
    module = types.ModuleType("workload")

    def leaf():
        return 1

    def parent():
        return module.leaf() + 1

    @no_instrument
    def helper():
        return "hidden"

    for fn in (leaf, parent, helper):
        fn.__module__ = module.__name__
        setattr(module, fn.__name__, fn)
    return module


def test_module_instrumentation_wraps_functions():
    module = make_module()
    ins = Instrumenter("test")
    count = ins.instrument_module(module)
    assert count == 2  # helper is no_instrument
    program = ins.finish()
    hooks = _RecordingHooks()
    program.hooks.arm(hooks)
    assert module.parent() == 2
    program.hooks.disarm()
    kinds = [kind for kind, _ in hooks.events]
    assert kinds == [KIND_CALL, KIND_CALL, KIND_RET, KIND_RET]
    # enter(parent), enter(leaf), exit(leaf), exit(parent)
    addrs = [addr for _, addr in hooks.events]
    assert addrs[0] == addrs[3] == program.link_addr("parent")
    assert addrs[1] == addrs[2] == program.link_addr("leaf")


def test_unarmed_hooks_are_pass_through():
    module = make_module()
    ins = Instrumenter("test")
    ins.instrument_module(module)
    assert module.parent() == 2  # no hooks, no explosion


def test_restore_all_unpatches():
    module = make_module()
    original = module.leaf
    ins = Instrumenter("test")
    ins.instrument_module(module)
    program = ins.finish()
    assert module.leaf is not original
    program.restore_all()
    assert module.leaf is original


def test_relocation_offset_applied():
    module = make_module()
    ins = Instrumenter("test")
    ins.instrument_module(module)
    program = ins.finish()
    hooks = _RecordingHooks()
    program.hooks.arm(hooks, offset=0x1000)
    module.leaf()
    program.hooks.disarm()
    assert hooks.events[0][1] == program.link_addr("leaf") + 0x1000


def test_selective_profiling_skips_unselected():
    module = make_module()
    ins = Instrumenter("test", select=lambda name: name == "leaf")
    assert ins.instrument_module(module) == 1
    program = ins.finish()
    hooks = _RecordingHooks()
    program.hooks.arm(hooks)
    module.parent()
    assert len(hooks.events) == 2  # only leaf traced


def test_instance_instrumentation_binds_self():
    class Store:
        def __init__(self):
            self.puts = 0

        @symbol("store::Put(int)")
        def put(self, value):
            self.puts += 1
            return self.bump(value)

        @symbol("store::Bump(int)")
        def bump(self, value):
            return value + 1

    store = Store()
    ins = Instrumenter("store")
    assert ins.instrument_instance(store) == 2
    program = ins.finish()
    hooks = _RecordingHooks()
    program.hooks.arm(hooks)
    assert store.put(41) == 42
    assert store.puts == 1
    # Recursive self-call goes through the wrapper: 4 events.
    assert len(hooks.events) == 4
    assert program.link_addr("store::Put(int)") in {
        a for _, a in hooks.events
    }


def test_duplicate_symbol_rejected():
    module = make_module()
    other = make_module()
    ins = Instrumenter("test")
    ins.instrument_module(module)
    with pytest.raises(TEEPerfError):
        ins.instrument_module(other)


def test_finish_without_functions_rejected():
    with pytest.raises(TEEPerfError):
        Instrumenter("empty").finish()


def test_symbol_name_derivation():
    def plain():
        pass

    assert symbol_name_for(plain) == "plain"
    assert symbol_name_for(plain, prefix="unit") == "unit::plain"

    @symbol("ns::Explicit()")
    def tagged():
        pass

    assert symbol_name_for(tagged) == "ns::Explicit()"


def test_wrapper_reports_exceptions_and_still_logs_exit():
    module = make_module()

    def broken():
        raise RuntimeError("kaboom")

    broken.__module__ = module.__name__
    module.broken = broken
    ins = Instrumenter("test")
    ins.instrument_module(module)
    program = ins.finish()
    hooks = _RecordingHooks()
    program.hooks.arm(hooks)
    with pytest.raises(RuntimeError):
        module.broken()
    kinds = [kind for kind, _ in hooks.events]
    assert kinds == [KIND_CALL, KIND_RET]


def test_image_contains_mangled_symbols():
    class App:
        @symbol("app::Run()")
        def run(self):
            return 0

    ins = Instrumenter("app")
    ins.instrument_instance(App())
    program = ins.finish()
    assert "_ZN3app3RunEv" in program.image.symtab
