"""Unit tests for the Figure-2 log format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import SharedLog
from repro.core import ENTRY_SIZE, HEADER_SIZE, KIND_CALL, KIND_RET
from repro.core.errors import LogFormatError
from repro.core.log import VERSION


def test_create_sets_header_fields():
    log = SharedLog.create(100, pid=77, profiler_addr=0x401000)
    assert log.capacity == 100
    assert log.pid == 77
    assert log.profiler_addr == 0x401000
    assert log.version == VERSION
    assert log.multithread
    assert not log.active
    assert log.tail == 0


def test_buffer_is_header_plus_entries():
    log = SharedLog.create(10)
    assert len(log.to_bytes()) == HEADER_SIZE + 10 * ENTRY_SIZE


def test_append_and_decode_roundtrip():
    log = SharedLog.create(10)
    assert log.append(KIND_CALL, 123456, 0x401234, 7)
    assert log.append(KIND_RET, 123999, 0x401234, 7)
    first, second = list(log)
    assert first.is_call and not first.is_ret
    assert first.counter == 123456
    assert first.addr == 0x401234
    assert first.tid == 7
    assert second.is_ret
    assert second.counter == 123999


def test_full_log_drops_and_counts():
    log = SharedLog.create(2)
    assert log.append(KIND_CALL, 1, 0x400000, 1)
    assert log.append(KIND_CALL, 2, 0x400000, 1)
    assert not log.append(KIND_CALL, 3, 0x400000, 1)
    assert log.dropped == 1
    assert len(log) == 2


def test_active_flag_gates_nothing_here_but_flips_atomically():
    log = SharedLog.create(4)
    log.set_active(True)
    assert log.active
    log.set_active(False)
    assert not log.active
    # Version survives flag flips (it shares the header word).
    assert log.version == VERSION


def test_dump_load_roundtrip(tmp_path):
    log = SharedLog.create(8, pid=9, profiler_addr=0xABCD)
    log.append(KIND_CALL, 10, 0x400100, 3)
    log.append(KIND_RET, 20, 0x400100, 3)
    path = tmp_path / "run.teeperf"
    log.dump(path)
    loaded = SharedLog.load(str(path))
    assert loaded.pid == 9
    assert loaded.profiler_addr == 0xABCD
    assert loaded.tail == 2
    assert [e.counter for e in loaded] == [10, 20]


def test_loaded_log_can_keep_appending(tmp_path):
    log = SharedLog.create(4)
    log.append(KIND_CALL, 1, 0x400000, 1)
    reloaded = SharedLog.from_bytes(log.to_bytes())
    reloaded.append(KIND_RET, 2, 0x400000, 1)
    assert [e.kind for e in reloaded] == [KIND_CALL, KIND_RET]


def test_bad_magic_rejected():
    with pytest.raises(LogFormatError):
        SharedLog.from_bytes(b"\x00" * 256)


def test_truncated_buffer_rejected():
    with pytest.raises(LogFormatError):
        SharedLog.from_bytes(b"\x00" * 16)


def test_nonpositive_capacity_rejected():
    with pytest.raises(ValueError):
        SharedLog.create(0)


def test_entry_index_out_of_range():
    log = SharedLog.create(4)
    log.append(KIND_CALL, 1, 2, 3)
    with pytest.raises(IndexError):
        log.entry(1)


def test_reserve_write_split_api():
    log = SharedLog.create(4)
    index = log.try_reserve()
    assert index == 0
    log.write_entry(index, KIND_RET, 42, 0x400000, 5)
    assert log.entry(0).counter == 42


def test_counter_value_packs_63_bits():
    log = SharedLog.create(2)
    huge = (1 << 63) - 1
    log.append(KIND_RET, huge, 0, 0)
    entry = log.entry(0)
    assert entry.counter == huge
    assert entry.is_ret


def test_set_profiler_addr_and_pid_late():
    log = SharedLog.create(2)
    log.set_profiler_addr(0x1234)
    log.set_pid(99)
    assert log.profiler_addr == 0x1234
    assert log.pid == 99


@given(
    kind=st.sampled_from([KIND_CALL, KIND_RET]),
    counter=st.integers(min_value=0, max_value=(1 << 63) - 1),
    addr=st.integers(min_value=0, max_value=(1 << 64) - 1),
    tid=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_entry_roundtrip_property(kind, counter, addr, tid):
    log = SharedLog.create(1)
    log.append(kind, counter, addr, tid)
    entry = log.entry(0)
    assert entry.kind == kind
    assert entry.counter == counter
    assert entry.addr == addr
    assert entry.tid == tid


@given(n=st.integers(min_value=1, max_value=200), cap=st.integers(1, 50))
def test_never_exceeds_capacity(n, cap):
    log = SharedLog.create(cap)
    written = sum(bool(log.append(KIND_CALL, i, i, 0)) for i in range(n))
    assert written == min(n, cap)
    assert len(log) == min(n, cap)
    assert log.dropped == max(0, n - cap)
