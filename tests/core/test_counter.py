"""Unit tests for the software counters."""

import pytest

from repro.core import PerfCounterClock, ThreadCounter, VirtualCounter
from repro.core.errors import RecorderError
from repro.machine import Machine


def test_virtual_counter_quantises_thread_time():
    machine = Machine(cores=4)
    counter = VirtualCounter(machine, resolution_cycles=10)

    def main():
        machine.current().advance(105)
        return counter.read()

    assert machine.run(main) == 10


def test_virtual_counter_reserves_a_core():
    machine = Machine(cores=4)
    counter = VirtualCounter(machine)
    counter.start()
    assert machine.available_cores() == 3
    counter.stop()
    assert machine.available_cores() == 4


def test_virtual_counter_lifecycle_errors():
    counter = VirtualCounter(Machine())
    with pytest.raises(RecorderError):
        counter.stop()
    counter.start()
    with pytest.raises(RecorderError):
        counter.start()
    counter.stop()


def test_virtual_counter_resolution_positive():
    with pytest.raises(ValueError):
        VirtualCounter(Machine(), resolution_cycles=0)


def test_virtual_counter_tick_conversion():
    machine = Machine(freq_hz=1e9)
    counter = VirtualCounter(machine, resolution_cycles=2)
    assert counter.ticks_to_ns(5) == pytest.approx(10.0)
    assert counter.resolution_ns() == pytest.approx(2.0)


def test_thread_counter_advances_in_real_time():
    counter = ThreadCounter()
    counter.start()
    try:
        import time

        first = counter.read()
        time.sleep(0.05)
        second = counter.read()
    finally:
        counter.stop()
    assert second > first
    assert counter.resolution_ns() > 0


def test_thread_counter_lifecycle_errors():
    counter = ThreadCounter()
    with pytest.raises(RecorderError):
        counter.stop()
    counter.start()
    with pytest.raises(RecorderError):
        counter.start()
    counter.stop()
    assert not counter.running


def test_perf_counter_clock_is_monotonic_ns():
    clock = PerfCounterClock()
    clock.start()
    a = clock.read()
    b = clock.read()
    clock.stop()
    assert b >= a
    assert clock.ticks_to_ns(100) == 100.0
