"""The batched record path: ThreadLogWriter vs per-event append.

The differential oracle of the block-reservation work: for any
single-thread event sequence, the batched writer must produce a log
image *byte-identical* to the per-event ``append`` path — same header
words (tail included), same entry bytes.  On top of that, drop
accounting at the capacity boundary must stay exact (surrendered tail
slots are events, counted once), and ACTIVE/event-mask flips landing
between a block's staging and its flush must follow the documented
contract: staged events always commit, later events see the new flags.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SharedLog
from repro.core import KIND_CALL, KIND_RET, ThreadLogWriter
from repro.core.log import VERSION_2


def make_pair(capacity=64, version=None):
    kwargs = {"version": version} if version is not None else {}
    return (
        SharedLog.create(capacity, **kwargs),
        SharedLog.create(capacity, **kwargs),
    )


def replay(events, baseline, batched, block):
    """Feed `events` through both paths and flush the batched one."""
    writer = ThreadLogWriter(batched, block=block)
    for kind, counter, addr, tid in events:
        baseline.append(kind, counter, addr, tid)
        writer.append(kind, counter, addr, tid)
    writer.flush()
    baseline._store_tail()
    batched._store_tail()
    return writer


EVENTS = [
    (KIND_CALL, 10, 0x1000, 7),
    (KIND_CALL, 20, 0x1040, 7),
    (KIND_RET, 35, 0x1040, 7),
    (KIND_CALL, 40, 0x1080, 7),
    (KIND_RET, 55, 0x1080, 7),
    (KIND_RET, 60, 0x1000, 7),
]


@pytest.mark.parametrize("block", [1, 2, 3, 256])
@pytest.mark.parametrize("version", [None, VERSION_2])
def test_batched_image_is_byte_identical(block, version):
    baseline, batched = make_pair(version=version)
    replay(EVENTS, baseline, batched, block)
    assert batched.to_bytes() == baseline.to_bytes()


@settings(max_examples=50, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from([KIND_CALL, KIND_RET]),
            st.integers(min_value=0, max_value=1 << 40),
            st.integers(min_value=0, max_value=1 << 40),
            st.integers(min_value=1, max_value=5),
        ),
        max_size=40,
    ),
    block=st.integers(min_value=1, max_value=9),
    capacity=st.integers(min_value=1, max_value=24),
)
def test_batched_image_property(events, block, capacity):
    """Byte identity holds for arbitrary sequences — including ones
    that overflow `capacity` — and so does the drop count."""
    baseline, batched = make_pair(capacity=capacity)
    writer = replay(events, baseline, batched, block)
    assert batched.to_bytes() == baseline.to_bytes()
    assert batched.dropped == baseline.dropped
    assert writer.flushed + writer.dropped == len(events)


# ----------------------------------------------------------------------
# Drop accounting at the capacity boundary


def test_straddling_block_surrenders_tail_slots_exactly():
    """A flush whose reservation straddles capacity commits the head
    of the block and counts the tail as dropped — nothing more."""
    log = SharedLog.create(10)
    writer = ThreadLogWriter(log, block=8)
    for i in range(16):  # two blocks of 8 against capacity 10
        writer.append(KIND_CALL, i, 0x1000, 1)
    writer.flush()
    assert writer.flushed == 10
    assert writer.dropped == 6
    assert log.dropped == 6
    assert len(log) == 10
    assert [e.counter for e in log] == list(range(10))


def test_block_entirely_past_capacity_drops_whole_block():
    log = SharedLog.create(4)
    writer = ThreadLogWriter(log, block=4)
    for i in range(12):
        writer.append(KIND_CALL, i, 0x1000, 1)
    writer.flush()
    assert writer.flushed == 4
    assert writer.dropped == 8
    assert log.dropped == 8
    assert len(log) == 4


def test_reserve_block_contract():
    log = SharedLog.create(10)
    assert log.reserve_block(4) == (0, 4)
    assert log.reserve_block(8) == (4, 6)  # straddles: 6 granted
    assert log.reserve_block(3) == (12, 0)  # past the end
    # reserve_block never counts drops itself — the caller does.
    assert log.dropped == 0
    with pytest.raises(ValueError):
        log.reserve_block(0)


def test_writer_drops_feed_pipeline_stats():
    """Surrendered slots land in the recorder's dropped counter and
    the blocks-flushed observability counter."""
    from repro.api import TEEPerf
    from repro.core import symbol

    class App:
        @symbol("app::Main()")
        def main(self):
            for _ in range(8):
                self.step()

        @symbol("app::Step()")
        def step(self):
            pass

    perf = TEEPerf.live(capacity=8, writer_block=4)
    app = App()
    perf.compile_instance(app)
    perf.record(app.main)
    try:
        stats = perf.recorder.pipeline_stats()
    finally:
        perf.uninstrument()
    # 18 events against capacity 8: 10 dropped, exactly as the
    # per-event path reports (test_recorder_stats_thread_through_facade).
    assert stats.entries_recorded == 8
    assert stats.entries_dropped == 10
    assert stats.blocks_flushed > 0
    assert stats.writer_block == 4


# ----------------------------------------------------------------------
# Flag flips between staging and flush


def test_event_mask_checked_at_staging_time():
    """A mask flip after events are staged affects later events only;
    the already-staged ones still commit at flush."""
    log = SharedLog.create(16)
    writer = ThreadLogWriter(log, block=8)
    assert writer.append(KIND_CALL, 1, 0x1000, 1)
    assert writer.append(KIND_RET, 2, 0x1000, 1)
    log.set_event_mask(calls=False, rets=True)
    assert not writer.append(KIND_CALL, 3, 0x1040, 1)  # filtered now
    assert writer.append(KIND_RET, 4, 0x1040, 1)
    log.set_event_mask(calls=True, rets=True)
    writer.flush()
    assert [(e.kind, e.counter) for e in log] == [
        (KIND_CALL, 1),
        (KIND_RET, 2),
        (KIND_RET, 4),
    ]


def test_active_flip_between_staging_and_flush_commits_staged():
    """ACTIVE is the hooks' gate, not the writer's: deactivating after
    staging does not un-stage — flush commits what was accepted."""
    log = SharedLog.create(16)
    log.set_active(True)
    writer = ThreadLogWriter(log, block=8)
    writer.append(KIND_CALL, 1, 0x1000, 1)
    writer.append(KIND_RET, 2, 0x1000, 1)
    log.set_active(False)
    assert writer.pending == 2
    writer.flush()
    assert writer.pending == 0
    assert len(log) == 2
    assert [e.counter for e in log] == [1, 2]


def test_partial_block_flushes_on_close_and_context_exit():
    log = SharedLog.create(16)
    with ThreadLogWriter(log, block=100) as writer:
        writer.append(KIND_CALL, 5, 0x1000, 1)
        assert writer.pending == 1
        assert len(log) == 0  # nothing committed yet
    assert writer.pending == 0
    assert len(log) == 1


def test_writer_rejects_bad_block():
    log = SharedLog.create(4)
    with pytest.raises(ValueError):
        ThreadLogWriter(log, block=0)


# ----------------------------------------------------------------------
# Multi-thread: per-thread order survives batching


def test_per_thread_order_preserved_under_concurrency():
    log = SharedLog.create(1 << 14)
    per_thread = 500

    def run(tid):
        with ThreadLogWriter(log, block=16) as writer:
            for i in range(per_thread):
                writer.append(KIND_CALL, i, 0x1000 + tid, tid)

    threads = [
        threading.Thread(target=run, args=(tid,)) for tid in (1, 2, 3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    log._store_tail()
    seen = {1: [], 2: [], 3: []}
    for entry in log:
        seen[entry.tid].append(entry.counter)
    for tid, counters in seen.items():
        assert counters == list(range(per_thread)), f"thread {tid}"
    assert log.dropped == 0


def test_recorder_flush_on_stop_and_persist(tmp_path):
    """Staged blocks are committed by stop and persist — the recorder
    never strands accepted events in a staging buffer."""
    from repro.api import TEEPerf
    from repro.core import symbol

    class App:
        @symbol("app::Main()")
        def main(self):
            self.step()

        @symbol("app::Step()")
        def step(self):
            pass

    perf = TEEPerf.live(capacity=64, writer_block=1024)
    app = App()
    perf.compile_instance(app)
    perf.record(app.main)  # stop() runs inside record's context manager
    try:
        assert perf.recorder.events_recorded() == 4
        path = tmp_path / "run.teeperf"
        perf.persist(str(path), image_path=False)
        assert len(SharedLog.load(str(path))) == 4
    finally:
        perf.uninstrument()
