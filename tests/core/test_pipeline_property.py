"""End-to-end property test: random call trees, exact accounting.

Hypothesis generates arbitrary call trees (random shapes, costs and
method names); each tree is executed as *real nested Python calls* on
the simulated machine under the full TEE-Perf pipeline.  The analysis
must then match the analytically known truth:

* per-method call counts are exact;
* per-method exclusive time equals the sum of that method's own costs,
  within the instrumentation events' own (bounded) footprint;
* the folded stacks reproduce the tree's path structure.
"""

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import TEEPerf
from repro.core import symbol
from repro.tee import NATIVE

N_METHODS = 6
EVENT_COST = 110.0  # native instrument_event_cycles
TICK = 8.0  # default counter resolution


@dataclass(eq=False)  # identity equality: nodes with equal fields differ
class Node:
    method: int
    cost: int
    children: list = field(default_factory=list)


@st.composite
def call_trees(draw):
    size = draw(st.integers(min_value=1, max_value=30))
    nodes = [
        Node(
            draw(st.integers(0, N_METHODS - 1)),
            draw(st.integers(500, 50_000)),
        )
        for _ in range(size)
    ]
    root = nodes[0]
    for index, node in enumerate(nodes[1:], start=1):
        # Parents strictly precede children: guaranteed acyclic.
        parent_index = draw(st.integers(0, index - 1))
        nodes[parent_index].children.append(node)
    return root


def make_app_class():
    """A class with one dispatchable method per symbol name."""

    def make_method(index):
        def method(self, node):
            self.env.compute(node.cost)
            for child in node.children:
                getattr(self, f"f_{child.method}")(child)

        method.__name__ = f"f_{index}"
        method.__qualname__ = f"ScriptApp.f_{index}"
        return symbol(f"script::F{index}()")(method)

    namespace = {"__init__": lambda self, env: setattr(self, "env", env)}
    for index in range(N_METHODS):
        namespace[f"f_{index}"] = make_method(index)
    return type("ScriptApp", (), namespace)


def truth(root):
    counts = {}
    costs = {}
    stack = [root]
    while stack:
        node = stack.pop()
        counts[node.method] = counts.get(node.method, 0) + 1
        costs[node.method] = costs.get(node.method, 0) + node.cost
        stack.extend(node.children)
    return counts, costs


@settings(max_examples=25, deadline=None)
@given(root=call_trees())
def test_full_pipeline_matches_tree_truth(root):
    app_cls = make_app_class()
    perf = TEEPerf.simulated(platform=NATIVE, name="script")
    app = app_cls(perf.env)
    perf.compile_instance(app)
    entry = getattr(app, f"f_{root.method}")
    perf.record(entry, root)
    analysis = perf.analyze()
    counts, costs = truth(root)

    for method, count in counts.items():
        stats = analysis.method(f"script::F{method}()")
        # Exact call counts.
        assert stats.calls == count
        # Exclusive time: own cost plus at most the bounded footprint
        # of the instrumentation events this method (and its direct
        # children's enter events) contribute, plus tick quantisation.
        measured = stats.exclusive * TICK
        lower = costs[method] - TICK * (count + 1)
        upper = costs[method] + 4 * EVENT_COST * (count + counts_below(
            root, method
        )) + TICK * (count + 1)
        assert lower <= measured <= upper, (
            f"method {method}: measured {measured}, "
            f"truth {costs[method]}"
        )

    # Folded stacks reproduce the tree's root.
    folded = analysis.folded()
    assert all(path[0] == f"script::F{root.method}()" for path in folded)


def counts_below(root, method):
    """Number of direct children hanging under calls of `method`."""
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.method == method:
            total += len(node.children)
        stack.extend(node.children)
    return total
