"""Tests for log version 2 (call sites) and the event mask."""

import sys
import types

import pytest

from repro.api import Analyzer, SharedLog, TEEPerf
from repro.core import KIND_CALL, KIND_RET
from repro.core.errors import LogFormatError
from repro.core.log import ENTRY_SIZE_V2, HEADER_SIZE, VERSION_2
from repro.symbols import BinaryImage


def test_v2_entries_are_32_bytes():
    log = SharedLog.create(10, version=VERSION_2)
    assert log.version == VERSION_2
    assert log.entry_size == ENTRY_SIZE_V2
    assert len(log.to_bytes()) == HEADER_SIZE + 10 * ENTRY_SIZE_V2


def test_v2_roundtrips_call_site():
    log = SharedLog.create(4, version=VERSION_2)
    log.append(KIND_CALL, 100, 0x401000, 7, call_site=0x400500)
    entry = log.entry(0)
    assert entry.call_site == 0x400500
    assert entry.addr == 0x401000


def test_v1_ignores_call_site_silently():
    log = SharedLog.create(4)
    log.append(KIND_CALL, 100, 0x401000, 7, call_site=0x400500)
    assert log.entry(0).call_site == 0


def test_v2_survives_dump_and_load(tmp_path):
    log = SharedLog.create(4, version=VERSION_2)
    log.append(KIND_CALL, 1, 0x400100, 1, call_site=0x400050)
    path = tmp_path / "v2.teeperf"
    log.dump(str(path))
    loaded = SharedLog.load(str(path))
    assert loaded.version == VERSION_2
    assert loaded.entry(0).call_site == 0x400050


def test_unknown_version_rejected():
    with pytest.raises(ValueError):
        SharedLog.create(4, version=9)
    buf = bytearray(SharedLog.create(4).to_bytes())
    # Corrupt the version field to 9.
    import struct

    word1 = struct.unpack_from("<Q", buf, 8)[0]
    struct.pack_into("<Q", buf, 8, (word1 & 0xFFFF) | (9 << 16))
    with pytest.raises(LogFormatError):
        SharedLog.from_bytes(bytes(buf))


def test_event_mask_filters_kinds():
    log = SharedLog.create(16)
    log.set_event_mask(calls=True, rets=False)
    assert log.append(KIND_CALL, 1, 0x400000, 1)
    assert not log.append(KIND_RET, 2, 0x400000, 1)
    assert len(log) == 1
    assert log.dropped == 0  # filtered, not dropped
    log.set_event_mask(calls=True, rets=True)
    assert log.append(KIND_RET, 3, 0x400000, 1)


def test_calls_only_profile_still_counts_calls():
    image = BinaryImage("app")
    addr = image.add_function("hot", size=64)
    log = SharedLog.create(64, profiler_addr=image.profiler_addr)
    log.set_event_mask(calls=True, rets=False)
    for i in range(5):
        log.append(KIND_CALL, i * 10, addr, 1)
        log.append(KIND_RET, i * 10 + 5, addr, 1)  # filtered out
    analysis = Analyzer(image).analyze(log)
    assert analysis.method("hot").calls == 5
    assert analysis.truncated_calls() == 5  # no returns: all truncated


def test_analyzer_crosschecks_v2_call_sites():
    image = BinaryImage("app")
    main = image.add_function("main", size=64)
    leaf = image.add_function("leaf", size=64)
    rogue = image.add_function("rogue", size=64)
    log = SharedLog.create(
        16, profiler_addr=image.profiler_addr, version=VERSION_2
    )
    log.append(KIND_CALL, 0, main, 1)
    # leaf claims it was called from rogue, but the stack says main.
    log.append(KIND_CALL, 10, leaf, 1, call_site=rogue + 4)
    log.append(KIND_RET, 20, leaf, 1)
    log.append(KIND_RET, 30, main, 1)
    analysis = Analyzer(image).analyze(log)
    assert analysis.meta["callsite_mismatches"] == 1


def test_analyzer_accepts_consistent_v2_call_sites():
    image = BinaryImage("app")
    main = image.add_function("main", size=64)
    leaf = image.add_function("leaf", size=64)
    log = SharedLog.create(
        16, profiler_addr=image.profiler_addr, version=VERSION_2
    )
    log.append(KIND_CALL, 0, main, 1)
    log.append(KIND_CALL, 10, leaf, 1, call_site=main + 8)
    log.append(KIND_RET, 20, leaf, 1)
    log.append(KIND_RET, 30, main, 1)
    analysis = Analyzer(image).analyze(log)
    assert analysis.meta["callsite_mismatches"] == 0


def test_auto_tracer_fills_v2_call_sites():
    module = types.ModuleType("v2_app")
    exec(
        "def inner():\n    return 1\n"
        "def outer():\n    return inner() + 1\n",
        module.__dict__,
    )
    sys.modules["v2_app"] = module
    try:
        perf = TEEPerf.auto(scope="v2_app", version=VERSION_2)
        perf.record(module.outer)
        analysis = perf.analyze()
        assert analysis.meta["version"] == VERSION_2
        assert analysis.meta["callsite_mismatches"] == 0
        # The inner call entry carries outer's address as call site.
        entries = list(perf.recorder.log)
        inner_calls = [
            e for e in entries if e.is_call and e.call_site != 0
        ]
        assert inner_calls
    finally:
        sys.modules.pop("v2_app", None)
