"""Unit tests for the Flame Graph writer (stage 4)."""

import pytest

from repro.api import FlameGraph


@pytest.fixture
def folded():
    return {
        ("main",): 10,
        ("main", "io"): 30,
        ("main", "io", "read"): 50,
        ("main", "compute"): 110,
    }


def test_totals_nest(folded):
    graph = FlameGraph(folded)
    assert graph.total_ticks() == 200
    frames = {node.name: node for _, _, node in graph.frames()}
    assert frames["main"].total == 200
    assert frames["io"].total == 80
    assert frames["read"].total == 50
    assert frames["main"].self_ticks == 10


def test_share(folded):
    graph = FlameGraph(folded)
    assert graph.share("compute") == pytest.approx(110 / 200)
    assert graph.share("io") == pytest.approx(80 / 200)
    assert graph.share("main") == pytest.approx(1.0)


def test_share_sums_same_named_frames():
    graph = FlameGraph({("a", "x"): 10, ("b", "x"): 30})
    assert graph.share("x") == pytest.approx(1.0)


def test_folded_output_roundtrips(folded):
    text = FlameGraph(folded).to_folded()
    lines = dict(
        (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
        for line in text.strip().splitlines()
    )
    assert lines["main;io;read"] == 50
    assert lines["main;compute"] == 110
    assert lines["main"] == 10


def test_svg_contains_frames_and_tooltips(folded):
    svg = FlameGraph(folded, title="My & Graph").to_svg()
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert "My &amp; Graph" in svg
    assert "compute" in svg
    assert "<title>" in svg


def test_write_files(folded, tmp_path):
    graph = FlameGraph(folded)
    svg_path = tmp_path / "graph.svg"
    folded_path = tmp_path / "graph.folded"
    graph.write_svg(str(svg_path))
    graph.write_folded(str(folded_path))
    assert svg_path.read_text().startswith("<svg")
    assert "main;compute 110" in folded_path.read_text()


def test_empty_profile_rejected():
    with pytest.raises(ValueError):
        FlameGraph({})


def test_zero_tick_paths_ignored():
    graph = FlameGraph({("a",): 0, ("b",): 5})
    assert graph.total_ticks() == 5


def test_depth_layout_offsets_are_disjoint(folded):
    graph = FlameGraph(folded)
    by_level = {}
    for level, start, node in graph.frames():
        by_level.setdefault(level, []).append((start, start + node.total))
    for level, spans in by_level.items():
        spans.sort()
        for (a_start, a_end), (b_start, _) in zip(spans, spans[1:]):
            assert a_end <= b_start, f"overlap at level {level}"
