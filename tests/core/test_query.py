"""Unit tests for the declarative query interface."""

import pytest

from repro.api import Analyzer, SharedLog
from repro.core import KIND_CALL, KIND_RET, QuerySession
from repro.core.errors import AnalyzerError
from repro.symbols import BinaryImage


@pytest.fixture
def session():
    image = BinaryImage("app")
    for name in ("main", "get", "put", "lock_wait"):
        image.add_function(name, size=64)

    def a(name):
        return image.symtab.by_name(name).addr

    log = SharedLog.create(256, profiler_addr=image.profiler_addr)
    # Thread 1: main -> 3x get (10 ticks each) + put (40).
    log.append(KIND_CALL, 0, a("main"), 1)
    t = 10
    for _ in range(3):
        log.append(KIND_CALL, t, a("get"), 1)
        log.append(KIND_RET, t + 10, a("get"), 1)
        t += 20
    log.append(KIND_CALL, 80, a("put"), 1)
    log.append(KIND_RET, 120, a("put"), 1)
    log.append(KIND_RET, 200, a("main"), 1)
    # Thread 2: one get, plus a pathological lock_wait (1 fast, 1 slow).
    log.append(KIND_CALL, 0, a("get"), 2)
    log.append(KIND_RET, 12, a("get"), 2)
    log.append(KIND_CALL, 20, a("lock_wait"), 2)
    log.append(KIND_RET, 22, a("lock_wait"), 2)
    log.append(KIND_CALL, 30, a("lock_wait"), 2)
    log.append(KIND_RET, 1030, a("lock_wait"), 2)
    analysis = Analyzer(image).analyze(log)
    return QuerySession(analysis)


def test_hottest(session):
    top = session.hottest(2)
    assert len(top) == 2
    assert top.column("method")[0] == "lock_wait"


def test_thread_method_counts(session):
    counts = session.thread_method_counts()
    lookup = {(r["thread"], r["method"]): r["calls"] for r in counts.rows()}
    assert lookup[(1, "get")] == 3
    assert lookup[(2, "get")] == 1
    assert lookup[(2, "lock_wait")] == 2
    assert (2, "put") not in lookup


def test_callers_of(session):
    callers = session.callers_of("get")
    by_caller = {r["caller"]: r for r in callers.rows()}
    assert by_caller["main"]["calls"] == 3
    assert by_caller[None]["calls"] == 1  # thread-2 root call


def test_callers_of_unknown_method(session):
    with pytest.raises(AnalyzerError):
        session.callers_of("nope")


def test_callees_of(session):
    callees = session.callees_of("main")
    methods = set(callees.column("method"))
    assert methods == {"get", "put"}


def test_slowest_invocations(session):
    worst = session.slowest_invocations(1)
    assert worst.column("method")[0] == "lock_wait"
    assert worst.column("inclusive")[0] == 1000


def test_contention_candidates_flags_skewed_method(session):
    candidates = session.contention_candidates(3)
    assert candidates.column("method")[0] == "lock_wait"
    assert candidates.column("skew")[0] > 1.5


def test_method_by_call_history(session):
    history = session.method_by_call_history("get")
    by_caller = {r["caller"]: r for r in history.rows()}
    assert by_caller["main"]["calls"] == 3
    assert by_caller["main"]["mean"] == pytest.approx(10.0)


def test_calls_deeper_than(session):
    assert len(session.calls_deeper_than(0)) == 4  # 3x get + put under main


def test_summary_text(session):
    text = session.summary()
    assert "threads: 2" in text
    assert "hottest method: lock_wait" in text
