"""PipelineStats: merge semantics and the to_dict/from_dict round trip."""

import json

from repro.core import PipelineStats


def sample_stats():
    return PipelineStats(
        entries_recorded=120,
        entries_ingested=118,
        entries_dropped=2,
        entries_dismissed=1,
        frames_truncated=3,
        chunks_processed=4,
        shards_analyzed=5,
        jobs=2,
        chunk_size=32,
        counter_span=1000,
        cache_hits=80,
        cache_misses=20,
    )


def test_round_trip_is_equal():
    stats = sample_stats()
    assert PipelineStats.from_dict(stats.to_dict()) == stats


def test_round_trip_through_json():
    stats = sample_stats()
    rehydrated = PipelineStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert rehydrated == stats
    assert rehydrated.ingest_rate == stats.ingest_rate


def test_from_dict_ignores_derived_and_unknown_keys():
    data = sample_stats().to_dict()
    assert "ingest_rate" in data and "cache_hit_rate" in data  # derived
    data["someday_a_new_counter"] = 999
    stats = PipelineStats.from_dict(data)
    assert stats == sample_stats()


def test_from_dict_defaults_missing_fields():
    stats = PipelineStats.from_dict({"entries_recorded": 7})
    assert stats.entries_recorded == 7
    assert stats.entries_ingested == 0
    assert stats.jobs == 1


def test_merge_adds_counters_and_survives_round_trip():
    one = PipelineStats(entries_recorded=10, entries_dropped=1, jobs=1)
    two = PipelineStats(entries_recorded=20, entries_dropped=3, jobs=4)
    merged = PipelineStats.from_dict(one.to_dict()).merge(two)
    assert merged.entries_recorded == 30
    assert merged.entries_dropped == 4
    assert merged.jobs == 4  # configuration: max, not sum
    assert PipelineStats.from_dict(merged.to_dict()) == merged


def test_equality_distinguishes_counters():
    assert PipelineStats(entries_recorded=1) != PipelineStats()


def test_report_names_recorded_entries():
    assert "entries recorded:  120" in sample_stats().report()


def test_compression_ratio_flows_to_dict_and_metrics():
    stats = PipelineStats(bytes_written=3000, bytes_on_disk=1000)
    assert stats.compression_ratio == 3.0
    assert stats.to_dict()["compression_ratio"] == 3.0
    # Unknown sizes never divide by zero.
    assert PipelineStats(bytes_written=10).compression_ratio == 0.0
    assert PipelineStats().compression_ratio == 0.0
    # Round trip keeps the raw counters (the ratio is derived).
    back = PipelineStats.from_dict(stats.to_dict())
    assert (back.bytes_written, back.bytes_on_disk) == (3000, 1000)

    # End to end: analysing a rev 1.2 image fills the byte counters
    # and they surface in the exposition text.
    from repro.api import Analyzer, SharedLog
    from repro.core import KIND_CALL, KIND_RET
    from repro.core.columnar import encode_log
    from repro.core.export import to_metrics
    from repro.symbols import BinaryImage

    img = BinaryImage("app")
    img.add_function("f", size=64)
    addr = next(iter(img.symtab)).addr
    log = SharedLog.create(64, profiler_addr=img.profiler_addr)
    for i in range(32):
        log.append(KIND_CALL if i % 2 == 0 else KIND_RET, i, addr, 1)
    log._store_tail()
    image = encode_log(log)

    analysis = Analyzer(img).analyze(image)
    pipeline = analysis.pipeline
    assert pipeline.bytes_written == 32 * log.entry_size
    assert pipeline.bytes_on_disk == len(image)
    assert pipeline.compression_ratio == (
        pipeline.bytes_written / pipeline.bytes_on_disk
    )
    text = to_metrics(analysis)
    assert f"teeperf_bytes_written_total {32 * log.entry_size}" in text
    assert f"teeperf_bytes_on_disk_total {len(image)}" in text
    assert "teeperf_compression_ratio" in text
