"""PipelineStats: merge semantics and the to_dict/from_dict round trip."""

import json

from repro.core import PipelineStats


def sample_stats():
    return PipelineStats(
        entries_recorded=120,
        entries_ingested=118,
        entries_dropped=2,
        entries_dismissed=1,
        frames_truncated=3,
        chunks_processed=4,
        shards_analyzed=5,
        jobs=2,
        chunk_size=32,
        counter_span=1000,
        cache_hits=80,
        cache_misses=20,
    )


def test_round_trip_is_equal():
    stats = sample_stats()
    assert PipelineStats.from_dict(stats.to_dict()) == stats


def test_round_trip_through_json():
    stats = sample_stats()
    rehydrated = PipelineStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert rehydrated == stats
    assert rehydrated.ingest_rate == stats.ingest_rate


def test_from_dict_ignores_derived_and_unknown_keys():
    data = sample_stats().to_dict()
    assert "ingest_rate" in data and "cache_hit_rate" in data  # derived
    data["someday_a_new_counter"] = 999
    stats = PipelineStats.from_dict(data)
    assert stats == sample_stats()


def test_from_dict_defaults_missing_fields():
    stats = PipelineStats.from_dict({"entries_recorded": 7})
    assert stats.entries_recorded == 7
    assert stats.entries_ingested == 0
    assert stats.jobs == 1


def test_merge_adds_counters_and_survives_round_trip():
    one = PipelineStats(entries_recorded=10, entries_dropped=1, jobs=1)
    two = PipelineStats(entries_recorded=20, entries_dropped=3, jobs=4)
    merged = PipelineStats.from_dict(one.to_dict()).merge(two)
    assert merged.entries_recorded == 30
    assert merged.entries_dropped == 4
    assert merged.jobs == 4  # configuration: max, not sum
    assert PipelineStats.from_dict(merged.to_dict()) == merged


def test_equality_distinguishes_counters():
    assert PipelineStats(entries_recorded=1) != PipelineStats()


def test_report_names_recorded_entries():
    assert "entries recorded:  120" in sample_stats().report()
