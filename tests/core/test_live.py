"""Integration tests for live mode: profiling real Python code."""

import threading
import types

import pytest

from repro.api import TEEPerf
from repro.core.counter import PerfCounterClock
from repro.core.recorder import LiveRecorder


def make_module():
    module = types.ModuleType("live_workload")

    def busy(n):
        total = 0
        for i in range(n):
            total += i * i
        return total

    def inner():
        # Call through the module attribute so the instrumenter's patch
        # is visible (module-level code resolves names via globals).
        return module.busy(60_000)

    def outer():
        result = 0
        for _ in range(5):
            result += module.inner()
        return result

    for fn in (busy, inner, outer):
        fn.__module__ = module.__name__
        setattr(module, fn.__name__, fn)
    return module


def test_live_profile_single_thread():
    module = make_module()
    perf = TEEPerf.live(name="live")
    perf.compile_module(module)
    try:
        result = perf.record(module.outer)
        assert result == module.busy(60_000) * 5
        analysis = perf.analyze()
        assert analysis.method("outer").calls == 1
        assert analysis.method("inner").calls == 5
        assert analysis.method("busy").calls == 5
        # busy dominates: it is where the loop lives.
        assert analysis.methods()[0].method == "busy"
        assert analysis.method("outer").inclusive >= analysis.method(
            "inner"
        ).inclusive
    finally:
        perf.uninstrument()


def test_live_profile_multithreaded():
    module = make_module()
    perf = TEEPerf.live(name="live-mt")
    perf.compile_module(module)
    try:
        def run_threads():
            threads = [
                threading.Thread(target=module.outer) for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        perf.record(run_threads)
        analysis = perf.analyze()
        assert analysis.method("outer").calls == 3
        assert len(analysis.method("outer").threads) == 3
    finally:
        perf.uninstrument()


def test_live_with_hardware_counter():
    module = make_module()
    program_counter = PerfCounterClock()
    perf = TEEPerf.live(name="live-hw")
    perf._recorder_factory = lambda program: LiveRecorder(
        program, counter=program_counter
    )
    perf.compile_module(module)
    try:
        perf.record(module.inner)
        analysis = perf.analyze()
        assert analysis.method("busy").inclusive > 0
    finally:
        perf.uninstrument()


def test_live_persist_roundtrip(tmp_path):
    module = make_module()
    perf = TEEPerf.live(name="live-persist")
    perf.compile_module(module)
    try:
        perf.record(module.inner)
        path = tmp_path / "live.teeperf"
        perf.persist(str(path))
        offline = perf.analyze(str(path))
        assert offline.method("busy").calls == 1
    finally:
        perf.uninstrument()


def test_live_flamegraph():
    module = make_module()
    perf = TEEPerf.live(name="live-fg")
    perf.compile_module(module)
    try:
        perf.record(module.outer)
        graph = perf.flamegraph(title="live run")
        assert graph.share("busy") > 0.3
    finally:
        perf.uninstrument()
