"""Crash recovery: sealed segments, salvage, and the fault matrix.

The contract under test (docs/log-format.md "Recovery"):

* every CRC-verified sealed segment is recovered, at every crash
  phase the fault harness can produce;
* nothing is silently dropped — salvaged plus quarantined accounting
  is exact, with byte ranges and reason codes;
* ``analyze(recover="auto")`` on a truncated log is identical to
  analysing the undamaged prefix;
* random byte flips and truncations never crash recovery (the only
  controlled failure is a typed :class:`LogFormatError` for a header
  too damaged to describe a log).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Analyzer,
    LiveRecorder,
    RecoveryReport,
    SharedLog,
    recover_log,
    repair_tails,
)
from repro.core import (
    HEADER_SIZE,
    Instrumenter,
    KIND_CALL,
    KIND_RET,
    ThreadLogWriter,
)
from repro.core.errors import LogFormatError, RecoveryError
from repro.core.recovery import (
    REASON_CRC,
    REASON_UNSEALED,
    recovery_stats,
    require_clean,
)
from repro.core.stats import PipelineStats
from repro.faults import (
    CRASH_PHASES,
    CrashingWriter,
    FaultInjector,
    InjectedCrash,
    crash_after,
    crashed_snapshot,
    run_to_crash,
)
from repro.symbols import BinaryImage


@pytest.fixture
def image():
    img = BinaryImage("app")
    for name in ("main", "work", "leaf"):
        img.add_function(name, size=64)
    return img


def addr(image, name):
    return image.symtab.by_name(name).addr


def balanced_events(image, repeats=4):
    """A balanced single-thread call tree, `6 * repeats` events."""
    events = []
    t = 0
    for _ in range(repeats):
        events += [
            (KIND_CALL, addr(image, "main"), t, 1),
            (KIND_CALL, addr(image, "work"), t + 10, 1),
            (KIND_CALL, addr(image, "leaf"), t + 20, 1),
            (KIND_RET, addr(image, "leaf"), t + 30, 1),
            (KIND_RET, addr(image, "work"), t + 40, 1),
            (KIND_RET, addr(image, "main"), t + 50, 1),
        ]
        t += 100
    return events


def sealed_log(image, repeats=4, block=6, capacity=256):
    """A sealed log committed through a batched writer, cleanly
    stopped (tail stored, remainder sealed)."""
    log = SharedLog.create(
        capacity, sealed=True, profiler_addr=image.profiler_addr
    )
    with ThreadLogWriter(log, block=block) as writer:
        for kind, a, counter, tid in balanced_events(image, repeats):
            writer.append(kind, counter, a, tid)
    log._store_tail()
    log.seal_remainder()
    return log


# ---------------------------------------------------------------------------
# Sealed-segment format


def test_sealed_roundtrip_preserves_journal(image):
    log = sealed_log(image)
    reloaded = SharedLog.from_bytes(log.to_bytes())
    assert reloaded.sealed
    assert reloaded.seals == log.seals
    assert reloaded.seal_watermark == log.seal_watermark == len(log)
    assert list(reloaded) == list(log)


def test_unsealed_log_bytes_unchanged(image):
    """Sealing is opt-in: an unsealed log's image is exactly what it
    was before the format learned to seal."""
    log = SharedLog.create(64, profiler_addr=image.profiler_addr)
    for kind, a, counter, tid in balanced_events(image, 1):
        log.append(kind, counter, a, tid)
    data = log.to_bytes()
    assert len(data) == HEADER_SIZE + 64 * log.entry_size
    assert not SharedLog.from_bytes(data).sealed


@given(counts=st.lists(st.integers(1, 6), min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_seal_journal_roundtrip_property(counts):
    log = SharedLog.create(64, sealed=True)
    cursor = 0
    for count in counts:
        for i in range(count):
            log.append(KIND_CALL, cursor + i, 0x1000, 1)
        log.seal(cursor, count)
        cursor += count
    reloaded = SharedLog.from_bytes(log.to_bytes())
    assert reloaded.seals == log.seals
    assert reloaded.seal_watermark == log.seal_watermark == cursor
    salvaged, report = recover_log(reloaded)
    assert report.ok
    assert report.entries_salvaged == cursor
    assert report.segments_recovered == report.segments_sealed


# ---------------------------------------------------------------------------
# The fault matrix: every crash phase, all sealed segments recovered


@pytest.mark.parametrize("phase", CRASH_PHASES)
def test_fault_matrix_writer_crash(phase):
    log = SharedLog.create(16, sealed=True)
    writer = CrashingWriter(log, block=4, phase=phase, crash_flush=2)
    with pytest.raises(InjectedCrash):
        for i in range(8):
            writer.append(KIND_CALL, i, 0x1000, 1)
    assert writer.crashed
    salvaged, report = recover_log(crashed_snapshot(log))

    # The headline guarantee: 100% of sealed segments recovered.
    assert report.segments_recovered == report.segments_sealed
    assert report.crc_failures == 0
    # The first flush always seals 4 entries before the crash point.
    expected = 8 if phase == "after-seal" else 4
    assert report.entries_salvaged == expected
    assert list(salvaged)[:4] == list(log)[:4]
    # Exact accounting: nothing silently dropped.
    assert report.entries_quarantined == sum(
        q.count for q in report.quarantined
    )
    if phase in ("after-reserve", "mid-write", "after-write"):
        # The second block's slots are reserved but never sealed.
        assert report.entries_quarantined == 4
        assert report.quarantined[0].reason in (
            REASON_UNSEALED, REASON_CRC
        )
    else:
        assert report.ok


@pytest.mark.parametrize("crash_flush", [1, 2, 3])
def test_fault_matrix_crash_point_sweep(crash_flush):
    """Kill the writer at every commit: every seal that completed
    before the crash survives recovery."""
    log = SharedLog.create(32, sealed=True)
    writer = CrashingWriter(
        log, block=4, phase="after-write", crash_flush=crash_flush
    )
    with pytest.raises(InjectedCrash):
        for i in range(16):
            writer.append(KIND_CALL, i, 0x1000, 1)
    salvaged, report = recover_log(crashed_snapshot(log))
    assert report.segments_recovered == report.segments_sealed
    assert report.entries_salvaged == 4 * (crash_flush - 1)
    assert report.entries_quarantined == 4  # the unsealed block


def test_app_crash_mid_call_sealed_blocks_survive(image):
    """A simulated application dying mid-call: the sealed blocks the
    writer committed before the death are recoverable."""
    guard = crash_after(30)

    class App:
        def work(self):
            guard()

        def main(self):
            for _ in range(100):
                self.work()

    app = App()
    instrumenter = Instrumenter("crash-app")
    instrumenter.instrument_instance(app)
    program = instrumenter.finish()
    recorder = LiveRecorder(
        program, capacity=1 << 12, writer_block=8, sealed=True
    )
    try:
        snapshot = run_to_crash(recorder, app.main)
    finally:
        program.restore_all()
    salvaged, report = recover_log(snapshot)
    assert report.sealed
    assert report.segments_recovered == report.segments_sealed
    assert report.segments_recovered > 0
    assert report.entries_salvaged > 0
    assert report.entries_salvaged == len(salvaged)


# ---------------------------------------------------------------------------
# Corruption: CRC catches flips, watermark survives truncation


def test_crc_mismatch_quarantines_only_the_damaged_segment(image):
    data = bytearray(sealed_log(image, repeats=2, block=6).to_bytes())
    data[HEADER_SIZE + 5] ^= 0x40  # inside the first sealed block
    salvaged, report = recover_log(bytes(data))
    assert report.crc_failures == 1
    assert report.segments_recovered == report.segments_sealed - 1
    assert any(q.reason == REASON_CRC for q in report.quarantined)
    # The undamaged second block is still salvaged verbatim.
    assert report.entries_salvaged == 6
    assert not report.ok


def test_truncation_eats_journal_watermark_vouches_prefix(image):
    log = sealed_log(image, repeats=4, block=6)
    data = log.to_bytes()
    # Cut mid-entry inside the array: journal trailer gone, a torn
    # entry at the cut.
    k = 13
    cut = data[: HEADER_SIZE + k * log.entry_size + 7]
    salvaged, report = recover_log(cut)
    assert report.entries_salvaged == k
    assert list(salvaged) == list(log)[:k]
    reasons = {q.reason for q in report.quarantined}
    assert "torn-entry" in reasons or "truncated" in reasons


# ---------------------------------------------------------------------------
# analyze(recover=...) — the prefix-identity contract


def test_auto_recover_identical_to_undamaged_prefix(image):
    log = sealed_log(image, repeats=4, block=6)
    data = log.to_bytes()
    k = 15  # an entry boundary strictly inside the log
    cut = data[: HEADER_SIZE + k * log.entry_size]

    recovered = Analyzer(image).analyze(cut, recover="auto")
    assert recovered.recovery is not None
    assert recovered.recovery.entries_salvaged == k

    prefix = SharedLog.create(64, profiler_addr=image.profiler_addr)
    for kind, a, counter, tid in balanced_events(image, 4)[:k]:
        prefix.append(kind, counter, a, tid)
    baseline = Analyzer(image).analyze(prefix)

    def signature(analysis):
        return (
            [
                (s.method, s.calls, s.inclusive, s.exclusive)
                for s in analysis.methods()
            ],
            analysis.folded(),
            analysis.unmatched_returns,
        )

    assert signature(recovered) == signature(baseline)


def test_strict_recover_raises_on_damage_passes_when_clean(image):
    log = sealed_log(image)
    clean = Analyzer(image).analyze(
        log.to_bytes(), recover="strict"
    )
    assert clean.recovery is not None and clean.recovery.ok

    data = bytearray(log.to_bytes())
    data[HEADER_SIZE + 3] ^= 0x01
    with pytest.raises(RecoveryError) as excinfo:
        Analyzer(image).analyze(bytes(data), recover="strict")
    assert isinstance(excinfo.value.report, RecoveryReport)


def test_recovery_counters_flow_to_pipeline_and_metrics(image):
    from repro.core.export import to_metrics

    log = sealed_log(image, repeats=2, block=6)
    data = bytearray(log.to_bytes())
    data[HEADER_SIZE + 5] ^= 0x40
    analysis = Analyzer(image).analyze(bytes(data), recover="auto")
    pipeline = analysis.pipeline
    assert pipeline.crc_failures == 1
    assert pipeline.entries_salvaged == analysis.recovery.entries_salvaged
    assert pipeline.entries_quarantined > 0
    merged = PipelineStats()
    merged.merge(pipeline)
    merged.merge(pipeline)
    assert merged.crc_failures == 2  # plain additive on merge
    text = to_metrics(analysis)
    for family in (
        "teeperf_segments_sealed_total",
        "teeperf_entries_salvaged_total",
        "teeperf_entries_quarantined_total",
        "teeperf_crc_failures_total",
    ):
        assert family in text
    assert "recovery:" in pipeline.report()


def test_recovery_stats_and_require_clean_helpers(image):
    _, report = recover_log(sealed_log(image).to_bytes())
    assert require_clean(report) is report
    stats = recovery_stats(report, PipelineStats())
    assert stats.segments_sealed == report.segments_sealed
    assert stats.entries_salvaged == report.entries_salvaged


# ---------------------------------------------------------------------------
# repair_tails


def test_repair_tails_balances_and_counts(image):
    log = SharedLog.create(16, profiler_addr=image.profiler_addr)
    log.append(KIND_CALL, 0, addr(image, "main"), 1)
    log.append(KIND_CALL, 10, addr(image, "work"), 1)
    log.append(KIND_RET, 20, addr(image, "leaf"), 1)  # matches nothing
    # main and work left open at the end.
    report = RecoveryReport()
    repaired = repair_tails(log, report)
    assert report.rets_dropped == 1
    assert report.tails_repaired == 2
    kinds = [e.kind for e in repaired]
    assert kinds.count(KIND_CALL) == kinds.count(KIND_RET) == 2
    analysis = Analyzer(image).analyze(repaired)
    assert analysis.unmatched_returns == 0


# ---------------------------------------------------------------------------
# Property tests: damage never crashes recovery


def _base_image_bytes():
    img = BinaryImage("prop")
    for name in ("main", "work", "leaf"):
        img.add_function(name, size=64)
    return sealed_log(img, repeats=6, block=5).to_bytes()


_BASE = _base_image_bytes()


@given(seed=st.integers(0, 2**32 - 1), nflips=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_random_bit_flips_never_crash_recovery(seed, nflips):
    damaged, _ = FaultInjector(seed).flip(_BASE, n=nflips, lo=0)
    try:
        salvaged, report = recover_log(damaged)
    except LogFormatError:
        return  # a typed refusal is a controlled outcome
    assert report.entries_salvaged == len(salvaged)
    assert sum(report.salvaged_per_thread.values()) == len(salvaged)
    assert report.entries_quarantined == sum(
        q.count for q in report.quarantined
    )
    for entry in salvaged:
        assert entry.kind in (KIND_CALL, KIND_RET)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_random_truncation_never_crashes_recovery(seed):
    cut, offset = FaultInjector(seed).truncate(_BASE)
    try:
        salvaged, report = recover_log(cut)
    except LogFormatError:
        assert offset < HEADER_SIZE
        return
    original = SharedLog.from_bytes(_BASE)
    kept = list(salvaged)
    # Truncation damage only ever shortens: what survives is exactly
    # a prefix of the undamaged log.
    assert kept == list(original)[: len(kept)]
    assert report.entries_quarantined == sum(
        q.count for q in report.quarantined
    )


@given(
    seed=st.integers(0, 2**32 - 1),
    nflips=st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_flipped_then_analyzed_with_auto_recover(seed, nflips):
    """End to end: damage, salvage, analyze — never a crash, and the
    strict no-silent-drop accounting holds."""
    img = BinaryImage("prop")
    for name in ("main", "work", "leaf"):
        img.add_function(name, size=64)
    damaged, _ = FaultInjector(seed).flip(
        _BASE, n=nflips, lo=HEADER_SIZE
    )
    analysis = Analyzer(img).analyze(damaged, recover="auto")
    report = analysis.recovery
    assert report is not None
    assert report.entries_salvaged + report.entries_quarantined >= 0
    assert analysis.pipeline.entries_salvaged == report.entries_salvaged
