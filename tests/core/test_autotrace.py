"""Tests for auto-tracing (unmodified Python code, sys.setprofile)."""

import sys
import threading
import types

import pytest

from repro.api import TEEPerf
from repro.core.errors import TEEPerfError


def make_app():
    module = types.ModuleType("auto_app")
    source = """
def crunch(n):
    total = 0
    for i in range(n):
        total += i * i
    return total

def helper():
    return crunch(40_000)

def main():
    out = 0
    for _ in range(4):
        out += helper()
    return out
"""
    exec(compile(source, "auto_app.py", "exec"), module.__dict__)
    sys.modules["auto_app"] = module
    return module


@pytest.fixture
def app():
    module = make_app()
    yield module
    sys.modules.pop("auto_app", None)


def test_auto_profile_without_any_compile_step(app):
    perf = TEEPerf.auto(scope="auto_app")
    result = perf.record(app.main)
    assert result == app.crunch(40_000) * 4
    analysis = perf.analyze()
    assert analysis.method("auto_app::main()").calls == 1
    assert analysis.method("auto_app::helper()").calls == 4
    assert analysis.method("auto_app::crunch()").calls == 4
    # crunch holds the loop; it dominates.
    assert analysis.methods()[0].method == "auto_app::crunch()"


def test_auto_scope_excludes_other_modules(app):
    perf = TEEPerf.auto(scope="auto_app")

    def driver():  # defined in the test module: out of scope
        return app.main()

    perf.record(driver)
    analysis = perf.analyze()
    names = {s.method for s in analysis.methods()}
    assert "auto_app::main()" in names
    assert not any("driver" in name for name in names)


def test_auto_scope_predicate(app):
    perf = TEEPerf.auto(scope=lambda module: module == "auto_app")
    perf.record(app.main)
    assert perf.analyze().method("auto_app::crunch()").calls == 4


def test_auto_traces_spawned_threads(app):
    perf = TEEPerf.auto(scope="auto_app")
    # A barrier keeps all three threads alive simultaneously, so their
    # idents are guaranteed distinct (Python reuses idents of joined
    # threads otherwise).
    barrier = threading.Barrier(3)
    exec(
        "def synced_helper(barrier):\n"
        "    barrier.wait()\n"
        "    return helper()\n",
        app.__dict__,
    )

    def fan_out():
        threads = [
            threading.Thread(target=app.synced_helper, args=(barrier,))
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    perf.record(fan_out)
    analysis = perf.analyze()
    helper = analysis.method("auto_app::helper()")
    assert helper.calls == 3
    assert len(helper.threads) == 3


def test_auto_flamegraph_nests(app):
    perf = TEEPerf.auto(scope="auto_app")
    perf.record(app.main)
    perf.analyze()
    folded = perf.flamegraph().to_folded()
    assert "auto_app::main();auto_app::helper();auto_app::crunch()" in folded


def test_auto_rejects_compile_calls(app):
    perf = TEEPerf.auto(scope="auto_app")
    with pytest.raises(TEEPerfError):
        perf.compile_module(app)


def test_hook_is_uninstalled_after_record(app):
    perf = TEEPerf.auto(scope="auto_app")
    perf.record(app.main)
    assert sys.getprofile() is None


def test_auto_handles_lambdas_and_weird_names(app):
    module = sys.modules["auto_app"]
    module.weird = eval("lambda: sum(i for i in range(10_000))", module.__dict__)
    perf = TEEPerf.auto(scope="auto_app")
    perf.record(module.weird)
    analysis = perf.analyze()
    assert any("lambda" in s.method for s in analysis.methods())
