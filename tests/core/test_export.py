"""Tests for the export formats (gprof, callgrind, speedscope, JSON)."""

import json

import pytest

from repro.api import Analyzer, SharedLog
from repro.core import (
    KIND_CALL,
    KIND_RET,
    to_callgrind,
    to_gprof,
    to_json,
    to_speedscope,
)
from repro.symbols import BinaryImage


@pytest.fixture
def analysis():
    image = BinaryImage("app")
    for name in ("main", "work", "leaf"):
        image.add_function(name, size=64, file=f"{name}.c", line=10)

    def addr(name):
        return image.symtab.by_name(name).addr

    log = SharedLog.create(64, profiler_addr=image.profiler_addr)
    events = [
        (0, KIND_CALL, "main"),
        (10, KIND_CALL, "work"),
        (20, KIND_CALL, "leaf"),
        (30, KIND_RET, "leaf"),
        (50, KIND_CALL, "leaf"),
        (55, KIND_RET, "leaf"),
        (90, KIND_RET, "work"),
        (100, KIND_RET, "main"),
    ]
    for t, kind, name in events:
        log.append(kind, t, addr(name), 1)
    return Analyzer(image).analyze(log)


def test_gprof_flat_profile_and_call_graph(analysis):
    text = to_gprof(analysis)
    assert "Flat profile:" in text
    assert "Call graph:" in text
    assert "leaf" in text
    # work's callees include leaf with 2 calls.
    assert "-> leaf  (2 calls)" in text


def test_callgrind_structure(analysis):
    text = to_callgrind(analysis)
    assert text.startswith("# callgrind format")
    assert "events: Ticks" in text
    assert "fn=work" in text
    assert "cfn=leaf" in text
    assert "calls=2" in text
    assert "fl=work.c" in text
    # Self cost lines parse as "<line> <ticks>".
    for line in text.splitlines():
        if line and line[0].isdigit():
            parts = line.split()
            assert len(parts) == 2
            int(parts[0]), int(parts[1])


def test_speedscope_schema_and_nesting(analysis):
    doc = json.loads(to_speedscope(analysis))
    assert doc["$schema"].startswith("https://www.speedscope.app")
    names = [f["name"] for f in doc["shared"]["frames"]]
    assert set(names) == {"main", "work", "leaf"}
    profile = doc["profiles"][0]
    assert profile["type"] == "evented"
    # Events must nest: track a stack through them.
    stack = []
    for event in profile["events"]:
        if event["type"] == "O":
            stack.append(event["frame"])
        else:
            assert stack and stack.pop() == event["frame"]
    assert not stack


def test_speedscope_event_times_monotone(analysis):
    doc = json.loads(to_speedscope(analysis))
    for profile in doc["profiles"]:
        times = [e["at"] for e in profile["events"]]
        assert times == sorted(times)
        assert profile["startValue"] <= times[0]
        assert profile["endValue"] >= times[-1]


def test_json_dump_roundtrips(analysis):
    doc = json.loads(to_json(analysis))
    by_name = {m["method"]: m for m in doc["methods"]}
    assert by_name["leaf"]["calls"] == 2
    assert by_name["leaf"]["exclusive"] == 15
    assert doc["folded"]["main;work;leaf"] == 15
    assert doc["meta"]["events"] == 8
