"""The vectorised reconstruction engine vs the sequential oracle.

The contract under test: whatever the engine, jobs count or transport
(in-process threads, packed-shard process pool), ``Analyzer.analyze``
produces field-for-field identical profiles — and the vector engine
only keeps a shard when its whole-array pairing is provably the
oracle's replay, falling back transparently otherwise.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Analyzer, SharedLog
from repro.core import (
    AnalyzerError,
    KIND_CALL,
    KIND_RET,
    PipelineStats,
    QuerySession,
    RecordColumns,
    to_json,
    to_metrics,
)
from repro.core.reconstruct import pack_shard, unpack_shard
from repro.monitor import MetricRegistry, PipelineSampler

FUNCTIONS = ("main", "work", "leaf", "spin", "idle")


@pytest.fixture
def image():
    from repro.symbols import BinaryImage

    img = BinaryImage("app")
    for name in FUNCTIONS:
        img.add_function(name, size=64)
    return img


def build_log(image, events):
    log = SharedLog.create(
        max(len(events), 1) + 8, profiler_addr=image.profiler_addr
    )
    for kind, fn_index, counter, tid in events:
        addr = image.symtab.by_name(FUNCTIONS[fn_index]).addr
        log.append(kind, counter, addr, tid)
    return log


def assert_identical(image, events):
    analyzer = Analyzer(image)
    log = build_log(image, events)
    vector = analyzer.analyze(log, engine="vector")
    python = analyzer.analyze(log, engine="python")
    assert vector.records == python.records
    assert vector.unmatched_returns == python.unmatched_returns
    assert vector.meta == python.meta
    assert vector.folded() == python.folded()
    assert vector.threads() == python.threads()
    assert (
        list(vector.records_frame().rows())
        == list(python.records_frame().rows())
    )
    assert [
        (s.method, s.calls, s.inclusive, s.exclusive, s.min_inclusive,
         s.max_inclusive, s.threads)
        for s in vector.methods()
    ] == [
        (s.method, s.calls, s.inclusive, s.exclusive, s.min_inclusive,
         s.max_inclusive, s.threads)
        for s in python.methods()
    ]
    return vector, python


# ----------------------------------------------------------------------
# The differential property


# Arbitrary event soup: unmatched returns, interleaved (cross-frame)
# closes, truncated tails and dropped-event gaps all arise naturally
# from unconstrained kind/function choices.
event_soup = st.lists(
    st.tuples(
        st.sampled_from([KIND_CALL, KIND_RET]),
        st.integers(0, len(FUNCTIONS) - 1),
        st.integers(1, 2),  # tids
    ),
    max_size=60,
)


@settings(deadline=None, max_examples=120)
@given(event_soup)
def test_vector_matches_oracle_on_anomalous_shards(ops):
    from repro.symbols import BinaryImage

    img = BinaryImage("app")
    for name in FUNCTIONS:
        img.add_function(name, size=64)
    events = [
        (kind, fn, 10 * i, tid) for i, (kind, fn, tid) in enumerate(ops)
    ]
    assert_identical(img, events)


# Guided walks: mostly clean nesting so the vector path itself (not
# just its fallback) is exercised, with occasional injected anomalies.
guided_walk = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, len(FUNCTIONS) - 1)),
    max_size=80,
)


@settings(deadline=None, max_examples=120)
@given(guided_walk, st.booleans())
def test_vector_matches_oracle_on_guided_walks(walk, close_all):
    from repro.symbols import BinaryImage

    img = BinaryImage("app")
    for name in FUNCTIONS:
        img.add_function(name, size=64)
    events = []
    stack = []
    counter = 0
    for action, fn in walk:
        counter += 10
        if action <= 4 and len(stack) < 8:
            stack.append(fn)
            events.append((KIND_CALL, fn, counter, 1))
        elif action <= 7 and stack:
            events.append((KIND_RET, stack.pop(), counter, 1))
        elif action == 8 and stack:
            # Cross-frame close: return to the bottom of the stack.
            events.append((KIND_RET, stack[0], counter, 1))
            stack = []
        else:
            # Unmatched return (or a no-op when the stack is empty).
            events.append((KIND_RET, fn, counter, 1))
    if close_all:
        while stack:
            counter += 10
            events.append((KIND_RET, stack.pop(), counter, 1))
    assert_identical(img, events)


def test_clean_shards_take_the_vector_path(image):
    events = [
        (KIND_CALL, 0, 0, 1),
        (KIND_CALL, 1, 10, 1),
        (KIND_RET, 1, 30, 1),
        (KIND_CALL, 1, 40, 1),
        (KIND_CALL, 2, 50, 1),
        (KIND_RET, 2, 60, 1),
        (KIND_RET, 1, 70, 1),
        (KIND_RET, 0, 100, 1),
    ]
    vector, python = assert_identical(image, events)
    assert vector.pipeline.engine == "vector"
    assert vector.pipeline.shards_vectorised == 1
    assert vector.pipeline.shards_fallback == 0
    assert python.pipeline.engine == "python"
    assert python.pipeline.shards_vectorised == 0


def test_anomalous_shards_fall_back(image):
    events = [
        (KIND_RET, 2, 5, 1),  # unmatched
        (KIND_CALL, 0, 10, 1),
        (KIND_RET, 0, 20, 1),
        (KIND_CALL, 1, 0, 2),  # truncated tail on tid 2
    ]
    vector, _ = assert_identical(image, events)
    assert vector.pipeline.shards_vectorised == 0
    assert vector.pipeline.shards_fallback == 2
    # Fallback shards still merge into a columnar analysis.
    assert isinstance(vector.columns, RecordColumns)


def test_engine_python_forces_the_sequential_loop(image):
    events = [(KIND_CALL, 0, 0, 1), (KIND_RET, 0, 50, 1)]
    analyzer = Analyzer(image)
    analysis = analyzer.analyze(build_log(image, events), engine="python")
    assert analysis.pipeline.engine == "python"
    assert analysis.pipeline.shards_vectorised == 0
    assert analysis.pipeline.shards_fallback == 0
    # The python engine keeps the record-list representation.
    assert analysis.columns is None
    assert analysis.records[0].method == "main"


def test_unknown_engine_rejected(image):
    analyzer = Analyzer(image)
    with pytest.raises(AnalyzerError):
        analyzer.analyze(build_log(image, []), engine="simd")


# ----------------------------------------------------------------------
# The columnar record set


def test_record_columns_lazy_materialisation(image):
    events = [
        (KIND_CALL, 0, 0, 1),
        (KIND_CALL, 1, 10, 1),
        (KIND_RET, 1, 30, 1),
        (KIND_RET, 0, 100, 1),
    ]
    analysis = Analyzer(image).analyze(build_log(image, events))
    assert analysis.columns is not None
    assert analysis._records is None
    # Bulk consumers never materialise records...
    analysis.folded()
    analysis.records_frame()
    analysis.methods()
    assert analysis.threads() == [1]
    assert analysis._records is None
    # ...and the lazy property builds (and caches) them on demand.
    records = analysis.records
    assert [r.method for r in records] == ["work", "main"]
    assert analysis.records is records


def test_path_tuples_are_interned(image):
    # The same call path, entered many times, on both engines.
    events = []
    for i in range(4):
        base = 100 * i
        events += [
            (KIND_CALL, 0, base, 1),
            (KIND_CALL, 1, base + 10, 1),
            (KIND_RET, 1, base + 20, 1),
            (KIND_RET, 0, base + 30, 1),
        ]
    analyzer = Analyzer(image)
    for engine in ("vector", "python"):
        analysis = analyzer.analyze(build_log(image, events), engine=engine)
        inner = [r for r in analysis.records if r.method == "work"]
        assert len(inner) == 4
        first = inner[0].path
        assert first == ("main", "work")
        for record in inner[1:]:
            assert record.path is first, engine


def test_pack_unpack_shard_roundtrip():
    np = pytest.importorskip("numpy")
    kinds = np.array([0, 0, 1, 1], dtype=np.uint64)
    counters = np.array([5, 10, 20, 40], dtype=np.uint64)
    addrs = np.array([7, 8, 8, 7], dtype=np.uint64)
    sites = np.array([0, 7, 0, 0], dtype=np.uint64)
    tid, k, c, a, s = unpack_shard(
        pack_shard(42, kinds, counters, addrs, sites)
    )
    assert tid == 42
    assert k.tolist() == kinds.tolist()
    assert c.tolist() == counters.tolist()
    assert a.tolist() == addrs.tolist()
    assert s.tolist() == sites.tolist()
    tid, k, c, a, s = unpack_shard(
        pack_shard(7, kinds, counters, addrs, None)
    )
    assert tid == 7 and s is None


def test_process_pool_path_matches(image, monkeypatch):
    # Force the pool for a small log by dropping the entry threshold.
    monkeypatch.setattr(
        "repro.core.analyzer.PROCESS_POOL_MIN_ENTRIES", 1
    )
    events = []
    for tid in (1, 2, 3):
        for i in range(3):
            base = 100 * i + tid
            events += [
                (KIND_CALL, 0, base, tid),
                (KIND_CALL, 1, base + 10, tid),
                (KIND_RET, 1, base + 20, tid),
                (KIND_RET, 0, base + 30, tid),
            ]
    analyzer = Analyzer(image)
    log = build_log(image, events)
    serial = analyzer.analyze(log, engine="vector")
    for engine in ("vector", "python"):
        pooled = analyzer.analyze(log, jobs=4, engine=engine)
        assert pooled.records == serial.records
        assert pooled.unmatched_returns == serial.unmatched_returns
        assert pooled.meta == serial.meta
        # Workers report their private cache traffic back.
        assert (
            pooled.pipeline.cache_hits + pooled.pipeline.cache_misses > 0
        )


# ----------------------------------------------------------------------
# Observability: the new counters travel everywhere stats do


def test_engine_counters_exported(image):
    events = [(KIND_CALL, 0, 0, 1), (KIND_RET, 0, 50, 1)]
    analysis = Analyzer(image).analyze(
        build_log(image, events), engine="vector"
    )
    stats = analysis.pipeline

    payload = json.loads(to_json(analysis))["pipeline"]
    assert payload["engine"] == "vector"
    assert payload["shards_vectorised"] == 1
    assert payload["shards_fallback"] == 0
    assert PipelineStats.from_dict(payload) == stats

    metrics = to_metrics(analysis)
    assert "teeperf_shards_vectorised_total 1" in metrics
    assert "teeperf_shards_fallback_total 0" in metrics

    report = stats.report()
    assert "(engine=vector)" in report
    assert "shards vectorised: 1" in report

    registry = MetricRegistry()
    PipelineSampler(stats).sample(registry)
    assert registry.value("pipeline_shards_vectorised_total") == 1
    assert registry.value("pipeline_shards_fallback_total") == 0
    assert registry.value("pipeline_vectorised") == 1


def test_query_session_frames_are_lazy(image):
    events = [(KIND_CALL, 0, 0, 1), (KIND_RET, 0, 50, 1)]
    analysis = Analyzer(image).analyze(build_log(image, events))
    session = QuerySession(analysis)
    assert session._records_frame is None
    assert session._methods_frame is None
    session.hottest(1)  # touches only the methods frame
    assert session._records_frame is None
    assert session._methods_frame is not None
    assert len(session.records) == 1  # now the records frame builds
    assert session._records_frame is not None
