"""Rev 1.2 compressed columnar images: codec bijections, the
identity oracle, and block-exact salvage.

The contract under test (docs/log-format.md "Compressed columnar
images"):

* every column codec round-trips any u64 sequence exactly — empty
  streams, max-u64 values, non-monotonic regressions, single values
  (hypothesis, with the adversarial cases pinned as examples);
* ``decode(encode(log))`` is the *identity* on the entry sequence
  with ``sort_by_thread=False`` — whatever the block size, including
  single-entry blocks — and preserves per-thread order exactly under
  the default thread sort;
* the strict reader rejects damage with :class:`LogFormatError`,
  while salvage quarantines **exactly** the damaged block (reason
  ``crc-mismatch``) or the truncated tail, with
  ``salvaged + quarantined == tail`` in every case.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.api import SharedLog, recover_log
from repro.core import KIND_CALL, KIND_RET
from repro.core.columnar import (
    ColumnarLog,
    decode_delta,
    decode_dictionary,
    decode_log,
    decode_varint,
    encode_delta,
    encode_dictionary,
    encode_log,
    encode_varint,
)
from repro.core.errors import LogFormatError
from repro.core.recovery import REASON_CRC, REASON_TRUNCATED

U64_MAX = (1 << 64) - 1

u64 = st.integers(min_value=0, max_value=U64_MAX)
u64_lists = st.lists(u64, max_size=64)


# ---------------------------------------------------------------------------
# Column codecs are bijections on u64 sequences


@given(u64_lists)
@example([])  # the empty shard
@example([U64_MAX])  # single max-u64 value
@example([U64_MAX, 0, U64_MAX, 1])  # wraparound deltas both ways
def test_varint_roundtrip(values):
    assert list(decode_varint(encode_varint(values), len(values))) \
        == values


@given(u64_lists)
@example([])
@example([U64_MAX])  # max-u64 counter
@example([5, 4, 3, U64_MAX, 0])  # non-monotonic regressions
@example([0, U64_MAX, 0])  # full-range swings
def test_delta_roundtrip(values):
    assert list(decode_delta(encode_delta(values), len(values))) \
        == values


@given(u64_lists)
@example([])
@example([U64_MAX] * 3)
@example([7, 0, 7, U64_MAX, 0])
def test_dictionary_roundtrip(values):
    packed = encode_dictionary(values)
    assert list(decode_dictionary(packed, len(values))) == values
    # The alphabet is stored once: repeating a column barely grows it.
    if len(set(values)) == 1 and len(values) > 1:
        assert len(packed) < len(encode_varint(values)) + 32


def test_varint_stream_must_match_count_exactly():
    stream = encode_varint([1, 2, 3])
    with pytest.raises(LogFormatError):
        decode_varint(stream, 2)  # more values than claimed
    with pytest.raises(LogFormatError):
        decode_varint(stream, 4)  # fewer values than claimed
    with pytest.raises(LogFormatError):
        decode_varint(stream[:-1], 3)  # dangling continuation bit
    with pytest.raises(LogFormatError):
        decode_varint(b"\xff" * 11, 1)  # over-long varint


# ---------------------------------------------------------------------------
# Whole-image identity oracle


entry_lists = st.lists(
    st.tuples(
        st.integers(0, 1),  # kind
        st.integers(0, (1 << 63) - 1),  # counter (63-bit field)
        st.integers(0x1000, 0x1000 + 40),  # addr: small alphabet
        st.integers(0, 5),  # tid
    ),
    max_size=40,
)


def _fill(events, version=1):
    log = SharedLog.create(max(1, len(events)), version=version)
    for kind, counter, addr, tid in events:
        log.append(kind, counter, addr, tid)
    log._store_tail()
    return log


@settings(deadline=None, max_examples=40)
@given(entry_lists, st.sampled_from([1, 3, 65536]))
@example([], 1)  # empty shard
@example([(0, 5, 0x1000, 1)], 1)  # single-entry block
def test_identity_oracle(events, block_entries):
    """decode . encode == identity on the entry sequence, entry for
    entry, at every block size (1 == single-entry blocks)."""
    log = _fill(events)
    image = encode_log(
        log, block_entries=block_entries, sort_by_thread=False
    )
    col = ColumnarLog(image)
    assert len(col) == len(log)
    assert list(col) == list(log)
    # The convert-back path restores a fixed-width log with the same
    # entries and header identity.
    back = decode_log(image)
    assert list(back) == list(log)
    assert (back.version, back.pid, back.profiler_addr) == (
        log.version, log.pid, log.profiler_addr
    )


@settings(deadline=None, max_examples=25)
@given(entry_lists)
def test_thread_sort_preserves_per_thread_order(events):
    log = _fill(events)
    col = ColumnarLog(encode_log(log, sort_by_thread=True))
    for tid in {e[3] for e in events}:
        assert [e for e in col if e.tid == tid] == [
            e for e in log if e.tid == tid
        ]


def test_v2_call_sites_roundtrip():
    log = SharedLog.create(8, version=2)
    for i in range(8):
        log.append(KIND_CALL, i, 0x2000 + i, 1, call_site=0x9000 + i)
    log._store_tail()
    col = ColumnarLog(encode_log(log, sort_by_thread=False))
    assert col.version == 2 and col.entry_size == 32
    assert list(col) == list(log)


def test_empty_log_roundtrip():
    log = SharedLog.create(4)
    image = encode_log(log)
    col = ColumnarLog(image)
    assert len(col) == 0 and col.block_count == 0
    assert list(col) == []
    assert len(col.columns()) == 0
    assert len(decode_log(image)) == 0


def test_single_entry_blocks_make_one_block_per_entry():
    log = _fill([(0, i, 0x1000, 1) for i in range(5)])
    col = ColumnarLog(encode_log(log, block_entries=1,
                                 sort_by_thread=False))
    assert col.block_count == 5
    assert list(col) == list(log)


def test_compression_on_the_call_return_shape():
    """The format's reason to exist: a plausible call/return log
    shrinks well past the gated 3x on fixed-width bytes."""
    log = SharedLog.create(4096)
    for i in range(2048):
        log.append(KIND_CALL, i * 3, 0x1000 + (i % 7) * 64, 1 + i % 4)
        log.append(KIND_RET, i * 3 + 1, 0x1000 + (i % 7) * 64,
                   1 + i % 4)
    log._store_tail()
    image = encode_log(log)
    assert len(log.to_bytes()) / len(image) >= 3.0


# ---------------------------------------------------------------------------
# Strict reading vs salvage of damaged images


def _blocked_image(n_blocks=3, per_block=100):
    events = [
        (i % 2, i, 0x1000 + (i % 5) * 64, 1)
        for i in range(n_blocks * per_block)
    ]
    log = _fill(events)
    return log, encode_log(
        log, block_entries=per_block, sort_by_thread=False
    )


def test_strict_reader_raises_on_crc_damage():
    log, image = _blocked_image()
    col = ColumnarLog(image)
    damaged = bytearray(image)
    damaged[col._blocks[1][0] + 5] ^= 0xFF
    with pytest.raises(LogFormatError, match="CRC mismatch"):
        list(ColumnarLog(bytes(damaged)))


def test_corruption_quarantines_exactly_the_damaged_block():
    log, image = _blocked_image(n_blocks=3, per_block=100)
    col = ColumnarLog(image)
    damaged = bytearray(image)
    damaged[col._blocks[1][0] + 5] ^= 0xFF  # inside block 1's payload

    salvaged, report = recover_log(bytes(damaged))
    assert report.crc_failures == 1
    assert report.entries_salvaged == 200
    assert report.entries_quarantined == 100
    assert report.entries_salvaged + report.entries_quarantined \
        == report.tail  # nothing silently dropped
    [bad] = report.quarantined
    assert (bad.start, bad.count, bad.reason) == (100, 100, REASON_CRC)
    # Every healthy block survives verbatim — including the one
    # *after* the damage (payload_len lets the scan skip the wreck).
    entries = list(log)
    assert list(salvaged) == entries[:100] + entries[200:]


def test_truncation_quarantines_the_missing_tail():
    log, image = _blocked_image(n_blocks=3, per_block=100)
    col = ColumnarLog(image)
    # Cut mid-way through block 2's payload.
    cut = image[: col._blocks[2][0] + 10]

    salvaged, report = recover_log(cut)
    assert report.entries_salvaged == 200
    assert list(salvaged) == list(log)[:200]
    [tail] = report.quarantined
    assert (tail.start, tail.count, tail.reason) == (
        200, 100, REASON_TRUNCATED
    )
    assert report.entries_salvaged + report.entries_quarantined \
        == report.tail


def test_not_compressed_image_is_rejected():
    log = _fill([(0, 1, 0x1000, 1)])
    with pytest.raises(LogFormatError, match="FLAG_COMPRESSED"):
        ColumnarLog(log.to_bytes())
