"""Differential tests: streaming analyzer vs the batch oracle.

The streaming pipeline (chunked ingestion + sharded, optionally
parallel reconstruction + LRU symbolisation) must be byte-for-byte
equivalent to the original single-pass batch analyzer on every log the
repository knows how to produce — v1 and v2, single- and multi-thread,
truncated, dismissed, relocated and unknown-address logs.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Analyzer, SharedLog
from repro.core import KIND_CALL, KIND_RET, LogStream, PipelineStats, to_json
from repro.core.log import VERSION_2
from repro.symbols import BinaryImage, CachedResolver


@pytest.fixture
def image():
    img = BinaryImage("app")
    for name in ("main", "work", "leaf", "spin"):
        img.add_function(name, size=64)
    return img


def addr(image, name):
    return image.symtab.by_name(name).addr


def make_log(image, events, capacity=4096, version=None):
    kwargs = {"profiler_addr": image.profiler_addr}
    if version is not None:
        kwargs["version"] = version
    log = SharedLog.create(capacity, **kwargs)
    for kind, name, counter, tid, *rest in events:
        call_site = addr(image, rest[0]) if rest else 0
        log.append(kind, counter, addr(image, name), tid, call_site=call_site)
    return log


def fixture_logs(image):
    """Every analyzer-relevant log shape the existing tests exercise."""
    nested = [
        (KIND_CALL, "main", 0, 1),
        (KIND_CALL, "work", 10, 1),
        (KIND_CALL, "leaf", 20, 1),
        (KIND_RET, "leaf", 30, 1),
        (KIND_RET, "work", 90, 1),
        (KIND_RET, "main", 100, 1),
    ]
    multithread = [
        (KIND_CALL, "main", 0, 1),
        (KIND_CALL, "work", 0, 2),
        (KIND_CALL, "leaf", 5, 3),
        (KIND_RET, "main", 50, 1),
        (KIND_RET, "leaf", 60, 3),
        (KIND_RET, "work", 80, 2),
    ]
    truncated = [
        (KIND_CALL, "main", 0, 1),
        (KIND_CALL, "work", 10, 1),
        (KIND_RET, "work", 30, 1),
        # main never returns.
    ]
    unmatched = [
        (KIND_RET, "leaf", 5, 1),
        (KIND_CALL, "main", 10, 1),
        (KIND_RET, "main", 20, 1),
    ]
    deep_close = [
        (KIND_CALL, "main", 0, 1),
        (KIND_CALL, "work", 10, 1),
        (KIND_RET, "main", 50, 1),  # closes work as truncated first
    ]
    recursion = [
        (KIND_CALL, "work", 0, 1),
        (KIND_CALL, "work", 10, 1),
        (KIND_RET, "work", 20, 1),
        (KIND_RET, "work", 40, 1),
    ]
    logs = {
        "nested-v1": make_log(image, nested),
        "multithread-v1": make_log(image, multithread),
        "truncated-v1": make_log(image, truncated),
        "unmatched-v1": make_log(image, unmatched),
        "deep-close-v1": make_log(image, deep_close),
        "recursion-v1": make_log(image, recursion),
        "nested-v2": make_log(image, nested, version=VERSION_2),
        "multithread-v2": make_log(image, multithread, version=VERSION_2),
    }
    # v2 with call sites, one of them deliberately wrong.
    logs["callsites-v2"] = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 10, 1, "main"),
            (KIND_CALL, "leaf", 20, 1, "spin"),  # mismatch
            (KIND_RET, "leaf", 30, 1),
            (KIND_RET, "work", 40, 1),
            (KIND_RET, "main", 50, 1),
        ],
        version=VERSION_2,
    )
    # Unknown addresses (outside every function).
    unknown = SharedLog.create(16, profiler_addr=image.profiler_addr)
    unknown.append(KIND_CALL, 0, 0xDEAD0000, 1)
    unknown.append(KIND_RET, 7, 0xDEAD0000, 1)
    logs["unknown-v1"] = unknown
    # A relocated (ASLR) log.
    loaded = image.load(aslr_seed=99)
    relocated = SharedLog.create(16, profiler_addr=loaded.profiler_addr)
    for kind, name, counter, tid in nested:
        relocated.append(
            kind, counter, loaded.runtime_addr(addr(image, name)), tid
        )
    logs["relocated-v1"] = relocated
    # A log that overflowed: capacity 4, six events.
    logs["overflowed-v1"] = make_log(image, nested, capacity=4)
    # An empty log.
    logs["empty-v1"] = SharedLog.create(8, profiler_addr=image.profiler_addr)
    return logs


def assert_equivalent(batch, streamed):
    """Byte-for-byte: records, aggregates and meta all identical."""
    assert streamed.records == batch.records
    assert streamed.unmatched_returns == batch.unmatched_returns
    assert streamed.meta == batch.meta
    batch_json = json.loads(to_json(batch))
    stream_json = json.loads(to_json(streamed))
    # The pipeline block legitimately differs (jobs, chunk counts).
    batch_json.pop("pipeline")
    stream_json.pop("pipeline")
    assert stream_json == batch_json


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("chunk_size", [1, 3, None])
def test_streaming_matches_batch_on_all_fixtures(image, jobs, chunk_size):
    for name, log in fixture_logs(image).items():
        analyzer = Analyzer(image)
        batch = analyzer.analyze_batch(log)
        streamed = analyzer.analyze(log, jobs=jobs, chunk_size=chunk_size)
        assert_equivalent(batch, streamed)


@pytest.mark.parametrize("jobs", [1, 4])
def test_streaming_matches_batch_from_disk(image, tmp_path, jobs):
    """Persisted logs analyze identically through the mmap stream."""
    for name, log in fixture_logs(image).items():
        path = tmp_path / f"{name}.teeperf"
        log.dump(str(path))
        analyzer = Analyzer(image)
        batch = analyzer.analyze_batch(SharedLog.load(str(path)))
        streamed = analyzer.analyze(str(path), jobs=jobs, chunk_size=2)
        assert_equivalent(batch, streamed)


@st.composite
def _multithread_trace(draw):
    """Random well-nested traces over several interleaved threads."""
    names = ["main", "work", "leaf", "spin"]
    events = []
    stacks = {tid: [] for tid in (1, 2, 3)}
    counter = 0
    for _ in range(draw(st.integers(min_value=1, max_value=60))):
        counter += draw(st.integers(min_value=1, max_value=20))
        tid = draw(st.sampled_from([1, 2, 3]))
        stack = stacks[tid]
        if stack and (len(stack) >= 5 or draw(st.booleans())):
            events.append((KIND_RET, stack.pop(), counter, tid))
        else:
            name = draw(st.sampled_from(names))
            stack.append(name)
            events.append((KIND_CALL, name, counter, tid))
    # Leave some stacks open on purpose: truncation must match too.
    return events


@settings(max_examples=40, deadline=None)
@given(events=_multithread_trace(), jobs=st.sampled_from([1, 3]))
def test_streaming_matches_batch_property(events, jobs):
    image = BinaryImage("app")
    for name in ("main", "work", "leaf", "spin"):
        image.add_function(name, size=64)
    log = SharedLog.create(256, profiler_addr=image.profiler_addr)
    for kind, name, counter, tid in events:
        log.append(kind, counter, image.symtab.by_name(name).addr, tid)
    analyzer = Analyzer(image)
    assert_equivalent(
        analyzer.analyze_batch(log),
        analyzer.analyze(log, jobs=jobs, chunk_size=7),
    )


# ----------------------------------------------------------------------
# The observability surface


def test_pipeline_stats_counters(image):
    events = [
        (KIND_RET, "leaf", 5, 1),  # dismissed
        (KIND_CALL, "main", 10, 1),
        (KIND_CALL, "work", 20, 1),
        (KIND_RET, "work", 30, 1),
        (KIND_CALL, "work", 40, 2),  # truncated (never returns)
        (KIND_RET, "main", 50, 1),
    ]
    log = make_log(image, events)
    analysis = Analyzer(image).analyze(log, jobs=2, chunk_size=4)
    stats = analysis.pipeline
    assert stats.entries_ingested == 6
    assert stats.entries_dismissed == 1
    assert stats.frames_truncated == 1
    assert stats.chunks_processed == 2  # 6 entries in chunks of 4
    assert stats.shards_analyzed == 2
    assert stats.jobs == 2
    assert stats.chunk_size == 4
    assert stats.counter_span == 45  # 5 .. 50
    assert stats.ingest_rate == pytest.approx(6 / 45)
    # Three distinct addresses, five resolutions -> the cache hit.
    assert stats.cache_misses == 2  # main, work (leaf return dismissed)
    assert stats.cache_hits >= 1
    assert 0.0 < stats.cache_hit_rate < 1.0
    text = stats.report()
    assert "entries ingested:  6" in text
    assert "jobs=2" in text


def test_pipeline_stats_merge_and_dict():
    a = PipelineStats(entries_ingested=10, cache_hits=8, cache_misses=2)
    b = PipelineStats(entries_ingested=5, jobs=4, chunk_size=64)
    a.merge(b)
    assert a.entries_ingested == 15
    assert a.jobs == 4  # configuration: keep the wider
    assert a.chunk_size == 64
    d = a.to_dict()
    assert d["entries_ingested"] == 15
    assert d["cache_hit_rate"] == pytest.approx(0.8)
    assert d["ingest_rate"] == 0.0  # empty span


def test_empty_log_has_zero_rates(image):
    log = SharedLog.create(8, profiler_addr=image.profiler_addr)
    analysis = Analyzer(image).analyze(log)
    assert analysis.pipeline.entries_ingested == 0
    assert analysis.pipeline.ingest_rate == 0.0
    assert analysis.pipeline.cache_hit_rate == 0.0


def test_recorder_stats_thread_through_facade():
    """entries_dropped flows recorder -> analyzer -> analysis.pipeline."""
    from repro.api import TEEPerf
    from repro.core import symbol

    class App:
        @symbol("app::Main()")
        def main(self):
            for _ in range(8):
                self.step()

        @symbol("app::Step()")
        def step(self):
            pass

    # Capacity 8 cannot hold 18 events: the rest are dropped.
    perf = TEEPerf.live(capacity=8)
    app = App()
    perf.compile_instance(app)
    perf.record(app.main)
    try:
        analysis = perf.analyze(jobs=2)
    finally:
        perf.uninstrument()
    stats = analysis.pipeline
    assert stats.entries_dropped == 10
    assert stats.entries_ingested == 8
    assert stats.jobs == 2


# ----------------------------------------------------------------------
# LogStream


def test_logstream_header_and_iteration(image, tmp_path):
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_RET, "main", 9, 1),
        ],
        version=VERSION_2,
    )
    path = tmp_path / "v2.teeperf"
    log.dump(str(path))
    with LogStream.open(str(path), chunk_size=1) as stream:
        assert stream.version == VERSION_2
        assert stream.capacity == 4096
        assert stream.profiler_addr == log.profiler_addr
        assert stream.multithread
        assert len(stream) == 2
        chunks = list(stream.chunks())
        assert [len(c) for c in chunks] == [1, 1]
        assert list(stream) == list(log)


def test_logstream_rejects_garbage(tmp_path):
    from repro.core.errors import LogFormatError

    path = tmp_path / "junk.teeperf"
    path.write_bytes(b"this is not a teeperf log, not even close....." * 4)
    with pytest.raises(LogFormatError):
        LogStream.open(str(path))


def test_logstream_short_file_clips_entries(image, tmp_path):
    """A snapshot cut mid-entry exposes only the complete entries."""
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_RET, "main", 9, 1),
        ],
    )
    data = log.to_bytes()
    cut = data[: 64 + 24 + 12]  # header + entry 0 + half of entry 1
    path = tmp_path / "cut.teeperf"
    path.write_bytes(cut)
    with LogStream.open(str(path)) as stream:
        assert len(stream) == 1
        assert [e.counter for e in stream] == [0]


def test_sharedlog_iter_chunks_matches_iter(image):
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 5, 1),
            (KIND_RET, "work", 8, 1),
            (KIND_RET, "main", 20, 1),
            (KIND_CALL, "leaf", 25, 2),
        ],
    )
    flattened = [e for chunk in log.iter_chunks(2) for e in chunk]
    assert flattened == list(log)
    assert [len(c) for c in log.iter_chunks(2)] == [2, 2, 1]
    with pytest.raises(ValueError):
        list(log.iter_chunks(0))


# ----------------------------------------------------------------------
# The symbol-resolution LRU


def test_cached_resolver_counts_and_evicts(image):
    cache = CachedResolver(image.symtab, maxsize=2)
    a = addr(image, "main")
    b = addr(image, "work")
    c = addr(image, "leaf")
    assert cache.resolve(a).name == "main"
    assert cache.resolve(a).name == "main"
    assert (cache.hits, cache.misses) == (1, 1)
    cache.resolve(b)
    cache.resolve(c)  # evicts `a` (maxsize 2)
    assert len(cache) == 2
    cache.resolve(a)
    assert cache.misses == 4
    # Misses are cached too.
    assert cache.resolve(0xDEAD0000) is None
    assert cache.resolve(0xDEAD0000) is None
    assert cache.hits == 2
    assert 0.0 < cache.hit_rate < 1.0


def test_analyzer_rejects_bad_jobs(image):
    from repro.core.errors import AnalyzerError

    log = SharedLog.create(8, profiler_addr=image.profiler_addr)
    with pytest.raises(AnalyzerError):
        Analyzer(image).analyze(log, jobs=0)
