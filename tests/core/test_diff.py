"""Tests for differential profiling (the before/after workflow)."""

import pytest

from repro.api import Analyzer, SharedLog
from repro.core import AnalysisDiff, KIND_CALL, KIND_RET
from repro.symbols import BinaryImage


def build_analysis(spans):
    """spans: [(name, enter, exit)] on one thread; nesting by order."""
    image = BinaryImage("app")
    for name in {name for name, *_ in spans}:
        image.add_function(name, size=64)

    def addr(name):
        return image.symtab.by_name(name).addr

    log = SharedLog.create(256, profiler_addr=image.profiler_addr)
    events = []
    for name, enter, exit_ in spans:
        events.append((enter, KIND_CALL, name))
        events.append((exit_, KIND_RET, name))
    for t, kind, name in sorted(events, key=lambda e: (e[0], e[1])):
        log.append(kind, t, addr(name), 1)
    return Analyzer(image).analyze(log)


@pytest.fixture
def before():
    # getpid dominates: 70 of 100 ticks.
    return build_analysis(
        [("main", 0, 100), ("getpid", 10, 80), ("io", 82, 95)]
    )


@pytest.fixture
def after():
    # getpid cached away: io takes over in a 40-tick run.
    return build_analysis([("main", 0, 40), ("io", 5, 35)])


def test_deltas_ranked_by_magnitude(before, after):
    diff = AnalysisDiff(before, after)
    top = diff.deltas()[0]
    assert top.method == "getpid"
    assert top.delta == pytest.approx(-0.70)


def test_improvements_and_regressions(before, after):
    diff = AnalysisDiff(before, after)
    improved = [d.method for d in diff.improvements(3)]
    regressed = [d.method for d in diff.regressions(3)]
    assert improved[0] == "getpid"
    assert "io" in regressed  # its *share* grew


def test_vanished_and_appeared_flags(before, after):
    diff = AnalysisDiff(before, after)
    assert diff.delta_for("getpid").vanished
    reverse = AnalysisDiff(after, before)
    assert reverse.delta_for("getpid").appeared


def test_delta_for_unknown_method(before, after):
    with pytest.raises(KeyError):
        AnalysisDiff(before, after).delta_for("nope")


def test_report_marks_gone_methods(before, after):
    report = AnalysisDiff(before, after).report()
    assert "getpid" in report
    assert "[gone]" in report
    assert "%" in report


def test_differential_flamegraph_colours(before, after):
    diff = AnalysisDiff(before, after)
    graph = diff.flamegraph()
    assert graph.palette is not None
    svg = graph.to_svg()
    # io grew (red-ish), main is still there; getpid is absent from the
    # after graph entirely.
    assert "io" in svg
    assert "getpid" not in svg
    colors = {
        node.name: graph.palette(node) for _, _, node in graph.frames()
    }
    red = colors["io"]
    r, g, b = (int(x) for x in red[4:-1].split(","))
    assert r > b  # grew -> red side


def test_shares_are_length_invariant(before):
    # Diffing a profile against a 2x-longer copy of itself: no deltas.
    double = build_analysis(
        [("main", 0, 200), ("getpid", 20, 160), ("io", 164, 190)]
    )
    diff = AnalysisDiff(before, double)
    assert all(abs(d.delta) < 0.02 for d in diff.deltas())
