"""The columnar decode path: LogColumns / decode_columns / open_log.

The bulk reader must agree entry-for-entry with the object-at-a-time
decode on every log shape, keep working without numpy (the list
fallback), and — when fed from an mmap-backed LogStream — never pin
the mapping (columns are copies there, so ``close`` always succeeds).
"""

import pytest

from repro.api import SharedLog, open_log
from repro.core import DEFAULT_MMAP_THRESHOLD, KIND_CALL, KIND_RET, LogStream
from repro.core.log import VERSION_2, decode_columns


def sample_log(version=None, n=10):
    kwargs = {"version": version} if version is not None else {}
    log = SharedLog.create(64, **kwargs)
    for i in range(n):
        kind = KIND_CALL if i % 2 == 0 else KIND_RET
        log.append(kind, i * 3, 0x1000 + i * 16, 1 + i % 3, call_site=i)
    log._store_tail()
    return log


@pytest.mark.parametrize("version", [None, VERSION_2])
def test_columns_match_entry_decode(version):
    log = sample_log(version)
    cols = log.columns()
    assert len(cols) == len(log)
    assert cols.entries() == list(log)
    kinds, counters, addrs, tids, call_sites = cols.as_lists()
    expected = list(log)
    assert kinds == [e.kind for e in expected]
    assert counters == [e.counter for e in expected]
    assert addrs == [e.addr for e in expected]
    assert tids == [e.tid for e in expected]
    if version == VERSION_2:
        assert call_sites == [e.call_site for e in expected]
    else:
        assert call_sites is None


def test_columns_are_plain_ints():
    """as_lists yields Python ints — consumers hash/compare them
    against LogEntry fields without numpy scalar surprises."""
    cols = sample_log().columns()
    kinds, counters, addrs, tids, _ = cols.as_lists()
    for lst in (kinds, counters, addrs, tids):
        assert all(type(x) is int for x in lst)


def test_counter_bounds_and_empty_span():
    log = sample_log(n=5)
    assert log.columns().counter_bounds() == (0, 12)
    empty = SharedLog.create(4)
    assert empty.columns().counter_bounds() is None
    assert len(empty.columns()) == 0
    assert empty.columns().entries() == []


def test_column_chunks_cover_log_in_order():
    log = sample_log(n=10)
    spans = list(log.iter_column_chunks(4))
    assert [len(s) for s in spans] == [4, 4, 2]
    assert [s.start for s in spans] == [0, 4, 8]
    flattened = [e for s in spans for e in s.entries()]
    assert flattened == list(log)
    with pytest.raises(ValueError):
        list(log.iter_column_chunks(0))


def test_kind_bit_survives_large_counters():
    """The kind bit (bit 63) must split cleanly from 63-bit counters."""
    log = SharedLog.create(8)
    big = (1 << 63) - 1
    log.append(KIND_RET, big, 0xAAAA, 9)
    log.append(KIND_CALL, big - 1, 0xBBBB, 9)
    cols = log.columns()
    kinds, counters, _, _, _ = cols.as_lists()
    assert kinds == [KIND_RET, KIND_CALL]
    assert counters == [big, big - 1]


def test_list_fallback_matches_numpy(monkeypatch):
    """With numpy gone the decode degrades to lists, not to wrong."""
    import repro.core.log as logmod

    log = sample_log(VERSION_2)
    with_np = log.columns().as_lists()
    monkeypatch.setattr(logmod, "_np", None)
    without_np = log.columns()
    assert isinstance(without_np.kind, list)
    assert without_np.as_lists() == with_np
    assert without_np.entries() == list(log)


# ----------------------------------------------------------------------
# LogStream columns and open_log


def test_stream_columns_do_not_pin_the_mmap(tmp_path):
    log = sample_log(VERSION_2)
    path = tmp_path / "run.teeperf"
    log.dump(str(path))
    stream = LogStream.open(str(path))
    held = list(stream.column_chunks(3))  # survive close on purpose
    whole = stream.columns()
    stream.close()  # must not raise "exported pointers exist"
    flattened = [e for s in held for e in s.entries()]
    assert flattened == list(log)
    assert whole.entries() == list(log)


def test_open_log_picks_by_size(tmp_path):
    log = sample_log()
    small = tmp_path / "small.teeperf"
    log.dump(str(small))
    opened = open_log(str(small))
    assert isinstance(opened, SharedLog)
    streamed = open_log(str(small), mmap_threshold=0)
    try:
        assert isinstance(streamed, LogStream)
        assert list(streamed) == list(log)
    finally:
        streamed.close()
    assert small.stat().st_size < DEFAULT_MMAP_THRESHOLD


def test_open_log_threshold_boundary(tmp_path):
    log = sample_log()
    path = tmp_path / "run.teeperf"
    log.dump(str(path))
    size = path.stat().st_size
    at = open_log(str(path), mmap_threshold=size)
    try:
        assert isinstance(at, LogStream)  # >= threshold streams
    finally:
        at.close()
    assert isinstance(
        open_log(str(path), mmap_threshold=size + 1), SharedLog
    )
