"""Unit tests for the analyzer (stage 3) on hand-built logs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Analyzer, SharedLog
from repro.core import KIND_CALL, KIND_RET
from repro.core.errors import AnalyzerError
from repro.symbols import BinaryImage, mangle


@pytest.fixture
def image():
    img = BinaryImage("app")
    for name in ("main", "work", "leaf"):
        img.add_function(name, size=64)
    return img


def addr(image, name):
    return image.symtab.by_name(name).addr


def make_log(image, events, capacity=256):
    log = SharedLog.create(capacity, profiler_addr=image.profiler_addr)
    for kind, name, counter, tid in events:
        log.append(kind, counter, addr(image, name), tid)
    return log


def test_inclusive_and_exclusive_times(image):
    # main [0..100] calls work [10..90] calls leaf [20..30].
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 10, 1),
            (KIND_CALL, "leaf", 20, 1),
            (KIND_RET, "leaf", 30, 1),
            (KIND_RET, "work", 90, 1),
            (KIND_RET, "main", 100, 1),
        ],
    )
    analysis = Analyzer(image).analyze(log)
    assert analysis.method("main").inclusive == 100
    assert analysis.method("main").exclusive == 20  # 100 - 80
    assert analysis.method("work").inclusive == 80
    assert analysis.method("work").exclusive == 70
    assert analysis.method("leaf").exclusive == 10
    assert analysis.total_exclusive() == 100


def test_sibling_calls_accumulate(image):
    events = [(KIND_CALL, "main", 0, 1)]
    t = 10
    for _ in range(3):
        events.append((KIND_CALL, "leaf", t, 1))
        events.append((KIND_RET, "leaf", t + 5, 1))
        t += 10
    events.append((KIND_RET, "main", 100, 1))
    analysis = Analyzer(image).analyze(make_log(image, events))
    leaf = analysis.method("leaf")
    assert leaf.calls == 3
    assert leaf.inclusive == 15
    assert leaf.min_inclusive == 5
    assert leaf.max_inclusive == 5
    assert analysis.method("main").exclusive == 85


def test_threads_analyzed_independently(image):
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 0, 2),
            (KIND_RET, "main", 50, 1),
            (KIND_RET, "work", 80, 2),
        ],
    )
    analysis = Analyzer(image).analyze(log)
    assert analysis.threads() == [1, 2]
    assert analysis.method("main").inclusive == 50
    assert analysis.method("work").inclusive == 80
    assert analysis.method("main").threads == {1}


def test_recursion_matches_innermost_first(image):
    log = make_log(
        image,
        [
            (KIND_CALL, "work", 0, 1),
            (KIND_CALL, "work", 10, 1),
            (KIND_RET, "work", 20, 1),
            (KIND_RET, "work", 40, 1),
        ],
    )
    analysis = Analyzer(image).analyze(log)
    work = analysis.method("work")
    assert work.calls == 2
    assert work.inclusive == 50  # 10 inner + 40 outer
    assert work.exclusive == 40  # outer contributes 30, inner 10
    depths = sorted(r.depth for r in analysis.records)
    assert depths == [0, 1]


def test_truncated_calls_closed_at_last_counter(image):
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 10, 1),
            (KIND_RET, "work", 30, 1),
            # main never returns: log filled up / app still running.
        ],
    )
    analysis = Analyzer(image).analyze(log)
    assert analysis.truncated_calls() == 1
    main = analysis.method("main")
    assert main.inclusive == 30


def test_unmatched_return_dismissed(image):
    log = make_log(
        image,
        [
            (KIND_RET, "leaf", 5, 1),  # tracing was off during the call
            (KIND_CALL, "main", 10, 1),
            (KIND_RET, "main", 20, 1),
        ],
    )
    analysis = Analyzer(image).analyze(log)
    assert analysis.unmatched_returns == 1
    assert analysis.method("main").calls == 1


def test_return_matching_deeper_frame_closes_intermediates(image):
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 10, 1),
            # work's return was lost (paused tracing); main returns.
            (KIND_RET, "main", 50, 1),
        ],
    )
    analysis = Analyzer(image).analyze(log)
    assert analysis.method("work").calls == 1
    assert analysis.truncated_calls() == 1
    assert analysis.method("main").calls == 1
    assert analysis.unmatched_returns == 0


def test_relocated_log_resolves_via_profiler_addr(image):
    loaded = image.load(aslr_seed=99)
    log = SharedLog.create(16, profiler_addr=loaded.profiler_addr)
    log.append(KIND_CALL, 0, loaded.runtime_addr(addr(image, "main")), 1)
    log.append(KIND_RET, 10, loaded.runtime_addr(addr(image, "main")), 1)
    analysis = Analyzer(image).analyze(log)
    assert analysis.method("main").inclusive == 10


def test_unknown_addresses_bucketed(image):
    log = SharedLog.create(16, profiler_addr=image.profiler_addr)
    log.append(KIND_CALL, 0, 0xDEAD0000, 1)
    log.append(KIND_RET, 7, 0xDEAD0000, 1)
    analysis = Analyzer(image).analyze(log)
    assert analysis.methods()[0].method.startswith("[unknown")


def test_paths_and_folded(image):
    log = make_log(
        image,
        [
            (KIND_CALL, "main", 0, 1),
            (KIND_CALL, "work", 10, 1),
            (KIND_CALL, "leaf", 20, 1),
            (KIND_RET, "leaf", 30, 1),
            (KIND_RET, "work", 90, 1),
            (KIND_RET, "main", 100, 1),
        ],
    )
    analysis = Analyzer(image).analyze(log)
    folded = analysis.folded()
    assert folded[("main", "work", "leaf")] == 10
    assert folded[("main", "work")] == 70
    assert folded[("main",)] == 20


def test_analyze_accepts_bytes_and_path(image, tmp_path):
    log = make_log(
        image,
        [(KIND_CALL, "main", 0, 1), (KIND_RET, "main", 9, 1)],
    )
    path = tmp_path / "log.teeperf"
    log.dump(path)
    from_bytes = Analyzer(image).analyze(log.to_bytes())
    from_path = Analyzer(image).analyze(str(path))
    assert from_bytes.method("main").inclusive == 9
    assert from_path.method("main").inclusive == 9
    with pytest.raises(AnalyzerError):
        Analyzer(image).analyze(12345)


def test_report_text(image):
    log = make_log(
        image,
        [(KIND_CALL, "main", 0, 1), (KIND_RET, "main", 9, 1)],
    )
    analysis = Analyzer(image).analyze(log)
    text = analysis.report()
    assert "main" in text
    assert "100.00%" in text


def test_method_lookup_miss(image):
    log = make_log(image, [(KIND_CALL, "main", 0, 1), (KIND_RET, "main", 1, 1)])
    analysis = Analyzer(image).analyze(log)
    with pytest.raises(AnalyzerError):
        analysis.method("nope")


def test_to_ns_scaling(image):
    log = make_log(image, [(KIND_CALL, "main", 0, 1), (KIND_RET, "main", 8, 1)])
    analysis = Analyzer(image, tick_ns=2.5).analyze(log)
    assert analysis.to_ns(analysis.method("main").inclusive) == 20.0


@st.composite
def _balanced_trace(draw):
    """Random well-nested call/return sequence over 3 functions."""
    names = ["main", "work", "leaf"]
    events = []
    stack = []
    counter = 0
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        counter += draw(st.integers(min_value=1, max_value=50))
        if stack and (len(stack) >= 6 or draw(st.booleans())):
            events.append((KIND_RET, stack.pop(), counter, 1))
        else:
            name = draw(st.sampled_from(names))
            stack.append(name)
            events.append((KIND_CALL, name, counter, 1))
    while stack:
        counter += 1
        events.append((KIND_RET, stack.pop(), counter, 1))
    return events


@settings(max_examples=50, deadline=None)
@given(events=_balanced_trace())
def test_time_conservation_property(events):
    """Sum of exclusive times equals the root spans' inclusive time."""
    image = BinaryImage("app")
    for name in ("main", "work", "leaf"):
        image.add_function(name, size=64)
    analysis = Analyzer(image).analyze(make_log(image, events, capacity=512))
    roots = [r for r in analysis.records if r.depth == 0]
    assert analysis.total_exclusive() == sum(r.inclusive for r in roots)
    # No negative times, ever.
    assert all(r.exclusive >= 0 and r.inclusive >= 0 for r in analysis.records)
    # Every call produced exactly one record.
    calls = sum(1 for kind, *_ in events if kind == KIND_CALL)
    assert len(analysis.records) == calls
