"""Property tests on the cost model's structural invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine
from repro.tee import ALL_PLATFORMS, NATIVE, make_env

_PLATFORMS = (NATIVE,) + ALL_PLATFORMS


def charge(platform, actions):
    machine = Machine(cores=8)
    env = make_env(machine, platform)

    def main():
        for action, arg in actions:
            if action == "compute":
                env.compute(arg)
            elif action == "read":
                env.mem_read(arg)
            elif action == "rand_read":
                env.mem_read(arg, random=True)
            elif action == "syscall":
                env.syscall("x")
            elif action == "timestamp":
                env.timestamp()

    machine.run(main)
    return machine.elapsed_cycles()


_actions = st.lists(
    st.tuples(
        st.sampled_from(["compute", "read", "rand_read", "syscall",
                         "timestamp"]),
        st.integers(min_value=1, max_value=100_000),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None)
@given(actions=_actions, platform=st.sampled_from(_PLATFORMS))
def test_charges_are_deterministic(actions, platform):
    assert charge(platform, actions) == charge(platform, actions)


@settings(max_examples=30, deadline=None)
@given(actions=_actions)
def test_no_tee_is_faster_than_native(actions):
    native = charge(NATIVE, actions)
    for platform in ALL_PLATFORMS:
        assert charge(platform, actions) >= native * 0.999, platform.name


@settings(max_examples=30, deadline=None)
@given(
    a=_actions,
    b=_actions,
    platform=st.sampled_from(_PLATFORMS),
)
def test_charges_are_additive(a, b, platform):
    """Cost of a run is the sum of its parts (no hidden state across
    actions, memory pressure aside — these draws never alloc)."""
    together = charge(platform, a + b)
    separate = charge(platform, a) + charge(platform, b)
    assert together == pytest.approx(separate, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    nbytes=st.integers(min_value=64, max_value=1 << 22),
    platform=st.sampled_from(_PLATFORMS),
)
def test_memory_cost_monotone_in_size(nbytes, platform):
    smaller = charge(platform, [("rand_read", nbytes)])
    larger = charge(platform, [("rand_read", nbytes * 2)])
    assert larger > smaller


@settings(max_examples=20, deadline=None)
@given(platform=st.sampled_from(ALL_PLATFORMS))
def test_stats_count_what_happened(platform):
    machine = Machine(cores=8)
    env = make_env(machine, platform)

    def main():
        for _ in range(5):
            env.syscall("write")
        for _ in range(3):
            env.timestamp()
        return env.stats.syscalls, env.stats.timestamps

    syscalls, timestamps = machine.run(main)
    assert syscalls == 5
    assert timestamps == 3
