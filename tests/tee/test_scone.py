"""Unit tests for the SCONE-style syscall shim."""

import pytest

from repro.machine import Machine, MachineError
from repro.tee import ASYNC, SGX_V1, SYNC, SconeShim, make_env
from repro.tee.costs import NATIVE


def elapsed_with_mode(mode, n_syscalls=100):
    machine = Machine(cores=8)

    def main():
        env = make_env(machine, SGX_V1)
        with SconeShim(env, mode=mode) as shim:
            for _ in range(n_syscalls):
                shim.syscall("read")

    machine.run(main)
    return machine.elapsed_cycles()


def test_async_mode_is_much_cheaper():
    sync = elapsed_with_mode(SYNC)
    asynchronous = elapsed_with_mode(ASYNC)
    assert sync > 4 * asynchronous


def test_async_mode_reserves_and_releases_cores():
    machine = Machine(cores=8)

    def main():
        env = make_env(machine, SGX_V1)
        shim = SconeShim(env, mode=ASYNC)
        shim.start()
        reserved = machine.available_cores()
        shim.stop()
        return reserved, machine.available_cores()

    during, after = machine.run(main)
    assert during == 7
    assert after == 8


def test_sync_mode_does_not_touch_cores():
    machine = Machine(cores=8)

    def main():
        env = make_env(machine, SGX_V1)
        with SconeShim(env, mode=SYNC):
            return machine.available_cores()

    assert machine.run(main) == 8


def test_forwarded_counter():
    machine = Machine(cores=8)

    def main():
        env = make_env(machine, SGX_V1)
        shim = SconeShim(env)
        shim.syscall("read")
        shim.getpid()
        return shim.forwarded

    assert machine.run(main) == 1  # getpid goes through env directly


def test_invalid_mode_rejected():
    machine = Machine()
    env = make_env(machine, SGX_V1)
    with pytest.raises(ValueError):
        SconeShim(env, mode="turbo")


def test_native_env_rejected():
    machine = Machine()
    env = make_env(machine, NATIVE)
    with pytest.raises(MachineError):
        SconeShim(env)
