"""Unit tests for execution environments."""

import pytest

from repro.machine import Machine
from repro.tee import (
    NATIVE,
    SEV,
    SGX_V1,
    EnclaveEnv,
    NativeEnv,
    make_env,
)

MIB = 1024 * 1024


def run(body):
    machine = Machine(cores=8)
    return machine.run(body, machine)


def elapsed_for(work, platform=NATIVE):
    machine = Machine(cores=8)

    def main():
        env = make_env(machine, platform)
        work(env)

    machine.run(main)
    return machine.elapsed_cycles()


def test_make_env_picks_the_right_class():
    machine = Machine()
    assert isinstance(make_env(machine, NATIVE), NativeEnv)
    assert isinstance(make_env(machine, SGX_V1), EnclaveEnv)
    assert make_env(machine, SGX_V1).is_enclave
    assert not make_env(machine, NATIVE).is_enclave


def test_compute_charges_cycles():
    assert elapsed_for(lambda env: env.compute(12_345)) >= 12_345


def test_random_memory_access_costlier_than_sequential():
    seq = elapsed_for(lambda env: env.mem_read(MIB, random=False))
    rand = elapsed_for(lambda env: env.mem_read(MIB, random=True))
    assert rand > 10 * seq


def test_enclave_memory_pays_mee_factor():
    native = elapsed_for(lambda env: env.mem_read(MIB, random=True), NATIVE)
    enclave = elapsed_for(lambda env: env.mem_read(MIB, random=True), SGX_V1)
    assert enclave == pytest.approx(native * SGX_V1.mee_factor, rel=0.01)


def test_epc_paging_cliff():
    def fits(env):
        env.alloc(32 * MIB)
        env.mem_read(MIB, random=True)

    def spills(env):
        env.alloc(1024 * MIB)
        env.mem_read(MIB, random=True)

    assert elapsed_for(spills, SGX_V1) > 50 * elapsed_for(fits, SGX_V1)


def test_sev_has_no_epc_cliff():
    def spills(env):
        env.alloc(4096 * MIB)
        env.mem_read(MIB, random=True)

    inside = elapsed_for(spills, SEV)
    outside = elapsed_for(lambda e: e.mem_read(MIB, random=True), NATIVE)
    assert inside < 2 * outside


def test_syscall_becomes_ocall_in_enclave():
    machine = Machine()

    def main():
        env = make_env(machine, SGX_V1)
        env.syscall("read")
        return env.stats.ocalls, env.stats.syscalls

    ocalls, syscalls = machine.run(main)
    assert ocalls == 1
    assert syscalls == 1


def test_native_syscall_is_not_an_ocall():
    machine = Machine()

    def main():
        env = make_env(machine, NATIVE)
        env.syscall("read")
        return env.stats.ocalls

    assert machine.run(main) == 0


def test_getpid_cost_explodes_in_sgx():
    native = elapsed_for(lambda env: env.getpid(), NATIVE)
    sgx = elapsed_for(lambda env: env.getpid(), SGX_V1)
    assert sgx > 50 * native


def test_timestamp_returns_monotonic_ns_and_charges():
    machine = Machine()

    def main():
        env = make_env(machine, SGX_V1)
        first = env.timestamp()
        env.compute(1_000_000)
        second = env.timestamp()
        return first, second, env.stats.timestamps

    first, second, count = machine.run(main)
    assert second > first
    assert count == 2


def test_rdtsc_emulation_cost_on_sgx_v1():
    native = elapsed_for(lambda env: env.timestamp(), NATIVE)
    sgx = elapsed_for(lambda env: env.timestamp(), SGX_V1)
    assert sgx > 100 * native


def test_aex_accounting():
    machine = Machine()

    def main():
        env = make_env(machine, SGX_V1)
        before = env.thread().local_time
        env.aex()
        return env.stats.aex, env.thread().local_time - before

    count, cycles = machine.run(main)
    assert count == 1
    assert cycles == pytest.approx(SGX_V1.aex_cycles)


def test_transition_cycles_accumulate():
    machine = Machine()

    def main():
        env = make_env(machine, SGX_V1)
        env.ecall()
        env.ocall("write")
        env.syscall("read")
        return env.stats.transition_cycles

    total = machine.run(main)
    assert total >= SGX_V1.ecall_cycles + 2 * SGX_V1.ocall_cycles


def test_bad_costs_type_rejected():
    with pytest.raises(TypeError):
        NativeEnv(Machine(), costs={"name": "nope"})
