"""Unit tests for the EPC paging model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tee.memory import EnclaveMemory

MIB = 1024 * 1024


def make(epc_mib=64):
    return EnclaveMemory(epc_mib * MIB, page_fault_cycles=40_000)


def test_no_paging_inside_epc():
    mem = make()
    mem.alloc(32 * MIB)
    assert mem.miss_probability() == 0.0
    assert mem.paging_cycles(1 * MIB, random=True) == 0.0


def test_paging_kicks_in_past_epc():
    mem = make(epc_mib=64)
    mem.alloc(128 * MIB)
    assert mem.miss_probability() == pytest.approx(0.5)
    assert mem.paging_cycles(4096, random=True) > 0


def test_unlimited_epc_never_pages():
    mem = EnclaveMemory(None, page_fault_cycles=40_000)
    mem.alloc(100 * 1024 * MIB)
    assert mem.miss_probability() == 0.0
    assert mem.paging_cycles(64 * MIB, random=True) == 0.0


def test_random_access_much_costlier_than_sequential():
    mem = make(epc_mib=64)
    mem.alloc(128 * MIB)
    seq = mem.paging_cycles(1 * MIB, random=False)
    rand = mem.paging_cycles(1 * MIB, random=True)
    # One fault chance per line vs per page: 64x.
    assert rand == pytest.approx(seq * 64)


def test_free_restores_residency():
    mem = make(epc_mib=64)
    mem.alloc(128 * MIB)
    mem.free(96 * MIB)
    assert mem.miss_probability() == 0.0


def test_over_free_rejected():
    mem = make()
    mem.alloc(MIB)
    with pytest.raises(ValueError):
        mem.free(2 * MIB)


def test_negative_sizes_rejected():
    mem = make()
    with pytest.raises(ValueError):
        mem.alloc(-1)
    with pytest.raises(ValueError):
        mem.free(-1)


def test_peak_tracks_high_watermark():
    mem = make()
    mem.alloc(10 * MIB)
    mem.free(5 * MIB)
    mem.alloc(1 * MIB)
    assert mem.peak_allocated == 10 * MIB
    assert mem.allocated == 6 * MIB


def test_fault_counter_accumulates():
    mem = make(epc_mib=1)
    mem.alloc(4 * MIB)
    mem.paging_cycles(4096, random=True)
    assert mem.page_faults > 0


@given(
    alloc=st.integers(min_value=1, max_value=1 << 36),
    epc=st.integers(min_value=1, max_value=1 << 32),
)
def test_miss_probability_is_a_probability(alloc, epc):
    mem = EnclaveMemory(epc, 40_000)
    mem.alloc(alloc)
    assert 0.0 <= mem.miss_probability() < 1.0


@given(nbytes=st.integers(min_value=1, max_value=1 << 30))
def test_paging_cost_monotone_in_pressure(nbytes):
    light = EnclaveMemory(64 * MIB, 40_000)
    heavy = EnclaveMemory(64 * MIB, 40_000)
    light.alloc(80 * MIB)
    heavy.alloc(160 * MIB)
    assert heavy.paging_cycles(nbytes, True) >= light.paging_cycles(nbytes, True)
