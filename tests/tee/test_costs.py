"""Unit tests for the platform cost tables."""

import pytest

from repro.tee import (
    ALL_PLATFORMS,
    KEYSTONE,
    NATIVE,
    SEV,
    SGX_V1,
    SGX_V2,
    TRUSTZONE,
    platform_by_name,
)


def test_platform_names_unique():
    names = [p.name for p in ALL_PLATFORMS] + [NATIVE.name]
    assert len(names) == len(set(names))


def test_lookup_by_name_roundtrips():
    for platform in (NATIVE,) + ALL_PLATFORMS:
        assert platform_by_name(platform.name) is platform


def test_unknown_platform_rejected_with_known_list():
    with pytest.raises(KeyError) as err:
        platform_by_name("sgx-v9")
    assert "sgx-v1" in str(err.value)


def test_native_has_no_tee_costs():
    assert NATIVE.ocall_cycles == 0
    assert NATIVE.mee_factor == 1.0
    assert NATIVE.epc_bytes is None


def test_sgx_v1_models_paper_section_1():
    # The four §I effects: MEE, EPC limit, expensive transitions,
    # forbidden/emulated rdtsc.
    assert SGX_V1.mee_factor > 1.5
    assert SGX_V1.epc_bytes is not None and SGX_V1.epc_bytes < 128 * 1024 * 1024
    assert SGX_V1.ocall_cycles > 50 * SGX_V1.syscall_cycles
    assert SGX_V1.rdtsc_cycles > 100 * NATIVE.rdtsc_cycles


def test_sgx_v2_relaxes_v1():
    assert SGX_V2.epc_bytes > SGX_V1.epc_bytes
    assert SGX_V2.rdtsc_cycles < SGX_V1.rdtsc_cycles


def test_vm_based_tees_have_no_epc_limit():
    assert SEV.epc_bytes is None
    assert TRUSTZONE.epc_bytes is None


def test_transitions_cheaper_outside_sgx():
    for platform in (TRUSTZONE, SEV, KEYSTONE):
        assert platform.ocall_cycles < SGX_V1.ocall_cycles


def test_derived_overrides_single_field():
    tweaked = SGX_V1.derived(ocall_cycles=1.0)
    assert tweaked.ocall_cycles == 1.0
    assert tweaked.epc_bytes == SGX_V1.epc_bytes
    assert SGX_V1.ocall_cycles != 1.0  # original untouched


def test_costs_frozen():
    with pytest.raises(Exception):
        SGX_V1.ocall_cycles = 0
