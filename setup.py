"""Shim so `python setup.py develop` works where the `wheel` package is
unavailable (offline environments); all metadata lives in pyproject.toml."""

from setuptools import setup

setup()
