"""Cost-model constants for TEE platforms.

Each platform is described by a :class:`PlatformCosts` record.  The
numbers are cycle counts at the paper's 3.6 GHz testbed frequency and
come from the literature where available:

* syscall / context-switch baselines: Soares & Stumm (FlexSC, OSDI'10)
  and common Linux microbenchmarks (~1.8k cycles per trivial syscall).
* SGX transition costs: Weichbrodt et al. (sgx-perf, Middleware'18)
  and Orenbach et al. (Eleos, EuroSys'17) report ~8k-17k cycles for a
  plain ecall/ocall and ~7k for an AEX, *excluding* the indirect cost
  of the TLB flush and cache refill that follows — which dominates in
  practice.  The paper itself attributes ~45 us per getpid ocall in the
  SPDK case study (72 % of a 63 us request), so the SCONE-style
  synchronous ocall figure used here is calibrated to that observation.
* EPC paging: SCONE (OSDI'16) and the paper's §I report up to 2000x
  slowdowns when the working set exceeds the EPC; a securely swapped
  page costs ~40k cycles.
* Memory-encryption engine (MEE): ~1.5-3x on cache-missing accesses
  (Intel SGX Explained, Costan & Devadas).

These constants are deliberately centralised so the calibration used by
EXPERIMENTS.md is auditable in one place.
"""

from dataclasses import dataclass, replace

CACHE_LINE = 64
PAGE_SIZE = 4096
MIB = 1024 * 1024


@dataclass(frozen=True)
class PlatformCosts:
    """Cycle costs and sizes describing one TEE platform.

    A ``None`` for :attr:`epc_bytes` means the platform places no hard
    limit on protected memory (e.g. AMD SEV encrypts all of DRAM).
    """

    name: str
    isa: str
    # Plain syscall on the *host* (no TEE involved).
    syscall_cycles: float = 1_800.0
    # Synchronous world switch out of and back into the TEE, including
    # the indirect TLB/cache refill cost.  Zero for native.
    ocall_cycles: float = 0.0
    ecall_cycles: float = 0.0
    # Asynchronous enclave exit (what a sampling interrupt causes).
    aex_cycles: float = 0.0
    # rdtsc / timestamp read inside the TEE.  SGXv1 forbids rdtsc, so
    # SCONE-style runtimes emulate it via the exception handler.
    rdtsc_cycles: float = 30.0
    # getpid on this platform (inside the TEE it becomes an ocall).
    getpid_cycles: float = 900.0
    # Memory: cycles per cache line for sequential (prefetched) and
    # random (DRAM-missing) access, and the MEE multiplier applied to
    # protected memory.
    seq_line_cycles: float = 4.0
    rand_line_cycles: float = 180.0
    mee_factor: float = 1.0
    # Protected-memory size; paging beyond it costs page_fault_cycles
    # per securely swapped page.
    epc_bytes: int = None
    page_fault_cycles: float = 40_000.0
    # Per-event cost of TEE-Perf's injected instrumentation (reserve a
    # log slot, read the counter, write a 32-byte entry to *untrusted*
    # shared memory) — see repro.core.instrument.
    instrument_event_cycles: float = 110.0

    def derived(self, **overrides):
        """A copy of this platform with selected fields replaced."""
        return replace(self, **overrides)


NATIVE = PlatformCosts(
    name="native",
    isa="x86_64",
)

# Intel SGX v1 driven through a SCONE-style runtime with synchronous
# system calls.  The 93.5 MiB figure is the usable part of the 128 MiB
# PRM on the paper's generation of hardware.
SGX_V1 = PlatformCosts(
    name="sgx-v1",
    isa="x86_64",
    ocall_cycles=165_000.0,
    ecall_cycles=14_000.0,
    aex_cycles=72_000.0,
    rdtsc_cycles=24_000.0,  # emulated: #UD -> AEX -> handler -> eresume
    getpid_cycles=165_000.0,  # forwarded as a synchronous ocall
    mee_factor=2.2,
    epc_bytes=int(93.5 * MIB),
    instrument_event_cycles=260.0,
)

# SGX v2 (larger EPC, in-enclave rdtsc permitted, EDMM).
SGX_V2 = SGX_V1.derived(
    name="sgx-v2",
    rdtsc_cycles=100.0,
    epc_bytes=256 * MIB,
    ocall_cycles=120_000.0,
    getpid_cycles=120_000.0,
)

# ARM TrustZone: a secure-world switch via SMC is far cheaper than an
# SGX transition and there is no MEE or EPC limit on most parts.
TRUSTZONE = PlatformCosts(
    name="trustzone",
    isa="aarch64",
    ocall_cycles=14_000.0,
    ecall_cycles=3_500.0,
    aex_cycles=6_000.0,
    rdtsc_cycles=60.0,
    getpid_cycles=14_000.0,
    mee_factor=1.0,
    epc_bytes=None,
    instrument_event_cycles=150.0,
)

# AMD SEV: whole-VM encryption; syscalls stay inside the guest kernel,
# so there is no per-syscall world switch, only the MEE-like overhead.
SEV = PlatformCosts(
    name="sev",
    isa="x86_64",
    ocall_cycles=2_600.0,  # VMEXIT-bound operations only
    ecall_cycles=2_600.0,
    aex_cycles=4_000.0,
    rdtsc_cycles=40.0,
    getpid_cycles=1_100.0,
    mee_factor=1.35,
    epc_bytes=None,
    instrument_event_cycles=130.0,
)

# RISC-V Keystone: machine-mode security monitor; switch cost between
# SGX and TrustZone, physical-memory-protection regions instead of an
# encrypted EPC.
KEYSTONE = PlatformCosts(
    name="keystone",
    isa="riscv64",
    ocall_cycles=22_000.0,
    ecall_cycles=8_000.0,
    aex_cycles=9_000.0,
    rdtsc_cycles=50.0,
    getpid_cycles=22_000.0,
    mee_factor=1.0,
    epc_bytes=512 * MIB,
    instrument_event_cycles=150.0,
)

ALL_PLATFORMS = (SGX_V1, SGX_V2, TRUSTZONE, SEV, KEYSTONE)
TEE_PLATFORMS = ALL_PLATFORMS


def platform_by_name(name):
    """Look up a TEE platform (or ``native``) by its name."""
    if name == NATIVE.name:
        return NATIVE
    for platform in ALL_PLATFORMS:
        if platform.name == name:
            return platform
    known = ", ".join([NATIVE.name] + [p.name for p in ALL_PLATFORMS])
    raise KeyError(f"unknown platform {name!r} (known: {known})")
