"""TEE platform models.

Cost models for the trusted execution environments the paper targets
(Intel SGX v1/v2, ARM TrustZone, AMD SEV, RISC-V Keystone) plus the
native baseline, an enclave memory model with EPC paging, execution
environments that price a workload's memory/syscall/timestamp activity,
and a SCONE-style syscall shim.

The profiler itself never depends on any of this — that is the paper's
platform-independence claim — but the *evaluation* runs workloads
through these environments to reproduce in-enclave behaviour.
"""

from repro.tee.costs import (
    ALL_PLATFORMS,
    KEYSTONE,
    NATIVE,
    SEV,
    SGX_V1,
    SGX_V2,
    TEE_PLATFORMS,
    TRUSTZONE,
    PlatformCosts,
    platform_by_name,
)
from repro.tee.env import EnclaveEnv, EnvStats, ExecutionEnv, NativeEnv, make_env
from repro.tee.memory import EnclaveMemory
from repro.tee.scone import ASYNC, SYNC, SconeShim

__all__ = [
    "ALL_PLATFORMS",
    "ASYNC",
    "EnclaveEnv",
    "EnclaveMemory",
    "EnvStats",
    "ExecutionEnv",
    "KEYSTONE",
    "NATIVE",
    "NativeEnv",
    "PlatformCosts",
    "SEV",
    "SGX_V1",
    "SGX_V2",
    "SYNC",
    "SconeShim",
    "TEE_PLATFORMS",
    "TRUSTZONE",
    "make_env",
    "platform_by_name",
]
