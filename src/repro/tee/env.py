"""Execution environments: where a simulated thread's work is priced.

Workloads never talk to the machine directly for anything but raw
compute; every memory access, syscall and timestamp goes through an
:class:`ExecutionEnv`, so the *same* workload code runs natively or
inside any TEE platform and automatically pays that platform's costs.

This is the reproduction's stand-in for real SGX hardware: §I of the
paper lists exactly these effects (memory-encryption engine, EPC
paging, world-switch cost, forbidden direct I/O) as the reasons TEE
profiling is hard, and all four are modelled here.
"""

from repro.machine import current_thread
from repro.tee.costs import CACHE_LINE, NATIVE, PlatformCosts
from repro.tee.memory import EnclaveMemory


class EnvStats:
    """Counters an environment accumulates while a workload runs."""

    def __init__(self):
        self.syscalls = 0
        self.ocalls = 0
        self.ecalls = 0
        self.aex = 0
        self.timestamps = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.transition_cycles = 0.0

    def as_dict(self):
        return dict(self.__dict__)


class ExecutionEnv:
    """Base environment: prices work against the virtual clock.

    Subclasses only override the *costs*; the accounting and the public
    surface live here.  All charge methods are safe to call from any
    simulated thread.
    """

    is_enclave = False

    def __init__(self, machine, costs=NATIVE):
        if not isinstance(costs, PlatformCosts):
            raise TypeError(f"costs must be PlatformCosts, got {costs!r}")
        self.machine = machine
        self.costs = costs
        self.stats = EnvStats()

    # -- core charges ---------------------------------------------------

    def thread(self):
        """The simulated thread executing the caller."""
        return current_thread()

    def compute(self, cycles):
        """Charge pure CPU work (no memory or TEE effects)."""
        current_thread().advance(cycles)

    def mem_read(self, nbytes, random=False, untrusted=False):
        """Charge a read of `nbytes`; `random` means cache-hostile.

        `untrusted` marks memory outside the protected region (shared
        DMA buffers, host-mapped pages): it skips the encryption engine
        and EPC paging even inside a TEE.
        """
        self.stats.bytes_read += nbytes
        current_thread().advance(
            self._memory_cycles(nbytes, random, untrusted)
        )

    def mem_write(self, nbytes, random=False, untrusted=False):
        """Charge a write of `nbytes`; see :meth:`mem_read`."""
        self.stats.bytes_written += nbytes
        current_thread().advance(
            self._memory_cycles(nbytes, random, untrusted)
        )

    def syscall(self, name, extra_cycles=0.0):
        """Charge one system call (an ocall inside a TEE)."""
        self.stats.syscalls += 1
        current_thread().advance(self._syscall_cycles(name) + extra_cycles)

    def getpid(self):
        """Charge a getpid; returns the simulated process id."""
        self.stats.syscalls += 1
        current_thread().advance(self._getpid_cycles())
        return 4242

    def timestamp(self):
        """Charge a timestamp read; returns virtual nanoseconds."""
        self.stats.timestamps += 1
        thread = current_thread()
        thread.advance(self._rdtsc_cycles())
        return self.machine.clock.cycles_to_ns(thread.local_time)

    def now_cycles(self):
        """Current thread's local virtual time — free of charge."""
        return current_thread().local_time

    def alloc(self, nbytes):
        """Record a memory allocation (drives EPC paging in TEEs)."""

    def free(self, nbytes):
        """Record a memory release."""

    # -- per-platform prices --------------------------------------------

    def _memory_cycles(self, nbytes, random, untrusted=False):
        lines = max(1.0, nbytes / CACHE_LINE)
        per_line = (
            self.costs.rand_line_cycles if random else self.costs.seq_line_cycles
        )
        return lines * per_line

    def _syscall_cycles(self, name):
        return self.costs.syscall_cycles

    def _getpid_cycles(self):
        return self.costs.getpid_cycles

    def _rdtsc_cycles(self):
        return self.costs.rdtsc_cycles

    def __repr__(self):
        return f"{type(self).__name__}(platform={self.costs.name!r})"


class NativeEnv(ExecutionEnv):
    """Execution on the untrusted host: the paper's baseline."""

    def __init__(self, machine, costs=NATIVE):
        super().__init__(machine, costs)


class EnclaveEnv(ExecutionEnv):
    """Execution inside a TEE with the platform's cost model.

    Memory accesses pay the memory-encryption factor and, past the EPC
    limit, secure paging; syscalls become synchronous ocalls; rdtsc is
    priced per platform (emulated on SGX v1).
    """

    is_enclave = True

    def __init__(self, machine, platform):
        super().__init__(machine, platform)
        self.memory = EnclaveMemory(
            platform.epc_bytes, platform.page_fault_cycles
        )

    def alloc(self, nbytes):
        self.memory.alloc(nbytes)

    def free(self, nbytes):
        self.memory.free(nbytes)

    def ecall(self, extra_cycles=0.0):
        """Charge one world switch into the enclave."""
        self.stats.ecalls += 1
        cycles = self.costs.ecall_cycles + extra_cycles
        self.stats.transition_cycles += cycles
        current_thread().advance(cycles)

    def ocall(self, name, extra_cycles=0.0):
        """Charge one synchronous exit-and-reenter (an ocall)."""
        self.stats.ocalls += 1
        cycles = self.costs.ocall_cycles + extra_cycles
        self.stats.transition_cycles += cycles
        current_thread().advance(cycles)

    def aex(self):
        """Charge one asynchronous enclave exit (e.g. a perf sample)."""
        self.stats.aex += 1
        self.stats.transition_cycles += self.costs.aex_cycles
        current_thread().advance(self.costs.aex_cycles)

    def _memory_cycles(self, nbytes, random, untrusted=False):
        plain = super()._memory_cycles(nbytes, random)
        if untrusted:
            return plain  # outside the protected region: no MEE, no EPC
        return plain * self.costs.mee_factor + self.memory.paging_cycles(
            nbytes, random
        )

    def _syscall_cycles(self, name):
        # Direct I/O and syscalls are forbidden inside the TEE; every
        # one becomes an ocall through the runtime.
        self.stats.ocalls += 1
        self.stats.transition_cycles += self.costs.ocall_cycles
        return self.costs.ocall_cycles

    def _getpid_cycles(self):
        self.stats.ocalls += 1
        self.stats.transition_cycles += self.costs.getpid_cycles
        return self.costs.getpid_cycles


def make_env(machine, platform):
    """Build the right environment for `platform` (native or TEE)."""
    if platform.name == NATIVE.name:
        return NativeEnv(machine, platform)
    return EnclaveEnv(machine, platform)
