"""A SCONE-style runtime shim.

The paper runs the Phoenix suite inside SGX *via SCONE* (Arnautov et
al., OSDI'16).  SCONE's distinguishing feature is how system calls leave
the enclave: either synchronously (one ocall per syscall, very
expensive) or asynchronously through lock-free request queues served by
host threads (much cheaper per call, but it burns host cores).

The shim wraps an :class:`~repro.tee.env.EnclaveEnv` and reprices its
syscalls according to the chosen mode.  The SPDK case study's "naive"
port uses synchronous mode, which is what makes getpid devour 72 % of
the request path.
"""

from repro.machine import MachineError

SYNC = "sync"
ASYNC = "async"

# Asynchronous syscalls cost roughly an order of magnitude less than a
# synchronous world switch (SCONE reports ~5-10x improvements on
# syscall-heavy workloads).
ASYNC_COST_FRACTION = 0.12
# Each async-syscall host worker occupies one core.
DEFAULT_SYSCALL_THREADS = 1


class SconeShim:
    """Repriced syscall layer between a workload and its enclave env."""

    def __init__(self, env, mode=SYNC, syscall_threads=DEFAULT_SYSCALL_THREADS):
        if mode not in (SYNC, ASYNC):
            raise ValueError(f"mode must be {SYNC!r} or {ASYNC!r}: {mode!r}")
        if not env.is_enclave:
            raise MachineError("SconeShim wraps an enclave environment")
        self.env = env
        self.mode = mode
        self.syscall_threads = syscall_threads
        self._cores_reserved = 0
        self.forwarded = 0

    def start(self):
        """Reserve host cores for the async syscall workers."""
        if self.mode == ASYNC and self._cores_reserved == 0:
            self.env.machine.reserve_core(self.syscall_threads)
            self._cores_reserved = self.syscall_threads

    def stop(self):
        """Release the async workers' cores."""
        if self._cores_reserved:
            self.env.machine.release_core(self._cores_reserved)
            self._cores_reserved = 0

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    def syscall(self, name, extra_cycles=0.0):
        """Forward one syscall out of the enclave in the current mode."""
        self.forwarded += 1
        if self.mode == SYNC:
            self.env.syscall(name, extra_cycles)
        else:
            cost = self.env.costs.ocall_cycles * ASYNC_COST_FRACTION
            self.env.stats.syscalls += 1
            self.env.stats.ocalls += 1
            self.env.stats.transition_cycles += cost
            self.env.thread().advance(cost + extra_cycles)

    def getpid(self):
        """getpid through the shim (cached by SCONE only in later
        versions; the paper's SPDK port had to add its own cache)."""
        if self.mode == SYNC:
            return self.env.getpid()
        self.syscall("getpid")
        return 4242
