"""Enclave memory model: allocation tracking and EPC paging.

The model is intentionally analytic rather than page-exact: it tracks
how many bytes the enclave has allocated and derives a miss probability
for random accesses once the allocation exceeds the EPC.  That is all
the evaluation needs — the paper's §I claim is that crossing the EPC
boundary degrades performance by orders of magnitude, and the shape of
that cliff is what `benchmarks/bench_ablation_epc_paging.py` checks.
"""

from repro.tee.costs import PAGE_SIZE


class EnclaveMemory:
    """Tracks enclave allocations and prices page faults.

    Parameters
    ----------
    epc_bytes:
        Usable protected memory; ``None`` disables paging entirely
        (platforms like SEV encrypt all of DRAM).
    page_fault_cycles:
        Cost of one secure page swap (EWB + ELD round trip).
    """

    def __init__(self, epc_bytes, page_fault_cycles):
        self.epc_bytes = epc_bytes
        self.page_fault_cycles = page_fault_cycles
        self.allocated = 0
        self.peak_allocated = 0
        self.page_faults = 0.0

    def alloc(self, nbytes):
        """Record an allocation of `nbytes` of enclave memory."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self.allocated += nbytes
        self.peak_allocated = max(self.peak_allocated, self.allocated)

    def free(self, nbytes):
        """Record a release of `nbytes` of enclave memory."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self.allocated:
            raise ValueError(
                f"freeing {nbytes} bytes but only {self.allocated} allocated"
            )
        self.allocated -= nbytes

    def miss_probability(self):
        """Probability that a random page access faults.

        Zero while the allocation fits in the EPC; otherwise the
        fraction of the allocation that cannot be resident.
        """
        if self.epc_bytes is None or self.allocated <= self.epc_bytes:
            return 0.0
        return 1.0 - self.epc_bytes / self.allocated

    def paging_cycles(self, nbytes, random):
        """Expected paging cost for touching `nbytes`.

        Sequential scans touch each page once; random accesses touch
        (at most) one page per cache line, which is what makes them so
        much more expensive past the EPC boundary.
        """
        prob = self.miss_probability()
        if prob == 0.0 or nbytes <= 0:
            return 0.0
        if random:
            touches = max(1.0, nbytes / 64)
        else:
            touches = max(1.0, nbytes / PAGE_SIZE)
        expected_faults = touches * prob
        self.page_faults += expected_faults
        return expected_faults * self.page_fault_cycles
