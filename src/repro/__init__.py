"""TEE-Perf reproduction.

A production-quality Python reproduction of *TEE-Perf: A Profiler for
Trusted Execution Environments* (Bailleu, Dragoti, Bhatotia, Fetzer —
DSN 2019): an architecture- and platform-independent method-level
profiler for TEEs, together with every substrate its evaluation needs —
a deterministic virtual-time machine, TEE cost models (SGX v1/v2,
TrustZone, SEV, Keystone), a Linux-perf-style sampling baseline, the
Phoenix 2.0 workloads, an LSM key-value store with a db_bench driver,
and a user-space NVMe (SPDK-style) storage stack.

The supported entry point is :mod:`repro.api` (see docs/api.md)::

    from repro.api import TEEPerf

    perf = TEEPerf.simulated(cores=8)

The headline names are also reachable straight off the package —
``repro.TEEPerf``, ``repro.Analyzer`` — loaded lazily so that
``import repro`` stays cheap.

The four paper stages map to::

    repro.core.instrument   # stage 1: the "compiler" pass
    repro.core.recorder     # stage 2: recorder + software counter
    repro.core.analyzer     # stage 3: offline analysis + queries
    repro.core.flamegraph   # stage 4: Flame Graph output

with :class:`repro.core.profiler.TEEPerf` as the facade tying them
together.
"""

__version__ = "1.1.0"

#: Names served lazily from :mod:`repro.api` (PEP 562).
_API_NAMES = (
    "Analysis",
    "AnalysisDiff",
    "AnalyzeOptions",
    "Analyzer",
    "ExploreOptions",
    "Explorer",
    "FlameGraph",
    "FleetClient",
    "FleetDaemon",
    "FleetServer",
    "LiveRecorder",
    "Machine",
    "Profiler",
    "RecordOptions",
    "Recorder",
    "RecoveryReport",
    "SharedLog",
    "TEEPerf",
    "open_log",
    "recover_log",
    "run_teeperf",
)

__all__ = ["__version__", "api", *_API_NAMES]


def __getattr__(name):
    if name == "api" or name in _API_NAMES:
        import importlib

        api = importlib.import_module("repro.api")
        return api if name == "api" else getattr(api, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return sorted(set(globals()) | set(__all__))
