"""TEE-Perf reproduction.

A production-quality Python reproduction of *TEE-Perf: A Profiler for
Trusted Execution Environments* (Bailleu, Dragoti, Bhatotia, Fetzer —
DSN 2019): an architecture- and platform-independent method-level
profiler for TEEs, together with every substrate its evaluation needs —
a deterministic virtual-time machine, TEE cost models (SGX v1/v2,
TrustZone, SEV, Keystone), a Linux-perf-style sampling baseline, the
Phoenix 2.0 workloads, an LSM key-value store with a db_bench driver,
and a user-space NVMe (SPDK-style) storage stack.

The four paper stages map to::

    repro.core.instrument   # stage 1: the "compiler" pass
    repro.core.recorder     # stage 2: recorder + software counter
    repro.core.analyzer     # stage 3: offline analysis + queries
    repro.core.flamegraph   # stage 4: Flame Graph output

with :class:`repro.core.profiler.TEEPerf` as the facade tying them
together.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
