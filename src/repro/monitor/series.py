"""Fixed-capacity time series and windowed aggregation.

Every sampling pass appends each metric's current value, stamped with
the monitor's clock, into a per-metric ring buffer.  The ring is what
turns instantaneous scrapes into *trends*: drop-rate over the last
three windows (the alert engine's input), ocall rate per second, p95
of the sampler's own pass duration.  Capacity is fixed so an attached
monitor has bounded memory no matter how long the workload runs — the
same reasoning §II-B applies to the shared log itself.
"""

import threading
from collections import deque


class RingSeries:
    """A bounded sequence of ``(timestamp, value)`` points."""

    def __init__(self, capacity=512):
        if capacity < 2:
            raise ValueError(f"series capacity must be >= 2: {capacity}")
        self.capacity = capacity
        self._points = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, timestamp, value):
        with self._lock:
            self._points.append((float(timestamp), float(value)))

    def __len__(self):
        with self._lock:
            return len(self._points)

    def points(self, seconds=None, count=None):
        """The retained points, optionally restricted to the trailing
        `seconds` of time or the last `count` samples."""
        with self._lock:
            pts = list(self._points)
        if count is not None:
            pts = pts[-count:]
        if seconds is not None and pts:
            horizon = pts[-1][0] - seconds
            pts = [p for p in pts if p[0] >= horizon]
        return pts

    def last(self):
        with self._lock:
            return self._points[-1][1] if self._points else None

    # -- windowed aggregates --------------------------------------------

    def rate(self, seconds=None, count=None):
        """Per-second rate of change across the window.

        Meaningful for counters; a counter reset (value moving
        backwards) clamps to zero rather than reporting a negative
        rate.
        """
        pts = self.points(seconds, count)
        if len(pts) < 2:
            return 0.0
        (t0, v0), (t1, v1) = pts[0], pts[-1]
        if t1 <= t0:
            return 0.0
        return max(0.0, (v1 - v0) / (t1 - t0))

    def delta(self, seconds=None, count=None):
        """Absolute change across the window (last - first)."""
        pts = self.points(seconds, count)
        if len(pts) < 2:
            return 0.0
        return pts[-1][1] - pts[0][1]

    def percentile(self, pct, seconds=None, count=None):
        """Exact percentile of the windowed values (0-100)."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        values = sorted(v for _, v in self.points(seconds, count))
        if not values:
            return 0.0
        index = min(
            len(values) - 1, max(0, round(pct / 100.0 * (len(values) - 1)))
        )
        return values[index]

    def max(self, seconds=None, count=None):
        values = [v for _, v in self.points(seconds, count)]
        return max(values) if values else 0.0

    def min(self, seconds=None, count=None):
        values = [v for _, v in self.points(seconds, count)]
        return min(values) if values else 0.0

    def mean(self, seconds=None, count=None):
        values = [v for _, v in self.points(seconds, count)]
        return sum(values) / len(values) if values else 0.0

    def aggregate(self, seconds=None, count=None):
        """The standard windowed summary: rate, p50, p95, max, last."""
        return {
            "rate": self.rate(seconds, count),
            "p50": self.percentile(50, seconds, count),
            "p95": self.percentile(95, seconds, count),
            "max": self.max(seconds, count),
            "last": self.last(),
            "samples": len(self.points(seconds, count)),
        }


class SeriesStore:
    """One :class:`RingSeries` per metric family."""

    def __init__(self, capacity=512):
        self.capacity = capacity
        self._series = {}
        self._lock = threading.Lock()

    def series(self, name):
        with self._lock:
            store = self._series.get(name)
            if store is None:
                store = RingSeries(self.capacity)
                self._series[name] = store
            return store

    def get(self, name):
        with self._lock:
            return self._series.get(name)

    def record(self, name, timestamp, value):
        self.series(name).append(timestamp, value)

    def record_all(self, timestamp, values):
        """Append one sampling pass: ``{name: value}`` at `timestamp`."""
        for name, value in values.items():
            self.record(name, timestamp, value)

    def names(self):
        with self._lock:
            return sorted(self._series)

    def aggregates(self, seconds=None, count=None):
        """name -> windowed summary for every tracked family."""
        return {
            name: self.series(name).aggregate(seconds, count)
            for name in self.names()
        }
