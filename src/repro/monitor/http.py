"""The scrape endpoint: a stdlib HTTP server over a monitor.

Four routes, all read-only:

* ``/metrics``       — Prometheus text exposition (the scrape target);
* ``/snapshot.json`` — the full JSON snapshot (metrics, windowed
  aggregates, alert states);
* ``/alerts``        — just the alert states, JSON;
* ``/healthz``       — liveness probe.

The server binds ``127.0.0.1`` by default and requesting port 0 lets
the OS pick a free one — :meth:`MonitorServer.start` returns the
bound port so tests and the CLI can advertise it.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against ``server.monitor``."""

    server_version = "tee-perf-monitor/1.0"

    def do_GET(self):  # noqa: N802 — BaseHTTPRequestHandler's casing
        monitor = self.server.monitor
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            monitor.registry.counter(
                "monitor_scrapes_total",
                "Scrape requests served by the endpoint.",
            ).inc()
            self._reply(
                monitor.exposition().encode(), EXPOSITION_CONTENT_TYPE
            )
        elif path == "/snapshot.json":
            body = json.dumps(monitor.snapshot(), indent=2).encode()
            self._reply(body, "application/json")
        elif path == "/alerts":
            body = json.dumps(monitor.engine.as_dict(), indent=2).encode()
            self._reply(body, "application/json")
        elif path == "/healthz":
            self._reply(b"ok\n", "text/plain")
        else:
            self.send_error(404, "unknown path (try /metrics)")

    def _reply(self, body, content_type):
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        """Silence per-request stderr chatter; scrapes are counted in
        the registry instead."""


class MonitorServer:
    """Serve one monitor's surface on a background thread."""

    def __init__(self, monitor, port=0, host="127.0.0.1"):
        self.monitor = monitor
        self.host = host
        self.port = port
        self._httpd = None
        self._thread = None

    def start(self):
        """Bind and start serving; returns the actual bound port."""
        if self._httpd is not None:
            return self.port
        self._httpd = ThreadingHTTPServer(
            (self.host, self.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.monitor = self.monitor
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="tee-perf-monitor-http",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    @property
    def running(self):
        return self._httpd is not None

    def stop(self):
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join()
        self._httpd = None
        self._thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False
