"""The scrape endpoint: a stdlib HTTP server over a monitor.

Four routes, all read-only:

* ``/metrics``       — Prometheus text exposition (the scrape target);
* ``/snapshot.json`` — the full JSON snapshot (metrics, windowed
  aggregates, alert states);
* ``/alerts``        — just the alert states, JSON;
* ``/healthz``       — liveness probe.

The server binds ``127.0.0.1`` by default and requesting port 0 lets
the OS pick a free one — :meth:`MonitorServer.start` returns the
bound port so tests and the CLI can advertise it.

Service-duty hardening (the fleet daemon fronts its query surface
with this server, so it has to behave like one):

* unknown paths get a *JSON* error body naming the routes, not the
  stdlib's HTML error page;
* request threads are bounded (``max_threads``) — a scrape storm
  queues in the listen backlog instead of spawning unbounded threads;
* :meth:`MonitorServer.stop` is safe while requests are in flight:
  in-flight handlers finish (bounded by the thread cap), the accept
  loop stops, and the socket closes exactly once.

:class:`repro.fleet.http.FleetServer` extends the routing by
subclassing :class:`_Handler` and overriding :meth:`_Handler.route`.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Concurrent request threads a server runs at most, by default.
DEFAULT_MAX_THREADS = 8


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against ``server.monitor``."""

    server_version = "tee-perf-monitor/1.0"

    #: Shown in the JSON 404 body; subclasses extend.
    known_routes = ("/metrics", "/snapshot.json", "/alerts", "/healthz")

    def do_GET(self):  # noqa: N802 — BaseHTTPRequestHandler's casing
        path, _, rawquery = self.path.partition("?")
        query = dict(parse_qsl(rawquery))
        try:
            handled = self.route(path, query)
        except BrokenPipeError:  # client went away mid-reply
            return
        if not handled:
            self.send_json_error(
                404,
                f"unknown path {path!r}",
                routes=list(self.known_routes),
            )

    def route(self, path, query):
        """Serve `path` if this handler knows it; returns whether it
        did.  Subclasses override, falling back to ``super().route``.
        """
        monitor = self.server.monitor
        if path in ("/metrics", "/"):
            monitor.registry.counter(
                "monitor_scrapes_total",
                "Scrape requests served by the endpoint.",
            ).inc()
            self._reply(
                monitor.exposition().encode(), EXPOSITION_CONTENT_TYPE
            )
        elif path == "/snapshot.json":
            self.send_json(monitor.snapshot())
        elif path == "/alerts":
            self.send_json(monitor.engine.as_dict())
        elif path == "/healthz":
            self._reply(b"ok\n", "text/plain")
        else:
            return False
        return True

    def _reply(self, body, content_type, status=200):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def send_json(self, payload, status=200):
        body = json.dumps(payload, indent=2).encode()
        self._reply(body, "application/json", status=status)

    def send_json_error(self, status, message, **extra):
        """A machine-readable error body — this is a service endpoint,
        so even the failures are JSON."""
        payload = {"error": message, "status": status}
        payload.update(extra)
        self.send_json(payload, status=status)

    def log_message(self, *args):
        """Silence per-request stderr chatter; scrapes are counted in
        the registry instead."""


class _BoundedThreadingHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer with a cap on concurrent request threads.

    The accept loop blocks on a semaphore before spawning each
    request thread; the thread releases it when the handler finishes.
    Excess clients wait in the TCP backlog — bounded memory under a
    scrape storm, and ``shutdown()`` has at most ``max_threads``
    handlers to wait out.
    """

    # Wait for in-flight request threads on server_close(): this is
    # what makes stop-while-scraping clean rather than racy.
    daemon_threads = True
    block_on_close = True

    def __init__(self, address, handler, max_threads=DEFAULT_MAX_THREADS):
        if max_threads < 1:
            raise ValueError(
                f"max_threads must be >= 1: {max_threads}"
            )
        self.max_threads = max_threads
        self._slots = threading.BoundedSemaphore(max_threads)
        super().__init__(address, handler)

    def process_request(self, request, client_address):
        self._slots.acquire()
        try:
            super().process_request(request, client_address)
        except BaseException:
            self._slots.release()
            raise

    def process_request_thread(self, request, client_address):
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._slots.release()


class MonitorServer:
    """Serve one monitor's surface on a background thread."""

    #: Request handler; subclasses swap in extended routing.
    handler_class = _Handler

    def __init__(self, monitor, port=0, host="127.0.0.1",
                 max_threads=DEFAULT_MAX_THREADS):
        self.monitor = monitor
        self.host = host
        self.port = port
        self.max_threads = max_threads
        self._httpd = None
        self._thread = None
        self._stop_lock = threading.Lock()

    def start(self):
        """Bind and start serving; returns the actual bound port."""
        if self._httpd is not None:
            return self.port
        self._httpd = _BoundedThreadingHTTPServer(
            (self.host, self.port),
            self.handler_class,
            max_threads=self.max_threads,
        )
        self._httpd.monitor = self.monitor
        self._bind_context(self._httpd)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="tee-perf-monitor-http",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def _bind_context(self, httpd):
        """Attach whatever the handler reads off ``self.server``;
        subclasses add their own objects."""

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    @property
    def running(self):
        return self._httpd is not None

    def stop(self):
        """Stop accepting, wait out in-flight handlers, close the
        socket.  Idempotent and safe to call concurrently."""
        with self._stop_lock:
            httpd, thread = self._httpd, self._thread
            self._httpd = None
            self._thread = None
        if httpd is None:
            return
        httpd.shutdown()  # returns once the accept loop exits
        httpd.server_close()  # block_on_close: joins request threads
        thread.join()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False
