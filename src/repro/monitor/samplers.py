"""Pluggable samplers: how live sources land in the registry.

A sampler is a small adapter with a stable ``key`` (so re-attaching
replaces rather than duplicates) and one method, ``sample(registry)``,
that reads its source and writes the current values into the
registry's families.  The monitor polls every attached sampler from a
background host thread, so samplers must only perform reads that are
safe from *outside* the workload: plain attribute loads of ints and
floats (atomic enough under the GIL for monitoring purposes), never
scheduler interactions with the simulated machine.

The concrete samplers cover the sources the roadmap cares about:

* :class:`CounterSampler` — the software counter's tick total;
* :class:`RecorderSampler` — events recorded/dropped, log utilisation;
* :class:`TeeCostSampler` — the TEE cost model's transition and
  EPC-paging counters (:class:`repro.tee.env.EnvStats`);
* :class:`PipelineSampler` — :class:`repro.core.stats.PipelineStats`
  from an in-flight or completed analysis;
* :class:`KVStoreSampler` — the kvstore's ticker statistics;
* :class:`SpdkSampler` — the SPDK perf tool's I/O counters;
* :class:`CallbackSampler` — anything else, via a callable returning
  ``{name: value}``.
"""

from repro.monitor.metrics import sanitize


class Sampler:
    """Base sampler: a keyed source of metric updates."""

    #: Replacement key; samplers of the same key displace each other
    #: when attached to the same monitor.
    key = "sampler"

    def sample(self, registry):
        """Read the source and update `registry`."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}(key={self.key!r})"


class CounterSampler(Sampler):
    """The software counter (stage 2's clock), polled live.

    Works with both counter flavours: :class:`ThreadCounter` reads are
    a plain attribute load; :class:`VirtualCounter` reads normally
    require the calling thread to be *simulated*, so from the monitor
    thread we derive the tick total from the machine's thread-local
    times instead (a safe, monotone approximation of the same clock).
    """

    key = "counter"

    def __init__(self, counter):
        self.counter = counter

    def _ticks(self):
        counter = self.counter
        machine = getattr(counter, "machine", None)
        if machine is not None:  # VirtualCounter: host-safe derivation
            resolution = getattr(counter, "resolution_cycles", 1.0)
            latest = max(
                (t.local_time for t in machine._threads), default=0.0
            )
            return int(latest / resolution)
        try:
            return int(counter.read())
        except Exception:
            return 0

    def sample(self, registry):
        registry.counter(
            "counter_ticks_total",
            "Software-counter ticks observed since attach.",
        ).set_total(self._ticks())
        registry.gauge(
            "counter_running",
            "Whether the software counter loop is live (1) or not (0).",
        ).set(1 if getattr(self.counter, "running", False) else 0)
        try:
            resolution = self.counter.resolution_ns()
        except Exception:
            resolution = 0.0
        registry.gauge(
            "counter_resolution_ns",
            "Effective nanoseconds per software-counter tick.",
        ).set(resolution)


class RecorderSampler(Sampler):
    """Stage 2's recorder: what reached the shared log, what did not."""

    key = "recorder"

    def __init__(self, recorder):
        self.recorder = recorder

    def sample(self, registry):
        recorder = self.recorder
        recorded = recorder.events_recorded()
        dropped = recorder.events_dropped()
        registry.counter(
            "recorder_events_recorded_total",
            "Events the recorder committed to the shared log.",
        ).set_total(recorded)
        registry.counter(
            "recorder_events_dropped_total",
            "Events lost at record time (log reservation overflow).",
        ).set_total(dropped)
        attempted = recorded + dropped
        registry.gauge(
            "recorder_drop_ratio",
            "Fraction of attempted events dropped at record time.",
        ).set(dropped / attempted if attempted else 0.0)
        log = recorder.log
        registry.gauge(
            "recorder_log_utilization",
            "Occupied fraction of the shared log's capacity.",
        ).set(len(log) / log.capacity if log is not None else 0.0)
        registry.gauge(
            "recorder_active",
            "Whether tracing is currently active (the log's flag).",
        ).set(1 if log is not None and log.active else 0)
        if log is not None and getattr(log, "sealed", False):
            registry.counter(
                "recorder_segments_sealed_total",
                "Sealed writer blocks committed with a CRC record.",
            ).set_total(len(log.seals))
            registry.counter(
                "recorder_seal_watermark",
                "Entries in the contiguous sealed prefix (header "
                "word 7).",
            ).set_total(log.seal_watermark)


class TeeCostSampler(Sampler):
    """The TEE cost model: transitions, syscalls, EPC paging."""

    key = "tee"

    def __init__(self, env):
        self.env = env

    def sample(self, registry):
        stats = self.env.stats
        for field, help_text in (
            ("syscalls", "System calls charged by the environment."),
            ("ocalls", "Synchronous world switches out of the TEE."),
            ("ecalls", "World switches into the TEE."),
            ("aex", "Asynchronous enclave exits."),
            ("bytes_read", "Bytes read through the cost model."),
            ("bytes_written", "Bytes written through the cost model."),
        ):
            registry.counter(
                f"tee_{field}_total", help_text
            ).set_total(getattr(stats, field))
        registry.counter(
            "tee_transition_cycles_total",
            "Cycles spent in world transitions (ocall+ecall+AEX).",
        ).set_total(int(stats.transition_cycles))
        memory = getattr(self.env, "memory", None)
        if memory is not None:
            registry.counter(
                "tee_epc_page_faults_total",
                "Expected secure page swaps past the EPC limit.",
            ).set_total(int(memory.page_faults))
            registry.gauge(
                "tee_epc_allocated_bytes",
                "Enclave memory currently allocated.",
            ).set(memory.allocated)
            registry.gauge(
                "tee_epc_peak_bytes",
                "High-water mark of enclave memory allocation.",
            ).set(memory.peak_allocated)


class PipelineSampler(Sampler):
    """Stage 3's :class:`PipelineStats`, live or post-analysis.

    `source` is either a stats object or a zero-argument callable
    returning one (or ``None`` while no analysis is in flight).
    """

    key = "pipeline"

    def __init__(self, source):
        self.source = source

    def _stats(self):
        source = self.source
        return source() if callable(source) else source

    def sample(self, registry):
        stats = self._stats()
        if stats is None:
            return
        for field, help_text in (
            ("entries_ingested", "Log entries decoded by the analyzer."),
            ("entries_dismissed",
             "Returns dismissed for want of a matching open frame."),
            ("frames_truncated",
             "Calls closed at the thread's last observed counter."),
            ("chunks_processed", "Fixed-size ingestion chunks decoded."),
            ("shards_analyzed", "Per-thread shards reconstructed."),
            ("shards_vectorised",
             "Shards reconstructed by the vector engine's array passes."),
            ("shards_fallback",
             "Anomalous shards that fell back to the sequential loop."),
            ("segments_sealed",
             "Sealed writer blocks (CRC seal records) observed."),
            ("entries_salvaged",
             "Entries recovery rebuilt from a damaged log."),
            ("entries_quarantined",
             "Entries recovery set aside "
             "(torn/truncated/unsealed/CRC)."),
            ("crc_failures",
             "Sealed segments whose CRC32 no longer matched."),
            ("bytes_written",
             "Fixed-width entry bytes committed to the shared log."),
            ("bytes_on_disk",
             "Bytes the persisted log image occupies."),
        ):
            registry.counter(
                f"pipeline_{field}_total", help_text
            ).set_total(getattr(stats, field))
        registry.gauge(
            "pipeline_vectorised",
            "1 when the resolved reconstruction engine is 'vector'.",
        ).set(1 if stats.engine == "vector" else 0)
        registry.gauge(
            "pipeline_cache_hit_rate",
            "Fraction of symbol resolutions served from the LRU.",
        ).set(stats.cache_hit_rate)
        registry.gauge(
            "pipeline_ingest_rate_entries_per_tick",
            "Entries ingested per software-counter tick.",
        ).set(stats.ingest_rate)
        registry.gauge(
            "pipeline_compression_ratio",
            "Entry bytes per persisted byte (rev 1.2 columnar).",
        ).set(stats.compression_ratio)


class KVStoreSampler(Sampler):
    """The kvstore's DB-wide ticker counters, one family per ticker."""

    key = "kvstore"

    def __init__(self, statistics):
        self.statistics = statistics

    def sample(self, registry):
        for name, value in self.statistics.tickers.items():
            registry.counter(
                f"kvstore_{sanitize(name)}_total",
                f"RocksDB-style ticker {name!r}.",
            ).set_total(value)


class SpdkSampler(Sampler):
    """The SPDK perf tool's I/O counters while a run is in flight."""

    key = "spdk"

    def __init__(self, perf):
        self.perf = perf

    def sample(self, registry):
        perf = self.perf
        for field, help_text in (
            ("submitted", "I/O commands submitted to the queue pair."),
            ("completed", "I/O completions reaped."),
            ("reads", "Read commands completed."),
            ("writes", "Write commands completed."),
        ):
            registry.counter(
                f"spdk_io_{field}_total", help_text
            ).set_total(getattr(perf, field, 0))
        in_flight = getattr(perf, "submitted", 0) - getattr(
            perf, "completed", 0
        )
        registry.gauge(
            "spdk_io_in_flight",
            "Commands submitted but not yet completed.",
        ).set(max(0, in_flight))


class CallbackSampler(Sampler):
    """Adapter for ad-hoc sources: ``fn() -> {metric_name: value}``.

    Values land as gauges under ``<prefix>_<name>``; use a concrete
    sampler when counter semantics (monotonicity) matter.
    """

    def __init__(self, key, fn, help_text="Ad-hoc sampled value."):
        self.key = key
        self.fn = fn
        self.help_text = help_text

    def sample(self, registry):
        for name, value in self.fn().items():
            registry.gauge(
                f"{sanitize(self.key)}_{sanitize(name)}", self.help_text
            ).set(value)
