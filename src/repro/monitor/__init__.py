"""Live monitoring: TEEMon-style continuous visibility for TEE-Perf.

The offline pipeline (record -> persist -> analyze) answers "what
happened"; this subsystem answers "what is happening".  A
:class:`Monitor` polls pluggable :class:`Sampler`\\ s — the software
counter, the recorder's drop accounting, the TEE cost model, in-flight
:class:`~repro.core.stats.PipelineStats`, workload statistics — into a
:class:`MetricRegistry`, retains ring-buffer time series with windowed
aggregation, serves Prometheus-format scrapes over stdlib HTTP
(:class:`MonitorServer`), and drives threshold-with-hysteresis
:class:`AlertRule`\\ s through pluggable notification sinks.

Hookup points: ``Recorder(..., monitor=...)``,
``TEEPerf.simulated(..., monitor=...)``, ``tee-perf monitor`` on the
command line, and ``Experiment(..., monitor=...)`` for per-run
snapshots.  See docs/monitoring.md for the metric catalogue.
"""

from repro.monitor.alerts import (
    FIRING,
    OK,
    PENDING,
    AlertEngine,
    AlertEvent,
    AlertRule,
    AlertState,
    CallbackSink,
    ConsoleSink,
    MemorySink,
    NotificationSink,
    RuleSyntaxError,
    parse_rule,
    parse_rules,
)
from repro.monitor.http import EXPOSITION_CONTENT_TYPE, MonitorServer
from repro.monitor.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    sanitize,
)
from repro.monitor.monitor import DEFAULT_INTERVAL, Monitor
from repro.monitor.samplers import (
    CallbackSampler,
    CounterSampler,
    KVStoreSampler,
    PipelineSampler,
    RecorderSampler,
    Sampler,
    SpdkSampler,
    TeeCostSampler,
)
from repro.monitor.series import RingSeries, SeriesStore

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "AlertState",
    "CallbackSampler",
    "CallbackSink",
    "ConsoleSink",
    "Counter",
    "CounterSampler",
    "DEFAULT_INTERVAL",
    "EXPOSITION_CONTENT_TYPE",
    "FIRING",
    "Gauge",
    "Histogram",
    "KVStoreSampler",
    "MemorySink",
    "MetricRegistry",
    "Monitor",
    "MonitorServer",
    "NotificationSink",
    "OK",
    "PENDING",
    "PipelineSampler",
    "RecorderSampler",
    "RingSeries",
    "RuleSyntaxError",
    "Sampler",
    "SeriesStore",
    "SpdkSampler",
    "TeeCostSampler",
    "parse_rule",
    "parse_rules",
    "sanitize",
]
