"""The monitor: samplers + registry + time series + alerts, on a clock.

One :class:`Monitor` owns the whole live surface: a background host
thread polls every attached sampler at a fixed interval, appends the
registry's values into the ring-buffer series store, evaluates the
alert rules, and keeps its own self-metrics honest (samples taken,
sampler errors, pass duration histogram).  Nothing here touches the
simulated machine's scheduler — samplers are read-only adapters — so
attaching a monitor to a running workload changes the workload's
virtual timeline not at all, and its wall-clock cost is bounded by
``benchmarks/bench_monitor_overhead.py``.
"""

import threading
import time

from repro.monitor.alerts import AlertEngine
from repro.monitor.metrics import DEFAULT_PREFIX, MetricRegistry
from repro.monitor.series import SeriesStore

DEFAULT_INTERVAL = 0.25  # seconds between sampling passes


class Monitor:
    """The live-monitoring orchestrator.

    Parameters
    ----------
    interval:
        Seconds between background sampling passes.
    series_capacity:
        Ring-buffer depth per metric family.
    clock:
        Timestamp source (seconds); injectable for deterministic
        tests.  Defaults to :func:`time.monotonic`.
    rules, sinks:
        Initial alert rules and notification sinks.
    """

    def __init__(
        self,
        interval=DEFAULT_INTERVAL,
        series_capacity=512,
        clock=time.monotonic,
        rules=(),
        sinks=(),
        prefix=DEFAULT_PREFIX,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.interval = interval
        self.clock = clock
        self.prefix = prefix
        self.registry = MetricRegistry()
        self.series = SeriesStore(series_capacity)
        self.engine = AlertEngine(rules, sinks)
        self._samplers = {}
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._thread = None
        self._started_at = None

    # ------------------------------------------------------------------
    # Sampler management

    def attach(self, sampler, key=None):
        """Attach a sampler; a sampler with the same key is replaced.

        Replacement (rather than accumulation) is what makes recorder
        hookup idempotent: each new recording run attaches fresh
        samplers for its recorder/counter and displaces the previous
        run's, while the metric families — and their time series —
        carry straight through.
        """
        key = key or getattr(sampler, "key", None) or repr(sampler)
        with self._lock:
            self._samplers[key] = sampler
        return sampler

    def detach(self, key):
        """Detach by key (or by the sampler object itself)."""
        key = getattr(key, "key", key)
        with self._lock:
            return self._samplers.pop(key, None)

    def samplers(self):
        with self._lock:
            return dict(self._samplers)

    # ------------------------------------------------------------------
    # Alerting passthrough

    def add_rule(self, rule):
        return self.engine.add_rule(rule)

    def add_rules(self, rules):
        for rule in rules:
            self.engine.add_rule(rule)

    def add_sink(self, sink):
        return self.engine.add_sink(sink)

    # ------------------------------------------------------------------
    # The sampling pass

    def poll_once(self):
        """One synchronous sampling pass; safe to call from any thread
        (the background loop and explicit callers serialise on a
        lock).  Returns the alert transitions the pass produced."""
        with self._lock:
            started = self.clock()
            samplers = list(self._samplers.values())
            errors = 0
            for sampler in samplers:
                try:
                    sampler.sample(self.registry)
                except Exception:
                    errors = errors + 1
            self.registry.counter(
                "monitor_samples_total",
                "Sampling passes completed by the monitor.",
            ).inc()
            if errors:
                self.registry.counter(
                    "monitor_sampler_errors_total",
                    "Sampler invocations that raised.",
                ).inc(errors)
            duration = max(0.0, self.clock() - started)
            self.registry.histogram(
                "monitor_sample_duration_seconds",
                "Wall-clock duration of one sampling pass.",
            ).observe(duration)
            values = self.registry.values()
            self.series.record_all(started, values)
            events = self.engine.evaluate(values, started)
            self.registry.gauge(
                "monitor_alerts_firing",
                "Alert rules currently in the firing state.",
            ).set(len(self.engine.firing()))
            return events

    # ------------------------------------------------------------------
    # Background thread

    @property
    def running(self):
        return self._thread is not None

    def start(self):
        """Start the background sampling thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._wake.clear()
            self._started_at = self.clock()
            self._thread = threading.Thread(
                target=self._loop, name="tee-perf-monitor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, final_poll=True):
        """Stop the background thread; by default take one last pass so
        the series capture the source's terminal state."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._wake.set()
            thread.join()
        if final_poll:
            self.poll_once()

    def _loop(self):
        while True:
            if self._wake.wait(self.interval):
                return
            if self._thread is None:
                return
            self.poll_once()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Output surfaces

    def exposition(self):
        """The Prometheus text scrape body."""
        return self.registry.to_exposition(self.prefix)

    def snapshot(self, window_seconds=None):
        """JSON-ready state: metrics, windowed aggregates, alerts."""
        return {
            "timestamp": self.clock(),
            "interval": self.interval,
            "uptime": (
                self.clock() - self._started_at
                if self._started_at is not None
                else 0.0
            ),
            "metrics": self.registry.snapshot(),
            "windows": self.series.aggregates(seconds=window_seconds),
            "alerts": self.engine.as_dict(),
        }
