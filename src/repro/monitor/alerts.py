"""Alert rules: thresholds with hysteresis over sampled metrics.

A rule watches one metric family and moves through three states::

    ok -> pending -> firing -> ok

It *fires* only after the threshold has been breached for
``for_windows`` consecutive sampling passes (the "for 3 windows" of
"drop rate > 1% for 3 windows"), and once firing it *resolves* only
when the value crosses the ``clear`` threshold — hysteresis, so a
metric oscillating around the trigger point does not flap
notifications.

Rules can be built in code or parsed from the small text syntax the
``tee-perf monitor --rules`` flag accepts, one rule per line::

    # name:  metric  op  threshold  [for N] [clear X]
    drops:   recorder_drop_ratio > 0.01 for 3 clear 0.001
    stalls:  counter_running < 1

Notification is pluggable: a :class:`NotificationSink` receives one
:class:`AlertEvent` per transition (fired / resolved).
"""

from dataclasses import dataclass, field

OK = "ok"
PENDING = "pending"
FIRING = "firing"

_OPS = {
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
}


class RuleSyntaxError(ValueError):
    """A rule line that does not parse."""


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over a metric family.

    ``clear`` defaults to the trigger threshold itself (no
    hysteresis); set it strictly on the OK side of the threshold to
    require the metric to recover past it before the alert resolves.
    """

    name: str
    metric: str
    op: str
    threshold: float
    for_windows: int = 1
    clear: float = None

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(
                f"unknown operator {self.op!r} (known: {sorted(_OPS)})"
            )
        if self.for_windows < 1:
            raise ValueError(
                f"for_windows must be >= 1: {self.for_windows}"
            )

    def breached(self, value):
        return _OPS[self.op](value, self.threshold)

    def recovered(self, value):
        clear = self.threshold if self.clear is None else self.clear
        return not _OPS[self.op](value, clear)

    def describe(self):
        text = f"{self.metric} {self.op} {self.threshold:g}"
        if self.for_windows > 1:
            text += f" for {self.for_windows}"
        if self.clear is not None:
            text += f" clear {self.clear:g}"
        return text


@dataclass
class AlertEvent:
    """One state transition, delivered to every sink."""

    rule: AlertRule
    state: str  # FIRING or OK (a resolve)
    value: float
    timestamp: float

    def describe(self):
        verb = "FIRING" if self.state == FIRING else "resolved"
        return (
            f"[{verb}] {self.rule.name}: {self.rule.describe()} "
            f"(value={self.value:g} at t={self.timestamp:.3f})"
        )


@dataclass
class AlertState:
    """Mutable evaluation state for one rule."""

    rule: AlertRule
    state: str = OK
    breaches: int = 0
    value: float = None
    fired_at: float = None

    def as_dict(self):
        return {
            "name": self.rule.name,
            "rule": self.rule.describe(),
            "state": self.state,
            "breaches": self.breaches,
            "value": self.value,
            "fired_at": self.fired_at,
        }


class NotificationSink:
    """Base sink: receives every fired/resolved transition."""

    def notify(self, event):
        raise NotImplementedError


class MemorySink(NotificationSink):
    """Collects events in memory (tests, snapshots)."""

    def __init__(self):
        self.events = []

    def notify(self, event):
        self.events.append(event)

    def fired(self):
        return [e for e in self.events if e.state == FIRING]


class CallbackSink(NotificationSink):
    """Routes events to a callable (webhooks, logging adapters)."""

    def __init__(self, fn):
        self.fn = fn

    def notify(self, event):
        self.fn(event)


class ConsoleSink(NotificationSink):
    """Prints transitions to a stream (the CLI's default)."""

    def __init__(self, stream=None):
        self.stream = stream

    def notify(self, event):
        import sys

        print(event.describe(), file=self.stream or sys.stderr)


class AlertEngine:
    """Evaluates every rule against each sampling pass."""

    def __init__(self, rules=(), sinks=()):
        self._states = {}
        self.sinks = list(sinks)
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule):
        if rule.name in self._states:
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._states[rule.name] = AlertState(rule)
        return rule

    def add_sink(self, sink):
        self.sinks.append(sink)
        return sink

    @property
    def rules(self):
        return [s.rule for s in self._states.values()]

    def states(self):
        return list(self._states.values())

    def firing(self):
        return [s for s in self._states.values() if s.state == FIRING]

    def as_dict(self):
        return [s.as_dict() for s in self._states.values()]

    def evaluate(self, values, timestamp):
        """Advance every rule against ``{metric: value}``; returns the
        transitions (fired or resolved) this pass produced.

        A rule whose metric is absent from `values` holds its state —
        a sampler that has not run yet is not evidence of recovery.
        """
        events = []
        for state in self._states.values():
            rule = state.rule
            if rule.metric not in values:
                continue
            value = float(values[rule.metric])
            state.value = value
            if state.state == FIRING:
                if rule.recovered(value):
                    state.state = OK
                    state.breaches = 0
                    state.fired_at = None
                    events.append(
                        AlertEvent(rule, OK, value, timestamp)
                    )
            elif rule.breached(value):
                state.breaches += 1
                if state.breaches >= rule.for_windows:
                    state.state = FIRING
                    state.fired_at = timestamp
                    events.append(
                        AlertEvent(rule, FIRING, value, timestamp)
                    )
                else:
                    state.state = PENDING
            else:
                state.state = OK
                state.breaches = 0
        for event in events:
            for sink in self.sinks:
                sink.notify(event)
        return events


# ----------------------------------------------------------------------
# The text syntax


def parse_rule(line, lineno=0):
    """Parse one ``name: metric op threshold [for N] [clear X]`` line."""
    where = f"rule line {lineno}" if lineno else "rule"
    name, sep, rest = line.partition(":")
    if not sep or not name.strip():
        raise RuleSyntaxError(f"{where}: expected 'name: metric op ...'")
    tokens = rest.split()
    if len(tokens) < 3:
        raise RuleSyntaxError(
            f"{where}: expected 'metric op threshold', got {rest!r}"
        )
    metric, op = tokens[0], tokens[1]
    if op not in _OPS:
        raise RuleSyntaxError(f"{where}: unknown operator {op!r}")
    try:
        threshold = float(tokens[2])
    except ValueError:
        raise RuleSyntaxError(
            f"{where}: threshold is not a number: {tokens[2]!r}"
        ) from None
    for_windows, clear = 1, None
    rest_tokens = tokens[3:]
    while rest_tokens:
        keyword = rest_tokens.pop(0)
        if not rest_tokens:
            raise RuleSyntaxError(f"{where}: {keyword!r} needs a value")
        raw = rest_tokens.pop(0)
        try:
            if keyword == "for":
                for_windows = int(raw)
            elif keyword == "clear":
                clear = float(raw)
            else:
                raise RuleSyntaxError(
                    f"{where}: unknown keyword {keyword!r}"
                )
        except ValueError:
            raise RuleSyntaxError(
                f"{where}: bad value for {keyword!r}: {raw!r}"
            ) from None
    try:
        return AlertRule(
            name.strip(), metric, op, threshold, for_windows, clear
        )
    except ValueError as exc:
        raise RuleSyntaxError(f"{where}: {exc}") from None


def parse_rules(text):
    """Parse a rules file: one rule per line, ``#`` comments allowed."""
    rules = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rules.append(parse_rule(line, lineno))
    return rules
