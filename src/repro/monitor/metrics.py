"""Metric primitives: counters, gauges, histograms, and their registry.

TEEMon's observation is that a TEE profiler becomes operationally
useful the moment its counters are *live* — scrapeable while the
workload runs instead of summarised after it.  These classes are the
in-process half of that surface: samplers (``repro.monitor.samplers``)
write into a :class:`MetricRegistry`, and the scrape endpoint
(``repro.monitor.http``) reads it out in the same Prometheus text
conventions :func:`repro.core.export.to_metrics` already established
(``# HELP``/``# TYPE`` per family, ``teeperf_`` prefix).

Everything is stdlib-only and thread-safe: sampler threads, the HTTP
server, and the workload all touch the registry concurrently.
"""

import threading

DEFAULT_PREFIX = "teeperf"

# Upper bounds (seconds) for the default histogram, tuned for sampler
# pass durations: sub-millisecond on the happy path, tailing into
# tens of milliseconds when a sampler walks a large structure.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def valid_name(name):
    """Prometheus-compatible metric/family name (we keep it strict)."""
    return bool(name) and name[0].isalpha() and set(name) <= _NAME_OK


def sanitize(name):
    """Coerce an arbitrary label (e.g. a kvstore ticker ``get.hit``)
    into a valid metric-name fragment."""
    cleaned = "".join(
        ch if ch in _NAME_OK else "_" for ch in name.lower()
    )
    return cleaned.strip("_") or "metric"


class Metric:
    """Base class: a named family with HELP text and a kind."""

    kind = None

    def __init__(self, name, help_text):
        if not valid_name(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def value(self):
        raise NotImplementedError

    def expose(self, prefix=DEFAULT_PREFIX):
        """The family's exposition lines (HELP, TYPE, samples)."""
        full = f"{prefix}_{self.name}"
        return [
            f"# HELP {full} {self.help}",
            f"# TYPE {full} {self.kind}",
        ] + self._sample_lines(full)

    def _sample_lines(self, full):
        return [f"{full} {format_value(self.value())}"]

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r}, {self.value()!r})"


class Counter(Metric):
    """A monotonically non-decreasing total.

    Samplers usually *observe* an absolute total maintained elsewhere
    (the recorder's event count, the env's ocall count), so alongside
    ``inc`` there is :meth:`set_total`, which accepts the polled value
    but refuses to go backwards — a re-attached source restarting from
    zero keeps the previous high-water mark rather than corrupting
    rate computations downstream.
    """

    kind = COUNTER

    def __init__(self, name, help_text):
        super().__init__(name, help_text)
        self._value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        with self._lock:
            self._value += amount

    def set_total(self, total):
        with self._lock:
            if total > self._value:
                self._value = total

    def value(self):
        with self._lock:
            return self._value


class Gauge(Metric):
    """An instantaneous value that can move in either direction."""

    kind = GAUGE

    def __init__(self, name, help_text):
        super().__init__(name, help_text)
        self._value = 0.0

    def set(self, value):
        with self._lock:
            self._value = value

    def add(self, amount):
        with self._lock:
            self._value += amount

    def value(self):
        with self._lock:
            return self._value


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` files a value into every bucket whose upper bound
    admits it; exposition emits ``_bucket{le=...}``, ``_sum`` and
    ``_count`` series plus the implicit ``+Inf`` bucket.
    """

    kind = HISTOGRAM

    def __init__(self, name, help_text, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value):
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
            self._counts[-1] += 1

    def value(self):
        """The running sum (``_sum``); mirrors the other kinds."""
        with self._lock:
            return self._sum

    @property
    def count(self):
        with self._lock:
            return self._count

    def percentile(self, pct):
        """Bucket-resolution percentile estimate (0-100)."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = self._count * pct / 100.0
            for i, bound in enumerate(self.bounds):
                if self._counts[i] >= target:
                    return bound
            return self.bounds[-1]

    def _sample_lines(self, full):
        with self._lock:
            lines = [
                f'{full}_bucket{{le="{format_value(b)}"}} {self._counts[i]}'
                for i, b in enumerate(self.bounds)
            ]
            lines.append(f'{full}_bucket{{le="+Inf"}} {self._counts[-1]}')
            lines.append(f"{full}_sum {format_value(self._sum)}")
            lines.append(f"{full}_count {self._count}")
            return lines


def format_value(value):
    """Exposition-friendly number: integers stay bare, floats get a
    compact repr (no exponent surprises for the usual magnitudes)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricRegistry:
    """All live metric families, keyed by (unprefixed) name.

    ``counter``/``gauge``/``histogram`` are get-or-create so samplers
    can run statelessly; asking for an existing name with a different
    kind is an error, because it would silently fork the family.
    """

    def __init__(self):
        self._metrics = {}
        self._lock = threading.RLock()

    # -- creation -------------------------------------------------------

    def counter(self, name, help_text=""):
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name, help_text=""):
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS):
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def _get_or_create(self, cls, name, help_text, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            return metric

    # -- lookup ---------------------------------------------------------

    def get(self, name):
        with self._lock:
            return self._metrics.get(name)

    def value(self, name, default=None):
        metric = self.get(name)
        return metric.value() if metric is not None else default

    def names(self):
        with self._lock:
            return sorted(self._metrics)

    def __len__(self):
        with self._lock:
            return len(self._metrics)

    def __iter__(self):
        with self._lock:
            items = sorted(self._metrics.items())
        return iter(metric for _, metric in items)

    # -- output ---------------------------------------------------------

    def values(self):
        """name -> current scalar value for every family."""
        return {metric.name: metric.value() for metric in self}

    def snapshot(self):
        """JSON-ready description of every family."""
        out = {}
        for metric in self:
            entry = {
                "kind": metric.kind,
                "help": metric.help,
                "value": metric.value(),
            }
            if isinstance(metric, Histogram):
                entry["count"] = metric.count
                entry["p50"] = metric.percentile(50)
                entry["p95"] = metric.percentile(95)
            out[metric.name] = entry
        return out

    def to_exposition(self, prefix=DEFAULT_PREFIX):
        """Prometheus text format for every family, sorted by name."""
        lines = []
        for metric in self:
            lines.extend(metric.expose(prefix))
        return "\n".join(lines) + "\n"
