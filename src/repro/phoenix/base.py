"""Shared map-reduce scaffolding for the Phoenix workloads.

Phoenix 2.0 (Ranger et al., HPCA'07) structures every benchmark as
splitter -> parallel map workers -> merge/reduce.  The subclasses here
keep that shape: ``run`` splits the input, spawns one simulated thread
per worker, each worker maps its chunk through the workload's kernel
functions (the instrumented call surface Figure 4's overheads come
from), and results merge under a lock.

Per-kernel cycle costs are per-workload constants, calibrated in
``repro/phoenix/calibration.py`` so each benchmark's *call rate*
matches the regime the paper's Figure 4 implies (string_match calls a
tiny kernel per key; linear_regression does all its work inside one
function per chunk).
"""

from repro.machine import SimLock


class PhoenixWorkload:
    """Base class: owns machine/env, workers, and the merge lock."""

    NAME = "phoenix"

    def __init__(self, machine, env, nworkers=4, seed=0):
        if nworkers < 1:
            raise ValueError(f"need at least one worker: {nworkers}")
        self.machine = machine
        self.env = env
        self.nworkers = nworkers
        self.seed = seed
        self.merge_lock = SimLock(name=f"{self.NAME}-merge")
        self.result = None

    # -- pieces subclasses implement -----------------------------------

    def split(self):
        """Return the list of per-worker input chunks."""
        raise NotImplementedError

    def map_chunk(self, chunk):
        """Process one chunk; returns the worker's partial result."""
        raise NotImplementedError

    def combine(self, partials):
        """Merge the partial results into the final answer."""
        raise NotImplementedError

    # -- the fixed orchestration ----------------------------------------

    def execute(self):
        """Split, spawn workers, gather, combine.  Not instrumented
        itself (subclasses expose an instrumented ``run`` wrapper)."""
        chunks = self.split()
        partials = [None] * len(chunks)

        def worker(index, chunk):
            partial = self.map_chunk(chunk)
            with self.merge_lock:
                partials[index] = partial

        threads = [
            self.machine.spawn(worker, i, chunk, name=f"{self.NAME}-w{i}")
            for i, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.join()
        self.result = self.combine(partials)
        return self.result

    def even_slices(self, n_items):
        """Split ``range(n_items)`` into nworkers near-even slices."""
        per = n_items // self.nworkers
        extra = n_items % self.nworkers
        slices = []
        start = 0
        for i in range(self.nworkers):
            size = per + (1 if i < extra else 0)
            slices.append((start, start + size))
            start += size
        return [s for s in slices if s[1] > s[0]]
