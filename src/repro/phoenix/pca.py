"""Phoenix pca: mean and covariance matrix of a sample matrix.

Workers compute per-column means, then covariance entries for their
share of the (upper-triangular) column pairs, one kernel call per
pair.  (Not part of Figure 4's five bars; included for Phoenix 2.0
completeness.)
"""

import numpy as np

from repro.core import symbol
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_ROWS = 256
DEFAULT_COLS = 64


class PCA(PhoenixWorkload):
    NAME = "pca"

    def __init__(
        self,
        machine,
        env,
        rows=DEFAULT_ROWS,
        cols=DEFAULT_COLS,
        nworkers=4,
        seed=0,
    ):
        super().__init__(machine, env, nworkers, seed)
        self.samples = datasets.samples_matrix(rows, cols, seed=seed)
        self.rows = rows
        self.cols = cols
        self.means = None
        self.env.alloc(self.samples.nbytes)

    @symbol("pca")
    def run(self):
        self.means = self.compute_means()
        return self.execute()

    @symbol("pca_mean")
    def compute_means(self):
        self.env.compute(self.rows * self.cols * 2)
        self.env.mem_read(self.samples.nbytes)
        return self.samples.mean(axis=0)

    def split(self):
        pairs = [
            (i, j) for i in range(self.cols) for j in range(i, self.cols)
        ]
        slices = self.even_slices(len(pairs))
        return [pairs[a:b] for a, b in slices]

    @symbol("pca_map")
    def map_chunk(self, chunk):
        return [(i, j, self.cov_entry(i, j)) for i, j in chunk]

    @symbol("pca_cov_entry")
    def cov_entry(self, i, j):
        """The kernel: one covariance entry over all rows."""
        self.env.compute(self.rows * calibration.PCA_ELEMENT_CYCLES)
        self.env.mem_read(self.rows * 16)
        a = self.samples[:, i] - self.means[i]
        b = self.samples[:, j] - self.means[j]
        return float((a @ b) / (self.rows - 1))

    @symbol("pca_reduce")
    def combine(self, partials):
        self.env.compute(self.cols * self.cols)
        cov = np.zeros((self.cols, self.cols))
        for partial in partials:
            for i, j, value in partial:
                cov[i, j] = cov[j, i] = value
        return cov
