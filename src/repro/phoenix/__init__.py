"""The Phoenix 2.0 multithreaded benchmark suite, reimplemented.

Seven map-reduce workloads (five of which form Figure 4 of the paper,
plus kmeans and pca for suite completeness), synthetic dataset
generators, and runners that execute a workload under no profiler,
under the Linux-perf model, or under TEE-Perf.
"""

from repro.phoenix.base import PhoenixWorkload
from repro.phoenix.histogram import Histogram
from repro.phoenix.kmeans import KMeans
from repro.phoenix.linear_regression import LinearRegression
from repro.phoenix.matrix_multiply import MatrixMultiply
from repro.phoenix.pca import PCA
from repro.phoenix.runner import (
    ALL_WORKLOADS,
    FIGURE4_WORKLOADS,
    RunResult,
    overhead_vs_perf,
    run_baseline,
    run_perf,
    run_teeperf,
    workload_by_name,
)
from repro.phoenix.reverse_index import ReverseIndex
from repro.phoenix.string_match import StringMatch
from repro.phoenix.word_count import WordCount

__all__ = [
    "ALL_WORKLOADS",
    "FIGURE4_WORKLOADS",
    "Histogram",
    "KMeans",
    "LinearRegression",
    "MatrixMultiply",
    "PCA",
    "PhoenixWorkload",
    "ReverseIndex",
    "RunResult",
    "StringMatch",
    "WordCount",
    "overhead_vs_perf",
    "run_baseline",
    "run_perf",
    "run_teeperf",
    "workload_by_name",
]
