"""Phoenix string_match: find encrypted keys in a key file.

The original scans a file of candidate keys and checks each against a
handful of target keys ("bradley", "gaddafi", ... encrypted) by hashing
and comparing.  The per-key kernel is tiny, so the benchmark's function
call rate is the highest in the suite — which is exactly why it is the
paper's worst case for TEE-Perf (5.7x the perf runtime in Figure 4).
"""

from repro.core import symbol
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_KEYS = 60_000
N_TARGETS = 4


class StringMatch(PhoenixWorkload):
    NAME = "string_match"

    def __init__(self, machine, env, n_keys=DEFAULT_KEYS, nworkers=4, seed=0):
        super().__init__(machine, env, nworkers, seed)
        self.keys = datasets.key_file(n_keys, seed=seed)
        # Targets drawn from the file so matches actually occur.
        stride = max(1, n_keys // N_TARGETS)
        self.targets = frozenset(
            self._encrypt(self.keys[i * stride])
            for i in range(min(N_TARGETS, n_keys))
        )
        self.env.alloc(n_keys * calibration.SM_KEY_BYTES)

    # The "encryption" of the original is a toy transform too; a
    # translate table keeps the per-key Python cost at C speed.
    _ENC_TABLE = bytes(((b * 7 + 3) & 0xFF) for b in range(256))

    @classmethod
    def _encrypt(cls, key):
        return key.translate(cls._ENC_TABLE)

    @symbol("string_match")
    def run(self):
        return self.execute()

    def split(self):
        return self.even_slices(len(self.keys))

    @symbol("sm_map")
    def map_chunk(self, chunk):
        start, end = chunk
        found = 0
        for index in range(start, end):
            found += self.match_key(self.keys[index])
        return found

    @symbol("sm_match_key")
    def match_key(self, key):
        """The hot kernel: encrypt one key and compare to the targets."""
        self.env.compute(calibration.SM_HASH_CYCLES)
        self.env.mem_read(calibration.SM_KEY_BYTES)
        return 1 if self._encrypt(key) in self.targets else 0

    @symbol("sm_reduce")
    def combine(self, partials):
        self.env.compute(200)
        return sum(partials)
