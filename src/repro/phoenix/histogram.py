"""Phoenix histogram: per-channel colour histogram of a bitmap.

Workers walk their pixel range in small blocks, calling the block
kernel once per block to update three 256-bucket histograms.  Moderate
call rate — a mid-field bar in Figure 4.
"""

import numpy as np

from repro.core import symbol
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_PIXELS = 1_000_000


class Histogram(PhoenixWorkload):
    NAME = "histogram"

    def __init__(
        self, machine, env, n_pixels=DEFAULT_PIXELS, nworkers=4, seed=0
    ):
        super().__init__(machine, env, nworkers, seed)
        self.pixels = datasets.pixels(n_pixels, seed=seed)
        self.env.alloc(self.pixels.nbytes)

    @symbol("histogram")
    def run(self):
        return self.execute()

    def split(self):
        return self.even_slices(len(self.pixels))

    @symbol("hist_map")
    def map_chunk(self, chunk):
        start, end = chunk
        local = np.zeros((3, 256), dtype=np.int64)
        block = calibration.HIST_BLOCK_PIXELS
        for offset in range(start, end, block):
            self.update_block(local, offset, min(offset + block, end))
        return local

    @symbol("hist_update_block")
    def update_block(self, local, start, end):
        """The hot kernel: bucket one block of pixels."""
        n = end - start
        self.env.compute(n * calibration.HIST_PIXEL_CYCLES)
        self.env.mem_read(n * 3)
        block = self.pixels[start:end]
        for channel in range(3):
            local[channel] += np.bincount(block[:, channel], minlength=256)

    @symbol("hist_reduce")
    def combine(self, partials):
        self.env.compute(3 * 256 * len(partials) * 2)
        total = np.zeros((3, 256), dtype=np.int64)
        for partial in partials:
            total += partial
        return total
