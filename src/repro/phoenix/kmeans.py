"""Phoenix kmeans: iterative k-means clustering.

Workers assign point blocks to the nearest centre, synchronise on a
barrier, and the main thread recomputes centres each iteration — the
suite's only barrier-structured benchmark, which exercises the
machine's synchronisation modelling.  (Not part of Figure 4's five
bars; included for Phoenix 2.0 completeness.)
"""

import numpy as np

from repro.core import symbol
from repro.machine import SimBarrier
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_POINTS = 20_000
DEFAULT_K = 8
DEFAULT_ITERS = 5
BLOCK = 256


class KMeans(PhoenixWorkload):
    NAME = "kmeans"

    def __init__(
        self,
        machine,
        env,
        n_points=DEFAULT_POINTS,
        k=DEFAULT_K,
        iterations=DEFAULT_ITERS,
        nworkers=4,
        seed=0,
    ):
        super().__init__(machine, env, nworkers, seed)
        self.points, _ = datasets.clustered_points(n_points, k, seed=seed)
        self.k = k
        self.iterations = iterations
        self.centres = self._init_centres()
        self.assignments = np.zeros(len(self.points), dtype=np.int64)
        self.env.alloc(self.points.nbytes)
        self._barrier = SimBarrier(nworkers, name="kmeans-iter")

    def _init_centres(self):
        """Deterministic farthest-point seeding (greedy kmeans++):
        avoids two seeds landing in the same blob."""
        centres = [self.points[0]]
        for _ in range(1, self.k):
            chosen = np.stack(centres)
            distances = np.min(
                np.linalg.norm(
                    self.points[:, None, :] - chosen[None, :, :], axis=2
                ),
                axis=1,
            )
            centres.append(self.points[int(np.argmax(distances))])
        return np.stack(centres).copy()

    @symbol("kmeans")
    def run(self):
        slices = self.even_slices(len(self.points))
        self._barrier = SimBarrier(len(slices), name="kmeans-iter")
        threads = [
            self.machine.spawn(self.worker_loop, i, s, name=f"km-w{i}")
            for i, s in enumerate(slices)
        ]
        for thread in threads:
            thread.join()
        self.result = self.centres
        return self.centres

    @symbol("km_worker")
    def worker_loop(self, index, chunk):
        for _ in range(self.iterations):
            self.assign_range(chunk)
            self._barrier.wait()
            if index == 0:  # one designated updater per iteration
                self.update_centres()
            self._barrier.wait()

    @symbol("km_assign_block")
    def assign_block(self, start, end):
        """The kernel: nearest-centre assignment for one block."""
        n = end - start
        self.env.compute(n * calibration.KM_POINT_CYCLES)
        self.env.mem_read(n * 16)
        block = self.points[start:end]
        distances = np.linalg.norm(
            block[:, None, :] - self.centres[None, :, :], axis=2
        )
        self.assignments[start:end] = np.argmin(distances, axis=1)

    def assign_range(self, chunk):
        start, end = chunk
        for offset in range(start, end, BLOCK):
            self.assign_block(offset, min(offset + BLOCK, end))

    @symbol("km_update_centres")
    def update_centres(self):
        self.env.compute(self.k * 300)
        for centre in range(self.k):
            members = self.points[self.assignments == centre]
            if len(members):
                self.centres[centre] = members.mean(axis=0)

    # The base-class split/map/combine path is unused here.
    def split(self):
        return self.even_slices(len(self.points))

    def map_chunk(self, chunk):
        raise NotImplementedError("kmeans uses its own iteration loop")

    def combine(self, partials):
        raise NotImplementedError("kmeans uses its own iteration loop")
