"""Phoenix linear_regression: least-squares fit over a point file.

Each worker accumulates the running sums (Sx, Sy, Sxx, Syy, Sxy) for
its whole chunk *inside a single function call* — the benchmark is
almost free of function calls, which is why Figure 4 shows TEE-Perf
~8 % *faster* than perf here: the injected code never runs, while perf
keeps paying for its sampling interrupts.
"""

import numpy as np

from repro.core import symbol
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_POINTS = 400_000


class LinearRegression(PhoenixWorkload):
    NAME = "linear_regression"

    def __init__(
        self, machine, env, n_points=DEFAULT_POINTS, nworkers=4, seed=0
    ):
        super().__init__(machine, env, nworkers, seed)
        self.points = datasets.points(n_points, seed=seed)
        self.env.alloc(self.points.nbytes)

    @symbol("linear_regression")
    def run(self):
        return self.execute()

    def split(self):
        return self.even_slices(len(self.points))

    @symbol("lr_map")
    def map_chunk(self, chunk):
        """One call does the whole chunk: the accumulation loop lives
        inside this function, exactly like the C original."""
        start, end = chunk
        n = end - start
        self.env.compute(n * calibration.LR_POINT_CYCLES)
        self.env.mem_read(n * 16)
        x = self.points[start:end, 0]
        y = self.points[start:end, 1]
        return np.array(
            [n, x.sum(), y.sum(), (x * x).sum(), (y * y).sum(), (x * y).sum()]
        )

    @symbol("lr_reduce")
    def combine(self, partials):
        self.env.compute(500)
        n, sx, sy, sxx, _, sxy = np.sum(partials, axis=0)
        slope = (n * sxy - sx * sy) / (n * sxx - sx * sx)
        intercept = (sy - slope * sx) / n
        return slope, intercept
