"""Drivers that run a Phoenix workload under each profiler.

Figure 4 needs, per benchmark, the runtime of the *same* workload under
(a) no profiler, (b) Linux perf, (c) TEE-Perf — all inside the TEE.
Every run builds a fresh machine/environment/workload so nothing leaks
between configurations; determinism makes run-to-run spread come only
from the dataset seed.
"""

from dataclasses import dataclass

from repro.core.instrument import Instrumenter
from repro.core.profiler import TEEPerf
from repro.machine import Machine
from repro.perfsim import PerfSim
from repro.tee import SGX_V1, make_env

from repro.phoenix.histogram import Histogram
from repro.phoenix.kmeans import KMeans
from repro.phoenix.linear_regression import LinearRegression
from repro.phoenix.matrix_multiply import MatrixMultiply
from repro.phoenix.pca import PCA
from repro.phoenix.reverse_index import ReverseIndex
from repro.phoenix.string_match import StringMatch
from repro.phoenix.word_count import WordCount

# The five bars of Figure 4, in the paper's x-axis order.
FIGURE4_WORKLOADS = (
    MatrixMultiply,
    StringMatch,
    WordCount,
    LinearRegression,
    Histogram,
)
ALL_WORKLOADS = FIGURE4_WORKLOADS + (KMeans, PCA, ReverseIndex)
DEFAULT_CORES = 8  # the paper's Xeon E3-1270 v5 has 8 hyper-threads


def workload_by_name(name):
    for cls in ALL_WORKLOADS:
        if cls.NAME == name:
            return cls
    known = ", ".join(c.NAME for c in ALL_WORKLOADS)
    raise KeyError(f"unknown workload {name!r} (known: {known})")


@dataclass
class RunResult:
    """One workload execution under one configuration."""

    workload: str
    config: str
    elapsed_cycles: float
    result: object = None
    analysis: object = None  # TEE-Perf runs
    perf: object = None  # perf runs


def _build(workload_cls, machine, env, seed, params):
    return workload_cls(machine, env, seed=seed, **params)


def run_baseline(workload_cls, platform=SGX_V1, seed=0, cores=DEFAULT_CORES,
                 **params):
    """The workload alone: no profiler attached."""
    machine = Machine(cores=cores)
    env = make_env(machine, platform)
    workload = _build(workload_cls, machine, env, seed, params)
    result = machine.run(workload.run)
    return RunResult(
        workload_cls.NAME, "baseline", machine.elapsed_cycles(), result
    )


def run_teeperf(workload_cls, platform=SGX_V1, seed=0, cores=DEFAULT_CORES,
                capacity=1 << 21, monitor=None, record=None, analyze=None,
                **params):
    """The workload under TEE-Perf (instrumentation + recorder).

    Pass a :class:`repro.monitor.Monitor` to sample the run live
    (recorder, counter, TEE cost model, then pipeline stats).
    `record` (:class:`repro.core.options.RecordOptions`) configures
    the recorder — capacity, batched writers, sealing — and wins over
    `capacity`; `analyze` (:class:`~repro.core.options.AnalyzeOptions`)
    configures the analysis pass."""
    machine = Machine(cores=cores)
    perf = TEEPerf.simulated(
        platform=platform,
        machine=machine,
        capacity=capacity,
        name=workload_cls.NAME,
        monitor=monitor,
        record=record,
    )
    workload = _build(workload_cls, machine, perf.env, seed, params)
    perf.compile_instance(workload)
    result = perf.record(workload.run)
    analysis = perf.analyze(options=analyze)
    return RunResult(
        workload_cls.NAME,
        "teeperf",
        machine.elapsed_cycles(),
        result,
        analysis=analysis,
    )


def run_perf(workload_cls, platform=SGX_V1, seed=0, cores=DEFAULT_CORES,
             freq_hz=None, **params):
    """The workload under the Linux-perf model."""
    machine = Machine(cores=cores)
    env = make_env(machine, platform)
    workload = _build(workload_cls, machine, env, seed, params)
    instrumenter = Instrumenter(workload_cls.NAME)
    instrumenter.instrument_instance(workload)
    program = instrumenter.finish()
    sampler = (
        PerfSim(env, freq_hz=freq_hz) if freq_hz else PerfSim(env)
    )
    perf_result = sampler.profile(program, workload.run)
    return RunResult(
        workload_cls.NAME,
        "perf",
        perf_result.elapsed_cycles,
        workload.result,
        perf=perf_result,
    )


def overhead_vs_perf(workload_cls, platform=SGX_V1, seed=0, **params):
    """Figure 4's quantity: TEE-Perf runtime / perf runtime."""
    tee = run_teeperf(workload_cls, platform, seed, **params)
    perf = run_perf(workload_cls, platform, seed, **params)
    return tee.elapsed_cycles / perf.elapsed_cycles
