"""Per-kernel cycle costs for the Phoenix workloads.

Figure 4 plots each benchmark's profiled runtime under TEE-Perf
relative to its runtime under perf, both inside SGX.  Analytically::

    ratio = (1 + f) / (1 + p)

where ``p`` is perf's overhead fraction (AEX cost / sampling period, ~9 %
inside SGX at ~4 kHz) and ``f`` is TEE-Perf's: (2 events/call x
~260 cycles/event in SGX) x the workload's call rate.  The call rate is
a property of each benchmark's kernel granularity:

* string_match calls a hash kernel per key (~100 cycles each) — the
  paper's 5.7x outlier;
* word_count inserts per word (~250 cycles) — moderate overhead;
* histogram processes small pixel blocks (~1 000 cycles);
* matrix_multiply computes one output cell per call (~1 700 cycles);
* linear_regression accumulates a whole chunk inside one call — almost
  no calls, so TEE-Perf beats perf (the paper's 0.92x).

These constants set exactly those granularities; dataset sizes in the
benchmark defaults keep total simulated work small (ratios are
scale-invariant in input size).
"""

# string_match: per-key hash-and-compare kernel.
SM_HASH_CYCLES = 88.0
SM_KEY_BYTES = 16

# word_count: per-word hash-table insert (the table is small and hot,
# so the access is priced as cache-resident).
WC_INSERT_CYCLES = 240.0
WC_WORD_BYTES = 8

# histogram: per-block update, block of 64 pixels.
HIST_BLOCK_PIXELS = 64
HIST_PIXEL_CYCLES = 14.0

# linear_regression: per-point accumulate, all inside one chunk call.
LR_POINT_CYCLES = 28.0

# matrix_multiply: one output cell per call, inner product of length n.
MM_MAC_CYCLES = 11.2  # multiply-accumulate incl. operand loads

# kmeans: per-point assignment kernel per iteration.
KM_POINT_CYCLES = 120.0

# pca: per-column-pair covariance kernel.
PCA_ELEMENT_CYCLES = 6.0
