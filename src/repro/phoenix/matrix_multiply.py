"""Phoenix matrix_multiply: dense C = A x B.

Workers own row bands and compute one output *cell* per kernel call
(an inner product over the shared dimension).  The call rate is low —
every call amortises n multiply-accumulates — so the Figure 4 bar sits
near 1x.
"""

import numpy as np

from repro.core import symbol
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_N = 128


class MatrixMultiply(PhoenixWorkload):
    NAME = "matrix_multiply"

    def __init__(self, machine, env, n=DEFAULT_N, nworkers=4, seed=0):
        super().__init__(machine, env, nworkers, seed)
        self.a, self.b = datasets.matrices(n, seed=seed)
        self.n = n
        self.env.alloc(2 * self.a.nbytes + self.a.nbytes)
        self._bt = np.ascontiguousarray(self.b.T)

    @symbol("matrix_mult")
    def run(self):
        return self.execute()

    def split(self):
        return self.even_slices(self.n)

    @symbol("mm_map")
    def map_chunk(self, chunk):
        start, end = chunk
        band = np.zeros((end - start, self.n))
        for i in range(start, end):
            for j in range(self.n):
                band[i - start, j] = self.cell(i, j)
        return start, band

    @symbol("mm_cell")
    def cell(self, i, j):
        """The kernel: one output cell, an n-long inner product."""
        self.env.compute(self.n * calibration.MM_MAC_CYCLES)
        self.env.mem_read(2 * self.n * 8)
        return float(self.a[i] @ self._bt[j])

    @symbol("mm_reduce")
    def combine(self, partials):
        self.env.compute(self.n * self.n)
        out = np.zeros((self.n, self.n))
        for start, band in partials:
            out[start : start + band.shape[0]] = band
        return out
