"""Synthetic dataset generators for the Phoenix workloads.

The paper uses the input files shipped with Phoenix 2.0 (key files,
text corpora, bitmaps, point sets).  Offline we generate equivalents
with seeded numpy, so every run is reproducible and dataset size is a
free calibration parameter.  Sizes are deliberately small: Figure 4's
ratios depend on each workload's *call rate* (calls per unit of work),
which is scale-invariant, so a scaled-down input preserves the figure
while keeping simulation time in seconds.
"""

import numpy as np

_WORDS = (
    "the quick brown fox jumps over lazy dog enclave secure memory "
    "paging counter profile flame graph trusted execution thread lock "
    "storage kernel driver queue packet block cache index merge split"
).split()


def rng(seed):
    """A seeded generator; every dataset flows from one of these."""
    return np.random.default_rng(seed)


def key_file(n_keys, key_len=16, seed=0):
    """Random fixed-length byte keys (string_match input)."""
    r = rng(seed)
    alphabet = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz0123456789", np.uint8)
    draws = r.integers(0, len(alphabet), size=(n_keys, key_len))
    return [bytes(alphabet[row]) for row in draws]


def text(n_words, seed=0):
    """A word list drawn from a small vocabulary (word_count input)."""
    r = rng(seed)
    picks = r.integers(0, len(_WORDS), size=n_words)
    return [_WORDS[i] for i in picks]


def pixels(n_pixels, seed=0):
    """RGB pixel array of shape (n, 3), dtype uint8 (histogram input)."""
    return rng(seed).integers(0, 256, size=(n_pixels, 3), dtype=np.uint8)


def points(n_points, seed=0):
    """(x, y) samples from a noisy line (linear_regression input)."""
    r = rng(seed)
    x = r.uniform(0, 100, size=n_points)
    noise = r.normal(0, 5, size=n_points)
    y = 3.5 * x + 12.0 + noise
    return np.stack([x, y], axis=1)


def matrices(n, seed=0):
    """Two dense n x n float matrices (matrix_multiply input)."""
    r = rng(seed)
    return (
        r.uniform(-1, 1, size=(n, n)),
        r.uniform(-1, 1, size=(n, n)),
    )


def html_corpus(n_docs, links_per_doc=12, n_sites=40, seed=0):
    """Synthetic "HTML" documents with href links (reverse_index input).

    Each document is a list of link targets drawn from a closed set of
    site names, mimicking Phoenix's crawl snapshot.
    """
    r = rng(seed)
    sites = [f"site-{i:03d}.example" for i in range(n_sites)]
    docs = []
    for doc in range(n_docs):
        count = int(r.integers(1, links_per_doc + 1))
        picks = r.integers(0, n_sites, size=count)
        docs.append(
            (
                f"doc-{doc:05d}.html",
                [f"http://{sites[i]}/page" for i in picks],
            )
        )
    return docs


def clustered_points(n_points, k, dims=2, seed=0):
    """Gaussian blobs around k centres (kmeans input); returns
    (points, true_centres)."""
    r = rng(seed)
    centres = r.uniform(-50, 50, size=(k, dims))
    assignments = r.integers(0, k, size=n_points)
    jitter = r.normal(0, 2.0, size=(n_points, dims))
    return centres[assignments] + jitter, centres


def samples_matrix(rows, cols, seed=0):
    """Correlated sample matrix (pca input)."""
    r = rng(seed)
    latent = r.normal(0, 1, size=(rows, 2))
    mix = r.normal(0, 1, size=(2, cols))
    noise = r.normal(0, 0.1, size=(rows, cols))
    return latent @ mix + noise
