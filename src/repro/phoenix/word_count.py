"""Phoenix word_count: count word frequencies in a text corpus.

Map workers insert each word of their chunk into a local hash table —
one kernel call per word — and the reducer merges the tables and ranks
the top words.  The per-word call rate puts it between string_match and
the compute-bound benchmarks in Figure 4.
"""

from repro.core import symbol
from repro.phoenix import calibration, datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_WORDS = 30_000
TOP_N = 10


class WordCount(PhoenixWorkload):
    NAME = "word_count"

    def __init__(self, machine, env, n_words=DEFAULT_WORDS, nworkers=4, seed=0):
        super().__init__(machine, env, nworkers, seed)
        self.words = datasets.text(n_words, seed=seed)
        self.env.alloc(n_words * calibration.WC_WORD_BYTES)

    @symbol("word_count")
    def run(self):
        return self.execute()

    def split(self):
        return self.even_slices(len(self.words))

    @symbol("wc_map")
    def map_chunk(self, chunk):
        start, end = chunk
        counts = {}
        for index in range(start, end):
            self.insert_word(counts, self.words[index])
        return counts

    @symbol("wc_insert")
    def insert_word(self, counts, word):
        """The hot kernel: one hash-table insert per word."""
        self.env.compute(calibration.WC_INSERT_CYCLES)
        self.env.mem_read(calibration.WC_WORD_BYTES)
        counts[word] = counts.get(word, 0) + 1

    @symbol("wc_reduce")
    def combine(self, partials):
        merged = {}
        for partial in partials:
            self.env.compute(len(partial) * 40)
            for word, count in partial.items():
                merged[word] = merged.get(word, 0) + count
        ranked = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:TOP_N]
