"""Phoenix reverse_index: link -> documents over an HTML corpus.

Workers extract the links of each document in their chunk (one kernel
call per document) and the reducer merges the partial indexes into one
reverse index.  Completes the Phoenix 2.0 set alongside kmeans and pca
(not one of Figure 4's five bars).
"""

from repro.core import symbol
from repro.phoenix import datasets
from repro.phoenix.base import PhoenixWorkload

DEFAULT_DOCS = 4_000
EXTRACT_DOC_CYCLES = 350.0
EXTRACT_LINK_CYCLES = 90.0


class ReverseIndex(PhoenixWorkload):
    NAME = "reverse_index"

    def __init__(self, machine, env, n_docs=DEFAULT_DOCS, nworkers=4, seed=0):
        super().__init__(machine, env, nworkers, seed)
        self.docs = datasets.html_corpus(n_docs, seed=seed)
        self.env.alloc(sum(64 * len(links) for _, links in self.docs))

    @symbol("reverse_index")
    def run(self):
        return self.execute()

    def split(self):
        return self.even_slices(len(self.docs))

    @symbol("ri_map")
    def map_chunk(self, chunk):
        start, end = chunk
        index = {}
        for position in range(start, end):
            self.extract_links(index, self.docs[position])
        return index

    @symbol("ri_extract_links")
    def extract_links(self, index, doc):
        """The kernel: parse one document's hrefs into the local index."""
        name, links = doc
        self.env.compute(
            EXTRACT_DOC_CYCLES + len(links) * EXTRACT_LINK_CYCLES
        )
        self.env.mem_read(64 * len(links))
        for link in links:
            index.setdefault(link, []).append(name)

    @symbol("ri_reduce")
    def combine(self, partials):
        merged = {}
        for partial in partials:
            self.env.compute(len(partial) * 50)
            for link, names in partial.items():
                merged.setdefault(link, []).extend(names)
        for names in merged.values():
            names.sort()
        return merged
