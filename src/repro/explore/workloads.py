"""Workloads the explorer hammers across schedules.

A workload is a small object the :class:`~repro.explore.explorer
.Explorer` instantiates fresh for every trial:

* :meth:`Workload.setup` receives the machine and returns the root
  callable (``machine.run(main)`` drives it);
* :meth:`Workload.verify` runs after a completed (or
  expectedly-crashed) schedule and re-checks the invariants the
  schedule was trying to break — raising
  :class:`~repro.explore.detectors.OracleViolation` or returning
  findings;
* :attr:`Workload.expected_errors` names exceptions that are part of
  the scenario (an injected crash), not findings.

Shipped workloads:

* :class:`RecordPathWorkload` — the paper's lock-free record path:
  N simulated threads drive batched :class:`ThreadLogWriter`s into
  one shared log, with a scheduler checkpoint between events so every
  block reservation order is reachable.  Verifies per-thread
  batched-vs-per-event byte identity and recovery's exact
  ``salvaged + quarantined == entries`` accounting.
* :class:`CrashingRecordWorkload` — same, but one writer is a
  :class:`~repro.faults.CrashingWriter` whose crash phase is drawn
  deterministically from the trial seed
  (:func:`repro.faults.seeded_crash_plan`): fault injection composed
  with schedule exploration.  Verifies the torn-log/accounting oracle
  over the crashed snapshot.
* :class:`LockInversionWorkload` — the planted lock-order deadlock:
  two threads take two locks in opposite orders with a checkpoint in
  between.  The deterministic min-time schedule sails through;
  adversarial schedules find the deadlock quickly.
* :class:`RacyCounterWorkload` — a read-modify-write counter,
  correctly locked or deliberately not; the lockset detector must
  stay silent on the former and report the latter.
"""

from repro.core.log import KIND_CALL, KIND_RET, SharedLog, ThreadLogWriter
from repro.explore.detectors import (
    check_per_thread_identity,
    check_recovery_accounting,
)
from repro.faults import CrashingWriter, InjectedCrash, seeded_crash_plan
from repro.machine.sync import SimAtomicU64, SimLock

__all__ = [
    "CrashingRecordWorkload",
    "LockInversionWorkload",
    "RacyCounterWorkload",
    "RecordPathWorkload",
    "WORKLOADS",
    "Workload",
    "workload_by_name",
]


class Workload:
    """Base contract; see the module docstring."""

    name = "workload"
    #: Exceptions that are part of the scenario, not findings.
    expected_errors = ()

    def bind_seed(self, seed):
        """Hook for seed-dependent setup (e.g. a crash plan)."""

    def setup(self, machine):
        raise NotImplementedError

    def verify(self, machine):
        """Re-check invariants after the run; [] when all hold."""
        return []


def _make_events(thread_index, count, tid):
    """A deterministic, balanced CALL/RET event sequence for one
    thread.  Counters and addresses are fixed functions of the thread
    index — never of virtual time — so the sequence (and therefore
    the per-thread byte-identity baseline) is schedule-independent."""
    events = []
    base = 1_000 * (thread_index + 1)
    depth = []
    for i in range(count):
        if len(depth) and (i % 3 == 2 or count - i <= len(depth)):
            addr = depth.pop()
            events.append((KIND_RET, base + 10 * i, addr, tid))
        else:
            addr = 0x40_0000 + 0x40 * (thread_index * 97 + i)
            depth.append(addr)
            events.append((KIND_CALL, base + 10 * i, addr, tid))
    while depth:
        addr = depth.pop()
        events.append((KIND_RET, base + 10 * count + len(depth), addr, tid))
    return events


class RecordPathWorkload(Workload):
    """Concurrent batched writers into one shared log."""

    name = "record-path"

    def __init__(self, threads=3, events=12, block=4, capacity=None,
                 sealed=True):
        self.threads = threads
        self.events = events
        self.block = block
        self.capacity = capacity
        self.sealed = sealed
        self.log = None
        self.events_by_tid = {}

    def setup(self, machine):
        self.events_by_tid = {
            index + 1: _make_events(index, self.events, index + 1)
            for index in range(self.threads)
        }
        total = sum(len(e) for e in self.events_by_tid.values())
        self.log = SharedLog.create(
            self.capacity or total, sealed=self.sealed
        )
        # On real hardware every block commit starts with a shared
        # fetch-and-add (reserve_block); under the machine that RMW is
        # invisible plain Python.  This mirror re-materialises it as a
        # SimAtomicU64 ticked once per flush, so the reservation order
        # is a *scheduling decision* — the systematic mode sees the
        # cross-thread dependency and branches on it.
        self._reserve_mirror = SimAtomicU64()

        def worker(events):
            writer = self._make_writer(machine)
            thread = machine.current()
            for event in events:
                writer.append(*event)
                thread.advance(200)
                thread.checkpoint()
            writer.flush()

        def main():
            spawned = [
                machine.spawn(worker, events, name=f"writer-{tid}")
                for tid, events in sorted(self.events_by_tid.items())
            ]
            for thread in spawned:
                thread.join()
            self.log._store_tail()

        return main

    def _make_writer(self, machine):
        return self._ticketed(ThreadLogWriter(self.log, block=self.block))

    def _ticketed(self, writer):
        """Tick the reservation mirror before every non-empty flush.

        ``ThreadLogWriter.append`` commits full blocks through the
        *bound* ``flush``, which resolves ``_flush_impl`` per call, so
        wrapping the instance slot intercepts auto-flushes too.
        """
        inner = writer._flush_impl
        mirror = self._reserve_mirror

        def flush_impl():
            if writer.pending:
                mirror.fetch_add(1)
            return inner()

        writer._flush_impl = flush_impl
        return writer

    def verify(self, machine):
        self.log._store_tail()
        check_per_thread_identity(self.log, self.events_by_tid)
        check_recovery_accounting(self.log.to_bytes())
        return []


class CrashingRecordWorkload(RecordPathWorkload):
    """Record path with a seed-chosen writer crash folded in.

    The trial seed picks the crash phase and which flush dies
    (:func:`repro.faults.seeded_crash_plan`), so every (schedule,
    fault) pair replays from the one seed.  The byte-identity oracle
    cannot apply to a crashed writer; the recovery accounting oracle
    applies to the snapshot exactly as the crash left it.
    """

    name = "crashing-record"
    expected_errors = (InjectedCrash,)

    def __init__(self, threads=3, events=12, block=4, capacity=None):
        super().__init__(threads, events, block, capacity, sealed=True)
        self.phase = "after-write"
        self.crash_flush = 1
        self._crashed = False

    def bind_seed(self, seed):
        self.phase, self.crash_flush = seeded_crash_plan(seed)

    def _make_writer(self, machine):
        if not self._crashed:
            # Exactly one writer (the first spawned) carries the fault.
            self._crashed = True
            return CrashingWriter(
                self.log,
                block=self.block,
                phase=self.phase,
                crash_flush=self.crash_flush,
            )
        return ThreadLogWriter(self.log, block=self.block)

    def verify(self, machine):
        from repro.faults import crashed_snapshot

        # No final flush, no seal_remainder: the image as the crash
        # left it (the machine abort killed the surviving writers).
        check_recovery_accounting(crashed_snapshot(self.log))
        return []


class LockInversionWorkload(Workload):
    """The planted lock-order deadlock (A→B vs B→A)."""

    name = "lock-inversion"

    def __init__(self, spin=100):
        self.spin = spin

    def setup(self, machine):
        lock_a = SimLock(name="A")
        lock_b = SimLock(name="B")

        def forward():
            with lock_a:
                machine.current().advance(self.spin)
                machine.current().checkpoint()
                with lock_b:
                    machine.current().advance(self.spin)

        def backward():
            with lock_b:
                machine.current().advance(self.spin)
                machine.current().checkpoint()
                with lock_a:
                    machine.current().advance(self.spin)

        def main():
            threads = [
                machine.spawn(forward, name="forward"),
                machine.spawn(backward, name="backward"),
            ]
            for thread in threads:
                thread.join()

        return main


class RacyCounterWorkload(Workload):
    """A shared read-modify-write counter, locked or not."""

    name = "racy-counter"

    def __init__(self, threads=3, iters=4, locked=False):
        self.threads = threads
        self.iters = iters
        self.locked = locked
        self.value = 0

    def setup(self, machine):
        self.value = 0
        lock = SimLock(name="counter") if self.locked else None

        def worker():
            thread = machine.current()
            for _ in range(self.iters):
                if lock is not None:
                    lock.acquire()
                machine.note_access("counter.value", write=False)
                value = self.value
                thread.advance(40)
                thread.checkpoint()
                self.value = value + 1
                machine.note_access("counter.value", write=True)
                if lock is not None:
                    lock.release()

        def main():
            spawned = [
                machine.spawn(worker, name=f"inc-{i}")
                for i in range(self.threads)
            ]
            for thread in spawned:
                thread.join()

        return main

    def verify(self, machine):
        if self.locked and self.value != self.threads * self.iters:
            from repro.explore.detectors import OracleViolation

            raise OracleViolation(
                f"locked counter lost updates: {self.value} != "
                f"{self.threads * self.iters}"
            )
        return []


#: CLI registry: name -> (description, factory builder).  The builder
#: takes ``quick`` and keyword overrides and returns the zero-argument
#: factory the explorer calls once per trial.
WORKLOADS = {
    "record-path": (
        "batched writers into one shared log (byte-identity + "
        "recovery-accounting oracles)",
        lambda quick=False, **kw: (
            lambda: RecordPathWorkload(
                **{
                    **(
                        {"threads": 2, "events": 8, "block": 3}
                        if quick
                        else {}
                    ),
                    **kw,
                }
            )
        ),
    ),
    "crashing-record": (
        "record path with a seed-chosen writer crash (recovery "
        "accounting over the torn snapshot)",
        lambda quick=False, **kw: (
            lambda: CrashingRecordWorkload(
                **{
                    **(
                        {"threads": 2, "events": 8, "block": 3}
                        if quick
                        else {}
                    ),
                    **kw,
                }
            )
        ),
    ),
    "lock-inversion": (
        "two locks taken in opposite orders (planted deadlock)",
        lambda quick=False, **kw: (lambda: LockInversionWorkload(**kw)),
    ),
    "racy-counter": (
        "unlocked read-modify-write counter (planted race)",
        lambda quick=False, **kw: (lambda: RacyCounterWorkload(**kw)),
    ),
    "locked-counter": (
        "correctly locked counter (race detector must stay silent)",
        lambda quick=False, **kw: (
            lambda: RacyCounterWorkload(locked=True, **kw)
        ),
    ),
}


def workload_by_name(name, quick=False, **kwargs):
    """The factory for a registered workload (CLI entry point)."""
    try:
        _, builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (choose from {sorted(WORKLOADS)})"
        ) from None
    return builder(quick=quick, **kwargs)
