"""The schedule-space exploration engine.

One :class:`Explorer` runs one workload under many schedules and
feeds every run through the detector stack:

* **random mode** — `trials` seeded schedules under the configured
  policy (``policy="all"`` rotates the whole registry).  Every trial
  has its own derived seed; a failure's seed alone reproduces it
  bit-for-bit (:meth:`Explorer.run_trial`).
* **systematic mode (DPOR-lite)** — starts from the deterministic
  baseline schedule and branches, depth-first, on observed
  contention points only (blocking waits, multi-thread atomics,
  declared shared writes — tracked by
  :class:`~repro.explore.detectors.ContentionTracker`): at every
  flagged step with more than one runnable thread, each alternative
  choice becomes a forced prefix replayed via
  :class:`~repro.machine.schedule.ReplayPolicy`.  Choices that never
  race cannot change the outcome, so everything else is pruned.

A failing run is shrunk by :meth:`Explorer.minimize` to the shortest
forced-choice prefix that still fails (the default policy finishes
the schedule after the prefix), and the result — workload, policy,
seed, choices, finding — is the repro artifact ``tee-perf explore``
writes to disk.
"""

from dataclasses import dataclass, field, replace

from repro.explore.detectors import ContentionTracker, Finding, \
    LocksetRaceDetector, OracleViolation
from repro.machine.errors import (
    DeadlockError,
    LivelockError,
    SimThreadError,
)
from repro.machine.machine import Machine
from repro.machine.schedule import (
    POLICIES,
    ReplayPolicy,
    TracingPolicy,
    make_policy,
)

__all__ = [
    "ExploreOptions",
    "ExploreReport",
    "Explorer",
    "ScheduleRun",
]

#: ``policy="all"`` rotates these (min-time is the baseline the
#: systematic mode owns; replay is internal).
_SWEEP_POLICIES = (
    "random",
    "round-robin",
    "priority-young",
    "priority-old",
    "enclave",
)

_MODES = ("random", "systematic")


@dataclass(frozen=True)
class ExploreOptions:
    """How an exploration runs (the facade's third options object,
    after ``RecordOptions`` and ``AnalyzeOptions``).

    Attributes
    ----------
    trials:
        Schedules to run (random mode) or the branch budget
        (systematic mode).
    seed:
        Root seed; trial ``i`` runs under ``seed * 1_000_003 + i``.
    policy:
        A :data:`~repro.machine.schedule.POLICIES` name, or ``"all"``
        to rotate the sweep set per trial.
    mode:
        ``"random"`` or ``"systematic"`` (DPOR-lite).
    cores:
        Cores of the simulated machine (fewer cores = more
        processor-sharing pressure).
    max_steps:
        Scheduling-step budget per run; exceeding it is a livelock
        finding.
    stop_on_finding:
        Stop the sweep at the first failing schedule.
    keep_traces:
        Keep the schedule trace of *passing* runs too (failing runs
        always keep theirs; passing traces cost memory).
    minimize:
        Shrink the first failing schedule to a minimal forced-choice
        prefix for the repro artifact.
    """

    trials: int = 100
    seed: int = 0
    policy: str = "random"
    mode: str = "random"
    cores: int = 2
    max_steps: int = 100_000
    stop_on_finding: bool = False
    keep_traces: bool = False
    minimize: bool = True

    def __post_init__(self):
        if self.trials < 1:
            raise ValueError(f"trials must be positive: {self.trials}")
        if self.cores < 1:
            raise ValueError(f"cores must be positive: {self.cores}")
        if self.max_steps < 1:
            raise ValueError(
                f"max_steps must be positive: {self.max_steps}"
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r} (choose from {_MODES})"
            )
        if self.policy != "all" and self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r} "
                f"(choose from {['all', *sorted(POLICIES)]})"
            )

    def replace(self, **changes):
        return replace(self, **changes)


@dataclass
class ScheduleRun:
    """One workload execution under one schedule."""

    trial: int
    seed: int
    policy: str
    steps: int
    findings: list = field(default_factory=list)
    trace: object = None  # ScheduleTrace | None
    elapsed_cycles: float = 0.0

    @property
    def ok(self):
        return not self.findings

    def to_dict(self, with_trace=True):
        out = {
            "trial": self.trial,
            "seed": self.seed,
            "policy": self.policy,
            "steps": self.steps,
            "ok": self.ok,
            "elapsed_cycles": self.elapsed_cycles,
            "findings": [f.to_dict() for f in self.findings],
        }
        if with_trace and self.trace is not None:
            out["trace"] = self.trace.to_dict()
        return out


class ExploreReport:
    """Everything one exploration found, replayable."""

    def __init__(self, workload_name, options, runs,
                 minimized=None):
        self.workload = workload_name
        self.options = options
        self.runs = runs
        self.minimized = minimized  # repro artifact dict | None

    @property
    def failures(self):
        return [run for run in self.runs if not run.ok]

    @property
    def findings(self):
        return [f for run in self.runs for f in run.findings]

    @property
    def ok(self):
        return not self.findings

    @property
    def first_failure(self):
        failures = self.failures
        return failures[0] if failures else None

    def schedules_explored(self):
        """Distinct schedule signatures seen (traced runs only)."""
        return len(
            {
                run.trace.signature()
                for run in self.runs
                if run.trace is not None
            }
        )

    def findings_by_detector(self):
        counts = {}
        for finding in self.findings:
            counts[finding.detector] = counts.get(finding.detector, 0) + 1
        return counts

    def to_dict(self):
        return {
            "workload": self.workload,
            "options": {
                "trials": self.options.trials,
                "seed": self.options.seed,
                "policy": self.options.policy,
                "mode": self.options.mode,
                "cores": self.options.cores,
                "max_steps": self.options.max_steps,
            },
            "trials_run": len(self.runs),
            "schedules_explored": self.schedules_explored(),
            "ok": self.ok,
            "findings_by_detector": self.findings_by_detector(),
            "failures": [run.to_dict() for run in self.failures],
            "runs": [
                run.to_dict(with_trace=self.options.keep_traces)
                for run in self.runs
            ],
            "minimized": self.minimized,
        }

    def report(self):
        lines = [
            f"explore: workload={self.workload} mode={self.options.mode} "
            f"policy={self.options.policy} seed={self.options.seed}",
            f"  schedules run: {len(self.runs)} "
            f"({self.schedules_explored()} distinct)",
        ]
        if self.ok:
            lines.append("  findings: none — every invariant held")
            return "\n".join(lines)
        by_detector = ", ".join(
            f"{name}: {count}"
            for name, count in sorted(self.findings_by_detector().items())
        )
        lines.append(
            f"  findings: {len(self.findings)} in "
            f"{len(self.failures)} schedules ({by_detector})"
        )
        first = self.first_failure
        lines.append(
            f"  first failure: trial {first.trial} seed {first.seed} "
            f"policy {first.policy}"
        )
        for finding in first.findings:
            lines.append(f"    {finding.detector}: {finding.message}")
        if self.minimized is not None:
            lines.append(
                f"  minimized repro: {len(self.minimized['choices'])} "
                f"forced choices (from {self.minimized['trace_steps']} "
                f"steps); replay with Explorer.replay(choices)"
            )
        return "\n".join(lines)


class Explorer:
    """Runs a workload factory across many schedules.

    `workload` is a zero-argument factory producing a fresh
    :class:`~repro.explore.workloads.Workload` per trial (a class
    works).  Options may be given as an :class:`ExploreOptions` or as
    loose keywords.
    """

    def __init__(self, workload, options=None, **overrides):
        self._factory = workload
        base = options or ExploreOptions()
        self.options = base.replace(**overrides) if overrides else base

    # ------------------------------------------------------------------
    # Entry points

    def run(self):
        """Explore per ``options.mode`` and return the report."""
        if self.options.mode == "systematic":
            runs = self._run_systematic()
        else:
            runs = self._run_random()
        minimized = None
        failed = next((r for r in runs if not r.ok), None)
        if failed is not None and self.options.minimize \
                and failed.trace is not None:
            minimized = self.minimize(failed)
        return ExploreReport(
            self._workload_name(), self.options, runs, minimized
        )

    def run_trial(self, seed, policy_name=None, trial=0,
                  choices=None):
        """One schedule: build a fresh workload, run, detect.

        With `choices`, the run replays that forced prefix (the
        policy label becomes ``replay``); otherwise `policy_name`
        (default ``options.policy``) is constructed with `seed`.
        This is the reproduction entry point: the (seed, policy) pair
        a failing :class:`ScheduleRun` reports recreates it exactly.
        """
        opts = self.options
        workload = self._factory()
        workload.bind_seed(seed)
        if choices is not None:
            inner = ReplayPolicy(choices)
            label = "replay"
        else:
            name = policy_name or opts.policy
            inner = make_policy(name, seed=seed)
            label = name
        policy = TracingPolicy(inner)
        machine = Machine(
            cores=opts.cores, policy=policy, max_steps=opts.max_steps
        )
        races = LocksetRaceDetector()
        tracker = ContentionTracker(machine)
        machine.sync_observers.extend([races, tracker])
        main = workload.setup(machine)

        findings = []
        completed = False
        try:
            machine.run(main)
            completed = True
        except DeadlockError as exc:
            findings.append(Finding("deadlock", str(exc)))
        except LivelockError as exc:
            findings.append(Finding("livelock", str(exc)))
        except SimThreadError as exc:
            if isinstance(exc.original, workload.expected_errors):
                completed = True
            elif isinstance(exc.original, OracleViolation):
                findings.append(
                    Finding("oracle", str(exc.original))
                )
            else:
                findings.append(
                    Finding(
                        "exception",
                        f"{type(exc.original).__name__}: {exc.original}",
                        details={"thread": exc.thread_name},
                    )
                )
        findings.extend(races.findings)
        if completed and not findings:
            try:
                findings.extend(workload.verify(machine) or [])
            except OracleViolation as exc:
                findings.append(Finding("oracle", str(exc)))
        for finding in findings:
            finding.trial = trial
            finding.seed = seed
            finding.policy = label
        run = ScheduleRun(
            trial=trial,
            seed=seed,
            policy=label,
            steps=machine.schedule_steps,
            findings=findings,
            trace=policy.trace,
            elapsed_cycles=machine.elapsed_cycles(),
        )
        run._flagged_steps = tracker.flagged_steps
        return run

    def replay(self, choices, seed=0):
        """Re-run a recorded/minimized forced-choice prefix."""
        return self.run_trial(seed, choices=list(choices))

    # ------------------------------------------------------------------
    # Random sweep

    def _trial_seed(self, trial):
        return self.options.seed * 1_000_003 + trial

    def _trial_policy(self, trial):
        if self.options.policy == "all":
            return _SWEEP_POLICIES[trial % len(_SWEEP_POLICIES)]
        return self.options.policy

    def _run_random(self):
        runs = []
        for trial in range(self.options.trials):
            run = self.run_trial(
                self._trial_seed(trial),
                policy_name=self._trial_policy(trial),
                trial=trial,
            )
            if not self.options.keep_traces and run.ok:
                run = self._drop_trace_if_dull(run)
            runs.append(run)
            if not run.ok and self.options.stop_on_finding:
                break
        return runs

    def _drop_trace_if_dull(self, run):
        # Signatures power schedules_explored(); keep a stub trace
        # carrying only the signature to stay O(1) per passing run.
        return run

    # ------------------------------------------------------------------
    # Systematic (DPOR-lite) exploration

    def _run_systematic(self):
        budget = self.options.trials
        baseline = self.run_trial(self._trial_seed(0), choices=[])
        runs = [baseline]
        seen = {baseline.trace.signature()}
        tried = {()}
        stack = self._branches(baseline, tried)
        trial = 1
        while stack and trial < budget:
            prefix = stack.pop()
            run = self.run_trial(
                self._trial_seed(0), choices=list(prefix), trial=trial
            )
            trial += 1
            signature = run.trace.signature()
            if signature in seen:
                continue
            seen.add(signature)
            runs.append(run)
            if not run.ok and self.options.stop_on_finding:
                break
            stack.extend(self._branches(run, tried))
        return runs

    def _branches(self, run, tried):
        """Alternative forced prefixes branching at contention steps."""
        trace = run.trace
        flagged = getattr(run, "_flagged_steps", set())
        branches = []
        for step in sorted(flagged):
            if step >= len(trace):
                continue
            tids = trace.runnable[step]
            if len(tids) < 2:
                continue
            for tid in tids:
                if tid == trace.chosen[step]:
                    continue
                prefix = tuple(trace.chosen[:step]) + (tid,)
                if prefix in tried:
                    continue
                tried.add(prefix)
                branches.append(prefix)
        return branches

    # ------------------------------------------------------------------
    # Minimisation

    def minimize(self, run):
        """Shrink a failing schedule to a minimal forced prefix.

        Finds (by bisection over the prefix length, then verification)
        the shortest prefix of the failing run's choices that still
        fails when the default policy finishes the schedule.  Returns
        the repro artifact dict; falls back to the full choice list if
        the failure turns out not to be prefix-monotone.
        """
        choices = run.trace.choices()
        detectors = {f.detector for f in run.findings}

        def fails(length):
            probe = self.run_trial(
                run.seed, choices=choices[:length], trial=run.trial
            )
            return bool(
                {f.detector for f in probe.findings} & detectors
            )

        lo, hi = 0, len(choices)
        if fails(0):
            best = 0
        else:
            while lo + 1 < hi:
                mid = (lo + hi) // 2
                if fails(mid):
                    hi = mid
                else:
                    lo = mid
            best = hi if fails(hi) else len(choices)
        return {
            "workload": self._workload_name(),
            "policy": run.policy,
            "seed": run.seed,
            "choices": choices[:best],
            "trace_steps": len(choices),
            "detectors": sorted(detectors),
        }

    # ------------------------------------------------------------------

    def _workload_name(self):
        probe = self._factory()
        return getattr(probe, "name", type(probe).__name__)
