"""The detector stack: what exploration checks on every schedule.

Three families, all fed by one run of a workload under one schedule:

* **liveness** — deadlock and livelock are detected by the machine
  itself (:class:`~repro.machine.errors.DeadlockError`,
  :class:`~repro.machine.errors.LivelockError`); the explorer turns
  them into findings carrying the schedule that produced them.
* **races** — :class:`LocksetRaceDetector` runs the Eraser lockset
  algorithm over the sync primitives' choice-point events plus the
  workload's declared shared accesses
  (:meth:`~repro.machine.machine.Machine.note_access`).  A location
  whose candidate lockset drains to empty while written by more than
  one thread is reported exactly once.
* **oracles** — after a clean run, the workload re-checks the
  invariants the schedule was trying to break: per-thread
  batched-vs-per-event byte identity, and recovery's exact
  ``salvaged + quarantined == entries`` accounting (helpers below,
  reused from :mod:`repro.core.recovery`).

A finding is data, not an exception: every one carries the trial,
seed and policy that produced it so it can be replayed.
"""

from dataclasses import dataclass, field

from repro.machine.schedule import SyncObserver

__all__ = [
    "ContentionTracker",
    "Finding",
    "LocksetRaceDetector",
    "OracleViolation",
    "check_per_thread_identity",
    "check_recovery_accounting",
]


class OracleViolation(AssertionError):
    """A workload invariant did not survive the schedule."""


@dataclass
class Finding:
    """One detector hit under one schedule."""

    detector: str  # "deadlock" | "livelock" | "race" | "oracle:<name>" | ...
    message: str
    trial: int = None
    seed: int = None
    policy: str = None
    details: dict = field(default_factory=dict)

    def to_dict(self):
        return {
            "detector": self.detector,
            "message": self.message,
            "trial": self.trial,
            "seed": self.seed,
            "policy": self.policy,
            "details": dict(self.details),
        }

    def __str__(self):
        where = (
            f" (trial {self.trial}, seed {self.seed}, {self.policy})"
            if self.trial is not None
            else ""
        )
        return f"[{self.detector}]{where} {self.message}"


# Eraser lockset states for one shared location.
_VIRGIN = "virgin"
_EXCLUSIVE = "exclusive"
_SHARED = "shared"
_SHARED_MODIFIED = "shared-modified"


class LocksetRaceDetector(SyncObserver):
    """Lockset (Eraser-style) race detection over the sync primitives.

    Tracks, per simulated thread, the set of locks currently held
    (``SimLock`` and ``SimRWLock`` report through the ``acquired`` /
    ``released`` hooks), and per declared location the candidate
    lockset — the intersection of the locksets of every thread that
    touched it since it became shared.  State machine per location:
    virgin → exclusive (first thread) → shared / shared-modified
    (second thread, read / write).  Only the shared-modified state
    with an empty candidate set reports, and each location reports at
    most once.
    """

    name = "race"

    def __init__(self):
        self._held = {}  # tid -> set of primitive ids
        self._names = {}  # primitive id -> display name
        self._state = {}  # location -> [state, owner_tid, candidate set]
        self.findings = []
        self._reported = set()

    # -- SyncObserver hooks -------------------------------------------

    def acquired(self, primitive, thread):
        self._names[id(primitive)] = getattr(primitive, "name", "lock")
        self._held.setdefault(thread.tid, set()).add(id(primitive))

    def released(self, primitive, thread):
        self._held.get(thread.tid, set()).discard(id(primitive))

    def access(self, location, thread, write):
        held = frozenset(self._held.get(thread.tid, ()))
        entry = self._state.get(location)
        if entry is None:
            self._state[location] = [_VIRGIN, thread.tid, None]
            entry = self._state[location]
        state, owner, candidates = entry
        if state == _VIRGIN:
            entry[0] = _EXCLUSIVE
            entry[1] = thread.tid
            return
        if state == _EXCLUSIVE:
            if thread.tid == owner:
                return
            entry[0] = _SHARED_MODIFIED if write else _SHARED
            entry[2] = set(held)
            self._maybe_report(location, entry, thread)
            return
        # shared / shared-modified: refine the candidate lockset.
        entry[2] &= held
        if write:
            entry[0] = _SHARED_MODIFIED
        self._maybe_report(location, entry, thread)

    # -- internals -----------------------------------------------------

    def _maybe_report(self, location, entry, thread):
        if entry[0] != _SHARED_MODIFIED or entry[2]:
            return
        if location in self._reported:
            return
        self._reported.add(location)
        self.findings.append(
            Finding(
                "race",
                f"unprotected shared-modified access to {location!r} "
                f"(last by {thread.name}; no common lock remains)",
                details={"location": repr(location), "tid": thread.tid},
            )
        )

    def locks_held(self, tid):
        """Display names of the locks `tid` currently holds."""
        return sorted(
            self._names.get(pid, "lock") for pid in self._held.get(tid, ())
        )


class ContentionTracker(SyncObserver):
    """Maps scheduling steps to observed dependent transitions.

    Two operations are *dependent* when they touch the same object
    from different threads and at least one writes: lock
    acquisitions/waits on the same primitive, atomic RMWs on the same
    cell, declared data accesses to the same location.  Whenever such
    a pair is observed, both scheduling steps involved are flagged —
    the current one (``machine.schedule_steps - 1``, the pick that
    started the running slice) *and* the step of the earlier
    operation, which is where a different choice could have reordered
    the pair (the DPOR backtracking point; reordering independent
    transitions cannot change the outcome, so everything else is
    pruned).  The systematic mode branches exactly at flagged steps.
    """

    def __init__(self, machine):
        self._machine = machine
        # key -> {tid: (last step touching key, ever wrote)}
        self._ops = {}
        self.flagged_steps = set()

    def _step(self):
        return self._machine.schedule_steps - 1

    def _op(self, key, tid, write):
        step = self._step()
        if step < 0:
            return
        entry = self._ops.setdefault(key, {})
        for other_tid, (other_step, other_write) in entry.items():
            if other_tid != tid and (write or other_write):
                self.flagged_steps.add(other_step)
                self.flagged_steps.add(step)
        prev = entry.get(tid)
        entry[tid] = (step, write or (prev is not None and prev[1]))

    # Lock/semaphore operations conflict with each other: writes.
    def acquired(self, primitive, thread):
        self._op(id(primitive), thread.tid, True)

    def contended(self, primitive, thread):
        self._op(id(primitive), thread.tid, True)

    def atomic(self, primitive, thread):
        self._op(id(primitive), thread.tid, True)

    def access(self, location, thread, write):
        self._op(("loc", location), thread.tid, write)


def check_recovery_accounting(image, name="recovery-accounting"):
    """Run salvage over `image` and enforce exact accounting.

    `image` is anything :func:`repro.core.recovery.recover_log`
    accepts (bytes, a :class:`SharedLog`, a path).  The invariant —
    nothing dropped silently — is
    ``entries_salvaged + entries_quarantined == committed entries``.
    Returns the :class:`RecoveryReport`; raises
    :class:`OracleViolation` when the books do not balance.
    """
    from repro.core.log import SharedLog
    from repro.core.recovery import recover_log

    salvaged, report = recover_log(image)
    committed = report.entries_salvaged + report.entries_quarantined
    if isinstance(image, (bytes, bytearray, memoryview)):
        present = len(SharedLog.view(image))
    else:
        present = len(image)
    if committed != present:
        raise OracleViolation(
            f"{name}: salvaged({report.entries_salvaged}) + "
            f"quarantined({report.entries_quarantined}) = {committed} "
            f"!= committed entries ({present})"
        )
    if len(salvaged) != report.entries_salvaged:
        raise OracleViolation(
            f"{name}: salvaged log holds {len(salvaged)} entries but "
            f"the report claims {report.entries_salvaged}"
        )
    return report


def check_per_thread_identity(log, events_by_tid, name="byte-identity"):
    """The batched-writer oracle, schedule-independent form.

    For every thread, the entries that thread committed into `log`
    (in log order) must be *byte-identical* to replaying that
    thread's event sequence through the per-event append path alone.
    Block interleaving across threads is schedule-dependent; each
    thread's own entry byte sequence is not — that is PR 3's
    invariant, now enforced under every explored schedule.
    """
    from repro.core.log import HEADER_SIZE, SharedLog

    size = log.entry_size
    buf = log._buf
    got = {tid: [] for tid in events_by_tid}
    for index, entry in enumerate(log):
        offset = HEADER_SIZE + index * size
        got.setdefault(entry.tid, []).append(
            bytes(buf[offset : offset + size])
        )
    for tid, events in events_by_tid.items():
        baseline = SharedLog.create(
            max(len(events), 1), version=log.version
        )
        for event in events:
            baseline.append(*event)
        baseline._store_tail()
        expected = [
            bytes(
                baseline._buf[
                    HEADER_SIZE + i * size : HEADER_SIZE + (i + 1) * size
                ]
            )
            for i in range(len(baseline))
        ]
        if got.get(tid, []) != expected:
            raise OracleViolation(
                f"{name}: thread {tid} committed "
                f"{len(got.get(tid, []))} entries that are not "
                f"byte-identical to its {len(expected)}-entry "
                f"per-event baseline"
            )
