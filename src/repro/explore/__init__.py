"""Adversarial schedule-space exploration (``tee-perf explore``).

The deterministic machine (:mod:`repro.machine`) runs every figure
under one conservative schedule — smallest local time first.  That is
exactly one point in a huge space of legal interleavings, and the
recorder's concurrency claims (lock-free block reservation, torn-log
recovery, batched-writer byte identity) must hold at *every* point.
This package searches the rest of the space:

* :mod:`~repro.explore.explorer` — the :class:`Explorer` engine:
  seeded-random sweeps over pluggable schedule policies, a DPOR-lite
  systematic mode that branches only at observed contention points,
  failing-schedule minimisation, and exact replay from a reported
  seed;
* :mod:`~repro.explore.detectors` — what every schedule is checked
  against: deadlock/livelock (machine-level), Eraser-style lockset
  race detection, and the recorder's oracles (per-thread
  batched-vs-per-event byte identity, recovery accounting);
* :mod:`~repro.explore.workloads` — the workloads under test,
  including the real record path, a fault-injected crashing variant,
  and planted-bug workloads (a lock-order inversion, a racy counter)
  that keep the detectors honest.

Typical use::

    from repro.explore import Explorer, ExploreOptions, workload_by_name

    explorer = Explorer(
        workload_by_name("record-path"),
        ExploreOptions(trials=200, seed=7, policy="all"),
    )
    report = explorer.run()
    assert report.ok, report.report()
"""

from repro.explore.detectors import (
    ContentionTracker,
    Finding,
    LocksetRaceDetector,
    OracleViolation,
    check_per_thread_identity,
    check_recovery_accounting,
)
from repro.explore.explorer import (
    ExploreOptions,
    Explorer,
    ExploreReport,
    ScheduleRun,
)
from repro.explore.workloads import (
    CrashingRecordWorkload,
    LockInversionWorkload,
    RacyCounterWorkload,
    RecordPathWorkload,
    WORKLOADS,
    Workload,
    workload_by_name,
)

__all__ = [
    "ContentionTracker",
    "CrashingRecordWorkload",
    "ExploreOptions",
    "ExploreReport",
    "Explorer",
    "Finding",
    "LockInversionWorkload",
    "LocksetRaceDetector",
    "OracleViolation",
    "RacyCounterWorkload",
    "RecordPathWorkload",
    "ScheduleRun",
    "WORKLOADS",
    "Workload",
    "check_per_thread_identity",
    "check_recovery_accounting",
    "workload_by_name",
]
