"""The memtable: a skip list ordered by (key, descending sequence).

RocksDB's default memtable is a concurrent skip list; ours is a real
skip list (deterministic tower heights from a seeded RNG) ordered the
same way: ascending key, then *descending* sequence number, so the
newest version of a key is found first and iteration yields versions
newest-first — exactly what the read path and compaction need.
"""

import random

from repro.kvstore.entry import Entry

MAX_HEIGHT = 12
BRANCHING = 4


class _Node:
    __slots__ = ("entry", "next")

    def __init__(self, entry, height):
        self.entry = entry
        self.next = [None] * height


class MemTable:
    """An in-memory, sorted, append-only version store."""

    def __init__(self, seed=0):
        self._head = _Node(None, MAX_HEIGHT)
        self._rng = random.Random(seed)
        self._height = 1
        self.entries = 0
        self.bytes = 0

    # ------------------------------------------------------------------

    def add(self, entry):
        """Insert one version.  Duplicate (key, seq) pairs are invalid."""
        prev = self._find_predecessors(entry)
        node_after = prev[0].next[0]
        if node_after is not None and self._cmp(node_after.entry, entry) == 0:
            raise ValueError(
                f"duplicate version (key={entry.key!r}, seq={entry.seq})"
            )
        height = self._random_height()
        if height > self._height:
            self._height = height
        node = _Node(entry, height)
        for level in range(height):
            node.next[level] = prev[level].next[level]
            prev[level].next[level] = node
        self.entries += 1
        self.bytes += entry.size()

    def get(self, key, max_seq=None):
        """The newest version of `key` visible at `max_seq` (or None)."""
        node = self._head
        for level in reversed(range(self._height)):
            while node.next[level] is not None and self._before(
                node.next[level].entry, key, max_seq
            ):
                node = node.next[level]
        candidate = node.next[0]
        if candidate is not None and candidate.entry.key == key:
            return candidate.entry
        return None

    def __iter__(self):
        """All versions: ascending key, newest (highest seq) first."""
        node = self._head.next[0]
        while node is not None:
            yield node.entry
            node = node.next[0]

    def __len__(self):
        return self.entries

    # ------------------------------------------------------------------

    @staticmethod
    def _cmp(entry, other):
        if entry.key != other.key:
            return -1 if entry.key < other.key else 1
        # Descending sequence: newer sorts first.
        if entry.seq != other.seq:
            return -1 if entry.seq > other.seq else 1
        return 0

    @staticmethod
    def _before(entry, key, max_seq):
        """True if `entry` orders strictly before the search target
        (key, max_seq)."""
        if entry.key != key:
            return entry.key < key
        if max_seq is None:
            return False  # any version of `key` is a hit; stop before it
        return entry.seq > max_seq

    def _find_predecessors(self, entry):
        prev = [self._head] * MAX_HEIGHT
        node = self._head
        for level in reversed(range(self._height)):
            while node.next[level] is not None and self._cmp(
                node.next[level].entry, entry
            ) < 0:
                node = node.next[level]
            prev[level] = node
        return prev

    def _random_height(self):
        height = 1
        while height < MAX_HEIGHT and self._rng.randrange(BRANCHING) == 0:
            height += 1
        return height
