"""Profiling db_bench with TEE-Perf: the Figure-5 driver.

Compiles the whole RocksDB-style stack with the instrumenter, runs
db_bench's fill phase with tracing *paused* (the paper profiles the
mixed read/write phase, and dynamic de-/activation via the log's
ACTIVE flag is exactly the mechanism §II-B provides for this), then
records the 80 %-reads mixed phase and returns the analysis.
"""

from repro.core.profiler import TEEPerf
from repro.kvstore.compaction import Compactor
from repro.kvstore.db import DB
from repro.kvstore.db_bench import DbBench
from repro.kvstore.random_gen import RandomGenerator
from repro.kvstore.sstable import SSTable
from repro.kvstore.stats import Statistics, Stats
from repro.tee import SGX_V1

ROCKSDB_CLASSES = (
    DB,
    DbBench,
    Stats,
    Statistics,
    RandomGenerator,
    SSTable,
    Compactor,
)


def compile_rocksdb_stack(perf):
    """Instrument every class of the store + benchmark (stage 1)."""
    for cls in ROCKSDB_CLASSES:
        perf.compile_class(cls)
    return perf


def profile_db_bench(
    platform=SGX_V1,
    cores=8,
    capacity=1 << 21,
    profile_fill=False,
    **bench_params,
):
    """Run db_bench under TEE-Perf; returns (perf, bench, analysis).

    Callers must ``perf.uninstrument()`` when done — the class patches
    are process-global.
    """
    perf = TEEPerf.simulated(
        platform=platform, cores=cores, capacity=capacity, name="db_bench"
    )
    compile_rocksdb_stack(perf)
    db = DB(perf.env)
    bench = DbBench(perf.machine, perf.env, db, **bench_params)

    def entry():
        if not profile_fill:
            perf.pause()
        bench.fill_random()
        if not profile_fill:
            perf.resume()
        return bench.run()

    perf.record(entry)
    return perf, bench, perf.analyze()
