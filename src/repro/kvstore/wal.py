"""The write-ahead log.

Every write is encoded and appended to the log before it touches the
memtable, and a restart replays the log to rebuild state — the same
durability contract as RocksDB's ``log::Writer``/``log::Reader``.  The
encoding is a simple length-prefixed record with a checksum, so the
reader can detect torn tails (a crash mid-append) and stop there.
"""

import struct
import zlib

from repro.kvstore.entry import Entry

_HEADER = struct.Struct("<IIQBI")  # crc, key_len, seq, type, value_len


class WalCorruption(Exception):
    """A record failed its checksum mid-log (not at the tail)."""


def encode_record(entry):
    payload = _HEADER.pack(
        0, len(entry.key), entry.seq, entry.type, len(entry.value)
    )[4:] + entry.key + entry.value
    crc = zlib.crc32(payload)
    return struct.pack("<I", crc) + payload


def decode_records(data):
    """Yield entries until the data ends or a torn tail appears."""
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        crc, key_len, seq, type_, value_len = _HEADER.unpack_from(
            data, offset
        )
        end = offset + _HEADER.size + key_len + value_len
        if end > size:
            return  # torn tail: record written partially
        payload = data[offset + 4 : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                return  # torn tail
            raise WalCorruption(f"bad checksum at offset {offset}")
        key_start = offset + _HEADER.size
        key = bytes(data[key_start : key_start + key_len])
        value = bytes(data[key_start + key_len : end])
        yield Entry(key, seq, type_, value)
        offset = end


class WriteAheadLog:
    """An append-only record log charged against the environment.

    Appends are *buffered* (RocksDB's default: WAL bytes go through a
    user-space writer buffer and reach the kernel in batches), so the
    syscall cost is amortised over ``buffer_bytes`` of records — which
    matters enormously inside a TEE, where each syscall is an ocall.
    """

    APPEND_COMPUTE_CYCLES = 150.0
    DEFAULT_BUFFER_BYTES = 32 * 1024

    def __init__(self, env, buffer_bytes=DEFAULT_BUFFER_BYTES):
        self.env = env
        self.buffer_bytes = buffer_bytes
        self._buf = bytearray()
        self._pending = 0
        self.records = 0
        self.flushes = 0

    def add_record(self, entry):
        record = encode_record(entry)
        self.env.compute(self.APPEND_COMPUTE_CYCLES)
        self.env.mem_write(len(record))
        self._buf += record
        self._pending += len(record)
        self.records += 1
        if self._pending >= self.buffer_bytes:
            self.flush()

    def flush(self):
        """Hand the buffered bytes to the kernel (one write syscall)."""
        if not self._pending:
            return
        self.env.syscall("write", extra_cycles=self._pending * 0.4)
        self._pending = 0
        self.flushes += 1

    def size_bytes(self):
        return len(self._buf)

    def replay(self):
        """All intact records, oldest first (recovery path)."""
        return list(decode_records(self._buf))

    def truncate(self):
        """Drop the log after a successful memtable flush."""
        self._buf = bytearray()
        self._pending = 0
        self.records = 0

    def corrupt_tail(self, nbytes=1):
        """Test hook: chop bytes off the tail (simulated crash)."""
        if nbytes > len(self._buf):
            raise ValueError("cannot corrupt more than the log holds")
        del self._buf[len(self._buf) - nbytes :]
