"""A Bloom filter, as used by RocksDB's block-based tables.

Real implementation: double hashing over a bit array, with the usual
``k = m/n * ln 2`` choice of probe count.  The false-positive behaviour
is exercised by property tests; the DB uses one filter per SSTable to
skip tables that cannot contain a key.
"""

import math

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def fnv1a(data, seed=0):
    """64-bit FNV-1a; cheap, deterministic, and good enough here."""
    value = (_FNV_OFFSET ^ seed) & _MASK
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _MASK
    return value


class BloomFilter:
    """Fixed-size Bloom filter over byte-string keys."""

    def __init__(self, n_keys, bits_per_key=10):
        if n_keys < 0:
            raise ValueError(f"negative key count: {n_keys}")
        self.bits = max(64, n_keys * bits_per_key)
        self.k = max(1, min(30, round(bits_per_key * math.log(2))))
        self._array = bytearray((self.bits + 7) // 8)
        self.added = 0

    def add(self, key):
        h1 = fnv1a(key)
        h2 = fnv1a(key, seed=h1) | 1
        for i in range(self.k):
            bit = (h1 + i * h2) % self.bits
            self._array[bit >> 3] |= 1 << (bit & 7)
        self.added += 1

    def may_contain(self, key):
        """False means *definitely absent*; True means maybe."""
        h1 = fnv1a(key)
        h2 = fnv1a(key, seed=h1) | 1
        for i in range(self.k):
            bit = (h1 + i * h2) % self.bits
            if not self._array[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def to_bytes(self):
        """Serialise the filter (SSTable on-disk format)."""
        import struct

        return struct.pack("<QHI", self.bits, self.k, self.added) + bytes(
            self._array
        )

    @classmethod
    def from_bytes(cls, data):
        """Rebuild a filter serialised with :meth:`to_bytes`."""
        import struct

        bits, k, added = struct.unpack_from("<QHI", data, 0)
        filt = cls.__new__(cls)
        filt.bits = bits
        filt.k = k
        filt.added = added
        filt._array = bytearray(data[14:])
        if len(filt._array) != (bits + 7) // 8:
            raise ValueError("bloom filter payload truncated")
        return filt

    def fill_ratio(self):
        """Fraction of set bits (saturation diagnostic)."""
        set_bits = sum(bin(b).count("1") for b in self._array)
        return set_bits / self.bits

    def __len__(self):
        return self.added
