"""Versioned key-value entries shared by memtable, WAL and SSTables."""

from dataclasses import dataclass

TYPE_PUT = 1
TYPE_DELETE = 0  # a tombstone


@dataclass(frozen=True)
class Entry:
    """One version of one key."""

    key: bytes
    seq: int
    type: int
    value: bytes = b""

    @property
    def is_tombstone(self):
        return self.type == TYPE_DELETE

    def size(self):
        """Approximate in-memory footprint in bytes."""
        return len(self.key) + len(self.value) + 16

    @staticmethod
    def put(key, seq, value):
        return Entry(key, seq, TYPE_PUT, value)

    @staticmethod
    def delete(key, seq):
        return Entry(key, seq, TYPE_DELETE)
