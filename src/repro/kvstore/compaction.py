"""Leveled compaction.

L0 tables come straight from memtable flushes and may overlap; deeper
levels are sorted runs of non-overlapping tables.  When L0 grows past
its trigger, all of L0 plus the overlapping part of L1 merge into new
L1 tables; when a level exceeds its byte budget, it spills into the
next level the same way.  Compaction keeps only the newest version per
key and drops tombstones once they reach the bottom level.
"""

from repro.core import symbol
from repro.kvstore.iterator import merge_entries, visible_versions
from repro.kvstore.sstable import SSTable

L0_COMPACTION_TRIGGER = 4
LEVEL_SIZE_MULTIPLIER = 10
BASE_LEVEL_BYTES = 256 * 1024
TARGET_TABLE_BYTES = 64 * 1024
MAX_LEVELS = 7


class Compactor:
    """Owns the level structure mutation (the DB holds the lock)."""

    def __init__(self, env):
        self.env = env
        self.compactions = 0
        self.bytes_compacted = 0

    def level_budget(self, level):
        return BASE_LEVEL_BYTES * LEVEL_SIZE_MULTIPLIER ** (level - 1)

    @symbol("rocksdb::DBImpl::BackgroundCompaction()")
    def maybe_compact(self, levels, next_number, protected_seqs=()):
        """Run compactions until the shape invariants hold again.

        `levels[0]` is L0 (newest table first).  `protected_seqs` are
        live snapshots whose visible versions must survive.  Returns
        the next table number.
        """
        while True:
            if len(levels[0]) >= L0_COMPACTION_TRIGGER:
                next_number = self.compact_level(
                    levels, 0, next_number, protected_seqs
                )
                continue
            for level in range(1, len(levels) - 1):
                size = sum(t.bytes for t in levels[level])
                if size > self.level_budget(level):
                    next_number = self.compact_level(
                        levels, level, next_number, protected_seqs
                    )
                    break
            else:
                return next_number

    @symbol("rocksdb::DBImpl::CompactRange()")
    def compact_level(self, levels, level, next_number, protected_seqs=()):
        """Merge `level` (all of it for L0) into level+1."""
        upper = list(levels[level])
        if not upper:
            return next_number
        smallest = min(t.smallest for t in upper)
        largest = max(t.largest for t in upper)
        lower = [
            t for t in levels[level + 1] if t.overlaps(smallest, largest)
        ]
        keep = [t for t in levels[level + 1] if not t.overlaps(smallest, largest)]
        # Newest first: L0 tables are already newest-first, then L1.
        merged = merge_entries(upper + lower)
        is_bottom = level + 1 == len(levels) - 1 or not any(
            levels[i] for i in range(level + 2, len(levels))
        )
        survivors = visible_versions(
            merged,
            protected_seqs=protected_seqs,
            drop_tombstones=is_bottom,
        )
        new_tables, next_number = self._build_tables(survivors, next_number)
        levels[level] = []
        levels[level + 1] = sorted(keep + new_tables, key=lambda t: t.smallest)
        self.compactions += 1
        moved = sum(t.bytes for t in upper + lower)
        self.bytes_compacted += moved
        # Compaction is a streaming merge: sequential read + write.
        self.env.mem_read(moved)
        self.env.mem_write(moved)
        self.env.compute(sum(len(t) for t in upper + lower) * 60)
        return next_number

    def _build_tables(self, entries, next_number):
        tables = []
        batch, batch_bytes = [], 0
        for entry in entries:
            batch.append(entry)
            batch_bytes += entry.size()
            if batch_bytes >= TARGET_TABLE_BYTES:
                tables.append(SSTable(batch, next_number))
                next_number += 1
                batch, batch_bytes = [], 0
        if batch:
            tables.append(SSTable(batch, next_number))
            next_number += 1
        return tables, next_number
