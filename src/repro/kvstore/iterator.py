"""Merging iterators over versioned entry streams.

``merge_entries`` is the k-way merge at the heart of both scans and
compaction: sources are iterated in (key asc, seq desc) order and ties
between sources are broken by source priority (lower index = newer
source), so a memtable entry shadows an L0 entry, which shadows deeper
levels.  ``latest_visible`` collapses the merged stream to what a user
read sees: one newest version per key, tombstones filtered out.
"""

import heapq


def merge_entries(sources):
    """K-way merge of (key asc, seq desc)-ordered entry iterables.

    `sources` are ordered newest-first; on exact (key, seq) ties the
    newer source wins and the older duplicate is still yielded after it
    (compaction decides what to drop).
    """
    heap = []
    iterators = [iter(source) for source in sources]
    for priority, iterator in enumerate(iterators):
        entry = next(iterator, None)
        if entry is not None:
            heapq.heappush(heap, (entry.key, -entry.seq, priority, entry))
    while heap:
        _, _, priority, entry = heapq.heappop(heap)
        yield entry
        nxt = next(iterators[priority], None)
        if nxt is not None:
            heapq.heappush(heap, (nxt.key, -nxt.seq, priority, nxt))


def latest_visible(entries, max_seq=None):
    """Reduce a merged stream to user-visible (key, value) pairs."""
    current_key = None
    for entry in entries:
        if max_seq is not None and entry.seq > max_seq:
            continue
        if entry.key == current_key:
            continue  # an older, shadowed version
        current_key = entry.key
        if not entry.is_tombstone:
            yield entry.key, entry.value


def newest_versions(entries):
    """Keep only the newest version per key (compaction's filter for
    a full compaction, where history is no longer needed)."""
    current_key = None
    for entry in entries:
        if entry.key == current_key:
            continue
        current_key = entry.key
        yield entry


def visible_versions(entries, protected_seqs=(), drop_tombstones=False):
    """Compaction's snapshot-aware garbage collector.

    Keeps, per key, the newest version plus the newest version visible
    at each protected sequence number (a live snapshot), discarding
    everything no snapshot can observe.  With `drop_tombstones` (bottom
    level), a tombstone that is the *only* surviving version of its key
    vanishes entirely — dropping it while older puts survive would
    resurrect the key.
    """
    protected = sorted(set(protected_seqs), reverse=True)

    def flush(kept):
        if not kept:
            return
        if drop_tombstones and kept[0].is_tombstone and len(kept) == 1:
            return
        yield from kept

    current_key = None
    kept = []
    for entry in entries:
        if entry.key != current_key:
            yield from flush(kept)
            current_key = entry.key
            kept = []
            remaining = list(protected)
            newest_taken = False
        if not newest_taken:
            kept.append(entry)
            newest_taken = True
            remaining = [s for s in remaining if s < entry.seq]
            continue
        if remaining and entry.seq <= remaining[0]:
            kept.append(entry)
            remaining = [s for s in remaining if s < entry.seq]
    yield from flush(kept)
