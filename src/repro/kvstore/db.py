"""The LSM key-value store: RocksDB's architecture in miniature.

Write path: WAL append -> memtable insert; a full memtable flushes to
an L0 SSTable and leveled compaction keeps the tree shaped.  Read path:
memtable -> immutable memtable -> L0 (newest first) -> deeper levels,
with Bloom filters skipping tables.  A single DB mutex serialises
writers (as RocksDB's does); reads are lock-free.

Method symbols mirror the RocksDB frames of the paper's Figure 5 so a
TEE-Perf flame graph of db_bench reads like the original.
"""

from repro.core import symbol
from repro.kvstore.compaction import MAX_LEVELS, Compactor
from repro.kvstore.entry import Entry, TYPE_DELETE, TYPE_PUT
from repro.kvstore.iterator import latest_visible, merge_entries
from repro.kvstore.memtable import MemTable
from repro.kvstore.sstable import SSTable
from repro.kvstore.stats import Statistics
from repro.kvstore.wal import WriteAheadLog
from repro.machine import SimLock

DEFAULT_MEMTABLE_BYTES = 64 * 1024


class WriteBatch:
    """An atomic group of writes, applied in one mutex acquisition.

    Build the batch without touching the DB, then ``db.write(batch)``:
    all operations receive consecutive sequence numbers under one lock,
    so readers observe either none or all of them (per key), and the
    WAL carries the batch contiguously.
    """

    def __init__(self):
        self._ops = []

    def put(self, key, value):
        self._ops.append((TYPE_PUT, key, value))
        return self

    def delete(self, key):
        self._ops.append((TYPE_DELETE, key, b""))
        return self

    def clear(self):
        self._ops.clear()

    def __len__(self):
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)


class Snapshot:
    """A pinned sequence number: reads through it see the DB as it was
    when :meth:`DB.snapshot` was called."""

    def __init__(self, db, seq):
        self._db = db
        self.seq = seq
        self.released = False

    def release(self):
        if not self.released:
            self._db._release_snapshot(self)
            self.released = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        state = "released" if self.released else "live"
        return f"Snapshot(seq={self.seq}, {state})"

# Cycle prices of the pure-CPU parts of each operation (the skip-list
# probe chain, key comparisons, seqno bookkeeping).
MEMTABLE_ADD_CYCLES = 420.0
MEMTABLE_GET_CYCLES = 380.0
TABLE_GET_CYCLES = 520.0
BLOOM_CHECK_CYCLES = 90.0


class DB:
    """An LSM store bound to one simulated environment."""

    def __init__(self, env, memtable_bytes=DEFAULT_MEMTABLE_BYTES, seed=0):
        self.env = env
        self.memtable_bytes = memtable_bytes
        self.seed = seed
        self.stats = Statistics(env)
        self.wal = WriteAheadLog(env)
        self.mem = MemTable(seed)
        self.imm = None  # immutable memtable being flushed
        self.levels = [[] for _ in range(MAX_LEVELS)]
        self.compactor = Compactor(env)
        self.mutex = SimLock(name="db-mutex")
        self.seq = 0
        self.next_table_number = 1
        self._snapshots = []
        self.env.alloc(memtable_bytes)

    # ------------------------------------------------------------------
    # Write path

    @symbol("rocksdb::DB::Put(rocksdb::WriteOptions*)")
    def put(self, key, value):
        self._write(Entry.put(key, 0, value))
        self.stats.record_tick("keys.written")

    @symbol("rocksdb::DB::Delete(rocksdb::WriteOptions*)")
    def delete(self, key):
        self._write(Entry.delete(key, 0))
        self.stats.record_tick("keys.deleted")

    @symbol("rocksdb::DB::Write(rocksdb::WriteBatch*)")
    def write(self, batch):
        """Apply a :class:`WriteBatch` atomically."""
        with self.mutex:
            for type_, key, value in batch:
                self.seq += 1
                self.write_batch(Entry(key, self.seq, type_, value))
            if self.mem.bytes >= self.memtable_bytes:
                self.flush_memtable()

    def _write(self, entry):
        with self.mutex:
            self.seq += 1
            entry = Entry(entry.key, self.seq, entry.type, entry.value)
            self.write_batch(entry)
            if self.mem.bytes >= self.memtable_bytes:
                self.flush_memtable()

    @symbol("rocksdb::DBImpl::Write(rocksdb::WriteBatch*)")
    def write_batch(self, entry):
        self.wal.add_record(entry)
        self.stats.record_tick("wal.bytes", entry.size())
        self.memtable_add(entry)

    @symbol("rocksdb::MemTable::Add()")
    def memtable_add(self, entry):
        self.env.compute(MEMTABLE_ADD_CYCLES)
        self.env.mem_write(entry.size(), random=True)
        self.mem.add(entry)

    @symbol("rocksdb::DBImpl::FlushMemTable()")
    def flush_memtable(self):
        """Freeze the memtable and write it out as an L0 table."""
        if not len(self.mem):
            return
        self.imm = self.mem
        self.mem = MemTable(self.seed + self.next_table_number)
        table = SSTable(list(self.imm), self.next_table_number)
        self.next_table_number += 1
        self.env.mem_read(table.bytes)
        self.env.syscall("write", extra_cycles=table.bytes * 0.4)
        self.levels[0].insert(0, table)  # newest first
        self.imm = None
        self.wal.truncate()
        self.stats.record_tick("memtable.flush")
        before = self.compactor.compactions
        self.next_table_number = self.compactor.maybe_compact(
            self.levels,
            self.next_table_number,
            protected_seqs=tuple(s.seq for s in self._snapshots),
        )
        if self.compactor.compactions != before:
            self.stats.record_tick(
                "compaction.run", self.compactor.compactions - before
            )

    # ------------------------------------------------------------------
    # Read path

    @symbol("rocksdb::DB::Get(rocksdb::ReadOptions*)")
    def get(self, key, snapshot=None):
        value = self.get_impl(key, snapshot)
        self.stats.record_tick("keys.read")
        self.stats.record_tick("get.hit" if value is not None else "get.miss")
        return value

    @symbol("rocksdb::DBImpl::GetImpl(rocksdb::ReadOptions*)")
    def get_impl(self, key, snapshot=None):
        max_seq = snapshot.seq if snapshot is not None else None
        entry = self.memtable_get(self.mem, key, max_seq)
        if entry is None and self.imm is not None:
            entry = self.memtable_get(self.imm, key, max_seq)
        if entry is None:
            entry = self.table_get(key, max_seq)
        if entry is None or entry.is_tombstone:
            return None
        return entry.value

    @symbol("rocksdb::MemTable::Get()")
    def memtable_get(self, memtable, key, max_seq=None):
        self.env.compute(MEMTABLE_GET_CYCLES)
        self.env.mem_read(64, random=True)
        return memtable.get(key, max_seq)

    @symbol("rocksdb::TableCache::Get()")
    def table_get(self, key, max_seq=None):
        for table in self.levels[0]:
            entry = self._probe(table, key, max_seq)
            if entry is not None:
                return entry
        for level in self.levels[1:]:
            for table in level:
                if table.smallest <= key <= table.largest:
                    entry = self._probe(table, key, max_seq)
                    if entry is not None:
                        return entry
                    break  # non-overlapping: only one candidate per level
        return None

    def _probe(self, table, key, max_seq=None):
        self.env.compute(BLOOM_CHECK_CYCLES)
        if not table.may_contain(key):
            self.stats.record_tick("bloom.useful")
            return None
        self.env.compute(TABLE_GET_CYCLES)
        self.env.mem_read(4096, random=True)  # one block
        return table.get(key, max_seq)

    # ------------------------------------------------------------------
    # Scans

    @symbol("rocksdb::DB::NewIterator(rocksdb::ReadOptions*)")
    def scan(self, start=None, end=None, snapshot=None):
        """All live (key, value) pairs in [start, end), key-ordered."""
        sources = [self.mem]
        if self.imm is not None:
            sources.append(self.imm)
        sources.extend(self.levels[0])
        for level in self.levels[1:]:
            sources.extend(level)
        max_seq = snapshot.seq if snapshot is not None else None
        out = []
        for key, value in latest_visible(merge_entries(sources), max_seq):
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                break
            self.env.compute(120)
            out.append((key, value))
        return out

    # ------------------------------------------------------------------
    # Snapshots

    @symbol("rocksdb::DB::GetSnapshot()")
    def snapshot(self):
        """A consistent point-in-time view; release when done so
        compaction can reclaim the versions it pins."""
        snap = Snapshot(self, self.seq)
        self._snapshots.append(snap)
        return snap

    def _release_snapshot(self, snap):
        if snap in self._snapshots:
            self._snapshots.remove(snap)

    @symbol("rocksdb::DB::CompactRange()")
    def compact_range(self):
        """Force a full manual compaction (flush + merge everything)."""
        with self.mutex:
            self.flush_memtable()
            for level in range(len(self.levels) - 1):
                if self.levels[level]:
                    self.next_table_number = self.compactor.compact_level(
                        self.levels,
                        level,
                        self.next_table_number,
                        protected_seqs=tuple(
                            s.seq for s in self._snapshots
                        ),
                    )

    # ------------------------------------------------------------------
    # Recovery

    def crash(self):
        """Simulate a crash: lose the memtable, keep WAL + tables."""
        survivor = DB.__new__(DB)
        survivor.__dict__.update(self.__dict__)
        survivor.mem = MemTable(self.seed + 1000)
        survivor.imm = None
        survivor.mutex = SimLock(name="db-mutex")
        return survivor

    @symbol("rocksdb::DBImpl::Recover()")
    def recover(self):
        """Replay the WAL into the fresh memtable (startup path)."""
        replayed = 0
        for entry in self.wal.replay():
            self.env.compute(MEMTABLE_ADD_CYCLES)
            self.mem.add(entry)
            self.seq = max(self.seq, entry.seq)
            replayed += 1
        return replayed

    # ------------------------------------------------------------------

    def table_count(self):
        return sum(len(level) for level in self.levels)

    def level_shape(self):
        """Tables per level — tests assert the LSM invariants on this."""
        return [len(level) for level in self.levels]
