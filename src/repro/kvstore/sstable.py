"""Immutable sorted-string tables (block-based, bloom-filtered).

A flushed memtable becomes an SSTable: fixed-target data blocks, a
sparse index (first key of each block), and a Bloom filter over the
table's keys.  Lookups consult the filter, binary-search the index and
scan one block — the RocksDB ``BlockBasedTable`` read path in
miniature.
"""

import bisect
import struct

from repro.core import symbol
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.entry import Entry
from repro.kvstore.memtable import MemTable

BLOCK_TARGET_BYTES = 4096
_MAGIC = b"TSST0001"
_ENTRY_HEADER = struct.Struct("<HIQB")  # key_len, value_len, seq, type


class SSTable:
    """One immutable table, ordered (key asc, seq desc)."""

    def __init__(self, entries, number, bits_per_key=10):
        entries = list(entries)
        if not entries:
            raise ValueError("an SSTable needs at least one entry")
        for prev, nxt in zip(entries, entries[1:]):
            if MemTable._cmp(prev, nxt) >= 0:
                raise ValueError(
                    f"entries out of order: {prev.key!r} then {nxt.key!r}"
                )
        self.number = number
        self._blocks = []
        self._index = []  # first key of each block
        block, block_bytes = [], 0
        for entry in entries:
            block.append(entry)
            block_bytes += entry.size()
            if block_bytes >= BLOCK_TARGET_BYTES:
                self._push_block(block)
                block, block_bytes = [], 0
        if block:
            self._push_block(block)
        self.filter = BloomFilter(len(entries), bits_per_key)
        for entry in entries:
            self.filter.add(entry.key)
        self.entry_count = len(entries)
        self.smallest = entries[0].key
        self.largest = entries[-1].key
        self.bytes = sum(e.size() for e in entries)

    def _push_block(self, block):
        self._blocks.append(tuple(block))
        self._index.append(block[0].key)

    # ------------------------------------------------------------------

    @symbol("rocksdb::FilterPolicy::KeyMayMatch()")
    def may_contain(self, key):
        return self.filter.may_contain(key)

    @symbol("rocksdb::BlockBasedTable::Get()")
    def get(self, key, max_seq=None):
        """Newest version of `key` visible at `max_seq`, or None."""
        if key < self.smallest or key > self.largest:
            return None
        if not self.may_contain(key):
            return None
        block_idx = bisect.bisect_right(self._index, key) - 1
        if block_idx < 0:
            return None
        for entry in self._blocks[block_idx]:
            if entry.key == key and (max_seq is None or entry.seq <= max_seq):
                return entry
            if entry.key > key:
                break
        return None

    # ------------------------------------------------------------------
    # On-disk format

    def encode(self):
        """Serialise the table: magic, metadata, bloom, data blocks."""
        out = bytearray()
        out += _MAGIC
        out += struct.pack("<III", self.number, self.entry_count,
                           len(self._blocks))
        bloom = self.filter.to_bytes()
        out += struct.pack("<I", len(bloom))
        out += bloom
        for block in self._blocks:
            out += struct.pack("<I", len(block))
            for entry in block:
                out += _ENTRY_HEADER.pack(
                    len(entry.key), len(entry.value), entry.seq, entry.type
                )
                out += entry.key
                out += entry.value
        return bytes(out)

    @classmethod
    def decode(cls, data):
        """Rebuild a table serialised with :meth:`encode`."""
        if data[:8] != _MAGIC:
            raise ValueError("not an SSTable image (bad magic)")
        number, entry_count, n_blocks = struct.unpack_from("<III", data, 8)
        offset = 20
        (bloom_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        bloom = BloomFilter.from_bytes(data[offset : offset + bloom_len])
        offset += bloom_len
        table = cls.__new__(cls)
        table.number = number
        table.entry_count = entry_count
        table.filter = bloom
        table._blocks = []
        table._index = []
        total_bytes = 0
        for _ in range(n_blocks):
            (count,) = struct.unpack_from("<I", data, offset)
            offset += 4
            block = []
            for _ in range(count):
                key_len, value_len, seq, type_ = _ENTRY_HEADER.unpack_from(
                    data, offset
                )
                offset += _ENTRY_HEADER.size
                key = bytes(data[offset : offset + key_len])
                offset += key_len
                value = bytes(data[offset : offset + value_len])
                offset += value_len
                entry = Entry(key, seq, type_, value)
                block.append(entry)
                total_bytes += entry.size()
            table._blocks.append(tuple(block))
            table._index.append(block[0].key)
        if sum(len(b) for b in table._blocks) != entry_count:
            raise ValueError("SSTable image truncated")
        table.smallest = table._blocks[0][0].key
        table.largest = table._blocks[-1][-1].key
        table.bytes = total_bytes
        return table

    def overlaps(self, smallest, largest):
        """True when the key ranges intersect."""
        return not (self.largest < smallest or largest < self.smallest)

    def block_count(self):
        return len(self._blocks)

    def __iter__(self):
        for block in self._blocks:
            yield from block

    def __len__(self):
        return self.entry_count

    def __repr__(self):
        return (
            f"SSTable(#{self.number}, {self.entry_count} entries, "
            f"{self.block_count()} blocks, "
            f"[{self.smallest!r}..{self.largest!r}])"
        )
