"""RocksDB-style statistics.

Two layers, as in the original:

* :class:`Statistics` — the DB-wide ticker counters bumped through
  ``RecordTick`` on every operation;
* :class:`Stats` — db_bench's per-thread bookkeeping, whose ``Now()``
  reads a timestamp around *every single operation*.  Inside an SGX v1
  enclave a timestamp is an emulated rdtsc costing tens of thousands of
  cycles, which is precisely why Figure 5's flame graph is dominated by
  ``rocksdb::Stats::Now()``.
"""

from repro.core import symbol

TICKERS = (
    "keys.read",
    "keys.written",
    "keys.deleted",
    "get.hit",
    "get.miss",
    "bloom.useful",
    "memtable.flush",
    "compaction.run",
    "wal.bytes",
)


class Statistics:
    """DB-wide ticker counters."""

    def __init__(self, env):
        self.env = env
        self.tickers = {name: 0 for name in TICKERS}

    @symbol("rocksdb::RecordTick(rocksdb::Statistics*)")
    def record_tick(self, name, count=1):
        self.env.compute(30)  # a relaxed atomic add per ticker
        if name not in self.tickers:
            raise KeyError(f"unknown ticker {name!r}")
        self.tickers[name] += count

    def ticker(self, name):
        return self.tickers[name]

    def report(self):
        lines = ["rocksdb statistics:"]
        for name in TICKERS:
            lines.append(f"  {name:<18} {self.tickers[name]}")
        return "\n".join(lines)


class Stats:
    """db_bench per-thread stats: timestamps around every op."""

    def __init__(self, env):
        self.env = env
        self.start_ns = 0.0
        self.finish_ns = 0.0
        self.last_op_ns = 0.0
        self.done = 0

    @symbol("rocksdb::Stats::Now()")
    def now(self):
        """Current time — an emulated rdtsc inside the enclave."""
        return self.env.timestamp()

    @symbol("rocksdb::Stats::Start(int)")
    def start(self, _id=0):
        self.start_ns = self.now()
        self.last_op_ns = self.start_ns
        self.done = 0

    @symbol("rocksdb::Stats::FinishedSingleOp()")
    def finished_single_op(self):
        self.last_op_ns = self.now()
        self.done += 1

    @symbol("rocksdb::Stats::Stop()")
    def stop(self):
        self.finish_ns = self.now()

    def elapsed_seconds(self):
        return max(0.0, (self.finish_ns - self.start_ns)) / 1e9

    def ops_per_second(self):
        elapsed = self.elapsed_seconds()
        return self.done / elapsed if elapsed > 0 else 0.0

    def merge(self, other):
        """Combine per-thread stats, db_bench style."""
        self.done += other.done
        if other.start_ns and (
            not self.start_ns or other.start_ns < self.start_ns
        ):
            self.start_ns = other.start_ns
        self.finish_ns = max(self.finish_ns, other.finish_ns)
