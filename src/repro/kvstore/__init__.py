"""An LSM key-value store and db_bench driver (the RocksDB substrate).

The paper's Figure 5 profiles RocksDB's db_bench (random read/write,
80 % reads) with TEE-Perf inside SGX and finds the time sunk into
``rocksdb::Stats::Now()`` and ``rocksdb::RandomGenerator``.  This
package rebuilds that whole stack: skip-list memtable, write-ahead log,
bloom-filtered block-based SSTables, leveled compaction, a versioned
read path, RocksDB-style statistics and the db_bench tool — with method
symbols matching the frames of the paper's flame graph.
"""

from repro.kvstore.bloom import BloomFilter, fnv1a
from repro.kvstore.compaction import Compactor
from repro.kvstore.db import DB, Snapshot, WriteBatch
from repro.kvstore.db_bench import DbBench, ThreadState
from repro.kvstore.entry import Entry, TYPE_DELETE, TYPE_PUT
from repro.kvstore.iterator import (
    latest_visible,
    merge_entries,
    newest_versions,
    visible_versions,
)
from repro.kvstore.memtable import MemTable
from repro.kvstore.random_gen import Random, RandomGenerator
from repro.kvstore.sstable import SSTable
from repro.kvstore.stats import Statistics, Stats
from repro.kvstore.wal import WalCorruption, WriteAheadLog

__all__ = [
    "BloomFilter",
    "Compactor",
    "DB",
    "DbBench",
    "Entry",
    "MemTable",
    "Random",
    "RandomGenerator",
    "SSTable",
    "Snapshot",
    "Statistics",
    "Stats",
    "ThreadState",
    "TYPE_DELETE",
    "TYPE_PUT",
    "WalCorruption",
    "WriteBatch",
    "WriteAheadLog",
    "fnv1a",
    "latest_visible",
    "merge_entries",
    "newest_versions",
    "visible_versions",
]
