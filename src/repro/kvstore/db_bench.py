"""db_bench: the RocksDB benchmark driver the paper evaluates with.

Implements the workloads the evaluation uses — ``fillrandom`` to load
the store and ``readrandomwriterandom`` with a configurable read
percentage (the paper runs 80 % reads) — with the same thread/stat
structure as the original: every benchmark thread gets a ThreadState,
runs through ``StartThreadWrapper`` -> ``ThreadBody`` -> the benchmark
method, stamps every operation through ``Stats``, and the per-thread
stats merge into the final ops/s report.
"""

from repro.core import symbol
from repro.kvstore.random_gen import DATA_BYTES, Random, RandomGenerator
from repro.kvstore.stats import Stats

DEFAULT_NUM_KEYS = 2_000
DEFAULT_OPS_PER_THREAD = 1_500
DEFAULT_THREADS = 4
DEFAULT_VALUE_SIZE = 100
DEFAULT_READ_PCT = 80


class ThreadState:
    """Per-benchmark-thread state, as in db_bench."""

    def __init__(self, tid, env, seed):
        self.tid = tid
        self.rand = Random(1000 + seed + tid)
        self.stats = Stats(env)


class DbBench:
    """The benchmark tool shipped with RocksDB, in miniature."""

    def __init__(
        self,
        machine,
        env,
        db,
        num_keys=DEFAULT_NUM_KEYS,
        ops_per_thread=DEFAULT_OPS_PER_THREAD,
        threads=DEFAULT_THREADS,
        value_size=DEFAULT_VALUE_SIZE,
        read_pct=DEFAULT_READ_PCT,
        seed=0,
        generator_bytes=None,
    ):
        if not 0 <= read_pct <= 100:
            raise ValueError(f"read_pct must be 0..100: {read_pct}")
        self.machine = machine
        self.env = env
        self.db = db
        self.num_keys = num_keys
        self.ops_per_thread = ops_per_thread
        self.threads = threads
        self.value_size = value_size
        self.read_pct = read_pct
        self.seed = seed
        self.generator_bytes = generator_bytes
        self.merged = Stats(env)

    # ------------------------------------------------------------------

    def key_for(self, index):
        return b"%016d" % index

    @symbol("rocksdb::Benchmark::FillRandom(ThreadState*)")
    def fill_random(self):
        """Preload the store (the paper profiles only the mixed phase)."""
        rand = Random(99 + self.seed)
        gen = self._small_generator()
        for _ in range(self.num_keys):
            key = self.key_for(rand.uniform(self.num_keys))
            self.db.put(key, gen.generate())

    @symbol("rocksdb::Benchmark::FillSeq(ThreadState*)")
    def fill_seq(self):
        """Load every key once, in order (db_bench's fillseq)."""
        gen = self._small_generator()
        for index in range(self.num_keys):
            self.db.put(self.key_for(index), gen.generate())

    @symbol("rocksdb::Benchmark::ReadRandom(ThreadState*)")
    def read_random(self, ops=None):
        """Point reads of random keys; returns the hit count."""
        rand = Random(171 + self.seed)
        hits = 0
        for _ in range(ops or self.ops_per_thread):
            key = self.key_for(rand.uniform(self.num_keys))
            if self.db.get(key) is not None:
                hits += 1
        return hits

    @symbol("rocksdb::Benchmark::ReadSeq(ThreadState*)")
    def read_seq(self):
        """One full ordered scan; returns pairs visited."""
        return len(self.db.scan())

    @symbol("rocksdb::Benchmark::Overwrite(ThreadState*)")
    def overwrite(self, ops=None):
        """Random overwrites of existing keys."""
        rand = Random(313 + self.seed)
        gen = self._small_generator()
        for _ in range(ops or self.ops_per_thread):
            key = self.key_for(rand.uniform(self.num_keys))
            self.db.put(key, gen.generate())

    def _small_generator(self):
        return RandomGenerator(
            self.env,
            rand=Random(7),
            data_bytes=self.generator_bytes or (64 * 1024),
            value_size=self.value_size,
        )

    @symbol("rocksdb::Benchmark::Run()")
    def run(self):
        """The mixed phase: N threads of ReadRandomWriteRandom."""
        states = [
            ThreadState(i, self.env, self.seed) for i in range(self.threads)
        ]
        threads = [
            self.machine.spawn(
                self.start_thread_wrapper, state, name=f"db_bench-{i}"
            )
            for i, state in enumerate(states)
        ]
        for thread in threads:
            thread.join()
        self.merged = Stats(self.env)
        for state in states:
            self.merged.merge(state.stats)
        return self.merged

    @symbol("rocksdb::StartThreadWrapper(void*)")
    def start_thread_wrapper(self, state):
        self.thread_body(state)

    @symbol("rocksdb::Benchmark::ThreadBody(void*)")
    def thread_body(self, state):
        self.read_random_write_random(state)

    @symbol("rocksdb::Benchmark::ReadRandomWriteRandom(ThreadState*)")
    def read_random_write_random(self, state):
        """The 80/20 mixed workload of the evaluation."""
        gen = RandomGenerator(
            self.env,
            rand=Random(301 + state.tid),
            data_bytes=self.generator_bytes or DATA_BYTES,
            value_size=self.value_size,
        )
        state.stats.start()
        reads = writes = 0
        for _ in range(self.ops_per_thread):
            key = self.key_for(state.rand.uniform(self.num_keys))
            if state.rand.uniform(100) < self.read_pct:
                self.db.get(key)
                reads += 1
            else:
                self.db.put(key, gen.generate())
                writes += 1
            state.stats.finished_single_op()
        state.stats.stop()
        return reads, writes

    # ------------------------------------------------------------------

    def report(self):
        ops = self.merged.done
        elapsed = self.machine.clock.cycles_to_seconds(
            self.machine.elapsed_cycles()
        )
        ops_s = ops / elapsed if elapsed else 0.0
        return (
            f"readrandomwriterandom: {ops} ops, {self.threads} threads, "
            f"{self.read_pct}% reads, {ops_s:,.0f} ops/s"
        )
