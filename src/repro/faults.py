"""Deterministic fault injection for crash-consistency testing.

The recorder's whole crash-consistency story (sealed segments in
:mod:`repro.core.log`, salvage in :mod:`repro.core.recovery`) is only
as credible as the crashes it is tested against.  This module produces
them, reproducibly:

* :class:`CrashingWriter` — a :class:`~repro.core.log.ThreadLogWriter`
  that dies at a chosen phase of a chosen block commit
  (:data:`CRASH_PHASES`): before the reservation, after reserving but
  before writing a byte, mid-write (a torn block), after writing but
  before sealing, or after a complete seal;
* :class:`FaultInjector` — seeded byte-level damage to a persisted
  image: bit flips in chosen regions and truncation at arbitrary
  offsets;
* :func:`crash_after` — a countdown guard that raises
  :class:`InjectedCrash` mid-call inside an instrumented application;
* :func:`crashed_snapshot` / :func:`run_to_crash` — capture the
  shared memory exactly as a crash leaves it: tail synced to the live
  reservation counter (on real hardware the fetch-and-add lives in
  the shared mapping), seal journal as of the last *completed* seal,
  and — crucially — no final flush or ``seal_remainder()``, which
  only a clean ``stop()`` performs.

Everything is driven by explicit seeds/choices, never wall-clock or
global randomness, so every test failure replays exactly.
"""

import random

from repro.core.log import HEADER_SIZE, ThreadLogWriter

__all__ = [
    "CRASH_PHASES",
    "CrashingWriter",
    "FaultInjector",
    "InjectedCrash",
    "crash_after",
    "crashed_snapshot",
    "run_to_crash",
    "seeded_crash_plan",
]

#: The commit phases a :class:`CrashingWriter` can die in, in the
#: order they occur inside one flush.
CRASH_PHASES = (
    "before-reserve",  # staged events lost, log untouched
    "after-reserve",  # slots reserved, zero bytes written
    "mid-write",  # a torn block: partial bytes, ends mid-entry
    "after-write",  # bytes committed, seal never recorded
    "after-seal",  # a complete commit, then death
)


class InjectedCrash(RuntimeError):
    """The simulated application/writer death. Deliberate, not a bug."""


class CrashingWriter(ThreadLogWriter):
    """A batched writer that dies at `phase` of its `crash_flush`-th
    non-empty flush (1-based).  Earlier flushes behave normally, so a
    test can build up healthy sealed blocks before the crash.
    """

    __slots__ = ("phase", "crash_flush", "_flush_calls", "crashed")

    def __init__(self, log, block=None, phase="after-write",
                 crash_flush=1):
        if phase not in CRASH_PHASES:
            raise ValueError(
                f"unknown crash phase {phase!r} "
                f"(choose from {CRASH_PHASES})"
            )
        kwargs = {} if block is None else {"block": block}
        super().__init__(log, **kwargs)
        self.phase = phase
        self.crash_flush = crash_flush
        self._flush_calls = 0
        self.crashed = False

    def flush(self):
        staged = self._staged_bytes()
        count = len(staged) // self.log.entry_size
        if not count:
            return 0
        self._flush_calls += 1
        crashing = not self.crashed and self._flush_calls == self.crash_flush
        if crashing:
            self.crashed = True
        log = self.log
        if crashing and self.phase == "before-reserve":
            raise InjectedCrash("writer died before reserving its block")
        start, granted = log.reserve_block(count)
        if crashing and self.phase == "after-reserve":
            raise InjectedCrash(
                f"writer died holding [{start}, {start + granted}) "
                f"with nothing written"
            )
        if granted:
            raw = staged
            if crashing and self.phase == "mid-write":
                entry_size = log.entry_size
                # End mid-entry: half the block, plus a few bytes.
                torn = (granted * entry_size) // 2 + 3
                offset = HEADER_SIZE + start * entry_size
                log._buf[offset : offset + torn] = raw[:torn]
                raise InjectedCrash(
                    f"writer died {torn} bytes into its "
                    f"{granted * entry_size}-byte block"
                )
            log.write_block(start, granted, raw)
            if crashing and self.phase == "after-write":
                raise InjectedCrash(
                    f"writer died after writing [{start}, "
                    f"{start + granted}) but before sealing it"
                )
            if log.sealed:
                log.seal(start, granted)
            self.flushed += granted
        self._clear_staged()
        surrendered = count - granted
        if surrendered:
            self.dropped += surrendered
            log.dropped += surrendered
        self.blocks_flushed += 1
        if crashing and self.phase == "after-seal":
            raise InjectedCrash("writer died right after a clean commit")
        return granted


class FaultInjector:
    """Seeded byte-level damage to a persisted log image."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)

    def flip(self, data, n=1, lo=HEADER_SIZE, hi=None):
        """Flip one random bit in each of `n` random bytes of
        ``data[lo:hi]``; returns ``(damaged, offsets)``."""
        buf = bytearray(data)
        hi = len(buf) if hi is None else min(hi, len(buf))
        if hi <= lo:
            return bytes(buf), []
        offsets = sorted(
            self.rng.randrange(lo, hi) for _ in range(n)
        )
        for offset in offsets:
            buf[offset] ^= 1 << self.rng.randrange(8)
        return bytes(buf), offsets

    def truncate(self, data, offset=None, lo=0):
        """Cut the image at `offset` (random in ``[lo, len)`` when not
        given); returns ``(truncated, offset)``."""
        if offset is None:
            offset = self.rng.randrange(lo, len(data) + 1)
        return bytes(data[:offset]), offset


def seeded_crash_plan(seed, max_flush=2):
    """A deterministic (phase, crash_flush) pair from one seed.

    The composition point between fault injection and schedule
    exploration: the explorer derives one seed per trial, the same
    seed picks both the schedule and the crash plan, so every
    (interleaving, fault) pair replays from a single integer.
    """
    rng = random.Random(seed)
    phase = CRASH_PHASES[rng.randrange(len(CRASH_PHASES))]
    return phase, rng.randrange(1, max_flush + 1)


def crash_after(calls, message="application crashed mid-call"):
    """A zero-argument guard that raises :class:`InjectedCrash` on its
    `calls`-th invocation — drop it into an instrumented method to
    kill the simulated application mid-call, deterministically."""
    remaining = [calls]

    def guard():
        remaining[0] -= 1
        if remaining[0] <= 0:
            raise InjectedCrash(message)

    return guard


def crashed_snapshot(log):
    """The shared memory exactly as a crash would leave it.

    The tail word is synced to the live reservation counter (the
    fetch-and-add lives in the shared mapping on real hardware, so a
    crash cannot un-reserve), and the seal journal reflects only the
    seals that *completed* — no final flush, no ``seal_remainder()``,
    because the application never reached a clean ``stop()``.
    """
    return log.to_bytes()


def run_to_crash(recorder, entry, *args, **kwargs):
    """Start `recorder`, run `entry` until it raises
    :class:`InjectedCrash`, and return the crashed snapshot bytes.

    Deliberately never calls ``recorder.stop()`` — stop flushes the
    hooks and seals the remainder, which would hide the crash.  Raises
    :class:`AssertionError` when `entry` returns without crashing
    (the fault was mis-planted).
    """
    recorder.start()
    try:
        entry(*args, **kwargs)
    except InjectedCrash:
        pass
    else:
        raise AssertionError(
            "entry returned without crashing; fault not planted?"
        )
    return crashed_snapshot(recorder.log)
