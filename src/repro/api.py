"""The public API of the TEE-Perf reproduction, in one place.

Everything a user of the profiler needs sits behind this module::

    from repro.api import TEEPerf, AnalyzeOptions

    perf = TEEPerf.simulated(cores=8)
    perf.compile_instance(workload)
    perf.record(workload.run)
    print(perf.analyze(options=AnalyzeOptions(jobs=4)).report())

The facade is a *names* contract, not a new layer: every symbol here
is the same object as its home module's, so isinstance checks and
monkeypatching keep working.  The home modules remain importable —
``repro.core.analyzer.Analyzer`` is fine forever — but the package
re-exports (``from repro.core import TEEPerf``) are deprecated in
favour of this module and emit :class:`DeprecationWarning`.

What belongs here:

* the four-stage pipeline — :class:`TEEPerf` (alias
  :data:`Profiler`), :class:`Recorder`, :class:`LiveRecorder`,
  :class:`Analyzer`, :class:`Analysis`, :class:`FlameGraph`,
  :class:`QuerySession`;
* the log and its persistence — :class:`SharedLog`,
  :func:`open_log`;
* crash recovery — :func:`recover_log`, :func:`repair_tails`,
  :class:`RecoveryReport`, :class:`QuarantinedRange`;
* differential profiling — :class:`AnalysisDiff`,
  :class:`MethodDelta` (also ``tee-perf diff`` on the command line);
* the fleet service — :class:`FleetDaemon`, :class:`FleetClient`,
  :class:`FleetServer`, :class:`IngestListener`,
  :class:`WindowStore`, :class:`PathTable`,
  :class:`FoldedProfile` (see docs/fleet.md);
* configuration — :class:`RecordOptions`, :class:`AnalyzeOptions`;
* instrumentation markers — :func:`symbol`, :func:`no_instrument`;
* counters and errors — :class:`PipelineStats` and the exception
  hierarchy rooted at :class:`TEEPerfError`;
* the evaluation driver — :func:`run_teeperf`;
* the deterministic machine — :class:`Machine` and the simulated
  sync primitives (:class:`SimLock`, :class:`SimAtomicU64`,
  :class:`SimBarrier`, :class:`SimCondition`, :class:`SimEvent`,
  :class:`SimRWLock`, :class:`SimSemaphore`), with
  :class:`DeadlockError` / :class:`LivelockError` as its liveness
  verdicts;
* schedule-space exploration — :class:`Explorer`,
  :class:`ExploreOptions`, :class:`ExploreReport`,
  :class:`SchedulePolicy` / :func:`make_policy` (see
  docs/exploration.md; ``tee-perf explore`` on the command line).
"""

from repro.core.analyzer import Analysis, Analyzer
from repro.core.diff import AnalysisDiff, MethodDelta
from repro.core.errors import (
    AnalyzerError,
    LogFormatError,
    RecorderError,
    RecoveryError,
    TEEPerfError,
)
from repro.core.flamegraph import FlameGraph
from repro.core.instrument import no_instrument, symbol
from repro.core.log import SharedLog, open_log
from repro.core.options import AnalyzeOptions, RecordOptions
from repro.core.profiler import TEEPerf
from repro.core.query import QuerySession
from repro.core.recorder import LiveRecorder, Recorder
from repro.core.recovery import (
    QuarantinedRange,
    RecoveryReport,
    recover_log,
    repair_tails,
)
from repro.core.stats import PipelineStats
from repro.explore import Explorer, ExploreOptions, ExploreReport
from repro.fleet import (
    FleetClient,
    FleetDaemon,
    FleetServer,
    FoldedProfile,
    IngestListener,
    PathTable,
    WindowStore,
)
from repro.machine import (
    DeadlockError,
    LivelockError,
    Machine,
    SchedulePolicy,
    SimAtomicU64,
    SimBarrier,
    SimCondition,
    SimEvent,
    SimLock,
    SimRWLock,
    SimSemaphore,
    make_policy,
)
from repro.phoenix.runner import run_teeperf

#: The profiler facade under its generic name.
Profiler = TEEPerf

__all__ = [
    "Analysis",
    "AnalysisDiff",
    "AnalyzeOptions",
    "Analyzer",
    "AnalyzerError",
    "DeadlockError",
    "ExploreOptions",
    "ExploreReport",
    "Explorer",
    "FlameGraph",
    "FleetClient",
    "FleetDaemon",
    "FleetServer",
    "FoldedProfile",
    "IngestListener",
    "LiveRecorder",
    "LivelockError",
    "LogFormatError",
    "Machine",
    "MethodDelta",
    "PathTable",
    "PipelineStats",
    "Profiler",
    "QuarantinedRange",
    "QuerySession",
    "RecordOptions",
    "Recorder",
    "RecorderError",
    "RecoveryError",
    "RecoveryReport",
    "SchedulePolicy",
    "SharedLog",
    "SimAtomicU64",
    "SimBarrier",
    "SimCondition",
    "SimEvent",
    "SimLock",
    "SimRWLock",
    "SimSemaphore",
    "TEEPerf",
    "TEEPerfError",
    "WindowStore",
    "make_policy",
    "no_instrument",
    "open_log",
    "recover_log",
    "repair_tails",
    "run_teeperf",
    "symbol",
]
