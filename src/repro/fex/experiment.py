"""Repeated measurements, geometric means, result tables."""

import math

from repro.frame import Frame


def geomean(values):
    """Geometric mean; the paper's aggregate for cross-benchmark means."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean needs positive values: {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Measurement:
    """A set of repeated observations of one quantity."""

    def __init__(self, values):
        self.values = list(values)
        if not self.values:
            raise ValueError("empty measurement")

    @property
    def geomean(self):
        return geomean(self.values)

    @property
    def mean(self):
        return sum(self.values) / len(self.values)

    @property
    def min(self):
        return min(self.values)

    @property
    def max(self):
        return max(self.values)

    @property
    def spread(self):
        """Relative spread (max-min)/geomean — a quick stability check."""
        return (self.max - self.min) / self.geomean

    def __repr__(self):
        return (
            f"Measurement(n={len(self.values)}, geomean={self.geomean:.4g}, "
            f"spread={self.spread:.2%})"
        )


def repeat(fn, runs=10):
    """Run ``fn`` `runs` times; returns a :class:`Measurement` of its
    returned values.  `fn` receives the run index."""
    if runs < 1:
        raise ValueError(f"need at least one run: {runs}")
    return Measurement([fn(i) for i in range(runs)])


class Experiment:
    """A named experiment accumulating one measurement per variant.

    With a :class:`repro.monitor.Monitor` attached, every run also
    captures a monitor snapshot (after one synchronous sampling pass),
    collected per variant in :attr:`snapshots` — so an experiment's
    result rows carry the live-metric context they were measured
    under.
    """

    def __init__(self, name, runs=10, monitor=None):
        self.name = name
        self.runs = runs
        self.monitor = monitor
        self.results = {}
        self.snapshots = {}

    def measure(self, variant, fn):
        """Measure one variant; `fn(run_index)` returns the metric."""
        snapshots = []

        def observed(run_index):
            value = fn(run_index)
            if self.monitor is not None:
                self.monitor.poll_once()
                snapshots.append(self.monitor.snapshot())
            return value

        measurement = repeat(observed, self.runs)
        self.results[variant] = measurement
        if self.monitor is not None:
            self.snapshots[variant] = snapshots
        return measurement

    def geomeans(self):
        return {v: m.geomean for v, m in self.results.items()}

    def ratio(self, numerator, denominator):
        """Geomean ratio between two variants."""
        return (
            self.results[numerator].geomean
            / self.results[denominator].geomean
        )

    def __repr__(self):
        return f"Experiment({self.name!r}, {len(self.results)} variants)"


class ResultTable:
    """Uniform text output for benchmark rows (paper-table style)."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self._rows = []

    def add_row(self, *values, **named):
        if values and named:
            raise ValueError("pass positional or named values, not both")
        if named:
            values = [named.get(c) for c in self.columns]
        values = list(values)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self._rows.append(values)

    def to_frame(self):
        return Frame(
            {
                name: [row[i] for row in self._rows]
                for i, name in enumerate(self.columns)
            }
        )

    def render(self):
        cells = [self.columns] + [
            [_fmt(v) for v in row] for row in self._rows
        ]
        widths = [
            max(len(row[i]) for row in cells)
            for i in range(len(self.columns))
        ]
        bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, bar]
        for row in cells:
            lines.append(
                "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self):
        return self.render()


def _fmt(value):
    if isinstance(value, float):
        return f"{value:,.3f}" if value < 1000 else f"{value:,.0f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
