"""A Fex-style evaluation harness.

The paper runs all measurements through Fex (Oleksenko et al.,
DSN'17) and reports "the geometric mean over 10 runs across all
benchmarks".  This package provides the same methodology: repeated
measurements, geometric-mean aggregation, and uniform table/series
output used by every benchmark in ``benchmarks/``.
"""

from repro.fex.experiment import (
    Experiment,
    Measurement,
    ResultTable,
    geomean,
    repeat,
)

__all__ = [
    "Experiment",
    "Measurement",
    "ResultTable",
    "geomean",
    "repeat",
]
