"""The Linux-perf baseline: IP sampling with per-interrupt cost.

The paper's Figure 4 compares TEE-Perf against ``perf`` on the Phoenix
suite inside SGX; this package models perf faithfully enough for that
comparison — periodic sampling on a grid, per-sample interrupt cost
(an AEX inside the enclave), leaf attribution, and the sampling
frequency bias that §I calls out as the thing TEE-Perf's exhaustive
tracing avoids.
"""

from repro.perfsim.ghost import GhostEvent, GhostHooks
from repro.perfsim.sampler import (
    DEFAULT_FREQ_HZ,
    NATIVE_SAMPLE_CYCLES,
    OTHER,
    PerfResult,
    PerfSim,
)

__all__ = [
    "DEFAULT_FREQ_HZ",
    "GhostEvent",
    "GhostHooks",
    "NATIVE_SAMPLE_CYCLES",
    "OTHER",
    "PerfResult",
    "PerfSim",
]
