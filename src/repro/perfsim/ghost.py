"""Ghost tracing: ground-truth execution traces at zero virtual cost.

``perf`` profiles *uninstrumented* binaries — the hardware gives it the
instruction pointer for free.  The simulation equivalent is the
:class:`GhostHooks` object: it plugs into the same hook slot the
instrumenter leaves behind, but records events into a plain Python list
without charging a single virtual cycle and without touching a log.
The perf model post-processes this ground truth into samples, and the
accuracy benchmarks use it as the oracle both profilers are judged
against.
"""

from dataclasses import dataclass

from repro.machine import current_thread


@dataclass(frozen=True)
class GhostEvent:
    time: float  # virtual cycles
    kind: int  # KIND_CALL / KIND_RET
    addr: int  # link-time address
    tid: int


class GhostHooks:
    """Zero-cost hooks implementation capturing the true trace."""

    __slots__ = ("events",)

    def __init__(self):
        self.events = []

    def on_event(self, kind, addr):
        thread = current_thread()
        self.events.append(
            GhostEvent(thread.local_time, kind, addr, thread.tid)
        )

    def by_thread(self):
        """Events grouped per thread, in per-thread time order."""
        grouped = {}
        for event in self.events:
            grouped.setdefault(event.tid, []).append(event)
        return grouped
