"""A Linux-perf model: periodic instruction-pointer sampling.

``perf record`` interrupts each running thread at a fixed frequency,
walks to the current instruction pointer, and charges the application
the cost of the interrupt.  Inside an SGX enclave every such interrupt
is an *asynchronous enclave exit* (AEX) — the hardware flushes the TLB
and re-enters through ERESUME — which is why perf's overhead is far
from free inside a TEE even though its sample rate is modest.

The model works on the ground-truth ghost trace:

* **overhead** — each thread running for T cycles takes
  ``n = T / (period - cost)`` samples (the interrupt time itself is
  sampled time too: the fixed point of ``n = (T + n*cost) / period``),
  and its runtime stretches by ``n * cost``.  The per-sample cost is
  the platform's AEX cost inside a TEE and a plain interrupt outside.
* **attribution** — samples land exactly on the periodic grid, and each
  is attributed to the function on top of the thread's true stack at
  that instant.  This reproduces perf's defining weakness: a workload
  whose phases align with the sampling frequency is attributed wrongly
  (§I's "sampling frequency bias"), which TEE-Perf avoids by tracing
  every call.  Optional deterministic jitter models perf's mitigation.

Attribution inside a real enclave additionally requires debug mode or
SGX support in perf; the model assumes symbols are visible, because the
paper's comparison is about overhead and method-level accuracy, not
about enclave opacity.
"""

from repro.core.log import KIND_CALL
from repro.perfsim.ghost import GhostHooks

DEFAULT_FREQ_HZ = 3997.0  # perf's "4000 Hz, avoid lockstep" default
# Cost of one sampling interrupt on the host: timer IRQ + PEBS/NMI
# handler + stack copy (~2 us at 3.6 GHz).
NATIVE_SAMPLE_CYCLES = 7_200.0
OTHER = "[other]"


class PerfResult:
    """What a perf run yields: a sampled profile plus its overhead."""

    def __init__(self, samples, base_cycles, elapsed_cycles, freq_hz,
                 threads, stacks=None):
        self.samples = samples
        self.base_cycles = base_cycles
        self.elapsed_cycles = elapsed_cycles
        self.freq_hz = freq_hz
        self.threads = threads
        # Call-graph mode (perf record -g): full-stack sample counts.
        self.stacks = stacks

    def folded(self):
        """Folded stacks from call-graph samples (for flame graphs).

        Raises when the run was not taken with ``callgraph=True``.
        """
        if self.stacks is None:
            raise ValueError(
                "no call-graph samples: run PerfSim(callgraph=True)"
            )
        return dict(self.stacks)

    @property
    def total_samples(self):
        return sum(self.samples.values())

    def fraction(self, name):
        """Share of samples attributed to `name`."""
        total = self.total_samples
        return self.samples.get(name, 0) / total if total else 0.0

    def overhead_cycles(self):
        return self.elapsed_cycles - self.base_cycles

    def report(self, top=20):
        """perf-report-style output: overhead%, samples, symbol."""
        total = self.total_samples or 1
        lines = [
            f"# Samples: {self.total_samples} of event 'cycles' "
            f"at {self.freq_hz:.0f} Hz across {self.threads} thread(s)",
            f"# {'Overhead':>9}  {'Samples':>9}  Symbol",
        ]
        ranked = sorted(
            self.samples.items(), key=lambda kv: kv[1], reverse=True
        )
        for name, count in ranked[:top]:
            lines.append(f"  {100 * count / total:>8.2f}%  {count:>9}  {name}")
        return "\n".join(lines)


class PerfSim:
    """Drives one workload run under the sampling model.

    Parameters
    ----------
    env:
        The execution environment the workload runs in; decides the
        per-sample cost (AEX inside a TEE) and supplies the machine.
    freq_hz:
        Sampling frequency.
    jitter:
        Fraction of the period (0..1) by which sample points are
        deterministically perturbed, modelling perf's anti-lockstep
        jitter.  0 = exact grid (worst-case bias).
    callgraph:
        ``perf record -g``: each sample captures the whole user stack
        (dwarf/fp unwind), costing extra per sample but enabling flame
        graphs from the sampled data.
    """

    # Unwinding and copying the stack inflates the per-sample cost.
    CALLGRAPH_COST_FACTOR = 1.35

    def __init__(self, env, freq_hz=DEFAULT_FREQ_HZ, jitter=0.0,
                 callgraph=False):
        if freq_hz <= 0:
            raise ValueError(f"frequency must be positive: {freq_hz}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {jitter}")
        self.env = env
        self.machine = env.machine
        self.freq_hz = freq_hz
        self.jitter = jitter
        self.callgraph = callgraph
        self.ghost = GhostHooks()

    def sample_cost_cycles(self):
        base = (
            self.env.costs.aex_cycles
            if self.env.is_enclave
            else NATIVE_SAMPLE_CYCLES
        )
        return base * (self.CALLGRAPH_COST_FACTOR if self.callgraph else 1.0)

    def period_cycles(self):
        return self.machine.clock.seconds_to_cycles(1.0 / self.freq_hz)

    # ------------------------------------------------------------------

    def profile(self, program, entry, *args, **kwargs):
        """Run ``entry`` under sampling; returns a :class:`PerfResult`.

        `program` is an instrumented program whose hook slot we borrow
        for the zero-cost ghost trace (the real perf needs no
        instrumentation; the ghost is the simulation's stand-in for the
        hardware's view of the instruction pointer).
        """
        program.hooks.arm(self.ghost, offset=0)
        try:
            self.machine.run(entry, *args, **kwargs)
        finally:
            program.hooks.disarm()
        return self._post_process(program)

    # ------------------------------------------------------------------

    def _post_process(self, program):
        period = self.period_cycles()
        cost = self.sample_cost_cycles()
        if cost >= period:
            raise ValueError(
                f"sample cost ({cost} cycles) exceeds the sampling period "
                f"({period} cycles); lower the frequency"
            )
        resolve = _Resolver(program)
        samples = {}
        stacks = {} if self.callgraph else None
        base = self.machine.elapsed_cycles()
        elapsed = 0.0
        threads = 0
        grouped = self.ghost.by_thread()
        for thread in self.machine._threads:
            span = thread.end_time - thread.start_time
            if span <= 0:
                continue
            threads += 1
            events = grouped.get(thread.tid, [])
            self._attribute(
                thread, events, period, resolve, samples, stacks
            )
            n_samples = span / (period - cost)
            elapsed = max(elapsed, thread.end_time + n_samples * cost)
        return PerfResult(
            samples, base, elapsed, self.freq_hz, threads, stacks
        )

    def _attribute(self, thread, events, period, resolve, samples, stacks):
        """Walk the true trace, dropping grid samples onto stack tops."""
        next_k = int(thread.start_time // period) + 1
        stack = []

        def sample_time(k):
            jitter = 0.0
            if self.jitter:
                # Deterministic per-sample perturbation (xorshift hash).
                h = (k * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
                jitter = (h / 2**64) * self.jitter * period
            return k * period + jitter

        def take_until(limit):
            nonlocal next_k
            while sample_time(next_k) <= limit:
                top = resolve(stack[-1]) if stack else OTHER
                samples[top] = samples.get(top, 0) + 1
                if stacks is not None:
                    path = (
                        tuple(resolve(a) for a in stack)
                        if stack
                        else (OTHER,)
                    )
                    stacks[path] = stacks.get(path, 0) + 1
                next_k += 1

        for event in events:
            take_until(min(event.time, thread.end_time))
            if event.kind == KIND_CALL:
                stack.append(event.addr)
            elif stack:
                stack.pop()
        take_until(thread.end_time)


class _Resolver:
    """Memoised link-address -> pretty-name lookup."""

    def __init__(self, program):
        self._symtab = program.image.symtab
        self._cache = {}

    def __call__(self, addr):
        name = self._cache.get(addr)
        if name is None:
            symbol = self._symtab.resolve(addr)
            name = symbol.pretty if symbol else f"[unknown {addr:#x}]"
            self._cache[addr] = name
        return name
