"""The fleet ingest wire protocol and its producer-side client.

Remote recorder sessions talk to the daemon over a local stream socket
with length-prefixed frames::

    frame  := u32 header_len | header JSON (utf-8) | payload bytes
    header := {"type": ..., ..., "size": <payload bytes, default 0>}

Four message types, one round trip each (every frame is acknowledged,
which doubles as backpressure — a producer never runs ahead of the
daemon's accept loop):

* ``hello``   — opens a session: tenant, session name, the producer's
  symbol table (:meth:`repro.symbols.BinaryImage.to_json` text);
* ``segment`` — one sealed log image, inline in the payload *or* (the
  fast path) named via ``shm`` — a
  :class:`multiprocessing.shared_memory.SharedMemory` block the
  daemon attaches and reads without the bytes ever crossing the
  socket;
* ``bye``     — closes the session; the ack carries the daemon's
  accounting for it;
* ``ping``    — liveness, used by tests and the CLI.

The unit of ingest is a whole log image (header + entries + seal
journal), i.e. exactly what :meth:`repro.core.log.SharedLog.to_bytes`
or a crashed producer's :func:`repro.faults.crashed_snapshot`
produces.  The daemon runs salvage on every image, so a dirty handoff
degrades into quarantine accounting, never into a protocol error.
"""

import json
import socket
import struct
import uuid

__all__ = [
    "FleetClient",
    "ProtocolError",
    "read_frame",
    "write_frame",
]

_LEN = struct.Struct("!I")

#: Refuse absurd frames before allocating for them.
MAX_HEADER = 1 << 20
MAX_PAYLOAD = 1 << 31


class ProtocolError(RuntimeError):
    """A malformed or out-of-order frame."""


def _read_exact(sock, n):
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed {remaining} bytes short of a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock):
    """``(header dict, payload bytes)`` — or ``None`` at clean EOF."""
    prefix = b""
    while len(prefix) < _LEN.size:
        chunk = sock.recv(_LEN.size - len(prefix))
        if not chunk:
            if prefix:
                raise ProtocolError("connection closed mid-length")
            return None
        prefix += chunk
    (header_len,) = _LEN.unpack(prefix)
    if not 0 < header_len <= MAX_HEADER:
        raise ProtocolError(f"implausible header length {header_len}")
    try:
        header = json.loads(_read_exact(sock, header_len))
    except ValueError as exc:
        raise ProtocolError(f"header is not JSON: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError(f"header is not an object: {header!r}")
    size = int(header.get("size", 0))
    if not 0 <= size <= MAX_PAYLOAD:
        raise ProtocolError(f"implausible payload size {size}")
    payload = _read_exact(sock, size) if size else b""
    return header, payload


def write_frame(sock, header, payload=b""):
    header = dict(header)
    if payload:
        header["size"] = len(payload)
    raw = json.dumps(header, separators=(",", ":")).encode()
    sock.sendall(_LEN.pack(len(raw)) + raw + payload)


def _shm_create(data):
    """Stage `data` in a fresh shared-memory block; returns the
    (attached) block.  Raises when the host has no usable
    ``multiprocessing.shared_memory``."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=len(data))
    shm.buf[: len(data)] = data
    return shm


def shm_read(name, size):
    """Attach the named block, copy `size` bytes out, detach."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:size])
    finally:
        shm.close()


class ShmSegment:
    """A zero-copy attachment to a named shared-memory block.

    :attr:`view` is a ``memoryview`` straight over the producer's
    segment — nothing is materialised; :meth:`release` drops the view
    and detaches (idempotent, and safe to call from a future's
    done-callback).  The consumer must hold the attachment open for
    as long as anything references :attr:`view`.
    """

    __slots__ = ("_shm", "view")

    def __init__(self, name, size):
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(name=name)
        self.view = memoryview(self._shm.buf)[:size]

    def release(self):
        if self._shm is None:
            return
        self.view.release()
        self.view = None
        try:
            self._shm.close()
        except BufferError:  # a consumer still holds a sub-view
            pass
        self._shm = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.release()
        return False


def shm_view(name, size):
    """Attach the named block zero-copy; returns a :class:`ShmSegment`
    whose ``.view`` is the live bytes (no copy is ever taken)."""
    return ShmSegment(name, size)


class FleetClient:
    """A producer-side session over the ingest socket.

    One client == one recorder session: it says hello once (tenant +
    symtab), publishes any number of segments, and says bye.  Context
    management closes the session and the socket::

        with FleetClient(addr).open("web", image.to_json()) as session:
            session.publish(log.to_bytes())
    """

    def __init__(self, address, timeout=30.0):
        self.address = tuple(address)
        self.timeout = timeout
        self._sock = None
        self.session = None
        self.tenant = None
        self.segments_sent = 0

    # ------------------------------------------------------------------

    def _request(self, header, payload=b""):
        if self._sock is None:
            raise ProtocolError("client is not connected")
        write_frame(self._sock, header, payload)
        frame = read_frame(self._sock)
        if frame is None:
            raise ProtocolError("daemon closed the connection")
        ack, _ = frame
        if not ack.get("ok"):
            raise ProtocolError(
                f"daemon refused {header.get('type')}: "
                f"{ack.get('error', 'no reason given')}"
            )
        return ack

    def open(self, tenant, symtab_json, session=None):
        """Connect and start a session; returns ``self``."""
        if self._sock is not None:
            raise ProtocolError("session already open")
        self._sock = socket.create_connection(
            self.address, timeout=self.timeout
        )
        self.tenant = tenant
        self.session = session or f"session-{uuid.uuid4().hex[:8]}"
        self._request({
            "type": "hello",
            "tenant": tenant,
            "session": self.session,
            "symtab": symtab_json,
        })
        return self

    def publish(self, log_bytes, via_shm=False):
        """Publish one log image; returns the daemon's ack.

        ``via_shm=True`` stages the image in a shared-memory block and
        sends only its name — the zero-copy-over-the-socket fast path.
        Falls back to the inline payload when the host has no shared
        memory.
        """
        log_bytes = bytes(log_bytes)
        if via_shm:
            try:
                shm = _shm_create(log_bytes)
            except Exception:
                shm = None  # no /dev/shm here: inline is still correct
            if shm is not None:
                try:
                    ack = self._request({
                        "type": "segment",
                        "shm": shm.name,
                        "shm_size": len(log_bytes),
                    })
                finally:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                self.segments_sent += 1
                return ack
        ack = self._request({"type": "segment"}, log_bytes)
        self.segments_sent += 1
        return ack

    def ping(self):
        return self._request({"type": "ping"})

    def bye(self):
        """End the session; returns the daemon's accounting for it."""
        if self._sock is None:
            return None
        try:
            ack = self._request({"type": "bye"})
        finally:
            self._sock.close()
            self._sock = None
        return ack

    def close(self):
        if self._sock is not None:
            try:
                self.bye()
            except (OSError, ProtocolError):  # already torn down
                if self._sock is not None:
                    self._sock.close()
                    self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
