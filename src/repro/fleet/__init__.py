"""``repro.fleet`` — the always-on continuous-profiling service.

TEE-Perf's offline pipeline profiles one run; this package keeps a
*fleet* of recorder sessions profiled continuously (the TEEMon-shaped
production story from ROADMAP item 1).  One
:class:`~repro.fleet.daemon.FleetDaemon` accepts many concurrent
sessions — over a local socket
(:class:`~repro.fleet.ingest.IngestListener` +
:class:`~repro.fleet.protocol.FleetClient`, with a
``multiprocessing.shared_memory`` fast path) or in-process
(:meth:`FleetDaemon.session`) — treats sealed log segments as the
durable unit of ingest (every image goes through
:func:`repro.core.recovery.recover_log` salvage, with exact
no-silent-drop accounting), analyses them on a persistent worker pool
(:class:`~repro.fleet.workers.AnalysisPool`), and aggregates folded
summaries per tenant into sliding time windows
(:class:`~repro.fleet.windows.WindowStore`).

Queries come out of :class:`~repro.fleet.http.FleetServer`
(``/profiles/<tenant>``, merged/windowed flame graphs, and
``/profiles/<tenant>/diff?a=&b=`` regression diffs built on
:class:`repro.core.diff.AnalysisDiff`), out of ``tee-perf fleet`` on
the command line, and out of the monitor surface the daemon registers
its samplers and alert rules with.  See docs/fleet.md.
"""

from repro.fleet.daemon import (
    FLEET_RULES,
    FleetDaemon,
    FleetSampler,
    LocalSession,
)
from repro.fleet.http import FleetServer
from repro.fleet.ingest import IngestListener
from repro.fleet.protocol import FleetClient, ProtocolError
from repro.fleet.windows import (
    OTHER_BUCKET,
    ArrayProfile,
    DictWindowSummary,
    FoldedProfile,
    MethodShare,
    PathTable,
    WindowStore,
    WindowSummary,
)
from repro.fleet.workers import AnalysisPool, SegmentResult

__all__ = [
    "AnalysisPool",
    "ArrayProfile",
    "DictWindowSummary",
    "FLEET_RULES",
    "FleetClient",
    "FleetDaemon",
    "FleetSampler",
    "FleetServer",
    "FoldedProfile",
    "IngestListener",
    "LocalSession",
    "MethodShare",
    "OTHER_BUCKET",
    "PathTable",
    "ProtocolError",
    "SegmentResult",
    "WindowStore",
    "WindowSummary",
]
