"""The always-on ingest daemon: sessions in, windowed profiles out.

:class:`FleetDaemon` is the assembly point of the subsystem.  It owns

* a persistent :class:`~repro.fleet.workers.AnalysisPool` (segments
  from every tenant share it),
* a :class:`~repro.fleet.windows.WindowStore` (per-tenant sliding
  windows with retention and tick-preserving compaction),
* a :class:`~repro.monitor.Monitor` carrying the fleet's counters,
  a :class:`FleetSampler`, and the default alert rules (quarantined
  entries, CRC failures, analysis errors — anything that means data
  needed salvage or was set aside),
* the per-session accounting the ``bye`` ack reports back to
  producers.

Ingest is asynchronous: :meth:`ingest_segment` stamps the segment
with the submit-time window, hands the packed image to the pool, and
a completion callback folds the worker's summary into the store.  The
window id is chosen at *submit* time so a slow worker cannot smear a
segment into a later window than the one its producer landed it in.
:meth:`drain` flushes the in-flight set — tests and the query CLI use
it to make ingest observable deterministically.

Every segment goes through :func:`repro.core.recovery.recover_log`
salvage inside the worker (``recover="auto"``), so a crashed
producer's dirty handoff degrades into exact quarantine accounting:
``salvaged + quarantined == entries`` holds per segment, per session,
per tenant, and fleet-wide, and the quarantine counters feed the
alert rules.

The store's locking is per tenant (see
:class:`~repro.fleet.windows.WindowStore`): the fold callback for one
tenant's segment and a merged query for another tenant never contend,
and queries return immutable snapshots served through the per-tenant
incremental merged-profile cache — the sampler publishes its
hit/fold/rebuild counters.
"""

import threading
import time

from repro.fleet.windows import WindowStore
from repro.fleet.workers import AnalysisPool
from repro.monitor import AlertRule, Monitor, Sampler

__all__ = ["FleetDaemon", "FleetSampler", "LocalSession", "FLEET_RULES"]

#: Default alert rules: anything that means ingest lost or set aside
#: data must page.  Quarantine is expected after a producer crash (the
#: fleet's whole point is to absorb those), so it alerts but clears as
#: soon as a full clean window passes — the rules are thresholds on
#: monotone totals, so "clears" here means the operator acked/restarted
#: the monitor; the signal is the transition.
FLEET_RULES = (
    AlertRule("fleet-quarantine", "fleet_entries_quarantined_total",
              ">", 0),
    AlertRule("fleet-crc-failures", "fleet_crc_failures_total", ">", 0),
    AlertRule("fleet-analysis-errors", "fleet_analysis_errors_total",
              ">", 0),
)


class FleetSampler(Sampler):
    """Publishes the daemon's ingest state into a monitor registry.

    Totals are counters fed with ``set_total`` (monotone, safe to
    re-sample); store shape (tenants, windows, live paths) lands as
    gauges.
    """

    key = "fleet"

    def __init__(self, daemon):
        self.daemon = daemon

    def sample(self, registry):
        daemon = self.daemon
        for name, help_text in (
            ("segments_ingested", "Segments accepted for analysis."),
            ("segments_analyzed", "Segments whose analysis completed."),
            ("segments_recovered",
             "Segments recovery had to repair or clip."),
            ("entries", "Entries the ingested images claimed."),
            ("entries_salvaged", "Entries salvage carried into windows."),
            ("entries_quarantined",
             "Entries set aside with a reason code (never silently "
             "dropped)."),
            ("crc_failures", "Sealed blocks whose CRC32 did not match."),
            ("analysis_errors", "Segments whose analysis raised."),
            ("sessions_opened", "Producer sessions accepted."),
            ("sessions_closed", "Producer sessions ended."),
        ):
            registry.counter(
                f"fleet_{name}_total", help_text
            ).set_total(daemon.counters.get(name, 0))
        registry.gauge(
            "fleet_segments_in_flight",
            "Segments submitted but not yet folded into a window.",
        ).set(daemon.in_flight)
        registry.gauge(
            "fleet_pool_kind_process",
            "1 when the analysis pool runs real processes, 0 on the "
            "thread fallback.",
        ).set(1 if daemon.pool.kind == "process" else 0)
        totals = daemon.store.totals()
        for name, help_text in (
            ("tenants", "Tenants with at least one retained window."),
            ("windows", "Retained (addressable) windows fleet-wide."),
            ("paths", "Distinct folded call paths held live."),
        ):
            registry.gauge(
                f"fleet_{name}", help_text
            ).set(totals[name])
        for name, help_text in (
            ("paths_compacted",
             "Cold paths folded into the <other> bucket."),
            ("windows_archived",
             "Windows expired past retention into tenant archives."),
            ("merged_cache_hits",
             "Merged-profile queries answered from the per-tenant "
             "cache without touching any window."),
            ("merged_cache_folds",
             "Newly-stable windows folded incrementally into a "
             "cached merged base."),
            ("merged_cache_rebuilds",
             "Merged bases rebuilt from scratch (archive churn or a "
             "late segment in an old window)."),
        ):
            registry.counter(
                f"fleet_{name}_total", help_text
            ).set_total(totals[name])


class LocalSession:
    """The in-process fast path: a producer inside the daemon's own
    process hands log images over directly — no socket, no copy beyond
    the image bytes themselves.

    Mirrors the :class:`~repro.fleet.protocol.FleetClient` surface
    (``publish`` / ``bye`` / context management) so call sites can
    swap transports without changing shape.
    """

    def __init__(self, daemon, tenant, session, symtab_json):
        self.daemon = daemon
        self.tenant = tenant
        self.session = session
        self.symtab_json = symtab_json
        self.segments_sent = 0
        self._closed = False

    def publish(self, log):
        """Ingest one log image (a ``SharedLog`` or raw bytes);
        returns the future of its :class:`SegmentResult`."""
        if self._closed:
            raise RuntimeError(f"session {self.session!r} is closed")
        log_bytes = log.to_bytes() if hasattr(log, "to_bytes") else log
        future = self.daemon.ingest_segment(
            self.tenant, self.symtab_json, log_bytes,
            session=self.session,
        )
        self.segments_sent += 1
        return future

    def bye(self):
        """Close the session; returns its accounting (drains first so
        the numbers are final)."""
        if self._closed:
            return None
        self._closed = True
        self.daemon.drain()
        return self.daemon.close_session(self.tenant, self.session)

    close = bye

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.bye()
        return False


class FleetDaemon:
    """The long-lived continuous-profiling service core.

    Parameters
    ----------
    window_seconds, retention, max_paths:
        Window geometry, passed to :class:`WindowStore`.
    jobs, prefer_processes:
        Analysis pool shape, passed to :class:`AnalysisPool`.
    recover:
        Salvage mode applied to every ingested image (default
        ``"auto"``; ``"strict"`` makes any quarantine an in-band
        segment error instead).
    monitor:
        An existing :class:`Monitor` to register with, or ``None`` to
        own a private one.
    clock:
        Ingest timestamp source (seconds); injectable so tests can
        place segments in chosen windows.
    """

    def __init__(self, window_seconds=60.0, retention=32,
                 max_paths=4096, jobs=2, prefer_processes=True,
                 recover="auto", monitor=None, clock=time.time,
                 rules=FLEET_RULES):
        self.store = WindowStore(
            window_seconds=window_seconds, retention=retention,
            max_paths=max_paths, clock=clock,
        )
        self.pool = AnalysisPool(
            jobs=jobs, prefer_processes=prefer_processes
        )
        self.recover = recover
        self.clock = clock
        self.monitor = monitor if monitor is not None else Monitor()
        self._owns_monitor = monitor is None
        self.monitor.attach(FleetSampler(self))
        self.monitor.add_rules(rules)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0
        self.counters = {}  # name -> monotone total (under _lock)
        self._sessions = {}  # (tenant, session) -> accounting dict
        self.errors = []  # (tenant, session, message), newest last

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def in_flight(self):
        with self._lock:
            return self._pending

    def start(self):
        """Start the monitor's sampling thread (if the daemon owns
        it); the pool spins up lazily on first ingest."""
        if self._owns_monitor:
            self.monitor.start()
        return self

    def stop(self):
        """Drain in-flight segments, stop the pool (and the monitor if
        owned).  The store stays readable after stop."""
        self.drain()
        self.pool.close()
        if self._owns_monitor:
            self.monitor.stop()
        else:  # shared monitor: leave it running, take a final pass
            self.monitor.poll_once()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Sessions

    def session(self, tenant, symtab_json, session=None):
        """Open an in-process producer session (the direct fast
        path)."""
        if session is None:
            with self._lock:
                n = self.counters.get("sessions_opened", 0)
            session = f"local-{n}"
        self.open_session(tenant, session)
        return LocalSession(self, tenant, session, symtab_json)

    def open_session(self, tenant, session):
        """Register a producer session (both transports call this)."""
        with self._lock:
            self._bump("sessions_opened")
            self._sessions.setdefault(
                (tenant, session),
                {
                    "tenant": tenant, "session": session,
                    "segments": 0, "entries": 0, "salvaged": 0,
                    "quarantined": 0, "crc_failures": 0, "ticks": 0,
                    "errors": 0, "open": True,
                },
            )["open"] = True

    def close_session(self, tenant, session):
        """Mark a session closed; returns a copy of its accounting."""
        with self._lock:
            self._bump("sessions_closed")
            state = self._sessions.get((tenant, session))
            if state is None:
                return None
            state["open"] = False
            return dict(state)

    def accounting(self, tenant=None):
        """Per-session accounting, optionally filtered by tenant."""
        with self._lock:
            return [
                dict(state)
                for (t, _), state in sorted(self._sessions.items())
                if tenant is None or t == tenant
            ]

    # ------------------------------------------------------------------
    # Ingest

    def _bump(self, name, amount=1):
        """Caller holds the lock."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def ingest_segment(self, tenant, symtab_json, log_bytes,
                       session=None, ts=None):
        """Submit one packed log image for analysis; returns the
        worker future.  The result lands in `tenant`'s window for the
        submit-time timestamp (or the explicit `ts`)."""
        ts = self.clock() if ts is None else ts
        with self._lock:
            self._bump("segments_ingested")
            self._pending += 1
        try:
            future = self.pool.submit(
                log_bytes, symtab_json, recover=self.recover
            )
        except BaseException:
            with self._lock:
                self._pending -= 1
                self._idle.notify_all()
            raise
        future.add_done_callback(
            lambda fut: self._absorb(fut, tenant, session, ts)
        )
        return future

    def _absorb(self, future, tenant, session, ts):
        """Pool completion callback: fold one worker summary into the
        store and the accounting."""
        try:
            try:
                result = future.result()
            except Exception as exc:  # pool infrastructure failure
                self._record_error(
                    tenant, session, f"{type(exc).__name__}: {exc}"
                )
                return
            if not result.ok:
                self._record_error(tenant, session, result.error)
                return
            self.store.add(
                tenant, result.folded,
                method_calls=result.method_calls, session=session,
                entries=result.entries, salvaged=result.salvaged,
                quarantined=result.quarantined,
                crc_failures=result.crc_failures, ts=ts,
            )
            with self._lock:
                self._bump("segments_analyzed")
                self._bump("entries", result.entries)
                self._bump("entries_salvaged", result.salvaged)
                self._bump("entries_quarantined", result.quarantined)
                self._bump("crc_failures", result.crc_failures)
                self._bump(
                    "segments_recovered", result.segments_recovered
                )
                state = self._sessions.get((tenant, session))
                if state is not None:
                    state["segments"] += 1
                    state["entries"] += result.entries
                    state["salvaged"] += result.salvaged
                    state["quarantined"] += result.quarantined
                    state["crc_failures"] += result.crc_failures
                    state["ticks"] += result.ticks
        finally:
            with self._lock:
                self._pending -= 1
                self._idle.notify_all()

    def _record_error(self, tenant, session, message):
        with self._lock:
            self._bump("analysis_errors")
            self.errors.append((tenant, session, message))
            del self.errors[:-64]  # keep the newest few for /status
            state = self._sessions.get((tenant, session))
            if state is not None:
                state["errors"] += 1

    def drain(self, timeout=None):
        """Block until every submitted segment has been folded in (or
        `timeout` seconds elapse); returns True when idle."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._idle:
            while self._pending:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # ------------------------------------------------------------------
    # Query surface (delegates to the store)

    def tenants(self):
        return self.store.tenants()

    def profile(self, tenant, window=None):
        """A tenant's merged profile (all retained windows + archive),
        or one window's profile when `window` is given."""
        if window is None:
            return self.store.merged(tenant)
        return self.store.profile(tenant, window)

    def diff(self, tenant, a, b):
        return self.store.diff(tenant, a, b)

    def summary(self, tenant):
        return self.store.summary(tenant)

    def status(self):
        """JSON-ready daemon state for ``/fleet`` and the CLI."""
        with self._lock:
            counters = dict(self.counters)
            pending = self._pending
            errors = [
                {"tenant": t, "session": s, "error": e}
                for t, s, e in self.errors[-8:]
            ]
            sessions_open = sum(
                1 for state in self._sessions.values() if state["open"]
            )
        totals = self.store.totals()
        return {
            "counters": counters,
            "in_flight": pending,
            "sessions_open": sessions_open,
            "pool": self.pool.kind,
            "window_seconds": self.store.window_seconds,
            "retention": self.store.retention,
            "store": totals,
            "recent_errors": errors,
            "accounted": (
                counters.get("entries_salvaged", 0)
                + counters.get("entries_quarantined", 0)
                == counters.get("entries", 0)
            ),
        }
