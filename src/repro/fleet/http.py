"""The fleet query surface: profiles and diffs over HTTP.

:class:`FleetServer` extends the hardened
:class:`~repro.monitor.http.MonitorServer` — every monitor route
(``/metrics``, ``/snapshot.json``, ``/alerts``, ``/healthz``) keeps
working, and the daemon's windows become addressable:

* ``/fleet``                            — daemon status JSON
  (counters, in-flight, pool kind, store totals, the fleet-wide
  no-silent-drop check);
* ``/profiles``                         — tenant index;
* ``/profiles/<tenant>``                — window summaries + merged
  totals for one tenant (JSON);
* ``/profiles/<tenant>/folded``         — the merged profile in
  collapsed-stack text (pipe into any flame-graph tool); add
  ``?window=<wid>`` (or ``archive``) for a single window;
* ``/profiles/<tenant>/flamegraph.svg`` — the merged flame graph,
  same ``window`` parameter;
* ``/profiles/<tenant>/diff?a=<wid>&b=<wid>`` — window-vs-window
  regression diff built on :class:`repro.core.diff.AnalysisDiff`;
  ``format=json`` (default), ``report`` (the text table), or ``svg``
  (the red/blue differential flame graph).

Errors are JSON all the way down: an unknown tenant or window is a
404 body naming what *does* exist, a diff without ``a``/``b`` is a
400 — never a stdlib HTML error page.

The query path never blocks ingest of other tenants: every profile
route takes an immutable :class:`~repro.fleet.windows.ArrayProfile`
snapshot under the *tenant's own* lock (the store's locking is per
tenant) and renders outside it, and the merged profile is served from
the tenant's incremental cache, so a repeat query between ingests is
a cache hit rather than a re-merge of all retained windows.
"""

from repro.monitor.http import MonitorServer, _Handler

__all__ = ["FleetServer"]


class _FleetHandler(_Handler):
    """Monitor routes plus the ``/fleet`` and ``/profiles`` tree."""

    server_version = "tee-perf-fleet/1.0"

    known_routes = _Handler.known_routes + (
        "/fleet",
        "/profiles",
        "/profiles/<tenant>",
        "/profiles/<tenant>/folded",
        "/profiles/<tenant>/flamegraph.svg",
        "/profiles/<tenant>/diff?a=<window>&b=<window>",
    )

    def route(self, path, query):
        daemon = self.server.daemon
        if path == "/fleet":
            self.send_json(daemon.status())
        elif path == "/profiles":
            self.send_json({
                "tenants": daemon.tenants(),
                "window_seconds": daemon.store.window_seconds,
                "retention": daemon.store.retention,
            })
        elif path.startswith("/profiles/"):
            parts = path[len("/profiles/"):].strip("/").split("/")
            if len(parts) == 1:
                self._tenant_summary(daemon, parts[0])
            elif len(parts) == 2 and parts[1] == "folded":
                self._folded(daemon, parts[0], query)
            elif len(parts) == 2 and parts[1] == "flamegraph.svg":
                self._flamegraph(daemon, parts[0], query)
            elif len(parts) == 2 and parts[1] == "diff":
                self._diff(daemon, parts[0], query)
            else:
                return False
        else:
            return super().route(path, query)
        return True

    # ------------------------------------------------------------------

    def _not_found(self, daemon, tenant, exc):
        # KeyError reprs its message; unwrap to the plain string.
        message = exc.args[0] if exc.args else str(exc)
        self.send_json_error(404, message, tenants=daemon.tenants())

    def _profile(self, daemon, tenant, query):
        """The merged profile, or one window's when ``?window=`` is
        given; ``None`` after replying with a 404."""
        try:
            return daemon.profile(tenant, query.get("window"))
        except KeyError as exc:
            self._not_found(daemon, tenant, exc)
            return None

    def _tenant_summary(self, daemon, tenant):
        try:
            summary = daemon.summary(tenant)
        except KeyError as exc:
            self._not_found(daemon, tenant, exc)
            return
        merged = daemon.profile(tenant)
        summary["merged"] = {
            "ticks": merged.total_exclusive(),
            "paths": len(merged),
            "methods": len(merged.methods()),
        }
        summary["sessions"] = daemon.accounting(tenant)
        self.send_json(summary)

    def _folded(self, daemon, tenant, query):
        profile = self._profile(daemon, tenant, query)
        if profile is None:
            return
        body = profile.flamegraph().to_folded().encode()
        self._reply(body, "text/plain; charset=utf-8")

    def _flamegraph(self, daemon, tenant, query):
        profile = self._profile(daemon, tenant, query)
        if profile is None:
            return
        title = f"{tenant} — fleet merged profile"
        window = query.get("window")
        if window is not None:
            title = f"{tenant} — window {window}"
        svg = profile.flamegraph(title=title).to_svg()
        self._reply(svg.encode(), "image/svg+xml")

    def _diff(self, daemon, tenant, query):
        a, b = query.get("a"), query.get("b")
        if a is None or b is None:
            self.send_json_error(
                400,
                "diff needs both windows: "
                "?a=<before wid>&b=<after wid>",
                windows=daemon.store.window_ids(tenant),
            )
            return
        try:
            diff = daemon.diff(tenant, a, b)
        except KeyError as exc:
            self._not_found(daemon, tenant, exc)
            return
        fmt = query.get("format", "json")
        if fmt == "report":
            self._reply(
                (diff.report() + "\n").encode(),
                "text/plain; charset=utf-8",
            )
        elif fmt == "svg":
            svg = diff.flamegraph(
                title=f"{tenant}: window {a} vs {b}"
            ).to_svg()
            self._reply(svg.encode(), "image/svg+xml")
        elif fmt == "json":
            self.send_json({
                "tenant": tenant,
                "a": a,
                "b": b,
                "before_ticks": diff.before.total_exclusive(),
                "after_ticks": diff.after.total_exclusive(),
                "regressions": [
                    _delta_dict(d) for d in diff.regressions()
                ],
                "improvements": [
                    _delta_dict(d) for d in diff.improvements()
                ],
            })
        else:
            self.send_json_error(
                400,
                f"unknown format {fmt!r}",
                formats=["json", "report", "svg"],
            )


def _delta_dict(delta):
    return {
        "method": delta.method,
        "before_share": delta.before_share,
        "after_share": delta.after_share,
        "delta": delta.delta,
        "appeared": delta.appeared,
        "vanished": delta.vanished,
    }


class FleetServer(MonitorServer):
    """The daemon's HTTP front: monitor surface + profile queries.

    Serves ``daemon.monitor`` for the scrape routes and the daemon
    itself for everything under ``/fleet`` and ``/profiles``.
    """

    handler_class = _FleetHandler

    def __init__(self, daemon, port=0, host="127.0.0.1",
                 max_threads=None):
        kwargs = {} if max_threads is None else {
            "max_threads": max_threads
        }
        super().__init__(daemon.monitor, port=port, host=host, **kwargs)
        self.daemon = daemon

    def _bind_context(self, httpd):
        httpd.daemon = self.daemon
