"""The ingest listener: many producer connections into one daemon.

:class:`IngestListener` accepts concurrent
:class:`~repro.fleet.protocol.FleetClient` connections on a local TCP
socket, one bounded handler thread per connection (like the HTTP
side, excess producers wait in the listen backlog rather than
spawning unbounded threads).  Each connection runs the session state
machine:

    hello -> (segment | ping)* -> bye

Segments arrive inline or as a ``multiprocessing.shared_memory``
name (the producer-side fast path); either way the listener hands
the image bytes straight to :meth:`FleetDaemon.ingest_segment` and
acks — the ack is the protocol's backpressure, so a producer can
never outrun the accept side.  The ``bye`` ack waits for the
session's segments to finish analysis (plus any still-in-flight
completion callbacks) and returns the final accounting, so a
producer sees its exact salvage numbers in the close handshake.

Protocol violations answer with an in-band error ack and drop only
the offending connection; the daemon, the pool, and every other
session keep running.
"""

import socket
import threading
from concurrent.futures import wait as wait_futures

from repro.fleet import protocol
from repro.fleet.protocol import ProtocolError

__all__ = ["IngestListener"]


class _Connection:
    """One producer connection's session state machine."""

    def __init__(self, listener, sock):
        self.listener = listener
        self.daemon = listener.daemon
        self.sock = sock
        self.tenant = None
        self.session = None
        self.symtab_json = None
        self.futures = []

    def run(self):
        try:
            while True:
                frame = protocol.read_frame(self.sock)
                if frame is None:  # producer hung up
                    break
                header, payload = frame
                kind = header.get("type")
                if kind == "hello":
                    self._hello(header)
                elif kind == "segment":
                    self._segment(header, payload)
                elif kind == "ping":
                    protocol.write_frame(self.sock, {"ok": True})
                elif kind == "bye":
                    self._bye()
                    break
                else:
                    raise ProtocolError(f"unknown frame type {kind!r}")
        except ProtocolError as exc:
            self._refuse(str(exc))
        except OSError:  # connection torn down under us
            pass
        finally:
            if self.session is not None and self.tenant is not None:
                # Dirty hangup: still close the books on the session.
                if not self._said_bye:
                    self.daemon.close_session(self.tenant, self.session)
            self.sock.close()

    _said_bye = False

    def _refuse(self, message):
        try:
            protocol.write_frame(
                self.sock, {"ok": False, "error": message}
            )
        except OSError:
            pass

    def _hello(self, header):
        if self.session is not None:
            raise ProtocolError("duplicate hello")
        try:
            self.tenant = header["tenant"]
            self.session = header["session"]
            self.symtab_json = header["symtab"]
        except KeyError as exc:
            raise ProtocolError(f"hello missing {exc}") from None
        self.daemon.open_session(self.tenant, self.session)
        protocol.write_frame(
            self.sock, {"ok": True, "session": self.session}
        )

    def _segment(self, header, payload):
        if self.session is None:
            raise ProtocolError("segment before hello")
        shm_name = header.get("shm")
        segment = None
        if shm_name is not None:
            # Zero-copy fast path: the segment enters salvage as a
            # memoryview over the producer's shared memory — no bytes
            # are materialised on this side of the handoff (a
            # process-backed pool serialises at submit; either way the
            # attachment is released once the future completes).
            try:
                segment = protocol.shm_view(
                    shm_name, int(header["shm_size"])
                )
                payload = segment.view
            except Exception as exc:
                raise ProtocolError(
                    f"shared-memory segment {shm_name!r} unreadable: "
                    f"{exc}"
                ) from None
        accepted = len(payload)  # before any release can race us
        if not accepted:
            if segment is not None:
                segment.release()
            raise ProtocolError("empty segment")
        try:
            future = self.daemon.ingest_segment(
                self.tenant, self.symtab_json, payload,
                session=self.session,
            )
        except BaseException:
            if segment is not None:
                segment.release()
            raise
        if segment is not None:
            future.add_done_callback(lambda fut: segment.release())
        self.futures.append(future)
        protocol.write_frame(
            self.sock,
            {"ok": True, "accepted": accepted, "seq": len(self.futures)},
        )

    def _bye(self):
        if self.session is None:
            raise ProtocolError("bye before hello")
        self._said_bye = True
        # Final accounting: wait for this session's segments only.
        wait_futures(self.futures)
        self.daemon.drain()  # callbacks run after future completion
        accounting = self.daemon.close_session(self.tenant, self.session)
        protocol.write_frame(
            self.sock, {"ok": True, "accounting": accounting}
        )


class IngestListener:
    """Accept producer sessions for a daemon on a local socket."""

    def __init__(self, daemon, host="127.0.0.1", port=0,
                 max_sessions=32):
        if max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1: {max_sessions}"
            )
        self.daemon = daemon
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self._slots = threading.BoundedSemaphore(max_sessions)
        self._sock = None
        self._thread = None
        self._stopping = threading.Event()
        self._handlers = set()
        self._lock = threading.Lock()

    @property
    def address(self):
        return (self.host, self.port)

    @property
    def running(self):
        return self._sock is not None

    def start(self):
        """Bind, listen, start the accept thread; returns the bound
        port."""
        if self._sock is not None:
            return self.port
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(128)
        sock.settimeout(0.2)  # lets the accept loop notice stop()
        self._sock = sock
        self.port = sock.getsockname()[1]
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._accept_loop,
            name="tee-perf-fleet-ingest",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def _accept_loop(self):
        while not self._stopping.is_set():
            try:
                sock, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:  # listen socket closed under us
                return
            self._slots.acquire()
            if self._stopping.is_set():
                self._slots.release()
                sock.close()
                return
            thread = threading.Thread(
                target=self._handle,
                args=(sock,),
                name="tee-perf-fleet-session",
                daemon=True,
            )
            with self._lock:
                self._handlers.add(thread)
            thread.start()

    def _handle(self, sock):
        try:
            _Connection(self, sock).run()
        finally:
            self._slots.release()
            with self._lock:
                self._handlers.discard(threading.current_thread())

    def stop(self):
        """Stop accepting and wait for live sessions to finish their
        current frame exchange."""
        if self._sock is None:
            return
        self._stopping.set()
        self._thread.join()
        self._sock.close()
        self._sock = None
        self._thread = None
        with self._lock:
            handlers = list(self._handlers)
        for thread in handlers:
            thread.join(timeout=5.0)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False
