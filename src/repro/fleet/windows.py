"""Per-tenant sliding time windows over folded-stack summaries.

The fleet daemon never keeps raw logs: every analysed segment is
reduced to a *folded-stack summary* — ``{call path: exclusive ticks}``
plus per-method call counts and the salvage accounting — and folded
into the tenant's window for the segment's ingest timestamp.  Windows
are fixed-width time buckets (``wid = floor(ts / window_seconds)``),
so two daemons with the same clock and width agree on window ids and a
query like ``diff?a=41&b=42`` names the same span on both.

Three bounding mechanisms keep an always-on tenant from growing
without limit, all of them *tick-preserving* (they coarsen, never
drop):

* **compaction** — a window whose folded table exceeds ``max_paths``
  keeps its hottest paths and folds the cold tail into a single
  ``("<other>",)`` bucket, so total ticks are conserved exactly;
* **retention** — only the newest ``retention`` windows stay
  addressable; anything older is merged into the tenant's *archive*
  summary (one compacted summary for all expired history);
* the archive itself is compacted by the same rule.

The read side is built around a per-tenant **interned path table**
(:class:`PathTable`: call path -> dense int id, ``(parent, method)``
pairs — the same shape :class:`repro.core.reconstruct.RecordColumns`
and :meth:`FlameGraph.from_path_table` consume).  A
:class:`WindowSummary` holds numpy ``int64`` tick/call arrays indexed
by those ids instead of tuple-keyed dicts: ``absorb``/``merge`` are
vectorised scatter-adds, ``compact`` an ``argpartition``-style
selection, and a merged query a single array sum.  The pre-interning
dict implementation is kept verbatim as :class:`DictWindowSummary` —
the differential oracle the property tests (and the ``fleet_query``
benchmark baseline) hold the arrays to, tick for tick.

:class:`WindowStore` splits its locking per tenant and serves
``merged()`` through an incremental per-tenant cache keyed on summary
generation counters: a warm query whose windows did not change is a
cache hit, ingest into the current window re-adds only that window's
arrays, and only retention/archive churn rebuilds the merged base —
so a query never re-merges all retained history from scratch, and a
slow consumer on one tenant never blocks ingest on another.

:class:`FoldedProfile` (and its array-backed subclass
:class:`ArrayProfile`, an immutable snapshot) is the read-side
adapter: it exposes the ``methods()`` / ``total_exclusive()`` /
``folded()`` surface of a :class:`~repro.core.analyzer.Analysis`,
which is exactly what :class:`~repro.core.diff.AnalysisDiff` and
:meth:`~repro.core.flamegraph.FlameGraph.from_analysis` consume — so
window-vs-window regression diffs and merged flame graphs reuse the
core machinery unchanged.
"""

import threading
import time
from collections import namedtuple
from dataclasses import dataclass, field

import numpy as np

from repro.core.diff import AnalysisDiff
from repro.core.flamegraph import FlameGraph

__all__ = [
    "ArrayProfile",
    "DictWindowSummary",
    "FoldedProfile",
    "MethodShare",
    "PathTable",
    "WindowStore",
    "WindowSummary",
    "OTHER_BUCKET",
]

#: The tick-conserving compaction bucket cold paths fold into.
OTHER_BUCKET = ("<other>",)


@dataclass
class MethodShare:
    """Per-method aggregate with the attribute contract
    :class:`~repro.core.diff.AnalysisDiff` reads (``method``,
    ``exclusive``, ``calls``)."""

    method: str
    exclusive: int = 0
    calls: int = 0


class PathTable:
    """A per-tenant interning table: call path tuple -> dense int id.

    ``paths`` holds one ``(parent_path_id, method_id)`` node per
    interned path, parents always preceding children (``-1`` the
    root); ``methods`` is the method-name table and ``tuples`` the
    reverse map id -> path tuple.  Both tables are append-only, so a
    prefix of either is immutable forever — snapshots remember a
    length instead of copying.
    """

    __slots__ = ("methods", "paths", "tuples", "_method_ids",
                 "_path_ids", "_leaf_cache")

    def __init__(self):
        self.methods = []
        self.paths = []
        self.tuples = []
        self._method_ids = {}
        self._path_ids = {}
        self._leaf_cache = np.zeros(0, dtype=np.int64)

    def __len__(self):
        return len(self.paths)

    def method_id(self, name):
        """Intern one method name."""
        mid = self._method_ids.get(name)
        if mid is None:
            mid = self._method_ids[name] = len(self.methods)
            self.methods.append(name)
        return mid

    def path_id(self, path):
        """Intern one call path (and every prefix of it)."""
        pid = self._path_ids.get(path)
        if pid is not None:
            return pid
        if not path:
            raise ValueError("cannot intern an empty call path")
        parent = -1
        for depth in range(len(path)):
            prefix = path[: depth + 1]
            pid = self._path_ids.get(prefix)
            if pid is None:
                pid = len(self.paths)
                self.paths.append((parent, self.method_id(path[depth])))
                self.tuples.append(prefix)
                self._path_ids[prefix] = pid
            parent = pid
        return parent

    def leaf_ids(self, n):
        """The leaf method id of each of the first `n` paths, as one
        ``int64`` array (memoised; rebuilt only when the table grew)."""
        cache = self._leaf_cache
        if len(cache) < n:
            count = len(self.paths)
            cache = np.fromiter(
                (mid for _, mid in self.paths),
                dtype=np.int64, count=count,
            )
            self._leaf_cache = cache
        return cache[:n]


def _grow(arr, n):
    """`arr` zero-extended to length `n` (same array when long enough)."""
    if len(arr) >= n:
        return arr
    out = np.zeros(n, dtype=arr.dtype)
    out[: len(arr)] = arr
    return out


class WindowSummary:
    """Everything one tenant accumulated in one time window, as dense
    arrays over a shared :class:`PathTable`.

    The public surface matches :class:`DictWindowSummary` (the frozen
    dict oracle) exactly — ``folded``/``method_calls`` are
    materialised dict views, every accounting scalar is identical —
    but the hot operations are whole-array numpy:

    * :meth:`absorb` — one fancy-indexed scatter-add per segment;
    * :meth:`merge` — one padded array add (summaries share a table);
    * :meth:`compact` — a partition-select of the hottest paths;

    ``gen`` counts mutations; the store's merged-profile cache keys on
    it.
    """

    __slots__ = (
        "wid", "table", "gen", "segments", "entries", "salvaged",
        "quarantined", "crc_failures", "ticks", "sessions", "first_ts",
        "last_ts", "_ticks", "_present", "_calls", "_calls_present",
        "_folded_memo",
    )

    def __init__(self, wid, table=None):
        self.wid = wid
        self.table = PathTable() if table is None else table
        self.gen = 0
        self.segments = 0
        self.entries = 0
        self.salvaged = 0
        self.quarantined = 0
        self.crc_failures = 0
        self.ticks = 0
        self.sessions = set()
        self.first_ts = None
        self.last_ts = None
        self._ticks = np.zeros(0, dtype=np.int64)
        self._present = np.zeros(0, dtype=bool)
        self._calls = np.zeros(0, dtype=np.int64)
        self._calls_present = np.zeros(0, dtype=bool)
        self._folded_memo = None

    # -- dict-shaped views (the oracle-compatible surface) -------------

    @property
    def folded(self):
        """The ``{path tuple: ticks}`` view, materialised on demand."""
        memo = self._folded_memo
        if memo is not None and memo[0] == self.gen:
            return memo[1]
        tuples = self.table.tuples
        idx = np.flatnonzero(self._present)
        out = {
            tuples[i]: t
            for i, t in zip(idx.tolist(), self._ticks[idx].tolist())
        }
        self._folded_memo = (self.gen, out)
        return out

    @property
    def method_calls(self):
        """The ``{method: calls}`` view, materialised on demand."""
        methods = self.table.methods
        idx = np.flatnonzero(self._calls_present)
        return {
            methods[i]: c
            for i, c in zip(idx.tolist(), self._calls[idx].tolist())
        }

    def path_count(self):
        """Distinct live call paths (what ``len(folded)`` would say)."""
        return int(self._present.sum())

    # -- mutation ------------------------------------------------------

    def _ensure_paths(self, n):
        if len(self._ticks) < n:
            self._ticks = _grow(self._ticks, n)
            self._present = _grow(self._present, n)

    def _ensure_methods(self, n):
        if len(self._calls) < n:
            self._calls = _grow(self._calls, n)
            self._calls_present = _grow(self._calls_present, n)

    def absorb(self, folded, method_calls, session=None, entries=0,
               salvaged=0, quarantined=0, crc_failures=0, ts=None):
        """Fold one segment summary in (tick-exact): intern the paths,
        then one vectorised scatter-add per table."""
        table = self.table
        if folded:
            pids = np.fromiter(
                (table.path_id(p) for p in folded),
                dtype=np.int64, count=len(folded),
            )
            vals = np.fromiter(
                folded.values(), dtype=np.int64, count=len(folded),
            )
            self._ensure_paths(len(table.paths))
            # Dict keys are unique, so the ids are too: plain
            # fancy-index add, no np.add.at needed.
            self._ticks[pids] += vals
            self._present[pids] = True
            self.ticks += int(vals.sum())
        if method_calls:
            mids = np.fromiter(
                (table.method_id(m) for m in method_calls),
                dtype=np.int64, count=len(method_calls),
            )
            cvals = np.fromiter(
                method_calls.values(), dtype=np.int64,
                count=len(method_calls),
            )
            self._ensure_methods(len(table.methods))
            self._calls[mids] += cvals
            self._calls_present[mids] = True
        self.segments += 1
        self.entries += entries
        self.salvaged += salvaged
        self.quarantined += quarantined
        self.crc_failures += crc_failures
        if session is not None:
            self.sessions.add(session)
        if ts is not None:
            self._stamp(ts)
        self.gen += 1

    def _stamp(self, ts):
        self.first_ts = ts if self.first_ts is None else min(
            self.first_ts, ts
        )
        self.last_ts = ts if self.last_ts is None else max(
            self.last_ts, ts
        )

    def merge(self, other):
        """Fold a whole other summary in (retention -> archive).  Two
        summaries over the same table merge as one padded array add."""
        if isinstance(other, WindowSummary) and other.table is self.table:
            n = len(other._ticks)
            if n:
                self._ensure_paths(n)
                self._ticks[:n] += other._ticks
                self._present[:n] |= other._present
            m = len(other._calls)
            if m:
                self._ensure_methods(m)
                self._calls[:m] += other._calls
                self._calls_present[:m] |= other._calls_present
            self.ticks += other.ticks
            self.segments += other.segments
            self.entries += other.entries
            self.salvaged += other.salvaged
            self.quarantined += other.quarantined
            self.crc_failures += other.crc_failures
            self.gen += 1
        else:  # foreign table: intern through the dict views
            self.absorb(
                other.folded, other.method_calls,
                entries=other.entries, salvaged=other.salvaged,
                quarantined=other.quarantined,
                crc_failures=other.crc_failures,
            )
            self.segments += other.segments - 1
        self.sessions |= other.sessions
        for ts in (other.first_ts, other.last_ts):
            if ts is not None:
                self._stamp(ts)

    def compact(self, max_paths):
        """Keep the hottest ``max_paths - 1`` paths, fold the rest into
        :data:`OTHER_BUCKET`.  Total ticks are conserved exactly;
        returns the number of paths folded away.

        Selection matches the dict oracle's ``sorted(items,
        key=(-ticks, path))`` rule: a threshold partition picks the
        strictly-hotter survivors, and only boundary ties pay for
        tuple materialisation and a lexicographic sort.
        """
        live = np.flatnonzero(self._present)
        if live.size <= max_paths:
            return 0
        keep = max_paths - 1
        ticks = self._ticks[live]
        threshold = np.partition(ticks, live.size - keep)[live.size - keep]
        sure = live[ticks > threshold]
        keep_mask = np.zeros(len(self._ticks), dtype=bool)
        keep_mask[sure] = True
        need = keep - sure.size
        if need:
            tuples = self.table.tuples
            tied = sorted(
                live[ticks == threshold].tolist(),
                key=tuples.__getitem__,
            )
            keep_mask[np.asarray(tied[:need], dtype=np.int64)] = True
        cold_mask = self._present & ~keep_mask
        cold_sum = int(self._ticks[cold_mask].sum())
        folded_away = int(cold_mask.sum())
        self._ticks[cold_mask] = 0
        self._present[cold_mask] = False
        other_id = self.table.path_id(OTHER_BUCKET)
        self._ensure_paths(len(self.table.paths))
        self._ticks[other_id] += cold_sum
        if not self._present[other_id]:
            self._present[other_id] = True
            folded_away -= 1  # <other> newly appeared in the table
        self.gen += 1
        return folded_away

    # -- read side -----------------------------------------------------

    def profile(self, title=None):
        """An immutable :class:`ArrayProfile` snapshot (array copies;
        later ingest never mutates a handed-out profile)."""
        return ArrayProfile(
            self.table,
            self._ticks.copy(), self._present.copy(),
            self._calls.copy(), self._calls_present.copy(),
            title=title or f"window {self.wid}",
        )

    def to_dict(self):
        return {
            "wid": self.wid,
            "segments": self.segments,
            "entries": self.entries,
            "salvaged": self.salvaged,
            "quarantined": self.quarantined,
            "crc_failures": self.crc_failures,
            "ticks": self.ticks,
            "paths": self.path_count(),
            "sessions": sorted(self.sessions),
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
        }


@dataclass
class DictWindowSummary:
    """The pre-interning window summary, kept **verbatim** as the
    differential oracle: pure-Python ``{path tuple: ticks}`` dict
    loops.  The hypothesis property tests drive it and
    :class:`WindowSummary` through identical sequences and demand
    tick-for-tick identical results; the ``fleet_query`` benchmark
    times its merge loop as the frozen baseline.  Do not optimise."""

    wid: object  # int window id, or "archive"
    folded: dict = field(default_factory=dict)
    method_calls: dict = field(default_factory=dict)
    segments: int = 0
    entries: int = 0
    salvaged: int = 0
    quarantined: int = 0
    crc_failures: int = 0
    ticks: int = 0
    sessions: set = field(default_factory=set)
    first_ts: float = None
    last_ts: float = None

    def absorb(self, folded, method_calls, session=None, entries=0,
               salvaged=0, quarantined=0, crc_failures=0, ts=None):
        """Fold one segment summary in (tick-exact)."""
        for path, ticks in folded.items():
            self.folded[path] = self.folded.get(path, 0) + ticks
            self.ticks += ticks
        for method, calls in method_calls.items():
            self.method_calls[method] = (
                self.method_calls.get(method, 0) + calls
            )
        self.segments += 1
        self.entries += entries
        self.salvaged += salvaged
        self.quarantined += quarantined
        self.crc_failures += crc_failures
        if session is not None:
            self.sessions.add(session)
        if ts is not None:
            self.first_ts = ts if self.first_ts is None else min(
                self.first_ts, ts
            )
            self.last_ts = ts if self.last_ts is None else max(
                self.last_ts, ts
            )

    def merge(self, other):
        """Fold a whole other summary in (retention -> archive)."""
        self.absorb(
            other.folded, other.method_calls,
            entries=other.entries, salvaged=other.salvaged,
            quarantined=other.quarantined,
            crc_failures=other.crc_failures,
        )
        # absorb() counted one segment for the merge call itself;
        # replace that with the real count and carry the sessions.
        self.segments += other.segments - 1
        self.sessions |= other.sessions
        for ts in (other.first_ts, other.last_ts):
            if ts is not None:
                self.first_ts = ts if self.first_ts is None else min(
                    self.first_ts, ts
                )
                self.last_ts = ts if self.last_ts is None else max(
                    self.last_ts, ts
                )

    def compact(self, max_paths):
        """Keep the hottest ``max_paths - 1`` paths, fold the rest into
        :data:`OTHER_BUCKET`.  Total ticks are conserved exactly;
        returns the number of paths folded away."""
        if len(self.folded) <= max_paths:
            return 0
        ranked = sorted(
            self.folded.items(), key=lambda kv: (-kv[1], kv[0])
        )
        keep = dict(ranked[: max_paths - 1])
        cold = ranked[max_paths - 1:]
        keep[OTHER_BUCKET] = keep.get(OTHER_BUCKET, 0) + sum(
            ticks for _, ticks in cold
        )
        folded_away = len(self.folded) - len(keep)
        self.folded = keep
        return folded_away

    def path_count(self):
        return len(self.folded)

    def profile(self, title=None):
        return FoldedProfile(
            self.folded, self.method_calls,
            title=title or f"window {self.wid}",
        )

    def to_dict(self):
        return {
            "wid": self.wid,
            "segments": self.segments,
            "entries": self.entries,
            "salvaged": self.salvaged,
            "quarantined": self.quarantined,
            "crc_failures": self.crc_failures,
            "ticks": self.ticks,
            "paths": len(self.folded),
            "sessions": sorted(self.sessions),
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
        }


class FoldedProfile:
    """An :class:`Analysis`-shaped view over a folded-stack summary.

    Quacks like the analyzer's result object for every consumer the
    fleet surface needs: ``methods()``, ``total_exclusive()``,
    ``folded()`` (and ``columns is None`` so
    :meth:`FlameGraph.from_analysis` takes the folded path).
    """

    columns = None

    def __init__(self, folded, method_calls=None, title="fleet profile"):
        self._folded = dict(folded)
        self._method_calls = dict(method_calls or {})
        self.title = title

    def folded(self):
        return dict(self._folded)

    def total_exclusive(self):
        return sum(self._folded.values())

    def methods(self):
        """Per-method exclusive ticks (each path's ticks belong to its
        leaf), hottest first."""
        shares = {}
        for path, ticks in self._folded.items():
            leaf = path[-1]
            share = shares.get(leaf)
            if share is None:
                share = shares[leaf] = MethodShare(leaf)
            share.exclusive += ticks
        for method, calls in self._method_calls.items():
            share = shares.get(method)
            if share is None:
                share = shares[method] = MethodShare(method)
            share.calls = calls
        return sorted(
            shares.values(), key=lambda s: s.exclusive, reverse=True
        )

    def flamegraph(self, title=None):
        return FlameGraph(self._folded, title=title or self.title)

    def diff(self, after, **kwargs):
        """An :class:`AnalysisDiff` from this profile to `after`."""
        return AnalysisDiff(self, after, **kwargs)

    def __len__(self):
        return len(self._folded)


#: Aligned per-method arrays over a shared intern table — the
#: duck-typed contract :class:`~repro.core.diff.AnalysisDiff` reads
#: for its vectorised fast path (``table`` is the identity token two
#: profiles must share for their method ids to align).
MethodRows = namedtuple(
    "MethodRows", ("table", "names", "exclusive", "calls", "present")
)


class ArrayProfile(FoldedProfile):
    """An immutable array-backed profile snapshot over a
    :class:`PathTable`.

    Same duck type as :class:`FoldedProfile`, but the hot consumers
    skip path tuples entirely: :meth:`flamegraph` builds its node tree
    straight from the interned table
    (:meth:`FlameGraph.from_path_table`), :meth:`methods` is one
    leaf-id scatter-add, and two snapshots of the same tenant diff
    over aligned method arrays.  ``folded()`` still materialises the
    oracle-identical dict on demand.
    """

    columns = None

    def __init__(self, table, ticks, present, calls, calls_present,
                 title="fleet profile"):
        self._table = table
        self._n_paths = len(ticks)
        self._ticks = ticks
        self._present = present
        self._calls = calls
        self._calls_present = calls_present
        self.title = title
        self._folded_memo = None
        self._rows = None

    def folded(self):
        if self._folded_memo is None:
            tuples = self._table.tuples
            idx = np.flatnonzero(self._present)
            self._folded_memo = {
                tuples[i]: t
                for i, t in zip(idx.tolist(), self._ticks[idx].tolist())
            }
        return dict(self._folded_memo)

    def total_exclusive(self):
        return int(self._ticks.sum())

    def __len__(self):
        return int(self._present.sum())

    def _aligned_method_rows(self):
        """Leaf-exclusive / calls arrays aligned to the table's method
        ids (memoised) — one scatter-add instead of a path walk."""
        if self._rows is None:
            table = self._table
            pidx = np.flatnonzero(self._present)
            n_methods = len(self._calls)
            leaves = None
            if pidx.size:
                leaves = table.leaf_ids(self._n_paths)[pidx]
                n_methods = max(n_methods, int(leaves.max()) + 1)
            exclusive = np.zeros(n_methods, dtype=np.int64)
            present = np.zeros(n_methods, dtype=bool)
            if leaves is not None:
                np.add.at(exclusive, leaves, self._ticks[pidx])
                present[leaves] = True
            calls = _grow(self._calls, n_methods)
            present[: len(self._calls_present)] |= self._calls_present
            self._rows = MethodRows(
                table, table.methods, exclusive, calls, present
            )
        return self._rows

    def methods(self):
        rows = self._aligned_method_rows()
        ids = np.flatnonzero(rows.present)
        order = np.argsort(-rows.exclusive[ids], kind="stable")
        names = rows.names
        return [
            MethodShare(
                names[i], int(rows.exclusive[i]), int(rows.calls[i])
            )
            for i in ids[order].tolist()
        ]

    def flamegraph(self, title=None):
        if not self._present.any():
            raise ValueError("empty profile: nothing to draw")
        return FlameGraph.from_path_table(
            self._table.paths[: self._n_paths], self._table.methods,
            self._ticks, title=title or self.title,
        )


class _MergedCache:
    """One tenant's incremental merged-profile cache.

    ``base`` holds the array sum of every *stable* contributor (the
    archive plus every retained window except the newest), each
    stamped with the summary generation it was folded at;
    ``profile`` is the last full answer with the generation map it
    covered.  A repeat query with no ingest is a pure hit; ingest into
    the newest window costs one array add; only archive churn or a
    late segment landing in an old window rebuilds the base.
    """

    __slots__ = ("base_keys", "ticks", "present", "calls",
                 "calls_present", "profile", "profile_keys",
                 "hits", "folds", "rebuilds")

    def __init__(self):
        self.invalidate()
        self.hits = 0
        self.folds = 0
        self.rebuilds = 0

    def invalidate(self):
        self.base_keys = None
        self.ticks = None
        self.present = None
        self.calls = None
        self.calls_present = None
        self.profile = None
        self.profile_keys = None

    def reset_base(self, n_paths, n_methods):
        self.base_keys = {}
        self.ticks = np.zeros(n_paths, dtype=np.int64)
        self.present = np.zeros(n_paths, dtype=bool)
        self.calls = np.zeros(n_methods, dtype=np.int64)
        self.calls_present = np.zeros(n_methods, dtype=bool)

    def grow(self, n_paths, n_methods):
        self.ticks = _grow(self.ticks, n_paths)
        self.present = _grow(self.present, n_paths)
        self.calls = _grow(self.calls, n_methods)
        self.calls_present = _grow(self.calls_present, n_methods)

    def fold(self, key, summary):
        n = len(summary._ticks)
        if n:
            self.ticks[:n] += summary._ticks
            self.present[:n] |= summary._present
        m = len(summary._calls)
        if m:
            self.calls[:m] += summary._calls
            self.calls_present[:m] |= summary._calls_present
        self.base_keys[key] = summary.gen


class _TenantState:
    """Everything one tenant owns: its lock, its interned path table,
    its retained windows + archive, and its merged-profile cache.
    Nothing here is shared across tenants, so a reader holding one
    tenant's lock cannot delay another tenant's ingest."""

    __slots__ = ("name", "lock", "table", "windows", "archive",
                 "cache", "paths_compacted", "windows_archived")

    def __init__(self, name):
        self.name = name
        self.lock = threading.Lock()
        self.table = PathTable()
        self.windows = {}
        self.archive = None
        self.cache = _MergedCache()
        self.paths_compacted = 0
        self.windows_archived = 0


class WindowStore:
    """Thread-safe per-tenant window aggregation with retention.

    Locking is split per tenant: a tiny registry lock guards only the
    tenant map itself, and every window mutation or query serialises
    on its tenant's own lock.  Reads hand out immutable
    :class:`ArrayProfile` snapshots, so rendering (flame graphs,
    diffs, folded text) always happens outside any lock, and the
    expensive part of a merged query is absorbed by the per-tenant
    incremental cache (see :class:`_MergedCache`).
    """

    def __init__(self, window_seconds=60.0, retention=32,
                 max_paths=4096, clock=time.time):
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive: {window_seconds}"
            )
        if retention < 1:
            raise ValueError(f"retention must be >= 1: {retention}")
        if max_paths < 2:
            raise ValueError(f"max_paths must be >= 2: {max_paths}")
        self.window_seconds = window_seconds
        self.retention = retention
        self.max_paths = max_paths
        self.clock = clock
        self._registry_lock = threading.Lock()
        self._states = {}  # tenant -> _TenantState

    @property
    def paths_compacted(self):
        with self._registry_lock:
            return sum(s.paths_compacted for s in self._states.values())

    @property
    def windows_archived(self):
        with self._registry_lock:
            return sum(s.windows_archived for s in self._states.values())

    def _state(self, tenant, create=False):
        with self._registry_lock:
            state = self._states.get(tenant)
            if state is None:
                if not create:
                    raise KeyError(f"unknown tenant {tenant!r}")
                state = self._states[tenant] = _TenantState(tenant)
            return state

    # ------------------------------------------------------------------
    # Write side

    def window_id(self, ts=None):
        ts = self.clock() if ts is None else ts
        return int(ts // self.window_seconds)

    def add(self, tenant, folded, method_calls=None, session=None,
            entries=0, salvaged=0, quarantined=0, crc_failures=0,
            ts=None):
        """Fold one segment summary into `tenant`'s current window
        (or the window for the explicit timestamp `ts`); returns the
        window id it landed in."""
        ts = self.clock() if ts is None else ts
        wid = self.window_id(ts)
        state = self._state(tenant, create=True)
        with state.lock:
            summary = state.windows.get(wid)
            if summary is None:
                summary = state.windows[wid] = WindowSummary(
                    wid, table=state.table
                )
            summary.absorb(
                folded, method_calls or {}, session=session,
                entries=entries, salvaged=salvaged,
                quarantined=quarantined, crc_failures=crc_failures,
                ts=ts,
            )
            state.paths_compacted += summary.compact(self.max_paths)
            self._retain(state)
        return wid

    def _retain(self, state):
        """Expire windows beyond the retention depth into the archive
        (caller holds the tenant lock)."""
        while len(state.windows) > self.retention:
            oldest = min(state.windows)
            expired = state.windows.pop(oldest)
            if state.archive is None:
                state.archive = WindowSummary(
                    "archive", table=state.table
                )
            state.archive.merge(expired)
            state.paths_compacted += state.archive.compact(
                self.max_paths
            )
            state.windows_archived += 1

    # ------------------------------------------------------------------
    # Read side

    def tenants(self):
        with self._registry_lock:
            return sorted(self._states)

    def window_ids(self, tenant):
        """Addressable window ids, oldest first."""
        with self._registry_lock:
            state = self._states.get(tenant)
        if state is None:
            return []
        with state.lock:
            return sorted(state.windows)

    def _require(self, tenant):
        with self._registry_lock:
            state = self._states.get(tenant)
        if state is None or not state.windows:
            raise KeyError(f"unknown tenant {tenant!r}")
        return state

    def _window_locked(self, state, wid):
        """Resolve one window id (caller holds the tenant lock)."""
        if wid == "archive":
            if state.archive is None:
                raise KeyError(
                    f"tenant {state.name!r} has no archive yet"
                )
            return state.archive
        try:
            return state.windows[int(wid)]
        except (KeyError, ValueError):
            raise KeyError(
                f"tenant {state.name!r} has no window {wid!r} "
                f"(have {sorted(state.windows)})"
            ) from None

    def window(self, tenant, wid):
        state = self._require(tenant)
        with state.lock:
            return self._window_locked(state, wid)

    def profile(self, tenant, wid):
        """One window as an immutable :class:`ArrayProfile` snapshot."""
        state = self._require(tenant)
        with state.lock:
            summary = self._window_locked(state, wid)
            return summary.profile(
                title=f"{tenant} window {summary.wid}"
            )

    def merged(self, tenant, wids=None, include_archive=True):
        """All of a tenant's retained windows (or the named subset)
        merged into one profile — the ``/profiles/<tenant>`` surface.

        The default full merge is served from the tenant's incremental
        cache; an explicit ``wids`` subset is summed fresh (still one
        array add per window)."""
        state = self._require(tenant)
        with state.lock:
            if wids is None and include_archive:
                return self._merged_cached(tenant, state)
            if wids is None:
                picked = [
                    state.windows[w] for w in sorted(state.windows)
                ]
            else:
                picked = [
                    self._window_locked(state, wid) for wid in wids
                ]
            merged = WindowSummary("merged", table=state.table)
            for summary in picked:
                merged.merge(summary)
            return merged.profile(title=f"{tenant} merged profile")

    def _merged_cached(self, tenant, state):
        """The full merged profile through the generation-keyed cache
        (caller holds the tenant lock)."""
        cache = state.cache
        contributors = {}
        if state.archive is not None:
            contributors["archive"] = state.archive
        contributors.update(state.windows)
        keys = {k: c.gen for k, c in contributors.items()}
        if cache.profile is not None and cache.profile_keys == keys:
            cache.hits += 1
            return cache.profile
        newest = max(
            (k for k in contributors if k != "archive"), default=None
        )
        stable_keys = {k: g for k, g in keys.items() if k != newest}
        n_paths = len(state.table.paths)
        n_methods = len(state.table.methods)
        if cache.base_keys is not None and all(
            stable_keys.get(k) == g for k, g in cache.base_keys.items()
        ):
            cache.grow(n_paths, n_methods)
            for k in stable_keys.keys() - cache.base_keys.keys():
                cache.fold(k, contributors[k])
                cache.folds += 1
        else:
            cache.reset_base(n_paths, n_methods)
            for k in stable_keys:
                cache.fold(k, contributors[k])
            cache.rebuilds += 1
        ticks = cache.ticks.copy()
        present = cache.present.copy()
        calls = cache.calls.copy()
        calls_present = cache.calls_present.copy()
        if newest is not None:
            summary = contributors[newest]
            n = len(summary._ticks)
            if n:
                ticks[:n] += summary._ticks
                present[:n] |= summary._present
            m = len(summary._calls)
            if m:
                calls[:m] += summary._calls
                calls_present[:m] |= summary._calls_present
        profile = ArrayProfile(
            state.table, ticks, present, calls, calls_present,
            title=f"{tenant} merged profile",
        )
        cache.profile = profile
        cache.profile_keys = keys
        return profile

    def flush_cache(self, tenant=None):
        """Drop merged-profile caches (a bench/test hook: the next
        query pays the cold re-sum)."""
        with self._registry_lock:
            states = [
                s for t, s in self._states.items()
                if tenant is None or t == tenant
            ]
        for state in states:
            with state.lock:
                state.cache.invalidate()

    def diff(self, tenant, a, b):
        """Window-vs-window regression diff (``a`` = before,
        ``b`` = after) built on :class:`AnalysisDiff` — both sides are
        snapshots over the tenant's shared path table, so the diff
        runs on aligned method arrays."""
        before = self.profile(tenant, a)
        after = self.profile(tenant, b)
        return AnalysisDiff(before, after)

    def summary(self, tenant):
        """A JSON-ready description of one tenant's windows."""
        state = self._require(tenant)
        with state.lock:
            out = {
                "tenant": tenant,
                "window_seconds": self.window_seconds,
                "retention": self.retention,
                "windows": [
                    state.windows[w].to_dict()
                    for w in sorted(state.windows)
                ],
            }
            archive = state.archive
            out["archive"] = archive.to_dict() if archive else None
            out["ticks"] = sum(
                w.ticks for w in state.windows.values()
            ) + (archive.ticks if archive else 0)
            out["entries"] = sum(
                w.entries for w in state.windows.values()
            ) + (archive.entries if archive else 0)
            return out

    def totals(self):
        """Fleet-wide gauges for the sampler."""
        with self._registry_lock:
            states = list(self._states.values())
        totals = {
            "tenants": len(states),
            "windows": 0,
            "paths": 0,
            "paths_compacted": 0,
            "windows_archived": 0,
            "merged_cache_hits": 0,
            "merged_cache_folds": 0,
            "merged_cache_rebuilds": 0,
        }
        for state in states:
            with state.lock:
                totals["windows"] += len(state.windows)
                totals["paths"] += sum(
                    s.path_count() for s in state.windows.values()
                )
                totals["paths_compacted"] += state.paths_compacted
                totals["windows_archived"] += state.windows_archived
                totals["merged_cache_hits"] += state.cache.hits
                totals["merged_cache_folds"] += state.cache.folds
                totals["merged_cache_rebuilds"] += state.cache.rebuilds
        return totals
