"""Per-tenant sliding time windows over folded-stack summaries.

The fleet daemon never keeps raw logs: every analysed segment is
reduced to a *folded-stack summary* — ``{call path: exclusive ticks}``
plus per-method call counts and the salvage accounting — and folded
into the tenant's window for the segment's ingest timestamp.  Windows
are fixed-width time buckets (``wid = floor(ts / window_seconds)``),
so two daemons with the same clock and width agree on window ids and a
query like ``diff?a=41&b=42`` names the same span on both.

Three bounding mechanisms keep an always-on tenant from growing
without limit, all of them *tick-preserving* (they coarsen, never
drop):

* **compaction** — a window whose folded table exceeds ``max_paths``
  keeps its hottest paths and folds the cold tail into a single
  ``("<other>",)`` bucket, so total ticks are conserved exactly;
* **retention** — only the newest ``retention`` windows stay
  addressable; anything older is merged into the tenant's *archive*
  summary (one compacted summary for all expired history);
* the archive itself is compacted by the same rule.

:class:`FoldedProfile` is the read-side adapter: it exposes the
``methods()`` / ``total_exclusive()`` / ``folded()`` surface of a
:class:`~repro.core.analyzer.Analysis`, which is exactly what
:class:`~repro.core.diff.AnalysisDiff` and
:meth:`~repro.core.flamegraph.FlameGraph.from_analysis` consume — so
window-vs-window regression diffs and merged flame graphs reuse the
core machinery unchanged.
"""

import threading
import time
from dataclasses import dataclass, field

from repro.core.diff import AnalysisDiff
from repro.core.flamegraph import FlameGraph

__all__ = [
    "FoldedProfile",
    "MethodShare",
    "WindowStore",
    "WindowSummary",
    "OTHER_BUCKET",
]

#: The tick-conserving compaction bucket cold paths fold into.
OTHER_BUCKET = ("<other>",)


@dataclass
class MethodShare:
    """Per-method aggregate with the attribute contract
    :class:`~repro.core.diff.AnalysisDiff` reads (``method``,
    ``exclusive``, ``calls``)."""

    method: str
    exclusive: int = 0
    calls: int = 0


class FoldedProfile:
    """An :class:`Analysis`-shaped view over a folded-stack summary.

    Quacks like the analyzer's result object for every consumer the
    fleet surface needs: ``methods()``, ``total_exclusive()``,
    ``folded()`` (and ``columns is None`` so
    :meth:`FlameGraph.from_analysis` takes the folded path).
    """

    columns = None

    def __init__(self, folded, method_calls=None, title="fleet profile"):
        self._folded = dict(folded)
        self._method_calls = dict(method_calls or {})
        self.title = title

    def folded(self):
        return dict(self._folded)

    def total_exclusive(self):
        return sum(self._folded.values())

    def methods(self):
        """Per-method exclusive ticks (each path's ticks belong to its
        leaf), hottest first."""
        shares = {}
        for path, ticks in self._folded.items():
            leaf = path[-1]
            share = shares.get(leaf)
            if share is None:
                share = shares[leaf] = MethodShare(leaf)
            share.exclusive += ticks
        for method, calls in self._method_calls.items():
            share = shares.get(method)
            if share is None:
                share = shares[method] = MethodShare(method)
            share.calls = calls
        return sorted(
            shares.values(), key=lambda s: s.exclusive, reverse=True
        )

    def flamegraph(self, title=None):
        return FlameGraph(self._folded, title=title or self.title)

    def diff(self, after, **kwargs):
        """An :class:`AnalysisDiff` from this profile to `after`."""
        return AnalysisDiff(self, after, **kwargs)

    def __len__(self):
        return len(self._folded)


@dataclass
class WindowSummary:
    """Everything one tenant accumulated in one time window."""

    wid: object  # int window id, or "archive"
    folded: dict = field(default_factory=dict)
    method_calls: dict = field(default_factory=dict)
    segments: int = 0
    entries: int = 0
    salvaged: int = 0
    quarantined: int = 0
    crc_failures: int = 0
    ticks: int = 0
    sessions: set = field(default_factory=set)
    first_ts: float = None
    last_ts: float = None

    def absorb(self, folded, method_calls, session=None, entries=0,
               salvaged=0, quarantined=0, crc_failures=0, ts=None):
        """Fold one segment summary in (tick-exact)."""
        for path, ticks in folded.items():
            self.folded[path] = self.folded.get(path, 0) + ticks
            self.ticks += ticks
        for method, calls in method_calls.items():
            self.method_calls[method] = (
                self.method_calls.get(method, 0) + calls
            )
        self.segments += 1
        self.entries += entries
        self.salvaged += salvaged
        self.quarantined += quarantined
        self.crc_failures += crc_failures
        if session is not None:
            self.sessions.add(session)
        if ts is not None:
            self.first_ts = ts if self.first_ts is None else min(
                self.first_ts, ts
            )
            self.last_ts = ts if self.last_ts is None else max(
                self.last_ts, ts
            )

    def merge(self, other):
        """Fold a whole other summary in (retention -> archive)."""
        self.absorb(
            other.folded, other.method_calls,
            entries=other.entries, salvaged=other.salvaged,
            quarantined=other.quarantined,
            crc_failures=other.crc_failures,
        )
        # absorb() counted one segment for the merge call itself;
        # replace that with the real count and carry the sessions.
        self.segments += other.segments - 1
        self.sessions |= other.sessions
        for ts in (other.first_ts, other.last_ts):
            if ts is not None:
                self.first_ts = ts if self.first_ts is None else min(
                    self.first_ts, ts
                )
                self.last_ts = ts if self.last_ts is None else max(
                    self.last_ts, ts
                )

    def compact(self, max_paths):
        """Keep the hottest ``max_paths - 1`` paths, fold the rest into
        :data:`OTHER_BUCKET`.  Total ticks are conserved exactly;
        returns the number of paths folded away."""
        if len(self.folded) <= max_paths:
            return 0
        ranked = sorted(
            self.folded.items(), key=lambda kv: (-kv[1], kv[0])
        )
        keep = dict(ranked[: max_paths - 1])
        cold = ranked[max_paths - 1:]
        keep[OTHER_BUCKET] = keep.get(OTHER_BUCKET, 0) + sum(
            ticks for _, ticks in cold
        )
        folded_away = len(self.folded) - len(keep)
        self.folded = keep
        return folded_away

    def profile(self, title=None):
        return FoldedProfile(
            self.folded, self.method_calls,
            title=title or f"window {self.wid}",
        )

    def to_dict(self):
        return {
            "wid": self.wid,
            "segments": self.segments,
            "entries": self.entries,
            "salvaged": self.salvaged,
            "quarantined": self.quarantined,
            "crc_failures": self.crc_failures,
            "ticks": self.ticks,
            "paths": len(self.folded),
            "sessions": sorted(self.sessions),
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
        }


class WindowStore:
    """Thread-safe per-tenant window aggregation with retention.

    Writers (worker-pool completion callbacks) and readers (the HTTP
    surface, samplers) serialise on one lock; every public method is
    safe from any thread.
    """

    def __init__(self, window_seconds=60.0, retention=32,
                 max_paths=4096, clock=time.time):
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive: {window_seconds}"
            )
        if retention < 1:
            raise ValueError(f"retention must be >= 1: {retention}")
        if max_paths < 2:
            raise ValueError(f"max_paths must be >= 2: {max_paths}")
        self.window_seconds = window_seconds
        self.retention = retention
        self.max_paths = max_paths
        self.clock = clock
        self._lock = threading.Lock()
        self._tenants = {}  # tenant -> {wid: WindowSummary}
        self._archives = {}  # tenant -> WindowSummary("archive")
        self.paths_compacted = 0
        self.windows_archived = 0

    # ------------------------------------------------------------------
    # Write side

    def window_id(self, ts=None):
        ts = self.clock() if ts is None else ts
        return int(ts // self.window_seconds)

    def add(self, tenant, folded, method_calls=None, session=None,
            entries=0, salvaged=0, quarantined=0, crc_failures=0,
            ts=None):
        """Fold one segment summary into `tenant`'s current window
        (or the window for the explicit timestamp `ts`); returns the
        window id it landed in."""
        ts = self.clock() if ts is None else ts
        wid = self.window_id(ts)
        with self._lock:
            windows = self._tenants.setdefault(tenant, {})
            summary = windows.get(wid)
            if summary is None:
                summary = windows[wid] = WindowSummary(wid)
            summary.absorb(
                folded, method_calls or {}, session=session,
                entries=entries, salvaged=salvaged,
                quarantined=quarantined, crc_failures=crc_failures,
                ts=ts,
            )
            self.paths_compacted += summary.compact(self.max_paths)
            self._retain(tenant, windows)
        return wid

    def _retain(self, tenant, windows):
        """Expire windows beyond the retention depth into the archive
        (caller holds the lock)."""
        while len(windows) > self.retention:
            oldest = min(windows)
            expired = windows.pop(oldest)
            archive = self._archives.get(tenant)
            if archive is None:
                archive = self._archives[tenant] = WindowSummary("archive")
            archive.merge(expired)
            self.paths_compacted += archive.compact(self.max_paths)
            self.windows_archived += 1

    # ------------------------------------------------------------------
    # Read side

    def tenants(self):
        with self._lock:
            return sorted(self._tenants)

    def window_ids(self, tenant):
        """Addressable window ids, oldest first."""
        with self._lock:
            return sorted(self._tenants.get(tenant, ()))

    def window(self, tenant, wid):
        with self._lock:
            windows = self._tenants.get(tenant)
            if not windows:
                raise KeyError(f"unknown tenant {tenant!r}")
            if wid == "archive":
                summary = self._archives.get(tenant)
                if summary is None:
                    raise KeyError(f"tenant {tenant!r} has no archive yet")
                return summary
            try:
                return windows[int(wid)]
            except (KeyError, ValueError):
                raise KeyError(
                    f"tenant {tenant!r} has no window {wid!r} "
                    f"(have {sorted(windows)})"
                ) from None

    def profile(self, tenant, wid):
        """One window as a :class:`FoldedProfile`."""
        summary = self.window(tenant, wid)
        return summary.profile(title=f"{tenant} window {summary.wid}")

    def merged(self, tenant, wids=None, include_archive=True):
        """All of a tenant's retained windows (or the named subset)
        merged into one :class:`FoldedProfile` — the
        ``/profiles/<tenant>`` surface."""
        with self._lock:
            windows = self._tenants.get(tenant)
            if windows is None:
                raise KeyError(f"unknown tenant {tenant!r}")
            if wids is None:
                picked = [windows[w] for w in sorted(windows)]
                archive = self._archives.get(tenant)
                if include_archive and archive is not None:
                    picked.insert(0, archive)
            else:
                picked = []
                for wid in wids:
                    if wid == "archive":
                        archive = self._archives.get(tenant)
                        if archive is None:
                            raise KeyError(
                                f"tenant {tenant!r} has no archive yet"
                            )
                        picked.append(archive)
                        continue
                    try:
                        picked.append(windows[int(wid)])
                    except (KeyError, ValueError):
                        raise KeyError(
                            f"tenant {tenant!r} has no window {wid!r} "
                            f"(have {sorted(windows)})"
                        ) from None
            merged = WindowSummary("merged")
            for summary in picked:
                merged.merge(summary)
        return merged.profile(title=f"{tenant} merged profile")

    def diff(self, tenant, a, b):
        """Window-vs-window regression diff (``a`` = before,
        ``b`` = after) built on :class:`AnalysisDiff`."""
        before = self.profile(tenant, a)
        after = self.profile(tenant, b)
        return AnalysisDiff(before, after)

    def summary(self, tenant):
        """A JSON-ready description of one tenant's windows."""
        with self._lock:
            windows = self._tenants.get(tenant)
            if windows is None:
                raise KeyError(f"unknown tenant {tenant!r}")
            out = {
                "tenant": tenant,
                "window_seconds": self.window_seconds,
                "retention": self.retention,
                "windows": [
                    windows[w].to_dict() for w in sorted(windows)
                ],
            }
            archive = self._archives.get(tenant)
            out["archive"] = archive.to_dict() if archive else None
            out["ticks"] = sum(w.ticks for w in windows.values()) + (
                archive.ticks if archive else 0
            )
            out["entries"] = sum(
                w.entries for w in windows.values()
            ) + (archive.entries if archive else 0)
            return out

    def totals(self):
        """Fleet-wide gauges for the sampler."""
        with self._lock:
            return {
                "tenants": len(self._tenants),
                "windows": sum(len(w) for w in self._tenants.values()),
                "paths": sum(
                    len(s.folded)
                    for windows in self._tenants.values()
                    for s in windows.values()
                ),
                "paths_compacted": self.paths_compacted,
                "windows_archived": self.windows_archived,
            }
