"""The fleet's persistent analysis pool.

One daemon analyses segments from many tenants concurrently, so the
pool outlives any single session: it is created once, reused for every
segment, and only torn down with the daemon.  A segment crosses into a
worker as ``(log image bytes, symtab JSON, recover mode)`` — the log
image *is* the packed columnar representation (fixed-width
little-endian words, decoded with one ``numpy.frombuffer`` sweep on
the other side), so the handoff reuses the same
pack-bytes/decode-columns shape PR 4 introduced for shard fan-out —
and comes back as a :class:`SegmentResult` of plain picklable fields:
the folded-stack summary, per-method call counts, and the salvage
accounting.

Workers prefer a :class:`~concurrent.futures.ProcessPoolExecutor`
(reconstruction is CPU-bound; the GIL must not serialise tenants) and
fall back to threads when the host cannot provide multiprocessing
primitives (sandboxes without semaphores) — same policy as
:meth:`repro.core.analyzer.Analyzer._run_shards_pooled`.  Each process
worker memoises :class:`~repro.symbols.BinaryImage` construction per
symtab, so a long-lived session pays the JSON parse once, not per
segment.
"""

import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.analyzer import Analyzer
from repro.symbols import BinaryImage

__all__ = ["AnalysisPool", "SegmentResult", "analyze_segment"]

#: Per-worker memo of symtab JSON -> (Analyzer, BinaryImage); keyed by
#: CRC so the key stays tiny.  Module-global on purpose: in a process
#: worker this is the worker's private cache, in thread mode it is the
#: daemon-wide shared one.
_ANALYZERS = {}
_ANALYZER_CACHE_MAX = 64


def _analyzer_for(symtab_json):
    key = zlib.crc32(symtab_json.encode())
    analyzer = _ANALYZERS.get(key)
    if analyzer is None:
        if len(_ANALYZERS) >= _ANALYZER_CACHE_MAX:
            _ANALYZERS.clear()
        image = BinaryImage.from_json(symtab_json)
        analyzer = _ANALYZERS[key] = Analyzer(image)
    return analyzer


@dataclass
class SegmentResult:
    """One analysed segment, reduced to picklable plain data."""

    entries: int = 0  # entries the image claimed (tail extent)
    salvaged: int = 0
    quarantined: int = 0
    crc_failures: int = 0
    segments_sealed: int = 0
    segments_recovered: int = 0
    ticks: int = 0  # total exclusive ticks == flamegraph total
    unmatched_returns: int = 0
    folded: dict = field(default_factory=dict)
    method_calls: dict = field(default_factory=dict)
    threads: int = 0
    error: str = None

    @property
    def ok(self):
        return self.error is None

    @property
    def accounted(self):
        """The no-silent-drop identity: every entry the image claimed
        is either salvaged or quarantined with a reason."""
        return self.salvaged + self.quarantined == self.entries

    def to_dict(self):
        return {
            "entries": self.entries,
            "salvaged": self.salvaged,
            "quarantined": self.quarantined,
            "crc_failures": self.crc_failures,
            "segments_sealed": self.segments_sealed,
            "segments_recovered": self.segments_recovered,
            "ticks": self.ticks,
            "unmatched_returns": self.unmatched_returns,
            "threads": self.threads,
            "paths": len(self.folded),
            "error": self.error,
        }


def analyze_segment(payload):
    """The worker body: one packed segment in, one summary out.

    ``payload`` is ``(log_bytes, symtab_json, recover)``.  Every
    segment goes through salvage (``recover="auto"`` unless the caller
    says otherwise): a clean handoff salvages completely, a dirty one
    — crashed producer, torn trailing block — is quarantined with
    reason codes and *exact* accounting, never silently clipped.

    Analysis failures are reported in-band (``result.error``) rather
    than raised: one bad segment must not poison the pool or the
    connection that delivered it.
    """
    log_bytes, symtab_json, recover = payload
    try:
        analyzer = _analyzer_for(symtab_json)
        analysis = analyzer.analyze(log_bytes, recover=recover)
        result = SegmentResult(
            ticks=int(analysis.total_exclusive()),
            unmatched_returns=int(analysis.unmatched_returns),
            folded=dict(analysis.folded()),
            method_calls={
                s.method: s.calls for s in analysis.methods()
            },
            threads=len(analysis.threads()),
        )
        report = analysis.recovery
        if report is not None:
            result.entries = report.tail
            result.salvaged = report.entries_salvaged
            result.quarantined = report.entries_quarantined
            result.crc_failures = report.crc_failures
            result.segments_sealed = report.segments_sealed
            result.segments_recovered = report.segments_recovered
        else:  # recover="off": the log is trusted entry for entry
            result.entries = analysis.meta.get("events", 0)
            result.salvaged = result.entries
        return result
    except Exception as exc:  # noqa: BLE001 — reported in-band
        return SegmentResult(error=f"{type(exc).__name__}: {exc}")


def _probe():
    """A trivial task proving the process pool actually works here."""
    return "ok"


class AnalysisPool:
    """A persistent executor for :func:`analyze_segment` payloads.

    ``kind`` reports what actually backs it — ``"process"`` when the
    host granted real workers, ``"thread"`` after the fallback — so
    metrics and tests can tell the difference.
    """

    def __init__(self, jobs=2, prefer_processes=True):
        if jobs < 1:
            raise ValueError(f"jobs must be positive: {jobs}")
        self.jobs = jobs
        self.prefer_processes = prefer_processes
        self._executor = None
        self.kind = None

    def _ensure(self):
        if self._executor is not None:
            return self._executor
        if self.prefer_processes:
            try:
                pool = ProcessPoolExecutor(max_workers=self.jobs)
                # Force worker spawn now: a sandbox without semaphores
                # fails here, not mid-ingest.
                pool.submit(_probe).result(timeout=30)
                self._executor = pool
                self.kind = "process"
                return pool
            except Exception:
                pass
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs,
            thread_name_prefix="tee-perf-fleet-worker",
        )
        self.kind = "thread"
        return self._executor

    def submit(self, log_bytes, symtab_json, recover="auto"):
        """Schedule one segment; returns a future of
        :class:`SegmentResult`.

        A ``memoryview`` payload (the shm fast path) stays zero-copy
        all the way into salvage on a thread-backed pool; a
        process-backed pool must serialise it across the boundary, so
        only there is it materialised as ``bytes``.  The caller must
        keep a ``memoryview``'s buffer alive until the future
        completes (submit returns after any process-pool pickling, so
        a done-callback release is sufficient either way).
        """
        executor = self._ensure()
        if self.kind == "process" or not isinstance(
            log_bytes, memoryview
        ):
            log_bytes = bytes(log_bytes)
        return executor.submit(
            analyze_segment, (log_bytes, symtab_json, recover)
        )

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self.kind = None

    def __enter__(self):
        self._ensure()
        return self

    def __exit__(self, *exc):
        self.close()
        return False
