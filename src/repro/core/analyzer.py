"""Stage 3 — the streaming analyzer.

The analyzer ingests the log in fixed-size chunks (from a
:class:`~repro.core.log.SharedLog` in memory or a mmap-backed
:class:`~repro.core.log.LogStream` on disk), groups entries per thread
(the thread id in each entry makes per-thread order reliable even
though the global log order is not), reconstructs each thread's call
stack from the call/return events — per-thread shards are independent,
so ``jobs=N`` runs them on a worker pool — and computes for every
method:

* *inclusive* time — counter ticks between entry and exit;
* *exclusive* ("real") time — inclusive minus the time spent in
  callees, the paper's "infer the real time spent in the method".

:meth:`Analyzer.analyze_batch` keeps the original one-entry-at-a-time
single-pass path; the streaming path is differentially tested to be
byte-for-byte equivalent to it, and every run carries a
:class:`~repro.core.stats.PipelineStats` counters object
(``analysis.pipeline``) describing what the pipeline did.

Addresses are runtime addresses; the analyzer recovers the relocation
offset from the log header's well-known profiler address and resolves
every address through the simulated binary's symbol table (the
addr2line/readelf/c++filt pipeline of the implementation section).

Robustness rules, matching §II-B:

* entries past the log's maximum size were never written — reservation
  overflow simply drops them — and calls left open when the log filled
  up (or the thread was still running) are closed at the thread's last
  observed counter value and marked *truncated*;
* a return that matches a deeper frame closes the intermediate frames
  as truncated (tracing was paused in between);
* a return with no matching frame at all is counted and dismissed.
"""

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import repeat

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None

from repro.core.errors import AnalyzerError
from repro.core.log import (
    DEFAULT_CHUNK_ENTRIES,
    KIND_CALL,
    LogStream,
    SharedLog,
    open_log,
)
from repro.core.stats import PipelineStats
from repro.frame import Frame
from repro.symbols.symtab import CachedResolver


@dataclass(frozen=True)
class CallRecord:
    """One completed (or truncated) method invocation."""

    method: str
    tid: int
    enter: int
    exit: int
    inclusive: int
    exclusive: int
    depth: int
    caller: str
    path: tuple
    truncated: bool = False


@dataclass
class MethodStats:
    """Aggregate statistics for one method across all its calls."""

    method: str
    calls: int = 0
    inclusive: int = 0
    exclusive: int = 0
    min_inclusive: int = None
    max_inclusive: int = None
    threads: set = field(default_factory=set)

    def add(self, record):
        self.calls += 1
        self.inclusive += record.inclusive
        self.exclusive += record.exclusive
        self.threads.add(record.tid)
        if self.min_inclusive is None:
            self.min_inclusive = self.max_inclusive = record.inclusive
        else:
            self.min_inclusive = min(self.min_inclusive, record.inclusive)
            self.max_inclusive = max(self.max_inclusive, record.inclusive)

    @property
    def mean_inclusive(self):
        return self.inclusive / self.calls if self.calls else 0.0


class Analysis:
    """The result object: records, aggregates, frames and reports."""

    def __init__(self, records, unmatched_returns, tick_ns, meta,
                 locations=None, pipeline=None):
        self.records = records
        self.unmatched_returns = unmatched_returns
        self.tick_ns = tick_ns
        self.meta = meta
        self.locations = locations or {}
        self.pipeline = pipeline
        self._stats = {}
        for record in records:
            stats = self._stats.get(record.method)
            if stats is None:
                stats = self._stats[record.method] = MethodStats(record.method)
            stats.add(record)

    # ------------------------------------------------------------------
    # Aggregates

    def methods(self):
        """Per-method statistics, hottest exclusive time first."""
        return sorted(
            self._stats.values(), key=lambda s: s.exclusive, reverse=True
        )

    def method(self, name):
        try:
            return self._stats[name]
        except KeyError:
            raise AnalyzerError(
                f"method {name!r} does not appear in the profile"
            ) from None

    def threads(self):
        """Thread ids observed, in first-appearance order."""
        seen, out = set(), []
        for record in self.records:
            if record.tid not in seen:
                seen.add(record.tid)
                out.append(record.tid)
        return out

    def total_exclusive(self):
        """Total attributed ticks (sums to total traced time)."""
        return sum(r.exclusive for r in self.records)

    def truncated_calls(self):
        return sum(1 for r in self.records if r.truncated)

    def exclusive_fraction(self, name):
        """Share of total traced time spent directly in `name`."""
        total = self.total_exclusive()
        if total == 0:
            return 0.0
        return self.method(name).exclusive / total

    def folded(self):
        """Folded stacks: {(root, ..., leaf): exclusive ticks}.

        This is the Flame-Graph input — each invocation contributes its
        *exclusive* ticks to its full call path, so widths nest exactly.
        """
        folded = {}
        for record in self.records:
            if record.exclusive <= 0:
                continue
            folded[record.path] = folded.get(record.path, 0) + record.exclusive
        return folded

    # ------------------------------------------------------------------
    # Frames (the declarative query interface builds on these)

    def records_frame(self):
        return Frame.from_records(
            (
                {
                    "method": r.method,
                    "thread": r.tid,
                    "caller": r.caller,
                    "depth": r.depth,
                    "enter": r.enter,
                    "exit": r.exit,
                    "inclusive": r.inclusive,
                    "exclusive": r.exclusive,
                    "truncated": r.truncated,
                }
                for r in self.records
            ),
            columns=[
                "method",
                "thread",
                "caller",
                "depth",
                "enter",
                "exit",
                "inclusive",
                "exclusive",
                "truncated",
            ],
        )

    def methods_frame(self):
        return Frame.from_records(
            (
                {
                    "method": s.method,
                    "calls": s.calls,
                    "inclusive": s.inclusive,
                    "exclusive": s.exclusive,
                    "mean_inclusive": s.mean_inclusive,
                    "threads": len(s.threads),
                }
                for s in self.methods()
            ),
            columns=[
                "method",
                "calls",
                "inclusive",
                "exclusive",
                "mean_inclusive",
                "threads",
            ],
        )

    # ------------------------------------------------------------------
    # Reporting

    def to_ns(self, ticks):
        return ticks * self.tick_ns

    def report(self, top=20):
        """The sorted per-method table presented to the programmer."""
        total = self.total_exclusive() or 1
        lines = [
            f"TEE-Perf profile: {len(self.records)} calls, "
            f"{len(self.threads())} threads, "
            f"{self.meta.get('events', 0)} log entries "
            f"(pid {self.meta.get('pid')})",
            f"{'excl %':>7} {'exclusive':>12} {'inclusive':>12} "
            f"{'calls':>8}  method",
        ]
        for stats in self.methods()[:top]:
            lines.append(
                f"{100 * stats.exclusive / total:>6.2f}% "
                f"{stats.exclusive:>12} {stats.inclusive:>12} "
                f"{stats.calls:>8}  {stats.method}"
            )
        if self.unmatched_returns:
            lines.append(f"dismissed unmatched returns: {self.unmatched_returns}")
        if self.truncated_calls():
            lines.append(f"truncated calls: {self.truncated_calls()}")
        return "\n".join(lines)


class _OpenFrame:
    __slots__ = ("addr", "method", "enter", "child_ticks", "call_site")

    def __init__(self, addr, method, enter, call_site=0):
        self.addr = addr
        self.method = method
        self.enter = enter
        self.child_ticks = 0
        self.call_site = call_site


class Analyzer:
    """Turns a log (+ the binary image) into an :class:`Analysis`.

    Parameters
    ----------
    image:
        The simulated binary whose symbol table resolves addresses.
    tick_ns:
        Nanoseconds per counter tick (reporting only).
    cache_size:
        Capacity of the per-run symbol-resolution LRU.
    """

    def __init__(self, image, tick_ns=1.0, cache_size=65536):
        self.image = image
        self.tick_ns = tick_ns
        self.cache_size = cache_size

    def analyze(self, log, jobs=1, chunk_size=None, stats=None):
        """Streaming analysis: chunked ingestion, sharded reconstruction.

        `log` may be a :class:`SharedLog`, a :class:`LogStream`, raw
        bytes, or a path (paths are opened as mmap-backed streams, so
        the whole file is never read into memory at once).  `jobs`
        sets the worker-pool width for per-thread shards; `stats` is
        an optional recorder-seeded :class:`PipelineStats` to extend —
        the resulting counters land on ``analysis.pipeline`` either
        way.  Output is byte-for-byte identical to
        :meth:`analyze_batch`.
        """
        if jobs < 1:
            raise AnalyzerError(f"jobs must be positive: {jobs}")
        chunk_size = chunk_size or DEFAULT_CHUNK_ENTRIES
        opened = not isinstance(log, (SharedLog, LogStream))
        log = self._coerce(log)
        stats = stats if stats is not None else PipelineStats()
        stats.jobs = jobs
        stats.chunk_size = chunk_size

        try:
            # Ingestion: decode fixed-size *column* chunks (one
            # vectorised sweep each — no LogEntry objects), shard per
            # thread with array masks.
            per_thread = {}
            lo = hi = None
            for cols in log.iter_column_chunks(chunk_size):
                stats.chunks_processed += 1
                stats.entries_ingested += len(cols)
                bounds = cols.counter_bounds()
                if bounds is not None:
                    lo = bounds[0] if lo is None else min(lo, bounds[0])
                    hi = bounds[1] if hi is None else max(hi, bounds[1])
                    self._shard_columns(cols, per_thread)
            stats.counter_span = (hi - lo) if lo is not None else 0

            return self._finish_columns(log, per_thread, jobs, stats)
        finally:
            if opened and isinstance(log, LogStream):
                log.close()

    def analyze_batch(self, log, stats=None):
        """The original single-pass path: the whole log, one entry at
        a time, one worker.  Kept as the differential-testing oracle
        for the streaming path (and for callers that hold tiny logs)."""
        log = self._coerce(log)
        stats = stats if stats is not None else PipelineStats()
        stats.jobs = 1
        stats.chunks_processed += 1
        per_thread = {}
        lo = hi = None
        for entry in log:
            stats.entries_ingested += 1
            per_thread.setdefault(entry.tid, []).append(entry)
            lo = entry.counter if lo is None else min(lo, entry.counter)
            hi = entry.counter if hi is None else max(hi, entry.counter)
        stats.counter_span = (hi - lo) if lo is not None else 0
        return self._finish(log, per_thread, 1, stats)

    # ------------------------------------------------------------------

    def _shard_columns(self, cols, per_thread):
        """Split one decoded column span per thread id, preserving
        thread first-appearance order (the merge order contract).

        Each shard accumulates *segments* — per-chunk column slices —
        that are concatenated once, just before reconstruction.
        """
        tid_col = cols.tid
        if _np is not None and not isinstance(tid_col, list):
            uniq, first = _np.unique(tid_col, return_index=True)
            if len(uniq) == 1:
                shard = per_thread.get(int(uniq[0]))
                if shard is None:
                    shard = per_thread[int(uniq[0])] = []
                shard.append(
                    (cols.kind, cols.counter, cols.addr, cols.call_site)
                )
                return
            for j in _np.argsort(first, kind="stable"):
                t = uniq[j]
                mask = tid_col == t
                call_site = (
                    cols.call_site[mask]
                    if cols.call_site is not None
                    else None
                )
                shard = per_thread.get(int(t))
                if shard is None:
                    shard = per_thread[int(t)] = []
                shard.append(
                    (
                        cols.kind[mask],
                        cols.counter[mask],
                        cols.addr[mask],
                        call_site,
                    )
                )
            return
        # List-backed fallback (no numpy): group indices per tid.
        kind, counter, addr, tid, call_site = cols.as_lists()
        local = {}
        for i, t in enumerate(tid):
            bucket = local.get(t)
            if bucket is None:
                bucket = local[t] = []
            bucket.append(i)
        for t, idxs in local.items():
            shard = per_thread.get(t)
            if shard is None:
                shard = per_thread[t] = []
            shard.append(
                (
                    [kind[i] for i in idxs],
                    [counter[i] for i in idxs],
                    [addr[i] for i in idxs],
                    [call_site[i] for i in idxs]
                    if call_site is not None
                    else None,
                )
            )

    @staticmethod
    def _concat_segments(segments):
        """Flatten a shard's segments into four plain-int lists
        (``call_sites`` is ``None`` for v1 logs)."""
        kinds, counters, addrs = [], [], []
        call_sites = [] if segments and segments[0][3] is not None else None
        for kind, counter, addr, call_site in segments:
            kinds.extend(
                kind.tolist() if hasattr(kind, "tolist") else kind
            )
            counters.extend(
                counter.tolist() if hasattr(counter, "tolist") else counter
            )
            addrs.extend(
                addr.tolist() if hasattr(addr, "tolist") else addr
            )
            if call_sites is not None:
                call_sites.extend(
                    call_site.tolist()
                    if hasattr(call_site, "tolist")
                    else call_site
                )
        return kinds, counters, addrs, call_sites

    def _finish_columns(self, log, per_thread, jobs, stats):
        """Column-shard counterpart of :meth:`_finish`."""
        offset = log.profiler_addr - self.image.profiler_addr
        cache = CachedResolver(self.image.symtab, maxsize=self.cache_size)
        shards = list(per_thread.items())
        stats.shards_analyzed = len(shards)

        def run(shard):
            tid, segments = shard
            kinds, counters, addrs, call_sites = self._concat_segments(
                segments
            )
            return self._reconstruct_columns(
                tid, kinds, counters, addrs, call_sites, offset, cache
            )

        results = self._run_shards(run, shards, jobs)
        return self._merge(log, results, cache, stats)

    def _finish(self, log, per_thread, jobs, stats):
        """Reconstruct every shard (serially or on a pool) and merge."""
        offset = log.profiler_addr - self.image.profiler_addr
        cache = CachedResolver(self.image.symtab, maxsize=self.cache_size)
        shards = list(per_thread.items())
        stats.shards_analyzed = len(shards)

        def run(shard):
            tid, entries = shard
            return self._reconstruct_shard(tid, entries, offset, cache)

        results = self._run_shards(run, shards, jobs)
        return self._merge(log, results, cache, stats)

    @staticmethod
    def _run_shards(run, shards, jobs):
        if jobs > 1 and len(shards) > 1:
            with ThreadPoolExecutor(
                max_workers=min(jobs, len(shards))
            ) as pool:
                return list(pool.map(run, shards))
        return [run(shard) for shard in shards]

    def _merge(self, log, results, cache, stats):
        # Merge: shard results concatenate in thread first-appearance
        # order, which is exactly the order the batch path produced.
        records = []
        unmatched = 0
        mismatches = 0
        for shard_records, shard_unmatched, shard_mismatches in results:
            records.extend(shard_records)
            unmatched += shard_unmatched
            mismatches += shard_mismatches
        stats.entries_dismissed += unmatched
        stats.frames_truncated += sum(1 for r in records if r.truncated)
        stats.cache_hits += cache.hits
        stats.cache_misses += cache.misses

        meta = {
            "events": len(log),
            "pid": log.pid,
            "capacity": log.capacity,
            "version": log.version,
            "multithread": log.multithread,
            "callsite_mismatches": mismatches,
        }
        locations = {
            sym.pretty: (sym.file, sym.line) for sym in self.image.symtab
        }
        return Analysis(
            records, unmatched, self.tick_ns, meta, locations, pipeline=stats
        )

    def _coerce(self, log):
        if isinstance(log, (SharedLog, LogStream)):
            return log
        if isinstance(log, (bytes, bytearray)):
            return SharedLog.from_bytes(log)
        if isinstance(log, str) or hasattr(log, "__fspath__"):
            # Threshold-based: small files are slurped into a
            # SharedLog, big ones become mmap-backed streams.
            return open_log(log)
        raise AnalyzerError(f"cannot analyze {type(log).__name__}")

    def _resolve(self, runtime_addr, offset, cache):
        symbol = cache.resolve(runtime_addr - offset)
        if symbol is None:
            return f"[unknown {runtime_addr:#x}]"
        return symbol.pretty

    def _reconstruct_shard(self, tid, entries, offset, cache):
        """Reconstruct one thread's stack from its entries.

        Pure with respect to the analyzer — results come back as
        ``(records, unmatched, callsite_mismatches)`` so shards can run
        concurrently without sharing mutable state (the resolution
        cache is the one shared structure, and it locks internally).
        """
        stack = []
        records = []
        unmatched = 0
        mismatches = 0
        last_counter = entries[-1].counter if entries else 0

        def close(frame, at, truncated):
            inclusive = max(0, at - frame.enter)
            exclusive = max(0, inclusive - frame.child_ticks)
            if stack:
                stack[-1].child_ticks += inclusive
            records.append(
                CallRecord(
                    method=frame.method,
                    tid=tid,
                    enter=frame.enter,
                    exit=at,
                    inclusive=inclusive,
                    exclusive=exclusive,
                    depth=len(stack),
                    caller=stack[-1].method if stack else None,
                    path=tuple(f.method for f in stack) + (frame.method,),
                    truncated=truncated,
                )
            )

        for entry in entries:
            if entry.is_call:
                # v2 logs carry the call site; cross-check it against
                # the stack-derived caller (a log-integrity diagnostic).
                if entry.call_site and stack:
                    expected = self._resolve(entry.call_site, offset, cache)
                    if expected != stack[-1].method:
                        mismatches += 1
                stack.append(
                    _OpenFrame(
                        entry.addr,
                        self._resolve(entry.addr, offset, cache),
                        entry.counter,
                        entry.call_site,
                    )
                )
                continue
            # A return: match against the open stack.
            if stack and stack[-1].addr == entry.addr:
                close(stack.pop(), entry.counter, truncated=False)
            elif any(f.addr == entry.addr for f in stack):
                while stack[-1].addr != entry.addr:
                    close(stack.pop(), entry.counter, truncated=True)
                close(stack.pop(), entry.counter, truncated=False)
            else:
                unmatched += 1
        while stack:
            close(stack.pop(), last_counter, truncated=True)
        return records, unmatched, mismatches

    def _reconstruct_columns(
        self, tid, kinds, counters, addrs, call_sites, offset, cache
    ):
        """Column-input twin of :meth:`_reconstruct_shard`.

        Consumes the analyzer's columnar shards (parallel plain-int
        lists) directly — no :class:`~repro.core.log.LogEntry`
        objects between decode and stack reconstruction.  The record
        semantics are kept deliberately identical to the entry-based
        oracle above; ``tests/core/test_streaming.py`` and
        ``tests/core/test_writer.py`` enforce the equivalence.
        """
        stack = []
        records = []
        unmatched = 0
        mismatches = 0
        last_counter = counters[-1] if counters else 0

        def close(frame, at, truncated):
            inclusive = max(0, at - frame.enter)
            exclusive = max(0, inclusive - frame.child_ticks)
            if stack:
                stack[-1].child_ticks += inclusive
            records.append(
                CallRecord(
                    method=frame.method,
                    tid=tid,
                    enter=frame.enter,
                    exit=at,
                    inclusive=inclusive,
                    exclusive=exclusive,
                    depth=len(stack),
                    caller=stack[-1].method if stack else None,
                    path=tuple(f.method for f in stack) + (frame.method,),
                    truncated=truncated,
                )
            )

        if call_sites is None:
            call_sites = repeat(0)
        for kind, counter, addr, call_site in zip(
            kinds, counters, addrs, call_sites
        ):
            if kind == KIND_CALL:
                if call_site and stack:
                    expected = self._resolve(call_site, offset, cache)
                    if expected != stack[-1].method:
                        mismatches += 1
                stack.append(
                    _OpenFrame(
                        addr,
                        self._resolve(addr, offset, cache),
                        counter,
                        call_site,
                    )
                )
                continue
            if stack and stack[-1].addr == addr:
                close(stack.pop(), counter, truncated=False)
            elif any(f.addr == addr for f in stack):
                while stack[-1].addr != addr:
                    close(stack.pop(), counter, truncated=True)
                close(stack.pop(), counter, truncated=False)
            else:
                unmatched += 1
        while stack:
            close(stack.pop(), last_counter, truncated=True)
        return records, unmatched, mismatches
