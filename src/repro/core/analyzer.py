"""Stage 3 — the offline analyzer.

The analyzer reads the entire log, groups entries per thread (the
thread id in each entry makes per-thread order reliable even though the
global log order is not), reconstructs each thread's call stack from
the call/return events, and computes for every method:

* *inclusive* time — counter ticks between entry and exit;
* *exclusive* ("real") time — inclusive minus the time spent in
  callees, the paper's "infer the real time spent in the method".

Addresses are runtime addresses; the analyzer recovers the relocation
offset from the log header's well-known profiler address and resolves
every address through the simulated binary's symbol table (the
addr2line/readelf/c++filt pipeline of the implementation section).

Robustness rules, matching §II-B:

* entries past the log's maximum size were never written — reservation
  overflow simply drops them — and calls left open when the log filled
  up (or the thread was still running) are closed at the thread's last
  observed counter value and marked *truncated*;
* a return that matches a deeper frame closes the intermediate frames
  as truncated (tracing was paused in between);
* a return with no matching frame at all is counted and dismissed.
"""

from dataclasses import dataclass, field

from repro.core.errors import AnalyzerError
from repro.core.log import SharedLog
from repro.frame import Frame


@dataclass(frozen=True)
class CallRecord:
    """One completed (or truncated) method invocation."""

    method: str
    tid: int
    enter: int
    exit: int
    inclusive: int
    exclusive: int
    depth: int
    caller: str
    path: tuple
    truncated: bool = False


@dataclass
class MethodStats:
    """Aggregate statistics for one method across all its calls."""

    method: str
    calls: int = 0
    inclusive: int = 0
    exclusive: int = 0
    min_inclusive: int = None
    max_inclusive: int = None
    threads: set = field(default_factory=set)

    def add(self, record):
        self.calls += 1
        self.inclusive += record.inclusive
        self.exclusive += record.exclusive
        self.threads.add(record.tid)
        if self.min_inclusive is None:
            self.min_inclusive = self.max_inclusive = record.inclusive
        else:
            self.min_inclusive = min(self.min_inclusive, record.inclusive)
            self.max_inclusive = max(self.max_inclusive, record.inclusive)

    @property
    def mean_inclusive(self):
        return self.inclusive / self.calls if self.calls else 0.0


class Analysis:
    """The result object: records, aggregates, frames and reports."""

    def __init__(self, records, unmatched_returns, tick_ns, meta,
                 locations=None):
        self.records = records
        self.unmatched_returns = unmatched_returns
        self.tick_ns = tick_ns
        self.meta = meta
        self.locations = locations or {}
        self._stats = {}
        for record in records:
            stats = self._stats.get(record.method)
            if stats is None:
                stats = self._stats[record.method] = MethodStats(record.method)
            stats.add(record)

    # ------------------------------------------------------------------
    # Aggregates

    def methods(self):
        """Per-method statistics, hottest exclusive time first."""
        return sorted(
            self._stats.values(), key=lambda s: s.exclusive, reverse=True
        )

    def method(self, name):
        try:
            return self._stats[name]
        except KeyError:
            raise AnalyzerError(
                f"method {name!r} does not appear in the profile"
            ) from None

    def threads(self):
        """Thread ids observed, in first-appearance order."""
        seen, out = set(), []
        for record in self.records:
            if record.tid not in seen:
                seen.add(record.tid)
                out.append(record.tid)
        return out

    def total_exclusive(self):
        """Total attributed ticks (sums to total traced time)."""
        return sum(r.exclusive for r in self.records)

    def truncated_calls(self):
        return sum(1 for r in self.records if r.truncated)

    def exclusive_fraction(self, name):
        """Share of total traced time spent directly in `name`."""
        total = self.total_exclusive()
        if total == 0:
            return 0.0
        return self.method(name).exclusive / total

    def folded(self):
        """Folded stacks: {(root, ..., leaf): exclusive ticks}.

        This is the Flame-Graph input — each invocation contributes its
        *exclusive* ticks to its full call path, so widths nest exactly.
        """
        folded = {}
        for record in self.records:
            if record.exclusive <= 0:
                continue
            folded[record.path] = folded.get(record.path, 0) + record.exclusive
        return folded

    # ------------------------------------------------------------------
    # Frames (the declarative query interface builds on these)

    def records_frame(self):
        return Frame.from_records(
            (
                {
                    "method": r.method,
                    "thread": r.tid,
                    "caller": r.caller,
                    "depth": r.depth,
                    "enter": r.enter,
                    "exit": r.exit,
                    "inclusive": r.inclusive,
                    "exclusive": r.exclusive,
                    "truncated": r.truncated,
                }
                for r in self.records
            ),
            columns=[
                "method",
                "thread",
                "caller",
                "depth",
                "enter",
                "exit",
                "inclusive",
                "exclusive",
                "truncated",
            ],
        )

    def methods_frame(self):
        return Frame.from_records(
            (
                {
                    "method": s.method,
                    "calls": s.calls,
                    "inclusive": s.inclusive,
                    "exclusive": s.exclusive,
                    "mean_inclusive": s.mean_inclusive,
                    "threads": len(s.threads),
                }
                for s in self.methods()
            ),
            columns=[
                "method",
                "calls",
                "inclusive",
                "exclusive",
                "mean_inclusive",
                "threads",
            ],
        )

    # ------------------------------------------------------------------
    # Reporting

    def to_ns(self, ticks):
        return ticks * self.tick_ns

    def report(self, top=20):
        """The sorted per-method table presented to the programmer."""
        total = self.total_exclusive() or 1
        lines = [
            f"TEE-Perf profile: {len(self.records)} calls, "
            f"{len(self.threads())} threads, "
            f"{self.meta.get('events', 0)} log entries "
            f"(pid {self.meta.get('pid')})",
            f"{'excl %':>7} {'exclusive':>12} {'inclusive':>12} "
            f"{'calls':>8}  method",
        ]
        for stats in self.methods()[:top]:
            lines.append(
                f"{100 * stats.exclusive / total:>6.2f}% "
                f"{stats.exclusive:>12} {stats.inclusive:>12} "
                f"{stats.calls:>8}  {stats.method}"
            )
        if self.unmatched_returns:
            lines.append(f"dismissed unmatched returns: {self.unmatched_returns}")
        if self.truncated_calls():
            lines.append(f"truncated calls: {self.truncated_calls()}")
        return "\n".join(lines)


class _OpenFrame:
    __slots__ = ("addr", "method", "enter", "child_ticks", "call_site")

    def __init__(self, addr, method, enter, call_site=0):
        self.addr = addr
        self.method = method
        self.enter = enter
        self.child_ticks = 0
        self.call_site = call_site


class Analyzer:
    """Turns a log (+ the binary image) into an :class:`Analysis`."""

    def __init__(self, image, tick_ns=1.0):
        self.image = image
        self.tick_ns = tick_ns

    def analyze(self, log):
        """`log` may be a :class:`SharedLog`, raw bytes, or a path."""
        log = self._coerce(log)
        offset = log.profiler_addr - self.image.profiler_addr
        per_thread = {}
        for entry in log:
            per_thread.setdefault(entry.tid, []).append(entry)
        records = []
        unmatched = 0
        self._callsite_mismatches = 0
        for tid, entries in per_thread.items():
            unmatched += self._reconstruct(tid, entries, offset, records)
        meta = {
            "events": len(log),
            "pid": log.pid,
            "capacity": log.capacity,
            "version": log.version,
            "multithread": log.multithread,
        }
        meta["callsite_mismatches"] = self._callsite_mismatches
        locations = {
            sym.pretty: (sym.file, sym.line) for sym in self.image.symtab
        }
        return Analysis(records, unmatched, self.tick_ns, meta, locations)

    # ------------------------------------------------------------------

    def _coerce(self, log):
        if isinstance(log, SharedLog):
            return log
        if isinstance(log, (bytes, bytearray)):
            return SharedLog.from_bytes(log)
        if isinstance(log, str) or hasattr(log, "__fspath__"):
            return SharedLog.load(log)
        raise AnalyzerError(f"cannot analyze {type(log).__name__}")

    def _resolve(self, runtime_addr, offset):
        symbol = self.image.symtab.resolve(runtime_addr - offset)
        if symbol is None:
            return f"[unknown {runtime_addr:#x}]"
        return symbol.pretty

    def _reconstruct(self, tid, entries, offset, records):
        stack = []
        unmatched = 0
        last_counter = entries[-1].counter if entries else 0

        def close(frame, at, truncated):
            inclusive = max(0, at - frame.enter)
            exclusive = max(0, inclusive - frame.child_ticks)
            if stack:
                stack[-1].child_ticks += inclusive
            records.append(
                CallRecord(
                    method=frame.method,
                    tid=tid,
                    enter=frame.enter,
                    exit=at,
                    inclusive=inclusive,
                    exclusive=exclusive,
                    depth=len(stack),
                    caller=stack[-1].method if stack else None,
                    path=tuple(f.method for f in stack) + (frame.method,),
                    truncated=truncated,
                )
            )

        for entry in entries:
            if entry.is_call:
                # v2 logs carry the call site; cross-check it against
                # the stack-derived caller (a log-integrity diagnostic).
                if entry.call_site and stack:
                    expected = self._resolve(entry.call_site, offset)
                    if expected != stack[-1].method:
                        self._callsite_mismatches += 1
                stack.append(
                    _OpenFrame(
                        entry.addr,
                        self._resolve(entry.addr, offset),
                        entry.counter,
                        entry.call_site,
                    )
                )
                continue
            # A return: match against the open stack.
            if stack and stack[-1].addr == entry.addr:
                close(stack.pop(), entry.counter, truncated=False)
            elif any(f.addr == entry.addr for f in stack):
                while stack[-1].addr != entry.addr:
                    close(stack.pop(), entry.counter, truncated=True)
                close(stack.pop(), entry.counter, truncated=False)
            else:
                unmatched += 1
        while stack:
            close(stack.pop(), last_counter, truncated=True)
        return unmatched
