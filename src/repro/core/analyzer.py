"""Stage 3 — the streaming analyzer.

The analyzer ingests the log in fixed-size chunks (from a
:class:`~repro.core.log.SharedLog` in memory or a mmap-backed
:class:`~repro.core.log.LogStream` on disk), groups entries per thread
(the thread id in each entry makes per-thread order reliable even
though the global log order is not), reconstructs each thread's call
stack from the call/return events — per-thread shards are independent,
so ``jobs=N`` runs them on a worker pool — and computes for every
method:

* *inclusive* time — counter ticks between entry and exit;
* *exclusive* ("real") time — inclusive minus the time spent in
  callees, the paper's "infer the real time spent in the method".

:meth:`Analyzer.analyze_batch` keeps the original one-entry-at-a-time
single-pass path; the streaming path is differentially tested to be
byte-for-byte equivalent to it, and every run carries a
:class:`~repro.core.stats.PipelineStats` counters object
(``analysis.pipeline``) describing what the pipeline did.

Addresses are runtime addresses; the analyzer recovers the relocation
offset from the log header's well-known profiler address and resolves
every address through the simulated binary's symbol table (the
addr2line/readelf/c++filt pipeline of the implementation section).

Robustness rules, matching §II-B:

* entries past the log's maximum size were never written — reservation
  overflow simply drops them — and calls left open when the log filled
  up (or the thread was still running) are closed at the thread's last
  observed counter value and marked *truncated*;
* a return that matches a deeper frame closes the intermediate frames
  as truncated (tracing was paused in between);
* a return with no matching frame at all is counted and dismissed.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None

from repro.core.columnar import ColumnarLog
from repro.core.errors import AnalyzerError
from repro.core.log import (
    DEFAULT_CHUNK_ENTRIES,
    LogStream,
    SharedLog,
    is_compressed_image,
    open_log,
)
from repro.core.recovery import (
    RECOVER_MODES,
    recover_log,
    recovery_stats,
    require_clean,
)
from repro.core.reconstruct import (
    ENGINES,
    PROCESS_POOL_MIN_ENTRIES,
    CallRecord,
    RecordColumns,
    ShardOutcome,
    _pool_init,
    _pool_run,
    pack_shard,
    reconstruct_python,
    run_shard,
)
from repro.core.stats import PipelineStats
from repro.frame import Frame
from repro.symbols.symtab import CachedResolver

__all__ = [
    "Analysis",
    "Analyzer",
    "CallRecord",
    "MethodStats",
    "RecordColumns",
]


@dataclass
class MethodStats:
    """Aggregate statistics for one method across all its calls."""

    method: str
    calls: int = 0
    inclusive: int = 0
    exclusive: int = 0
    min_inclusive: int = None
    max_inclusive: int = None
    threads: set = field(default_factory=set)

    def add(self, record):
        self.calls += 1
        self.inclusive += record.inclusive
        self.exclusive += record.exclusive
        self.threads.add(record.tid)
        if self.min_inclusive is None:
            self.min_inclusive = self.max_inclusive = record.inclusive
        else:
            self.min_inclusive = min(self.min_inclusive, record.inclusive)
            self.max_inclusive = max(self.max_inclusive, record.inclusive)

    @property
    def mean_inclusive(self):
        return self.inclusive / self.calls if self.calls else 0.0


class Analysis:
    """The result object: records, aggregates, frames and reports.

    ``records`` may arrive as a plain :class:`CallRecord` list (the
    sequential engines) or as a columnar
    :class:`~repro.core.reconstruct.RecordColumns` (the vector
    engine).  Either way the public surface is identical; with
    columns, record objects and the per-method aggregation are built
    lazily, and the bulk consumers (``folded()``,
    ``records_frame()``, thread/total aggregates) read the arrays
    directly without ever materialising records.
    """

    def __init__(self, records, unmatched_returns, tick_ns, meta,
                 locations=None, pipeline=None):
        if isinstance(records, RecordColumns):
            self.columns = records
            self._records = None
        else:
            self.columns = None
            self._records = records
        self.unmatched_returns = unmatched_returns
        self.tick_ns = tick_ns
        self.meta = meta
        self.locations = locations or {}
        self.pipeline = pipeline
        # The RecoveryReport when analysis ran with recover="auto" /
        # "strict" (None when the log was trusted as-is).
        self.recovery = None
        self._stats_cache = None

    @property
    def records(self):
        """The :class:`CallRecord` list (materialised on first use
        when the analysis is columnar)."""
        if self._records is None:
            self._records = self.columns.records()
        return self._records

    @property
    def _stats(self):
        if self._stats_cache is None:
            if self.columns is not None:
                self._stats_cache = self._stats_from_columns()
            else:
                self._stats_cache = stats = {}
                for record in self._records:
                    per = stats.get(record.method)
                    if per is None:
                        per = stats[record.method] = MethodStats(record.method)
                    per.add(record)
        return self._stats_cache

    def _stats_from_columns(self):
        """Columnar twin of the per-record aggregation loop: bincount
        the sums, scatter the min/max, one unique pass for the thread
        sets — same values, same (first-appearance) dict order."""
        cols = self.columns
        mids = cols.method_id
        n_methods = len(cols.methods)
        if not len(mids):
            return {}
        calls = _np.bincount(mids, minlength=n_methods)
        incl = _np.zeros(n_methods, dtype=_np.int64)
        _np.add.at(incl, mids, cols.inclusive)
        excl = _np.zeros(n_methods, dtype=_np.int64)
        _np.add.at(excl, mids, cols.exclusive)
        info = _np.iinfo(_np.int64)
        mins = _np.full(n_methods, info.max, dtype=_np.int64)
        _np.minimum.at(mins, mids, cols.inclusive)
        maxs = _np.full(n_methods, info.min, dtype=_np.int64)
        _np.maximum.at(maxs, mids, cols.inclusive)
        threads = {}
        pairs = _np.unique(
            _np.stack((mids, cols.tid.astype(_np.int64)), axis=1), axis=0
        )
        for mid, tid in pairs.tolist():
            threads.setdefault(mid, set()).add(tid)
        uniq, first = _np.unique(mids, return_index=True)
        stats = {}
        for j in _np.argsort(first, kind="stable").tolist():
            mid = int(uniq[j])
            name = cols.methods[mid]
            stats[name] = MethodStats(
                method=name,
                calls=int(calls[mid]),
                inclusive=int(incl[mid]),
                exclusive=int(excl[mid]),
                min_inclusive=int(mins[mid]),
                max_inclusive=int(maxs[mid]),
                threads=threads.get(mid, set()),
            )
        return stats

    # ------------------------------------------------------------------
    # Aggregates

    def methods(self):
        """Per-method statistics, hottest exclusive time first."""
        return sorted(
            self._stats.values(), key=lambda s: s.exclusive, reverse=True
        )

    def method(self, name):
        try:
            return self._stats[name]
        except KeyError:
            raise AnalyzerError(
                f"method {name!r} does not appear in the profile"
            ) from None

    def threads(self):
        """Thread ids observed, in first-appearance order."""
        if self.columns is not None:
            uniq, first = _np.unique(self.columns.tid, return_index=True)
            return [
                int(uniq[j])
                for j in _np.argsort(first, kind="stable").tolist()
            ]
        seen, out = set(), []
        for record in self.records:
            if record.tid not in seen:
                seen.add(record.tid)
                out.append(record.tid)
        return out

    def total_exclusive(self):
        """Total attributed ticks (sums to total traced time)."""
        if self.columns is not None:
            return int(self.columns.exclusive.sum())
        return sum(r.exclusive for r in self.records)

    def truncated_calls(self):
        if self.columns is not None:
            return int(self.columns.truncated.sum())
        return sum(1 for r in self.records if r.truncated)

    def exclusive_fraction(self, name):
        """Share of total traced time spent directly in `name`."""
        total = self.total_exclusive()
        if total == 0:
            return 0.0
        return self.method(name).exclusive / total

    def folded(self):
        """Folded stacks: {(root, ..., leaf): exclusive ticks}.

        This is the Flame-Graph input — each invocation contributes its
        *exclusive* ticks to its full call path, so widths nest exactly.
        """
        if self.columns is not None:
            cols = self.columns
            mask = cols.exclusive > 0
            pids = cols.path_id[mask]
            if not len(pids):
                return {}
            sums = _np.zeros(len(cols.paths), dtype=_np.int64)
            _np.add.at(sums, pids, cols.exclusive[mask])
            uniq, first = _np.unique(pids, return_index=True)
            return {
                cols.path_tuple(int(uniq[j])): int(sums[uniq[j]])
                for j in _np.argsort(first, kind="stable").tolist()
            }
        folded = {}
        for record in self.records:
            if record.exclusive <= 0:
                continue
            folded[record.path] = folded.get(record.path, 0) + record.exclusive
        return folded

    # ------------------------------------------------------------------
    # Frames (the declarative query interface builds on these)

    def records_frame(self):
        if self.columns is not None:
            cols = self.columns
            methods = cols.methods
            return Frame(
                {
                    "method": [methods[m] for m in cols.method_id.tolist()],
                    "thread": cols.tid.tolist(),
                    "caller": [
                        methods[c] if c >= 0 else None
                        for c in cols.caller_id.tolist()
                    ],
                    "depth": cols.depth.tolist(),
                    "enter": cols.enter.tolist(),
                    "exit": cols.exit.tolist(),
                    "inclusive": cols.inclusive.tolist(),
                    "exclusive": cols.exclusive.tolist(),
                    "truncated": cols.truncated.tolist(),
                }
            )
        return Frame.from_records(
            (
                {
                    "method": r.method,
                    "thread": r.tid,
                    "caller": r.caller,
                    "depth": r.depth,
                    "enter": r.enter,
                    "exit": r.exit,
                    "inclusive": r.inclusive,
                    "exclusive": r.exclusive,
                    "truncated": r.truncated,
                }
                for r in self.records
            ),
            columns=[
                "method",
                "thread",
                "caller",
                "depth",
                "enter",
                "exit",
                "inclusive",
                "exclusive",
                "truncated",
            ],
        )

    def methods_frame(self):
        return Frame.from_records(
            (
                {
                    "method": s.method,
                    "calls": s.calls,
                    "inclusive": s.inclusive,
                    "exclusive": s.exclusive,
                    "mean_inclusive": s.mean_inclusive,
                    "threads": len(s.threads),
                }
                for s in self.methods()
            ),
            columns=[
                "method",
                "calls",
                "inclusive",
                "exclusive",
                "mean_inclusive",
                "threads",
            ],
        )

    # ------------------------------------------------------------------
    # Reporting

    def to_ns(self, ticks):
        return ticks * self.tick_ns

    def report(self, top=20):
        """The sorted per-method table presented to the programmer."""
        total = self.total_exclusive() or 1
        lines = [
            f"TEE-Perf profile: {len(self.records)} calls, "
            f"{len(self.threads())} threads, "
            f"{self.meta.get('events', 0)} log entries "
            f"(pid {self.meta.get('pid')})",
            f"{'excl %':>7} {'exclusive':>12} {'inclusive':>12} "
            f"{'calls':>8}  method",
        ]
        for stats in self.methods()[:top]:
            lines.append(
                f"{100 * stats.exclusive / total:>6.2f}% "
                f"{stats.exclusive:>12} {stats.inclusive:>12} "
                f"{stats.calls:>8}  {stats.method}"
            )
        if self.unmatched_returns:
            lines.append(f"dismissed unmatched returns: {self.unmatched_returns}")
        if self.truncated_calls():
            lines.append(f"truncated calls: {self.truncated_calls()}")
        return "\n".join(lines)


class Analyzer:
    """Turns a log (+ the binary image) into an :class:`Analysis`.

    Parameters
    ----------
    image:
        The simulated binary whose symbol table resolves addresses.
    tick_ns:
        Nanoseconds per counter tick (reporting only).
    cache_size:
        Capacity of the per-run symbol-resolution LRU.
    """

    def __init__(self, image, tick_ns=1.0, cache_size=65536):
        self.image = image
        self.tick_ns = tick_ns
        self.cache_size = cache_size

    def analyze(self, log, jobs=1, chunk_size=None, stats=None,
                engine="auto", recover="off", options=None):
        """Streaming analysis: chunked ingestion, sharded reconstruction.

        `log` may be a :class:`SharedLog`, a :class:`LogStream`, raw
        bytes, or a path (paths are opened as mmap-backed streams, so
        the whole file is never read into memory at once).  `jobs`
        sets the worker-pool width for per-thread shards; `stats` is
        an optional recorder-seeded :class:`PipelineStats` to extend —
        the resulting counters land on ``analysis.pipeline`` either
        way.  `engine` picks the reconstruction kernel:

        * ``"vector"`` — the whole-shard numpy kernel
          (:func:`~repro.core.reconstruct.reconstruct_vector`);
          anomalous shards transparently fall back to the sequential
          loop, so the output is always the oracle's;
        * ``"python"`` — the sequential loop for every shard;
        * ``"auto"`` (default) — ``"vector"`` when numpy is present.

        `recover` handles damaged logs: ``"off"`` trusts the input,
        ``"auto"`` salvages it first (sealed segments verified by
        CRC, torn/unsealed regions quarantined — the report lands on
        ``analysis.recovery`` and its counters on the pipeline
        stats), ``"strict"`` additionally raises
        :class:`~repro.core.errors.RecoveryError` when anything was
        quarantined.

        An :class:`~repro.core.options.AnalyzeOptions` passed as
        `options` supplies jobs/chunk_size/engine/recover in one
        object and takes precedence over the individual kwargs.

        Output is field-for-field identical to :meth:`analyze_batch`
        whatever the engine, jobs or chunk size.
        """
        if options is not None:
            jobs = options.jobs
            chunk_size = options.chunk_size
            engine = options.engine
            recover = options.recover
        if jobs < 1:
            raise AnalyzerError(f"jobs must be positive: {jobs}")
        if recover not in RECOVER_MODES:
            raise AnalyzerError(
                f"unknown recover mode {recover!r} (choose from "
                f"{', '.join(RECOVER_MODES)})"
            )
        engine = self._resolve_engine(engine)
        chunk_size = chunk_size or DEFAULT_CHUNK_ENTRIES
        recovery_report = None
        if recover != "off":
            log, recovery_report = recover_log(log)
            if recover == "strict":
                require_clean(recovery_report)
        opened = not isinstance(log, (SharedLog, LogStream, ColumnarLog))
        log = self._coerce(log)
        stats = stats if stats is not None else PipelineStats()
        stats.jobs = jobs
        stats.chunk_size = chunk_size
        stats.engine = engine
        if not stats.bytes_written:
            stats.bytes_written = len(log) * log.entry_size
        if not stats.bytes_on_disk and isinstance(log, ColumnarLog):
            stats.bytes_on_disk = log.nbytes
        if recovery_report is not None:
            recovery_stats(recovery_report, stats)

        try:
            # Ingestion: decode fixed-size *column* chunks (one
            # vectorised sweep each — no LogEntry objects), shard per
            # thread with array masks.
            per_thread = {}
            lo = hi = None
            for cols in log.iter_column_chunks(chunk_size):
                stats.chunks_processed += 1
                stats.entries_ingested += len(cols)
                bounds = cols.counter_bounds()
                if bounds is not None:
                    lo = bounds[0] if lo is None else min(lo, bounds[0])
                    hi = bounds[1] if hi is None else max(hi, bounds[1])
                    self._shard_columns(cols, per_thread)
            stats.counter_span = (hi - lo) if lo is not None else 0

            analysis = self._finish_columns(
                log, per_thread, jobs, stats, engine
            )
            analysis.recovery = recovery_report
            return analysis
        finally:
            if opened and isinstance(log, (LogStream, ColumnarLog)):
                log.close()

    def analyze_batch(self, log, stats=None):
        """The original single-pass path: the whole log, one entry at
        a time, one worker.  Kept as the differential-testing oracle
        for the streaming path (and for callers that hold tiny logs)."""
        log = self._coerce(log)
        stats = stats if stats is not None else PipelineStats()
        stats.jobs = 1
        stats.engine = "python"
        stats.chunks_processed += 1
        per_thread = {}
        lo = hi = None
        for entry in log:
            stats.entries_ingested += 1
            per_thread.setdefault(entry.tid, []).append(entry)
            lo = entry.counter if lo is None else min(lo, entry.counter)
            hi = entry.counter if hi is None else max(hi, entry.counter)
        stats.counter_span = (hi - lo) if lo is not None else 0
        return self._finish(log, per_thread, 1, stats)

    # ------------------------------------------------------------------

    def _shard_columns(self, cols, per_thread):
        """Split one decoded column span per thread id, preserving
        thread first-appearance order (the merge order contract).

        Each shard accumulates *segments* — per-chunk column slices —
        that are concatenated once, just before reconstruction.
        """
        tid_col = cols.tid
        if _np is not None and not isinstance(tid_col, list):
            uniq, first = _np.unique(tid_col, return_index=True)
            if len(uniq) == 1:
                shard = per_thread.get(int(uniq[0]))
                if shard is None:
                    shard = per_thread[int(uniq[0])] = []
                shard.append(
                    (cols.kind, cols.counter, cols.addr, cols.call_site)
                )
                return
            for j in _np.argsort(first, kind="stable"):
                t = uniq[j]
                mask = tid_col == t
                call_site = (
                    cols.call_site[mask]
                    if cols.call_site is not None
                    else None
                )
                shard = per_thread.get(int(t))
                if shard is None:
                    shard = per_thread[int(t)] = []
                shard.append(
                    (
                        cols.kind[mask],
                        cols.counter[mask],
                        cols.addr[mask],
                        call_site,
                    )
                )
            return
        # List-backed fallback (no numpy): group indices per tid.
        kind, counter, addr, tid, call_site = cols.as_lists()
        local = {}
        for i, t in enumerate(tid):
            bucket = local.get(t)
            if bucket is None:
                bucket = local[t] = []
            bucket.append(i)
        for t, idxs in local.items():
            shard = per_thread.get(t)
            if shard is None:
                shard = per_thread[t] = []
            shard.append(
                (
                    [kind[i] for i in idxs],
                    [counter[i] for i in idxs],
                    [addr[i] for i in idxs],
                    [call_site[i] for i in idxs]
                    if call_site is not None
                    else None,
                )
            )

    @staticmethod
    def _resolve_engine(engine):
        """Validate the knob and resolve ``auto`` to a real engine."""
        if engine not in ENGINES:
            raise AnalyzerError(
                f"unknown engine {engine!r} (choose from "
                f"{', '.join(ENGINES)})"
            )
        if engine == "auto":
            return "vector" if _np is not None else "python"
        if engine == "vector" and _np is None:
            raise AnalyzerError("engine='vector' requires numpy")
        return engine

    @staticmethod
    def _concat_segments(segments):
        """Flatten a shard's segments into four plain-int lists
        (``call_sites`` is ``None`` for v1 logs)."""
        kinds, counters, addrs = [], [], []
        call_sites = [] if segments and segments[0][3] is not None else None
        for kind, counter, addr, call_site in segments:
            kinds.extend(
                kind.tolist() if hasattr(kind, "tolist") else kind
            )
            counters.extend(
                counter.tolist() if hasattr(counter, "tolist") else counter
            )
            addrs.extend(
                addr.tolist() if hasattr(addr, "tolist") else addr
            )
            if call_sites is not None:
                call_sites.extend(
                    call_site.tolist()
                    if hasattr(call_site, "tolist")
                    else call_site
                )
        return kinds, counters, addrs, call_sites

    @staticmethod
    def _concat_segment_arrays(segments):
        """Flatten a shard's segments into four numpy arrays — the
        vector kernel's (and the shard packer's) input shape."""
        if len(segments) == 1:
            kind, counter, addr, call_site = segments[0]
            return (
                _np.asarray(kind),
                _np.asarray(counter),
                _np.asarray(addr),
                _np.asarray(call_site) if call_site is not None else None,
            )
        has_cs = segments[0][3] is not None
        return (
            _np.concatenate([s[0] for s in segments]),
            _np.concatenate([s[1] for s in segments]),
            _np.concatenate([s[2] for s in segments]),
            _np.concatenate([s[3] for s in segments]) if has_cs else None,
        )

    def _finish_columns(self, log, per_thread, jobs, stats,
                        engine="python"):
        """Column-shard counterpart of :meth:`_finish`."""
        offset = log.profiler_addr - self.image.profiler_addr
        shards = list(per_thread.items())
        stats.shards_analyzed = len(shards)

        # Big multi-shard runs go to a process pool: shards travel as
        # packed column bytes, workers symbolise against their own
        # cache, and the GIL stops mattering.  Small runs stay on
        # threads, sharing one in-process cache (whose counters tiny
        # profiles' tests — and users — can reason about exactly).
        if (
            jobs > 1
            and len(shards) > 1
            and _np is not None
            and stats.entries_ingested >= PROCESS_POOL_MIN_ENTRIES
        ):
            outcomes = self._run_shards_pooled(shards, jobs, offset, engine)
            if outcomes is not None:
                return self._merge(log, outcomes, None, stats)

        cache = CachedResolver(self.image.symtab, maxsize=self.cache_size)
        columnar = engine == "vector"

        def run(shard):
            tid, segments = shard
            if columnar:
                kinds, counters, addrs, call_sites = (
                    self._concat_segment_arrays(segments)
                )
            else:
                kinds, counters, addrs, call_sites = self._concat_segments(
                    segments
                )
            return run_shard(
                tid, kinds, counters, addrs, call_sites, offset, cache,
                engine, columnar,
            )

        outcomes = self._run_shards(run, shards, jobs)
        return self._merge(log, outcomes, cache, stats)

    def _run_shards_pooled(self, shards, jobs, offset, engine):
        """Fan packed shards out to a :class:`ProcessPoolExecutor`.

        Each worker gets the symbol table once (through the pool
        initializer) and builds a private :class:`CachedResolver`; a
        shard crosses the process boundary as one packed byte string.
        Returns ``None`` when a pool cannot be used here (no usable
        multiprocessing primitives — e.g. a sandbox without
        semaphores), in which case the caller takes the thread path.
        """
        payloads = []
        for tid, segments in shards:
            kinds, counters, addrs, call_sites = (
                self._concat_segment_arrays(segments)
            )
            payloads.append(
                pack_shard(tid, kinds, counters, addrs, call_sites)
            )
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(shards)),
                initializer=_pool_init,
                initargs=(
                    self.image.symtab, offset, engine, self.cache_size
                ),
            ) as pool:
                return list(pool.map(_pool_run, payloads))
        except Exception:
            return None

    def _finish(self, log, per_thread, jobs, stats):
        """Reconstruct every shard (serially or on a pool) and merge."""
        offset = log.profiler_addr - self.image.profiler_addr
        cache = CachedResolver(self.image.symtab, maxsize=self.cache_size)
        shards = list(per_thread.items())
        stats.shards_analyzed = len(shards)

        def run(shard):
            tid, entries = shard
            records, unmatched, mismatches = self._reconstruct_shard(
                tid, entries, offset, cache
            )
            return ShardOutcome(
                records=records, unmatched=unmatched, mismatches=mismatches
            )

        outcomes = self._run_shards(run, shards, jobs)
        return self._merge(log, outcomes, cache, stats)

    @staticmethod
    def _run_shards(run, shards, jobs):
        if jobs > 1 and len(shards) > 1:
            with ThreadPoolExecutor(
                max_workers=min(jobs, len(shards))
            ) as pool:
                return list(pool.map(run, shards))
        return [run(shard) for shard in shards]

    def _merge(self, log, outcomes, cache, stats):
        # Merge: shard results concatenate in thread first-appearance
        # order, which is exactly the order the batch path produced.
        unmatched = 0
        mismatches = 0
        synthetic_hits = 0
        for outcome in outcomes:
            unmatched += outcome.unmatched
            mismatches += outcome.mismatches
            synthetic_hits += outcome.synthetic_hits
            if outcome.vectorised:
                stats.shards_vectorised += 1
            elif stats.engine == "vector":
                stats.shards_fallback += 1
        columnar = bool(outcomes) and outcomes[0].columns is not None
        if columnar:
            records = RecordColumns.concat([o.columns for o in outcomes])
            stats.frames_truncated += int(records.truncated.sum())
        else:
            records = []
            for outcome in outcomes:
                records.extend(outcome.records)
            stats.frames_truncated += sum(1 for r in records if r.truncated)
        stats.entries_dismissed += unmatched
        if cache is not None:
            # In-process pools share `cache`; the vector kernel's
            # unique-address resolves count the per-call resolutions
            # it *skipped* as hits (the oracle would have answered
            # them from the LRU), keeping the hit-rate meaningful.
            stats.cache_hits += cache.hits + synthetic_hits
            stats.cache_misses += cache.misses
        else:
            # Pooled workers each carried a private cache and reported
            # their own traffic on the way back.
            stats.cache_hits += sum(o.hits for o in outcomes)
            stats.cache_misses += sum(o.misses for o in outcomes)

        meta = {
            "events": len(log),
            "pid": log.pid,
            "capacity": log.capacity,
            "version": log.version,
            "multithread": log.multithread,
            "callsite_mismatches": mismatches,
        }
        locations = {
            sym.pretty: (sym.file, sym.line) for sym in self.image.symtab
        }
        return Analysis(
            records, unmatched, self.tick_ns, meta, locations, pipeline=stats
        )

    def _coerce(self, log):
        if isinstance(log, (SharedLog, LogStream, ColumnarLog)):
            return log
        if isinstance(log, memoryview):
            # Zero-copy: a read-only view over someone else's buffer
            # (the fleet shm fast path) — never materialise bytes.
            if is_compressed_image(log):
                return ColumnarLog(log)
            return SharedLog.view(log)
        if isinstance(log, (bytes, bytearray)):
            if is_compressed_image(log):
                return ColumnarLog(log)
            return SharedLog.from_bytes(log)
        if isinstance(log, str) or hasattr(log, "__fspath__"):
            # Threshold-based: small files are slurped into a
            # SharedLog, big ones become mmap-backed streams;
            # rev 1.2 images dispatch to ColumnarLog.
            return open_log(log)
        raise AnalyzerError(f"cannot analyze {type(log).__name__}")

    def _resolve(self, runtime_addr, offset, cache):
        symbol = cache.resolve(runtime_addr - offset)
        if symbol is None:
            return f"[unknown {runtime_addr:#x}]"
        return symbol.pretty

    def _reconstruct_shard(self, tid, entries, offset, cache):
        """Reconstruct one thread's stack from its entries.

        Pure with respect to the analyzer — results come back as
        ``(records, unmatched, callsite_mismatches)`` so shards can run
        concurrently without sharing mutable state (the resolution
        cache is the one shared structure, and it locks internally).
        The loop itself lives in
        :func:`repro.core.reconstruct.reconstruct_python` — the
        differential oracle the vector engine is tested against.
        """
        return reconstruct_python(
            tid,
            [e.kind for e in entries],
            [e.counter for e in entries],
            [e.addr for e in entries],
            [e.call_site for e in entries],
            offset,
            cache,
        )

    def _reconstruct_columns(
        self, tid, kinds, counters, addrs, call_sites, offset, cache
    ):
        """Column-input twin of :meth:`_reconstruct_shard` (kept as
        the historical name; delegates to the oracle loop)."""
        return reconstruct_python(
            tid, kinds, counters, addrs, call_sites, offset, cache
        )
