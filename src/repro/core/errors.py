"""Errors raised by the TEE-Perf core."""


class TEEPerfError(Exception):
    """Base class for profiler failures."""


class LogFormatError(TEEPerfError):
    """A log buffer or file does not parse as a TEE-Perf log."""


class RecorderError(TEEPerfError):
    """The recorder was driven through an invalid lifecycle."""


class AnalyzerError(TEEPerfError):
    """The analyzer could not make sense of its input."""


class RecoveryError(TEEPerfError):
    """Log salvage failed, or strict recovery found damage.

    Carries the :class:`repro.core.recovery.RecoveryReport` (when one
    was produced) on :attr:`report`, so callers can inspect exactly
    what was quarantined before the raise.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report
