"""Errors raised by the TEE-Perf core."""


class TEEPerfError(Exception):
    """Base class for profiler failures."""


class LogFormatError(TEEPerfError):
    """A log buffer or file does not parse as a TEE-Perf log."""


class RecorderError(TEEPerfError):
    """The recorder was driven through an invalid lifecycle."""


class AnalyzerError(TEEPerfError):
    """The analyzer could not make sense of its input."""
