"""Stage 4 — the visualizer.

TEE-Perf integrates with Brendan Gregg's Flame Graphs.  The analyzer
already produces folded stacks (path -> exclusive ticks); this module
renders them either as the standard *folded* text format — directly
consumable by the original ``flamegraph.pl`` — or as a self-contained
SVG with the familiar layout: one rectangle per call-path node, width
proportional to time, warm deterministic colours, and a tooltip with
the exact numbers.  The paper implements this output in 15 LoC on top
of the analyzer; ours is bigger only because it writes the SVG itself.
"""

import html
import zlib

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None


class FlameGraph:
    """A renderable flame graph built from folded stacks."""

    def __init__(self, folded, title="TEE-Perf Flame Graph"):
        if not folded:
            raise ValueError("empty profile: nothing to draw")
        self.title = title
        self.palette = None  # optional node -> css colour override
        self._inclusive = None
        self.root = _Node("all")
        for path, ticks in sorted(folded.items()):
            if ticks <= 0:
                continue
            node = self.root
            for name in path:
                node = node.child(name)
            node.self_ticks += ticks
        self.root.finalise()

    @classmethod
    def from_analysis(cls, analysis, title="TEE-Perf Flame Graph"):
        columns = getattr(analysis, "columns", None)
        if columns is not None and len(columns) and _np is not None:
            return cls._from_columns(columns, title)
        return cls(analysis.folded(), title=title)

    @classmethod
    def from_path_table(cls, paths, methods, ticks,
                        title="TEE-Perf Flame Graph"):
        """Build the node tree straight from an interned path table.

        ``paths`` is the ``(parent_path_id, method_id)`` node list
        (parents preceding children, ``-1`` the root), ``methods`` the
        method-name table, and ``ticks`` the per-path-id exclusive
        totals.  The path table *is* the tree, so each unique call
        path becomes one node in a single sweep — no path tuples, no
        re-sorting of folded keys (node children render sorted either
        way).  Paths with no positive ticks prune away, matching the
        folded-dict construction exactly.
        """
        self = cls.__new__(cls)
        self.title = title
        self.palette = None
        self._inclusive = None
        self.root = root = _Node("all")
        nodes = []
        for parent, mid in paths:
            parent_node = nodes[parent] if parent >= 0 else root
            nodes.append(parent_node.child(methods[mid]))
        values = ticks.tolist() if hasattr(ticks, "tolist") else ticks
        for pid, t in enumerate(values):
            if t > 0:
                nodes[pid].self_ticks += t
        root.finalise()
        _prune_empty(root)
        return self

    @classmethod
    def _from_columns(cls, cols, title):
        """Columnar analysis -> tree: one scatter-add of per-record
        exclusive ticks onto the path table, then the shared sweep."""
        mask = cols.exclusive > 0
        if not mask.any():
            raise ValueError("empty profile: nothing to draw")
        sums = _np.zeros(len(cols.paths), dtype=_np.int64)
        _np.add.at(sums, cols.path_id[mask], cols.exclusive[mask])
        return cls.from_path_table(cols.paths, cols.methods, sums, title)

    # ------------------------------------------------------------------

    def total_ticks(self):
        return self.root.total

    def frames(self):
        """Iterate (depth, start, node) over the laid-out graph."""
        yield from self.root.walk(0, 0)

    def inclusive_totals(self):
        """Summed inclusive ticks per frame name across the whole
        graph, memoised — the tree is immutable once built, so one
        walk serves every ``share()`` call and the differential
        palette."""
        if self._inclusive is None:
            totals = {}
            for _, _, node in self.frames():
                totals[node.name] = totals.get(node.name, 0) + node.total
            self._inclusive = totals
        return self._inclusive

    def share(self, name):
        """Fraction of total time in frames called `name` (summed)."""
        return self.inclusive_totals().get(name, 0) / self.root.total

    def to_folded(self):
        """The canonical folded-stacks text format."""
        lines = []
        self.root.fold([], lines)
        return "\n".join(lines) + "\n"

    def write_folded(self, path):
        with open(path, "w") as fh:
            fh.write(self.to_folded())

    # ------------------------------------------------------------------

    def to_svg(self, width=1200, frame_height=17, min_width_px=0.3):
        """A standalone SVG rendering of the graph."""
        depth = self.root.depth()
        height = (depth + 1) * frame_height + 60
        scale = (width - 20) / self.root.total
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" font-family="monospace" font-size="12">',
            f'<rect width="{width}" height="{height}" fill="#f8f8f8"/>',
            f'<text x="{width / 2}" y="24" text-anchor="middle" '
            f'font-size="16">{html.escape(self.title)}</text>',
        ]
        for level, start, node in self.frames():
            w = node.total * scale
            if w < min_width_px:
                continue
            x = 10 + start * scale
            y = height - 30 - (level + 1) * frame_height
            color = (
                self.palette(node) if self.palette else _color(node.name)
            )
            pct = 100 * node.total / self.root.total
            label = node.name if w > 8 * len(node.name) * 0.65 else (
                node.name[: max(0, int(w / 7) - 2)] + ".." if w > 30 else ""
            )
            tooltip = (
                f"{node.name}: {node.total} ticks "
                f"({pct:.2f}%), self {node.self_ticks}"
            )
            parts.append(
                f'<g><title>{html.escape(tooltip)}</title>'
                f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
                f'height="{frame_height - 1}" fill="{color}" rx="1"/>'
                f'<text x="{x + 3:.2f}" y="{y + 12}">'
                f"{html.escape(label)}</text></g>"
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def write_svg(self, path, **kwargs):
        with open(path, "w") as fh:
            fh.write(self.to_svg(**kwargs))


class _Node:
    __slots__ = ("name", "self_ticks", "total", "children")

    def __init__(self, name):
        self.name = name
        self.self_ticks = 0
        self.total = 0
        self.children = {}

    def child(self, name):
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Node(name)
        return node

    def finalise(self):
        self.total = self.self_ticks + sum(
            child.finalise() for child in self.children.values()
        )
        return self.total

    def depth(self):
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def walk(self, level, start):
        yield level, start, self
        offset = start
        for name in sorted(self.children):
            child = self.children[name]
            yield from child.walk(level + 1, offset)
            offset += child.total

    def fold(self, prefix, lines):
        path = prefix + [self.name] if prefix or self.name != "all" else []
        if self.self_ticks and path:
            lines.append(";".join(path) + f" {self.self_ticks}")
        for name in sorted(self.children):
            self.children[name].fold(path, lines)


def _prune_empty(node):
    """Drop zero-total subtrees (paths whose every invocation had no
    exclusive time), matching the folded-dict construction exactly."""
    node.children = {
        name: child
        for name, child in node.children.items()
        if child.total > 0
    }
    for child in node.children.values():
        _prune_empty(child)


def _color(name):
    """Deterministic warm colour per frame name (flame palette)."""
    digest = zlib.crc32(name.encode())
    red = 205 + digest % 50
    green = 60 + (digest >> 8) % 130
    blue = (digest >> 16) % 60
    return f"rgb({red},{green},{blue})"


def fold_stacks(analysis):
    """Convenience: analysis -> folded text."""
    return FlameGraph.from_analysis(analysis).to_folded()
