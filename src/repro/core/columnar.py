"""On-disk format rev 1.2 — compressed columnar log images.

A fixed-width TEE-Perf image spends 24 (v1) or 32 (v2) bytes per
entry, but the columns are wildly compressible: counters are
near-monotonic (per thread they only ever grow, and by small steps),
addresses draw from the program's small function alphabet, thread ids
barely change within a thread-sorted run.  Rev 1.2 exploits exactly
that: the persisted payload is the *columns* of the log, delta- and
dictionary-transformed and LEB128-varint packed, in CRC-guarded
blocks.  On the standard workloads the image shrinks 3-5x; decoding is
one vectorised numpy pass per block, so ``open_log()`` and the
analyzer consume rev 1.2 transparently through :class:`ColumnarLog`
(which mirrors :class:`~repro.core.log.LogStream`'s read surface).

Image layout (all integers little-endian u64 unless noted)::

    64-byte header        exactly the rev 1.0/1.1 header, with
                          FLAG_COMPRESSED set; `tail` is the total
                          entry count; the version field still names
                          the *entry layout* (v1/v2) the columns carry
    8 bytes               payload magic "TPCOL12\\0"
    u64                   block count
    blocks                each:
      u64 payload_len     bytes of the column sections below
      u64 count           entries in this block
      u64 crc32           zlib.crc32 of the payload bytes
      payload             one section per column, each
                          ``u64 section_len`` + section bytes

Column encodings (fixed per column, part of the format)::

    kind        plain LEB128 (0/1 - one byte per entry)
    counter     zigzag(delta) LEB128; deltas in wraparound u64
                arithmetic, the first delta is from 0
    addr        dictionary: varint count + zigzag-delta-packed sorted
                uniques + plain LEB128 indices
    tid         zigzag(delta) LEB128
    call_site   dictionary (v2 layouts only)

The codec is order-preserving — ``decode(encode(entries)) ==
entries``, entry for entry, whatever the input order (the rev 1.2
identity oracle).  :func:`encode_log` *additionally* stable-sorts
entries by thread id before encoding (``sort_by_thread=True``, the
default): per-thread order — the only order the format guarantees and
the analyzer consumes — is untouched, while counters become
near-monotonic within each run, which is where the compression comes
from.

Damage tolerance: every block carries its own CRC32, so salvage
(:mod:`repro.core.recovery`) quarantines exactly the damaged block —
`payload_len` lets the scan skip over it and keep every healthy block
after it.

Without numpy every path falls back to pure-Python loops — slower,
byte-identical output.
"""

import struct
import zlib

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None

from repro.core.errors import LogFormatError
from repro.core.log import (
    DEFAULT_CHUNK_ENTRIES,
    FLAG_COMPRESSED,
    FLAG_SEALED,
    HEADER_SIZE,
    LogColumns,
    MAGIC,
    SharedLog,
    _ENTRY_SIZES,
    _HEADER,
    _validate_header,
    _VERSION_SHIFT,
)

__all__ = [
    "COLUMNAR_MAGIC",
    "ColumnarLog",
    "DEFAULT_CODEC_BLOCK",
    "decode_delta",
    "decode_dictionary",
    "decode_log",
    "decode_varint",
    "encode_delta",
    "encode_dictionary",
    "encode_log",
    "encode_varint",
]

COLUMNAR_MAGIC = b"TPCOL12\x00"

#: Entries per codec block.  64k entries keep a block's decoded
#: columns around half a megabyte (v1) — one vectorised pass each, and
#: fine-grained enough that quarantining a damaged block loses little.
DEFAULT_CODEC_BLOCK = 65536

_U64 = struct.Struct("<Q")
_BLOCK_HEADER = struct.Struct("<3Q")  # payload_len, count, crc32
_DICT_HEADER = struct.Struct("<2Q")  # unique count, packed-unique bytes
_MAX_VARINT = 10  # ceil(64 / 7)
_WORD = 1 << 64


# ----------------------------------------------------------------------
# LEB128 varints

def encode_varint(values):
    """Pack a sequence of u64 values as LEB128 varints (one stream)."""
    if _np is not None:
        values = _np.ascontiguousarray(values, dtype=_np.uint64)
        n = len(values)
        if not n:
            return b""
        # Byte count per value: 1 + how many 7-bit shifts stay nonzero.
        nb = _np.ones(n, dtype=_np.int64)
        tmp = values >> _np.uint64(7)
        while tmp.any():
            nb += tmp != 0
            tmp >>= _np.uint64(7)
        ends = _np.cumsum(nb)
        starts = ends - nb
        out = _np.zeros(int(ends[-1]), dtype=_np.uint8)
        for i in range(int(nb.max())):
            m = nb > i
            byte = (
                (values[m] >> _np.uint64(7 * i)) & _np.uint64(0x7F)
            ).astype(_np.uint8)
            byte |= (nb[m] > i + 1).astype(_np.uint8) << 7
            out[starts[m] + i] = byte
        return out.tobytes()
    parts = bytearray()
    for v in values:
        v = int(v) & (_WORD - 1)
        while True:
            byte = v & 0x7F
            v >>= 7
            parts.append(byte | 0x80 if v else byte)
            if not v:
                break
    return bytes(parts)


def decode_varint(data, count):
    """Decode exactly `count` LEB128 varints; the stream must contain
    neither more nor fewer (:class:`LogFormatError` otherwise)."""
    if _np is not None:
        arr = _np.frombuffer(data, dtype=_np.uint8)
        ends = _np.flatnonzero((arr & 0x80) == 0)
        if len(ends) != count or (count and ends[-1] != len(arr) - 1) \
                or (not count and len(arr)):
            raise LogFormatError(
                f"malformed varint stream: {len(ends)} terminators in "
                f"{len(arr)} bytes, expected {count} values"
            )
        if not count:
            return _np.zeros(0, dtype=_np.uint64)
        starts = _np.empty(count, dtype=_np.int64)
        starts[0] = 0
        starts[1:] = ends[:-1] + 1
        lengths = ends - starts + 1
        if int(lengths.max()) > _MAX_VARINT:
            raise LogFormatError(
                f"varint longer than {_MAX_VARINT} bytes in stream"
            )
        out = _np.zeros(count, dtype=_np.uint64)
        for i in range(int(lengths.max())):
            m = lengths > i
            out[m] |= (
                (arr[starts[m] + i] & _np.uint64(0x7F)).astype(_np.uint64)
                << _np.uint64(7 * i)
            )
        return out
    out = []
    value = shift = 0
    for byte in bytes(data):
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift >= 7 * _MAX_VARINT:
                raise LogFormatError(
                    f"varint longer than {_MAX_VARINT} bytes in stream"
                )
        else:
            out.append(value & (_WORD - 1))
            value = shift = 0
    if len(out) != count or shift:
        raise LogFormatError(
            f"malformed varint stream: {len(out)} values decoded, "
            f"expected {count}"
        )
    return out


# ----------------------------------------------------------------------
# Zigzag deltas (counters, thread ids)

def encode_delta(values):
    """Delta + zigzag + varint: near-monotonic u64 columns become
    ~1 byte per entry.  Deltas use wraparound u64 arithmetic, so
    max-u64 values and non-monotonic regressions round-trip exactly."""
    if _np is not None:
        values = _np.ascontiguousarray(values, dtype=_np.uint64)
        if not len(values):
            return b""
        deltas = _np.diff(values, prepend=_np.uint64(0))
        sign = (deltas.view(_np.int64) >> _np.int64(63)).view(_np.uint64)
        return encode_varint((deltas << _np.uint64(1)) ^ sign)
    out, prev = [], 0
    for v in values:
        v = int(v) & (_WORD - 1)
        delta = (v - prev) & (_WORD - 1)
        prev = v
        # Zigzag the signed interpretation of the wraparound delta.
        signed = delta - _WORD if delta >> 63 else delta
        out.append(((signed << 1) ^ (signed >> 63)) & (_WORD - 1))
    return encode_varint(out)


def decode_delta(data, count):
    """Invert :func:`encode_delta` for exactly `count` values."""
    zig = decode_varint(data, count)
    if _np is not None:
        signed = (zig >> _np.uint64(1)).view(_np.int64) ^ -(
            (zig & _np.uint64(1)).view(_np.int64)
        )
        return _np.cumsum(signed.view(_np.uint64), dtype=_np.uint64)
    out, prev = [], 0
    for z in zig:
        delta = (z >> 1) ^ -(z & 1)
        prev = (prev + delta) & (_WORD - 1)
        out.append(prev)
    return out


# ----------------------------------------------------------------------
# Dictionary columns (addresses, call sites)

def encode_dictionary(values):
    """Dictionary-pack a small-alphabet column: the sorted unique
    values delta-packed once, then one varint index per entry."""
    if _np is not None:
        values = _np.ascontiguousarray(values, dtype=_np.uint64)
        uniq, inverse = _np.unique(values, return_inverse=True)
    else:
        uniq = sorted({int(v) & (_WORD - 1) for v in values})
        index = {v: i for i, v in enumerate(uniq)}
        inverse = [index[int(v) & (_WORD - 1)] for v in values]
    packed = encode_delta(uniq)
    return (
        _DICT_HEADER.pack(len(uniq), len(packed))
        + packed
        + encode_varint(inverse)
    )


def decode_dictionary(data, count):
    """Invert :func:`encode_dictionary` for exactly `count` values."""
    view = memoryview(data)
    if len(view) < _DICT_HEADER.size:
        raise LogFormatError(
            f"dictionary section truncated: {len(view)} bytes"
        )
    n_uniq, packed_len = _DICT_HEADER.unpack_from(view, 0)
    body = view[_DICT_HEADER.size:]
    if packed_len > len(body) or (count and not n_uniq):
        raise LogFormatError(
            f"dictionary section inconsistent: {n_uniq} uniques in "
            f"{packed_len} bytes, section holds {len(body)}"
        )
    uniq = decode_delta(body[:packed_len], n_uniq)
    idx = decode_varint(body[packed_len:], count)
    if _np is not None:
        if count and int(idx.max()) >= n_uniq:
            raise LogFormatError(
                f"dictionary index {int(idx.max())} out of range "
                f"({n_uniq} uniques)"
            )
        return uniq[idx]
    out = []
    for i in idx:
        if i >= n_uniq:
            raise LogFormatError(
                f"dictionary index {i} out of range ({n_uniq} uniques)"
            )
        out.append(uniq[i])
    return out


# ----------------------------------------------------------------------
# Blocks

# (encoder, decoder) per column position; call_site reuses the addr
# scheme.  Fixed per column — part of the format, not negotiated.
_COLUMN_CODECS = (
    (encode_varint, decode_varint),       # kind
    (encode_delta, decode_delta),         # counter
    (encode_dictionary, decode_dictionary),  # addr
    (encode_delta, decode_delta),         # tid
    (encode_dictionary, decode_dictionary),  # call_site
)


def _encode_block(kind, counter, addr, tid, call_site):
    columns = [kind, counter, addr, tid]
    if call_site is not None:
        columns.append(call_site)
    sections = []
    for column, (encode, _) in zip(columns, _COLUMN_CODECS):
        packed = encode(column)
        sections.append(_U64.pack(len(packed)))
        sections.append(packed)
    payload = b"".join(sections)
    return (
        _BLOCK_HEADER.pack(len(payload), len(kind), zlib.crc32(payload))
        + payload
    )


def _decode_block_payload(payload, count, version):
    """Decode one block's column sections into a column tuple.

    Raises :class:`LogFormatError` on any structural damage — the
    strict reader treats that as fatal, salvage as a quarantine.
    """
    n_columns = 5 if _ENTRY_SIZES[version] == 32 else 4
    view = memoryview(payload)
    offset = 0
    columns = []
    for position in range(n_columns):
        if offset + _U64.size > len(view):
            raise LogFormatError(
                f"block payload truncated in section {position} "
                f"(offset {offset})"
            )
        (length,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        if offset + length > len(view):
            raise LogFormatError(
                f"block section {position} claims {length} bytes, "
                f"payload holds {len(view) - offset}"
            )
        decode = _COLUMN_CODECS[position][1]
        columns.append(decode(view[offset : offset + length], count))
        offset += length
    if offset != len(view):
        raise LogFormatError(
            f"{len(view) - offset} stray bytes after block sections"
        )
    if n_columns == 4:
        columns.append(None)
    return tuple(columns)


def _iter_source_columns(source):
    """(kind, counter, addr, tid, call_site) for a whole log source."""
    cols = source.columns()
    if _np is not None:
        return cols.as_arrays()
    return cols.as_lists()


# ----------------------------------------------------------------------
# Whole-image encode / decode

def encode_log(source, block_entries=DEFAULT_CODEC_BLOCK,
               sort_by_thread=True):
    """Encode a log into a rev 1.2 compressed columnar image.

    `source` is anything with the read surface of
    :class:`~repro.core.log.SharedLog` / :class:`~repro.core.log.
    LogStream` (a :class:`ColumnarLog` works too, so re-encoding is a
    no-op round trip).  With `sort_by_thread` (default) entries are
    stable-sorted by thread id first: per-thread order — the only
    order the format guarantees — is preserved exactly, and counters
    become near-monotonic within each thread's run, which is where
    the compression ratio comes from.  Pass ``sort_by_thread=False``
    to encode the sequence as-is (the identity-oracle configuration).

    Returns the complete image as ``bytes``.
    """
    if block_entries < 1:
        raise ValueError(
            f"block_entries must be positive: {block_entries}"
        )
    kind, counter, addr, tid, call_site = _iter_source_columns(source)
    total = len(kind)
    if sort_by_thread and total:
        if _np is not None:
            order = _np.argsort(tid, kind="stable")
            kind, counter = kind[order], counter[order]
            addr, tid = addr[order], tid[order]
            if call_site is not None:
                call_site = call_site[order]
        else:
            order = sorted(range(total), key=tid.__getitem__)
            kind = [kind[i] for i in order]
            counter = [counter[i] for i in order]
            addr = [addr[i] for i in order]
            tid = [tid[i] for i in order]
            if call_site is not None:
                call_site = [call_site[i] for i in order]

    version = source.version
    # The header travels unchanged except: FLAG_COMPRESSED on, the
    # seal machinery off (block CRCs are rev 1.2's integrity story),
    # and the tail pinned to the encoded entry count.
    flags = (source.flags | FLAG_COMPRESSED) & ~FLAG_SEALED
    header = _HEADER.pack(
        MAGIC,
        flags | (version << _VERSION_SHIFT),
        source.shm_base,
        source.pid,
        source.capacity,
        total,
        source.profiler_addr,
        0,  # no seal watermark in rev 1.2
    )
    blocks = []
    for start in range(0, total, block_entries):
        end = min(start + block_entries, total)
        blocks.append(
            _encode_block(
                kind[start:end],
                counter[start:end],
                addr[start:end],
                tid[start:end],
                call_site[start:end] if call_site is not None else None,
            )
        )
    return b"".join(
        [header, COLUMNAR_MAGIC, _U64.pack(len(blocks))] + blocks
    )


def decode_log(data):
    """Fully decode a rev 1.2 image into a fixed-width
    :class:`~repro.core.log.SharedLog` (rev 1.0 semantics, same
    entries in the image's order) — the convert-back path."""
    with ColumnarLog(data) as log:
        return log.to_shared_log()


class ColumnarLog:
    """A read-only rev 1.2 image with the :class:`~repro.core.log.
    LogStream` read surface.

    The header parses eagerly and the block directory is scanned once
    (offsets, counts, CRCs — no payload is touched); columns decode
    lazily, one block per vectorised pass, so
    :meth:`iter_column_chunks` feeds the analyzer without ever
    holding the expanded log.  CRC failures and malformed sections
    raise :class:`LogFormatError` — the strict reader's contract;
    tolerant salvage is :mod:`repro.core.recovery`'s job.
    """

    def __init__(self, buf, chunk_size=DEFAULT_CHUNK_ENTRIES, closer=None):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        header = _validate_header(buf)
        if not header[1] & FLAG_COMPRESSED:
            raise LogFormatError(
                "not a compressed image (FLAG_COMPRESSED clear) — use "
                "SharedLog/LogStream for fixed-width rev 1.0/1.1 logs"
            )
        self._buf = buf
        self._header = header
        self._version = (header[1] >> _VERSION_SHIFT) & 0xFFFF
        self._entry_size = _ENTRY_SIZES[self._version]
        self.chunk_size = chunk_size
        self._closer = closer
        view = memoryview(buf)
        magic_end = HEADER_SIZE + len(COLUMNAR_MAGIC)
        if bytes(view[HEADER_SIZE:magic_end]) != COLUMNAR_MAGIC:
            raise LogFormatError(
                f"missing columnar payload magic at offset "
                f"{HEADER_SIZE} (expected {COLUMNAR_MAGIC!r})"
            )
        if len(view) < magic_end + _U64.size:
            raise LogFormatError("truncated before the block count")
        (n_blocks,) = _U64.unpack_from(view, magic_end)
        # The block directory: (byte offset, entry count, crc,
        # payload_len) per block, bounds-checked during the scan.
        self._blocks = []
        offset = magic_end + _U64.size
        for index in range(n_blocks):
            if offset + _BLOCK_HEADER.size > len(view):
                raise LogFormatError(
                    f"block {index} header truncated at offset {offset}"
                )
            payload_len, count, crc = _BLOCK_HEADER.unpack_from(
                view, offset
            )
            payload_at = offset + _BLOCK_HEADER.size
            if payload_at + payload_len > len(view):
                raise LogFormatError(
                    f"block {index} claims {payload_len} payload bytes "
                    f"at offset {payload_at}, image holds "
                    f"{len(view) - payload_at}"
                )
            self._blocks.append((payload_at, count, crc, payload_len))
            offset = payload_at + payload_len
        self._count = sum(b[1] for b in self._blocks)

    @classmethod
    def open(cls, path, chunk_size=DEFAULT_CHUNK_ENTRIES):
        """Open a rev 1.2 file through an ``mmap`` mapping (falling
        back to an in-memory read where mapping is impossible)."""
        import mmap

        fh = open(path, "rb")
        try:
            buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            data = fh.read()
            fh.close()
            return cls(data, chunk_size)
        return cls(
            buf, chunk_size, closer=lambda: (buf.close(), fh.close())
        )

    # ------------------------------------------------------------------
    # Header accessors (the LogStream subset)

    @property
    def version(self):
        return self._version

    @property
    def flags(self):
        return self._header[1] & 0xFFFF

    @property
    def shm_base(self):
        return self._header[2]

    @property
    def pid(self):
        return self._header[3]

    @property
    def capacity(self):
        return self._header[4]

    @property
    def tail(self):
        return self._header[5]

    @property
    def profiler_addr(self):
        return self._header[6]

    @property
    def multithread(self):
        from repro.core.log import FLAG_MULTITHREAD

        return bool(self.flags & FLAG_MULTITHREAD)

    @property
    def active(self):
        from repro.core.log import FLAG_ACTIVE

        return bool(self.flags & FLAG_ACTIVE)

    @property
    def entry_size(self):
        return self._entry_size

    @property
    def sealed(self):
        # Rev 1.2 has no seal journal; per-block CRCs guard integrity.
        return False

    @property
    def seals(self):
        return []

    @property
    def seal_watermark(self):
        return self._header[7]

    @property
    def compressed(self):
        return True

    @property
    def nbytes(self):
        """Size of the compressed image in bytes."""
        return len(self._buf)

    @property
    def block_count(self):
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Reading

    def __len__(self):
        return self._count

    def _decode_block(self, index, start):
        payload_at, count, crc, payload_len = self._blocks[index]
        payload = memoryview(self._buf)[
            payload_at : payload_at + payload_len
        ]
        if zlib.crc32(payload) != crc:
            raise LogFormatError(
                f"block {index} CRC mismatch at offset {payload_at} "
                f"({count} entries) — salvage with "
                f"repro.core.recovery.recover_log"
            )
        kind, counter, addr, tid, call_site = _decode_block_payload(
            payload, count, self._version
        )
        return LogColumns(kind, counter, addr, tid, call_site, start)

    def iter_column_chunks(self, chunk_size=None):
        """Yield :class:`~repro.core.log.LogColumns` spans of at most
        `chunk_size` — the analyzer's bulk-ingestion surface, decoded
        one block at a time."""
        chunk_size = chunk_size or self.chunk_size
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        start = 0
        for index in range(len(self._blocks)):
            cols = self._decode_block(index, start)
            count = len(cols)
            for at in range(0, count, chunk_size):
                stop = min(at + chunk_size, count)
                if at == 0 and stop == count:
                    yield cols
                else:
                    call_site = (
                        cols.call_site[at:stop]
                        if cols.call_site is not None
                        else None
                    )
                    yield LogColumns(
                        cols.kind[at:stop],
                        cols.counter[at:stop],
                        cols.addr[at:stop],
                        cols.tid[at:stop],
                        call_site,
                        start + at,
                    )
            start += count

    # Interchangeable with SharedLog/LogStream for the analyzer.
    column_chunks = iter_column_chunks

    def iter_chunks(self, chunk_size=None):
        """Yield entries as lists of at most `chunk_size`."""
        for cols in self.iter_column_chunks(chunk_size):
            yield cols.entries()

    chunks = iter_chunks

    def columns(self):
        """The whole image decoded as one :class:`~repro.core.log.
        LogColumns` span."""
        spans = [
            self._decode_block(i, 0) for i in range(len(self._blocks))
        ]
        spans = [s for s in spans if len(s)]
        if not spans:
            empty = [] if _np is None else _np.zeros(0, dtype=_np.uint64)
            call_site = (
                None if self._entry_size == 24
                else ([] if _np is None else _np.zeros(0, dtype=_np.uint64))
            )
            return LogColumns(empty, empty, empty, empty, call_site, 0)
        if len(spans) == 1:
            return spans[0]
        if _np is not None:
            cat = _np.concatenate
            call_site = (
                cat([s.call_site for s in spans])
                if spans[0].call_site is not None
                else None
            )
            return LogColumns(
                cat([s.kind for s in spans]),
                cat([s.counter for s in spans]),
                cat([s.addr for s in spans]),
                cat([s.tid for s in spans]),
                call_site,
                0,
            )
        kind, counter, addr, tid = [], [], [], []
        call_site = [] if spans[0].call_site is not None else None
        for s in spans:
            k, c, a, t, cs = s.as_lists()
            kind.extend(k)
            counter.extend(c)
            addr.extend(a)
            tid.extend(t)
            if call_site is not None:
                call_site.extend(cs)
        return LogColumns(kind, counter, addr, tid, call_site, 0)

    def __iter__(self):
        for chunk in self.iter_chunks():
            yield from chunk

    def to_shared_log(self):
        """Expand into a fixed-width :class:`~repro.core.log.
        SharedLog` (the image's entry order, rev 1.0/1.1 flags)."""
        out = SharedLog.create(
            max(1, self.capacity, self._count),
            pid=self.pid,
            profiler_addr=self.profiler_addr,
            shm_base=self.shm_base,
            multithread=self.multithread,
            version=self._version,
        )
        for cols in self.iter_column_chunks():
            out.append_columns(
                cols.kind, cols.counter, cols.addr, cols.tid,
                cols.call_site,
            )
        out._store_tail()
        return out

    def close(self):
        if self._closer is not None:
            self._closer()
            self._closer = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return (
            f"ColumnarLog(entries={self._count}, "
            f"blocks={len(self._blocks)}, version={self._version}, "
            f"nbytes={self.nbytes})"
        )
