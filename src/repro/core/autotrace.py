"""Auto-tracing: profile *unmodified* Python programs.

The paper's transparency goal is "unmodified multithreaded applications
with an easy-to-use interface".  For C that means a recompile with
``-finstrument-functions``; for Python we can do even better — the
interpreter's profiling hook (`sys.setprofile`) delivers exactly the
call/return events the injected code would produce, with no compile
stage at all.

:class:`AutoTracer` lays every traced code object out in a simulated
binary image on first sight (so the log still carries *addresses* and
the analyzer stays unchanged) and appends Figure-2 entries to the
shared log.  A *scope* predicate restricts tracing to the application's
own modules — the same role selective profiling plays in stage 1.

Used through the facade::

    perf = TEEPerf.auto(scope="myapp")
    perf.record(myapp.main)
    print(perf.analyze().report())
"""

import sys
import threading

from repro.core.instrument import InstrumentedProgram
from repro.core.log import KIND_CALL, KIND_RET
from repro.core.recorder import DEFAULT_CAPACITY, LiveRecorder
from repro.symbols import mangle
from repro.symbols.mangle import MangleError

_SKIP_MODULES = ("repro.core", "repro.machine", "threading", "importlib")


def _sanitise(name):
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out).strip("_") or "anonymous"
    return text if not text[0].isdigit() else "_" + text


class AutoTracer:
    """Incrementally builds the image and answers the profile hook."""

    #: implicit frames that would only add noise to the profile
    _SYNTHETIC = ("<genexpr>", "<listcomp>", "<dictcomp>", "<setcomp>")

    def __init__(self, scope=None):
        self.program = InstrumentedProgram("auto")
        self._scope = self._normalise_scope(scope)
        self._decision_by_code = {}
        self.log = None
        self.counter = None
        self.offset = 0  # relocation offset of the loaded image
        self.events = 0

    def flush(self):
        """Hooks-interface parity: the tracer appends per event and
        stages nothing, so there is never anything to commit."""

    @staticmethod
    def _normalise_scope(scope):
        if scope is None:
            return None
        if callable(scope):
            return scope
        if isinstance(scope, str):
            prefixes = (scope,)
        else:
            prefixes = tuple(scope)
        return lambda module: module.startswith(prefixes)

    # ------------------------------------------------------------------

    def _traced_addr(self, frame):
        """The image address for this frame's code; None = not traced."""
        code = frame.f_code
        cached = self._decision_by_code.get(code)
        if cached is not None:
            return cached or None  # 0 encodes "skipped"
        module = frame.f_globals.get("__name__", "")
        traced = not module.startswith(_SKIP_MODULES)
        if traced and self._scope is not None:
            traced = self._scope(module)
        if traced and code.co_name == "<module>":
            traced = False
        if traced and code.co_name in self._SYNTHETIC:
            traced = False
        if not traced:
            self._decision_by_code[code] = 0
            return None
        pretty = f"{_sanitise(module)}::{_sanitise(code.co_qualname)}" if (
            hasattr(code, "co_qualname")
        ) else f"{_sanitise(module)}::{_sanitise(code.co_name)}"
        try:
            symbol_name = mangle(pretty)
        except MangleError:
            symbol_name = _sanitise(pretty)
        base = symbol_name
        suffix = 1
        while symbol_name in self.program.image.symtab:
            suffix += 1
            symbol_name = f"{base}_{suffix}"
        addr = self.program.image.add_function(
            symbol_name,
            size=max(16, len(code.co_code)),
            file=code.co_filename,
            line=code.co_firstlineno,
        )
        self._decision_by_code[code] = addr
        return addr

    def hook(self, frame, event, arg):
        if event == "call":
            addr = self._traced_addr(frame)
            if addr is not None:
                self.events += 1
                call_site = 0
                if self.log.entry_size > 24 and frame.f_back is not None:
                    parent = self._decision_by_code.get(frame.f_back.f_code)
                    if parent:
                        call_site = parent + self.offset
                self.log.append(
                    KIND_CALL,
                    self.counter.read(),
                    addr + self.offset,
                    threading.get_ident(),
                    call_site,
                )
        elif event == "return":
            addr = self._decision_by_code.get(frame.f_code)
            if addr:
                self.events += 1
                self.log.append(
                    KIND_RET,
                    self.counter.read(),
                    addr + self.offset,
                    threading.get_ident(),
                )
        return None


class AutoRecorder(LiveRecorder):
    """A live recorder that installs the interpreter profile hook."""

    def __init__(self, tracer, capacity=DEFAULT_CAPACITY, counter=None,
                 version=None):
        from repro.core.log import VERSION

        super().__init__(
            tracer.program,
            capacity=capacity,
            counter=counter,
            version=version or VERSION,
        )
        self.tracer = tracer

    def start(self):
        super().start()
        self.tracer.log = self.log
        self.tracer.counter = self.counter
        self.tracer.offset = self.loaded.offset
        self.hooks = self.tracer  # events counter lives on the tracer
        threading.setprofile(self.tracer.hook)
        sys.setprofile(self.tracer.hook)

    def stop(self):
        sys.setprofile(None)
        threading.setprofile(None)
        super().stop()

    def _make_hooks(self):
        return None  # the interpreter hook replaces armed wrappers
