"""The stack-reconstruction kernels: vectorised, sequential, pooled.

Stage 3's hot loop is turning one thread's call/return events into
:class:`CallRecord`\\ s.  This module holds both implementations of
that loop plus the structure-of-arrays result type they meet in:

* :func:`reconstruct_vector` — the **vectorised kernel**.  For a clean
  shard (every return matches the frame that the nesting structure
  says it should), the whole reconstruction is a handful of numpy
  passes: depth is a ±1 cumulative sum over the event kinds, the k-th
  return at each depth level pairs with the k-th call at that level
  (a stable argsort by ``(depth, position)`` on both sides), parents
  come from a ``searchsorted`` against the enclosing level's call
  positions, and inclusive/exclusive ticks are per-call subtractions
  plus one scatter-add of child inclusives onto parents.  No
  per-entry Python at all.  Shards whose pairing shows an anomaly —
  a return that would close the wrong frame, a stack that goes
  negative, a truncated tail — return ``None`` and the caller falls
  back to the sequential loop below, which implements the paper's
  full robustness rules.
* :func:`reconstruct_python` — the sequential, entry-at-a-time loop,
  kept verbatim in behaviour as the **differential oracle**; the
  vector kernel is tested field-for-field against it.
* :class:`RecordColumns` — the columnar result: one array per record
  field with interned method and call-path ids, mirroring
  :class:`~repro.core.log.LogColumns`.  :class:`CallRecord` objects
  are only materialised on demand, so aggregation, folding and frame
  construction never pay the per-record object cost.
* :func:`pack_shard` / :func:`unpack_shard` and the ``_pool_*``
  helpers — the process-pool protocol: a shard travels to a worker as
  one packed byte string (header + four column arrays), not as a
  pickled list of entry objects, and the result travels back as a
  picklable :class:`RecordColumns`.

Equivalence note: a shard is *clean* exactly when its kinds form a
balanced Dyck word (the running ±1 sum never dips below zero and ends
at zero) and the structurally paired call/return addresses are equal.
Under those conditions the oracle takes its fast branch (return
matches the open stack's top) at every step, closes frames in return
order, truncates nothing and dismisses nothing — which is precisely
what the vectorised passes compute.
"""

import struct
from dataclasses import dataclass, field

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in-tree
    _np = None

from repro.core.log import KIND_CALL
from repro.symbols.symtab import CachedResolver

#: The analyzer's engine knob: resolved to "vector" or "python".
ENGINES = ("auto", "vector", "python")

#: Below this many total entries a process pool costs more than it
#: buys (worker spawn plus shard shipping), so ``jobs > 1`` stays on
#: threads and keeps sharing one in-process symbol cache.
PROCESS_POOL_MIN_ENTRIES = 1 << 16


@dataclass(frozen=True)
class CallRecord:
    """One completed (or truncated) method invocation."""

    method: str
    tid: int
    enter: int
    exit: int
    inclusive: int
    exclusive: int
    depth: int
    caller: str
    path: tuple
    truncated: bool = False


def resolve_name(cache, runtime_addr, offset):
    """Resolve a runtime address to its demangled name (or the
    analyzer's ``[unknown 0x...]`` placeholder) through the cache."""
    symbol = cache.resolve(runtime_addr - offset)
    if symbol is None:
        return f"[unknown {runtime_addr:#x}]"
    return symbol.pretty


# ======================================================================
# The columnar record set


class RecordColumns:
    """A reconstructed shard (or whole profile) as structure-of-arrays.

    One ``int64``/``uint64``/``bool`` array per :class:`CallRecord`
    field, plus two interning tables:

    * ``methods`` — method-name strings; ``method_id``/``caller_id``
      index it (``caller_id == -1`` encodes a root frame's ``None``);
    * ``paths`` — the call-path tree as ``(parent_path_id,
      method_id)`` nodes, parents always preceding children;
      ``path_id`` indexes it and ``-1`` is the empty root.  Path
      *tuples* are materialised lazily and memoised, so every record
      sharing a call path shares one tuple object.

    Records are materialised only by :meth:`records` (cached) — bulk
    consumers (method aggregation, flame-graph folding, the query
    frames) read the arrays directly.
    """

    __slots__ = (
        "method_id",
        "tid",
        "enter",
        "exit",
        "inclusive",
        "exclusive",
        "depth",
        "caller_id",
        "path_id",
        "truncated",
        "methods",
        "paths",
        "_tuples",
        "_records",
    )

    def __init__(self, method_id, tid, enter, exit, inclusive, exclusive,
                 depth, caller_id, path_id, truncated, methods, paths):
        self.method_id = method_id
        self.tid = tid
        self.enter = enter
        self.exit = exit
        self.inclusive = inclusive
        self.exclusive = exclusive
        self.depth = depth
        self.caller_id = caller_id
        self.path_id = path_id
        self.truncated = truncated
        self.methods = methods
        self.paths = paths
        self._tuples = {}
        self._records = None

    # -- pickling (process-pool transport): ship arrays and tables,
    # never the caches.

    def __getstate__(self):
        return tuple(
            getattr(self, name)
            for name in self.__slots__
            if name not in ("_tuples", "_records")
        )

    def __setstate__(self, state):
        for name, value in zip(
            (n for n in self.__slots__ if n not in ("_tuples", "_records")),
            state,
        ):
            setattr(self, name, value)
        self._tuples = {}
        self._records = None

    # ------------------------------------------------------------------

    def __len__(self):
        return len(self.method_id)

    @classmethod
    def empty(cls):
        i64 = _np.empty(0, dtype=_np.int64)
        return cls(
            i64, _np.empty(0, dtype=_np.uint64), i64, i64, i64, i64, i64,
            i64, i64, _np.empty(0, dtype=bool), [], [],
        )

    def path_tuple(self, pid):
        """The call path for one path id, as the oracle's tuple —
        memoised, so equal paths share one tuple object."""
        cached = self._tuples.get(pid)
        if cached is not None:
            return cached
        chain = []
        node = pid
        while node >= 0 and node not in self._tuples:
            chain.append(node)
            node = self.paths[node][0]
        prefix = self._tuples[node] if node >= 0 else ()
        methods = self.methods
        for node in reversed(chain):
            prefix = prefix + (methods[self.paths[node][1]],)
            self._tuples[node] = prefix
        return prefix

    def records(self):
        """Materialise the full :class:`CallRecord` list (cached)."""
        if self._records is None:
            methods = self.methods
            path_tuple = self.path_tuple
            mids = self.method_id.tolist()
            tids = self.tid.tolist()
            enters = self.enter.tolist()
            exits = self.exit.tolist()
            incls = self.inclusive.tolist()
            excls = self.exclusive.tolist()
            depths = self.depth.tolist()
            callers = self.caller_id.tolist()
            pids = self.path_id.tolist()
            truncs = self.truncated.tolist()
            self._records = [
                CallRecord(
                    method=methods[mids[i]],
                    tid=tids[i],
                    enter=enters[i],
                    exit=exits[i],
                    inclusive=incls[i],
                    exclusive=excls[i],
                    depth=depths[i],
                    caller=methods[callers[i]] if callers[i] >= 0 else None,
                    path=path_tuple(pids[i]),
                    truncated=truncs[i],
                )
                for i in range(len(mids))
            ]
        return self._records

    def __iter__(self):
        return iter(self.records())

    def __repr__(self):
        return (
            f"RecordColumns({len(self)} records, "
            f"{len(self.methods)} methods, {len(self.paths)} paths)"
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records):
        """Columnise a sequential reconstructor's record list (the
        fallback shard's bridge into the columnar merge).  The
        original records are kept as the materialisation cache, so
        converting costs no later rebuild."""
        name_id = {}
        methods = []
        by_tuple = {(): -1}
        paths = []

        def intern_name(name):
            mid = name_id.get(name)
            if mid is None:
                mid = name_id[name] = len(methods)
                methods.append(name)
            return mid

        def intern_path(path):
            pid = by_tuple.get(path)
            if pid is None:
                parent = intern_path(path[:-1])
                pid = len(paths)
                paths.append((parent, intern_name(path[-1])))
                by_tuple[path] = pid
            return pid

        n = len(records)
        method_id = _np.empty(n, dtype=_np.int64)
        tid = _np.empty(n, dtype=_np.uint64)
        enter = _np.empty(n, dtype=_np.int64)
        exit_ = _np.empty(n, dtype=_np.int64)
        inclusive = _np.empty(n, dtype=_np.int64)
        exclusive = _np.empty(n, dtype=_np.int64)
        depth = _np.empty(n, dtype=_np.int64)
        caller_id = _np.empty(n, dtype=_np.int64)
        path_id = _np.empty(n, dtype=_np.int64)
        truncated = _np.empty(n, dtype=bool)
        for i, r in enumerate(records):
            method_id[i] = intern_name(r.method)
            tid[i] = r.tid
            enter[i] = r.enter
            exit_[i] = r.exit
            inclusive[i] = r.inclusive
            exclusive[i] = r.exclusive
            depth[i] = r.depth
            caller_id[i] = intern_name(r.caller) if r.caller is not None else -1
            path_id[i] = intern_path(r.path)
            truncated[i] = r.truncated
        out = cls(method_id, tid, enter, exit_, inclusive, exclusive,
                  depth, caller_id, path_id, truncated, methods, paths)
        out._records = list(records)
        return out

    @classmethod
    def concat(cls, parts):
        """Concatenate shard columns, re-interning the method and
        path tables into one shared namespace (id remaps are single
        fancy-indexing passes per shard)."""
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        name_id = {}
        methods = []
        node_id = {}
        paths = []
        cols = {n: [] for n in ("method_id", "tid", "enter", "exit",
                                "inclusive", "exclusive", "depth",
                                "caller_id", "path_id", "truncated")}
        for part in parts:
            mmap = _np.empty(max(len(part.methods), 1), dtype=_np.int64)
            for old, name in enumerate(part.methods):
                mid = name_id.get(name)
                if mid is None:
                    mid = name_id[name] = len(methods)
                    methods.append(name)
                mmap[old] = mid
            pmap = _np.empty(max(len(part.paths), 1), dtype=_np.int64)
            for old, (parent, mid) in enumerate(part.paths):
                key = (
                    int(pmap[parent]) if parent >= 0 else -1,
                    int(mmap[mid]),
                )
                npid = node_id.get(key)
                if npid is None:
                    npid = node_id[key] = len(paths)
                    paths.append(key)
                pmap[old] = npid
            cols["method_id"].append(mmap[part.method_id])
            cols["caller_id"].append(
                _np.where(
                    part.caller_id >= 0,
                    mmap[_np.maximum(part.caller_id, 0)],
                    _np.int64(-1),
                )
            )
            cols["path_id"].append(pmap[part.path_id])
            for name in ("tid", "enter", "exit", "inclusive",
                         "exclusive", "depth", "truncated"):
                cols[name].append(getattr(part, name))
        merged = {n: _np.concatenate(v) for n, v in cols.items()}
        return cls(
            merged["method_id"], merged["tid"], merged["enter"],
            merged["exit"], merged["inclusive"], merged["exclusive"],
            merged["depth"], merged["caller_id"], merged["path_id"],
            merged["truncated"], methods, paths,
        )


# ======================================================================
# The vectorised kernel


def reconstruct_vector(tid, kinds, counters, addrs, call_sites, offset,
                       cache):
    """Reconstruct one clean shard in whole-array passes.

    Inputs are the shard's four columns (numpy ``uint64`` arrays;
    ``call_sites`` is ``None`` for v1 logs) and the shared symbol
    cache.  Returns ``(columns, mismatches, resolutions_requested,
    resolutions_performed)`` — the last two feed the pipeline's
    cache-hit accounting, because the kernel resolves each *unique*
    address once where the oracle resolves every call event — or
    ``None`` when the shard is anomalous and must take the sequential
    fallback (unmatched returns, cross-frame closes, truncated
    tails).
    """
    n = len(kinds)
    if n == 0:
        return RecordColumns.empty(), 0, 0, 0
    kinds = _np.asarray(kinds).astype(_np.int64, copy=False)
    # Depth via the ±1 cumulative sum: a call pushes, a return pops.
    depth_after = _np.cumsum(1 - 2 * kinds)
    if int(depth_after.min()) < 0 or int(depth_after[-1]) != 0:
        return None  # unmatched return / truncated tail
    is_call = kinds == KIND_CALL
    call_pos = _np.nonzero(is_call)[0]
    ret_pos = _np.nonzero(~is_call)[0]
    n_calls = len(call_pos)
    addrs = _np.asarray(addrs)
    call_depth = depth_after[call_pos] - 1  # enclosing frames per call
    ret_depth = depth_after[ret_pos]  # level each return closes down to
    # Pair the k-th return to the k-th call within each depth level:
    # stable argsort groups by depth and keeps log order inside a
    # level, and a balanced non-negative kind sequence guarantees the
    # blocks align one-to-one.
    order_c = _np.argsort(call_depth, kind="stable")
    order_r = _np.argsort(ret_depth, kind="stable")
    if not _np.array_equal(
        addrs[call_pos[order_c]], addrs[ret_pos[order_r]]
    ):
        return None  # a return would close a different frame
    ret_of_call = _np.empty(n_calls, dtype=_np.int64)
    ret_of_call[order_c] = ret_pos[order_r]

    # Parents: for a call at depth d, the latest depth-(d-1) call
    # before it (searchsorted over the enclosing level's positions).
    call_index_of_pos = _np.empty(n, dtype=_np.int64)
    call_index_of_pos[call_pos] = _np.arange(n_calls)
    parent_idx = _np.full(n_calls, -1, dtype=_np.int64)
    max_depth = int(call_depth.max()) if n_calls else 0
    prev_positions = call_pos[call_depth == 0]
    for d in range(1, max_depth + 1):
        sel = _np.nonzero(call_depth == d)[0]
        here = call_pos[sel]
        slot = _np.searchsorted(prev_positions, here, side="right") - 1
        parent_idx[sel] = call_index_of_pos[prev_positions[slot]]
        prev_positions = here

    # Symbolisation: one resolve per unique address, fanned back out.
    uniq_addrs, addr_inv = _np.unique(addrs[call_pos], return_inverse=True)
    name_id = {}
    methods = []
    addr_mid = _np.empty(len(uniq_addrs), dtype=_np.int64)
    performed = 0
    for k, runtime in enumerate(uniq_addrs.tolist()):
        name = resolve_name(cache, runtime, offset)
        performed += 1
        mid = name_id.get(name)
        if mid is None:
            mid = name_id[name] = len(methods)
            methods.append(name)
        addr_mid[k] = mid
    mid_arr = addr_mid[addr_inv]
    requested = n_calls

    # v2 call-site cross-check (the log-integrity diagnostic).
    mismatches = 0
    if call_sites is not None:
        cs = _np.asarray(call_sites)[call_pos]
        checked = _np.nonzero((cs != 0) & (call_depth > 0))[0]
        if len(checked):
            requested += len(checked)
            uniq_cs, cs_inv = _np.unique(cs[checked], return_inverse=True)
            cs_mid = _np.empty(len(uniq_cs), dtype=_np.int64)
            for k, runtime in enumerate(uniq_cs.tolist()):
                name = resolve_name(cache, runtime, offset)
                performed += 1
                mid = name_id.get(name)
                if mid is None:
                    mid = name_id[name] = len(methods)
                    methods.append(name)
                cs_mid[k] = mid
            expected = cs_mid[cs_inv]
            actual = mid_arr[parent_idx[checked]]
            mismatches = int((expected != actual).sum())

    # Timing: inclusive per pair, exclusive after one scatter-add of
    # child inclusives onto parents (children always close first, so
    # the accumulation order matches the oracle's).
    counters = _np.asarray(counters).astype(_np.int64, copy=False)
    enter = counters[call_pos]
    exit_ = counters[ret_of_call]
    inclusive = _np.maximum(exit_ - enter, 0)
    child_sum = _np.zeros(n_calls, dtype=_np.int64)
    nested = _np.nonzero(call_depth > 0)[0]
    _np.add.at(child_sum, parent_idx[nested], inclusive[nested])
    exclusive = _np.maximum(inclusive - child_sum, 0)
    caller_id = _np.where(
        call_depth > 0, addr_mid[addr_inv[_np.maximum(parent_idx, 0)]],
        _np.int64(-1),
    )

    # Path interning, one level at a time: a node is (parent path,
    # method); np.unique over a combined integer key dedupes a whole
    # level in one pass.  Parents are interned before children.
    path_id = _np.empty(n_calls, dtype=_np.int64)
    paths = []
    width = len(methods) + 1
    for d in range(0, max_depth + 1):
        sel = _np.nonzero(call_depth == d)[0]
        if d:
            parent_pid = path_id[parent_idx[sel]]
        else:
            parent_pid = _np.full(len(sel), -1, dtype=_np.int64)
        key = (parent_pid + 1) * width + mid_arr[sel]
        uniq_key, key_inv = _np.unique(key, return_inverse=True)
        base = len(paths)
        for k in uniq_key.tolist():
            paths.append((int(k // width) - 1, int(k % width)))
        path_id[sel] = base + key_inv

    # Records appear in close order — exactly the oracle's append
    # order for a clean shard.
    order = _np.argsort(ret_of_call, kind="stable")
    columns = RecordColumns(
        method_id=mid_arr[order],
        tid=_np.full(n_calls, tid, dtype=_np.uint64),
        enter=enter[order],
        exit=exit_[order],
        inclusive=inclusive[order],
        exclusive=exclusive[order],
        depth=call_depth[order],
        caller_id=caller_id[order],
        path_id=path_id[order],
        truncated=_np.zeros(n_calls, dtype=bool),
        methods=methods,
        paths=paths,
    )
    return columns, mismatches, requested, performed


# ======================================================================
# The sequential oracle


class _OpenFrame:
    __slots__ = ("addr", "method", "enter", "child_ticks", "call_site",
                 "path")

    def __init__(self, addr, method, enter, call_site=0, path=()):
        self.addr = addr
        self.method = method
        self.enter = enter
        self.child_ticks = 0
        self.call_site = call_site
        self.path = path


def reconstruct_python(tid, kinds, counters, addrs, call_sites, offset,
                       cache):
    """The sequential, entry-at-a-time reconstruction loop.

    The differential oracle: implements the paper's full robustness
    rules (truncate frames left open, close intermediates when a
    return matches a deeper frame, dismiss unmatched returns).  Path
    tuples are interned — records sharing a call path share one tuple
    object — which cuts resident memory on deep, hot call sites
    without changing any record's value.
    """
    stack = []
    records = []
    unmatched = 0
    mismatches = 0
    interned = {}
    last_counter = counters[-1] if len(counters) else 0

    def close(frame, at, truncated):
        inclusive = max(0, at - frame.enter)
        exclusive = max(0, inclusive - frame.child_ticks)
        if stack:
            stack[-1].child_ticks += inclusive
        records.append(
            CallRecord(
                method=frame.method,
                tid=tid,
                enter=frame.enter,
                exit=at,
                inclusive=inclusive,
                exclusive=exclusive,
                depth=len(stack),
                caller=stack[-1].method if stack else None,
                path=frame.path,
                truncated=truncated,
            )
        )

    if call_sites is None:
        iterator = zip(kinds, counters, addrs)
        call_sites_absent = True
    else:
        iterator = zip(kinds, counters, addrs, call_sites)
        call_sites_absent = False
    for fields in iterator:
        if call_sites_absent:
            kind, counter, addr = fields
            call_site = 0
        else:
            kind, counter, addr, call_site = fields
        if kind == KIND_CALL:
            # v2 logs carry the call site; cross-check it against the
            # stack-derived caller (a log-integrity diagnostic).
            if call_site and stack:
                expected = resolve_name(cache, call_site, offset)
                if expected != stack[-1].method:
                    mismatches += 1
            method = resolve_name(cache, addr, offset)
            parent_path = stack[-1].path if stack else ()
            path = parent_path + (method,)
            path = interned.setdefault(path, path)
            stack.append(_OpenFrame(addr, method, counter, call_site, path))
            continue
        # A return: match against the open stack.
        if stack and stack[-1].addr == addr:
            close(stack.pop(), counter, truncated=False)
        elif any(f.addr == addr for f in stack):
            while stack[-1].addr != addr:
                close(stack.pop(), counter, truncated=True)
            close(stack.pop(), counter, truncated=False)
        else:
            unmatched += 1
    while stack:
        close(stack.pop(), last_counter, truncated=True)
    return records, unmatched, mismatches


# ======================================================================
# Shard execution (shared by the in-process pools and the workers)


@dataclass
class ShardOutcome:
    """What one shard's reconstruction produced, however it ran."""

    columns: object = None  # RecordColumns (columnar merges)
    records: list = None  # CallRecord list (pure-python merges)
    unmatched: int = 0
    mismatches: int = 0
    vectorised: bool = False
    #: Entry-level resolutions the vector kernel answered from its
    #: unique-address pass — counted as cache hits, since the oracle
    #: would have taken them from the LRU.
    synthetic_hits: int = 0
    #: Filled by pool workers (each has a private cache); ``None``
    #: in-process, where the shared cache is read once at merge.
    hits: int = None
    misses: int = None


def run_shard(tid, kinds, counters, addrs, call_sites, offset, cache,
              engine, columnar):
    """Reconstruct one shard with the requested engine.

    `engine` is the resolved engine ("vector" or "python"); `columnar`
    selects the merge representation (RecordColumns vs record lists).
    The vector engine transparently falls back to the sequential
    oracle on anomalous shards.
    """
    if engine == "vector":
        out = reconstruct_vector(
            tid, kinds, counters, addrs, call_sites, offset, cache
        )
        if out is not None:
            columns, mismatches, requested, performed = out
            return ShardOutcome(
                columns=columns,
                mismatches=mismatches,
                vectorised=True,
                synthetic_hits=requested - performed,
            )
    if hasattr(kinds, "tolist"):
        kinds = kinds.tolist()
        counters = counters.tolist()
        addrs = addrs.tolist()
        call_sites = call_sites.tolist() if call_sites is not None else None
    records, unmatched, mismatches = reconstruct_python(
        tid, kinds, counters, addrs, call_sites, offset, cache
    )
    if columnar:
        return ShardOutcome(
            columns=RecordColumns.from_records(records),
            unmatched=unmatched,
            mismatches=mismatches,
        )
    return ShardOutcome(
        records=records, unmatched=unmatched, mismatches=mismatches
    )


# ======================================================================
# The process-pool protocol

_SHARD_HEADER = struct.Struct("<QQQ")  # tid, n, flags
_SHARD_HAS_CALL_SITES = 1  # flags bit 0
_SHARD_COMPACT = 2  # flags bit 1: rev 1.2 varint/delta columns

#: Shards at or above this many entries cross the process boundary in
#: the rev 1.2 varint/delta encoding (3–5× less pickled bytes); small
#: shards ship raw — the codec pass isn't worth it below this.
COMPACT_SHARD_MIN_ENTRIES = 4096


def pack_shard(tid, kinds, counters, addrs, call_sites, compact=None):
    """One shard as bytes: header + the column arrays.

    This is what crosses the process boundary — a single blit per
    column instead of a pickled list of entry objects.  Large shards
    (``compact=None`` auto-selects at
    :data:`COMPACT_SHARD_MIN_ENTRIES`) pack their columns through the
    rev 1.2 varint/delta codec instead of raw u64s, shrinking the IPC
    payload the same 3–5× the on-disk format enjoys.
    """
    n = len(kinds)
    if compact is None:
        compact = n >= COMPACT_SHARD_MIN_ENTRIES
    flags = _SHARD_HAS_CALL_SITES if call_sites is not None else 0
    if compact:
        from repro.core import columnar as _codec

        sections = [
            _codec.encode_varint(kinds),
            _codec.encode_delta(counters),
            _codec.encode_dictionary(addrs),
        ]
        if call_sites is not None:
            sections.append(_codec.encode_dictionary(call_sites))
        parts = [_SHARD_HEADER.pack(tid, n, flags | _SHARD_COMPACT)]
        for packed in sections:
            parts.append(struct.pack("<Q", len(packed)))
            parts.append(packed)
        return b"".join(parts)
    parts = [
        _SHARD_HEADER.pack(tid, n, flags),
        _np.ascontiguousarray(kinds, dtype=_np.uint64).tobytes(),
        _np.ascontiguousarray(counters, dtype=_np.uint64).tobytes(),
        _np.ascontiguousarray(addrs, dtype=_np.uint64).tobytes(),
    ]
    if call_sites is not None:
        parts.append(
            _np.ascontiguousarray(call_sites, dtype=_np.uint64).tobytes()
        )
    return b"".join(parts)


def unpack_shard(payload):
    """Inverse of :func:`pack_shard`: zero-copy ``frombuffer`` views
    for raw shards, one vectorised decode pass for compact ones."""
    tid, n, flags = _SHARD_HEADER.unpack_from(payload, 0)
    base = _SHARD_HEADER.size
    if flags & _SHARD_COMPACT:
        from repro.core import columnar as _codec

        view = memoryview(payload)
        decoders = [
            _codec.decode_varint,
            _codec.decode_delta,
            _codec.decode_dictionary,
        ]
        if flags & _SHARD_HAS_CALL_SITES:
            decoders.append(_codec.decode_dictionary)
        offset = base
        columns = []
        for decode in decoders:
            (length,) = struct.unpack_from("<Q", view, offset)
            offset += 8
            columns.append(decode(view[offset : offset + length], n))
            offset += length
        if not flags & _SHARD_HAS_CALL_SITES:
            columns.append(None)
        return (tid, *columns)
    span = n * 8

    def col(index):
        return _np.frombuffer(
            payload, dtype="<u8", count=n, offset=base + index * span
        )

    call_sites = col(3) if flags & _SHARD_HAS_CALL_SITES else None
    return tid, col(0), col(1), col(2), call_sites


_POOL_STATE = None


def _pool_init(symtab, offset, engine, cache_size):
    """Worker initialiser: one symbol cache per process, built from
    the symbol table shipped once through the pool's initargs."""
    global _POOL_STATE
    _POOL_STATE = (CachedResolver(symtab, maxsize=cache_size), offset, engine)


def _pool_run(payload):
    """Worker entry: unpack one shard, reconstruct, return a
    picklable outcome carrying this worker's cache traffic."""
    cache, offset, engine = _POOL_STATE
    tid, kinds, counters, addrs, call_sites = unpack_shard(payload)
    before_hits, before_misses = cache.hits, cache.misses
    outcome = run_shard(
        tid, kinds, counters, addrs, call_sites, offset, cache, engine,
        columnar=True,
    )
    outcome.hits = cache.hits - before_hits + outcome.synthetic_hits
    outcome.misses = cache.misses - before_misses
    outcome.synthetic_hits = 0
    return outcome
